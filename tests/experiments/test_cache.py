"""Result cache: round-trip, hit/miss, and source-edit invalidation."""

import importlib
import textwrap

import pytest

from repro.experiments import cache as cache_mod
from repro.experiments.base import ExperimentResult
from repro.experiments.cache import (
    ResultCache,
    cache_key,
    source_fingerprint,
    transitive_modules,
)
from repro.experiments.runner import run_experiments


def _toy_result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="fig01",
        title="toy",
        headers=("a", "b"),
        rows=[(1, 2.5), ("x", True)],
        notes=["a note"],
    )


def test_result_round_trips_through_dict():
    result = _toy_result()
    assert ExperimentResult.from_dict(result.to_dict()) == result


def test_store_then_load_hits(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.load("fig01", fast=True) is None
    path = cache.store("fig01", fast=True, result=_toy_result())
    assert path.is_file()
    assert cache.load("fig01", fast=True) == _toy_result()


def test_fast_and_full_modes_are_distinct_entries(tmp_path):
    cache = ResultCache(tmp_path)
    cache.store("fig01", fast=True, result=_toy_result())
    assert cache.load("fig01", fast=False) is None
    assert cache_key("fig01", fast=True) != cache_key("fig01", fast=False)


def test_clear_removes_entries(tmp_path):
    cache = ResultCache(tmp_path)
    cache.store("fig01", fast=True, result=_toy_result())
    cache.store("fig01", fast=False, result=_toy_result())
    assert cache.clear() == 2
    assert cache.load("fig01", fast=True) is None


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.store("fig01", fast=True, result=_toy_result())
    path.write_text("{not json")
    assert cache.load("fig01", fast=True) is None


def test_transitive_modules_track_real_dependencies():
    fig07_deps = transitive_modules("repro.experiments.fig07")
    assert "repro.experiments.fig07" in fig07_deps
    assert "repro.core.explorer" in fig07_deps
    assert "repro.mapping.exchange" in fig07_deps  # via core.design
    assert not any(m.startswith("repro.netsim") for m in fig07_deps)

    fig21_deps = transitive_modules("repro.experiments.fig21")
    assert "repro.netsim.sim" in fig21_deps

    # fig09 delegates to fig07, so it must inherit its dependency cone.
    fig09_deps = set(transitive_modules("repro.experiments.fig09"))
    assert set(fig07_deps) <= fig09_deps


def test_source_edit_changes_fingerprint(tmp_path, monkeypatch):
    pkg = tmp_path / "fingerprintpkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    module = pkg / "leaf.py"
    module.write_text("VALUE = 1\n")
    monkeypatch.syspath_prepend(str(tmp_path))
    importlib.invalidate_caches()

    names = ["fingerprintpkg.leaf"]
    before = source_fingerprint(names)
    assert before == source_fingerprint(names)  # deterministic
    module.write_text("VALUE = 2\n")
    assert source_fingerprint(names) != before


def test_source_edit_busts_cache_key(tmp_path, monkeypatch):
    """A changed dependency fingerprint makes the old entry unreachable."""
    cache = ResultCache(tmp_path)
    cache.store("fig01", fast=True, result=_toy_result())
    assert cache.load("fig01", fast=True) is not None

    original = cache_mod.source_fingerprint
    monkeypatch.setattr(
        cache_mod,
        "source_fingerprint",
        lambda names: "edited" + original(names),
    )
    assert cache.load("fig01", fast=True) is None


def test_runner_serves_cached_result_without_recompute(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    (first,) = run_experiments(["tab06"], fast=True, cache=cache)

    import repro.experiments.tab06 as tab06

    def boom(fast=True):
        raise AssertionError("cache should have served this")

    monkeypatch.setattr(tab06, "run", boom)
    (second,) = run_experiments(["tab06"], fast=True, cache=cache)
    assert second == first


def test_runner_without_cache_recomputes(monkeypatch):
    calls = []
    import repro.experiments.tab06 as tab06

    original = tab06.run

    def counting(fast=True):
        calls.append(fast)
        return original(fast=fast)

    monkeypatch.setattr(tab06, "run", counting)
    run_experiments(["tab06"], fast=True, cache=None)
    run_experiments(["tab06"], fast=True, cache=None)
    assert len(calls) == 2


def test_default_cache_dir_honours_env(monkeypatch, tmp_path):
    monkeypatch.setenv(cache_mod.CACHE_DIR_ENV, str(tmp_path / "alt"))
    assert cache_mod.default_cache_dir() == tmp_path / "alt"


def test_entry_names_are_human_readable(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.store("fig01", fast=True, result=_toy_result())
    assert path.name.startswith("fig01-fast-")
