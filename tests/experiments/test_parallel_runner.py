"""Parallel scheduler: serial equality, failure fallback, CLI errors.

The CI box (and most laptops) may report a single effective core, on
which :func:`repro.parallel.effective_jobs` would degrade every
parallel request to the serial fast path — correct in production,
useless for testing the pool. Tests that need real worker processes
set ``REPRO_PARALLEL=force`` via the ``force_pool`` fixture.
"""

import os
import time

import pytest

from repro.experiments.base import ExperimentSpec, get_spec
from repro.experiments.runner import main, run_experiments
from repro.experiments.scheduler import execute

#: Cheap analytical experiments for equality checks (one partitioned
#: explorer sweep, one partitioned cooling search, two opaque singles).
SAMPLE_IDS = ["fig27", "fig28", "fig01", "tab06"]


@pytest.fixture
def force_pool(monkeypatch):
    """Make pool_map use real workers regardless of the core count."""
    monkeypatch.setenv("REPRO_PARALLEL", "force")


def test_parallel_results_equal_serial(force_pool):
    serial = run_experiments(SAMPLE_IDS, fast=True)
    parallel = run_experiments(SAMPLE_IDS, fast=True, jobs=3)
    assert [r.experiment_id for r in parallel] == SAMPLE_IDS
    for expected, actual in zip(serial, parallel):
        assert expected == actual, expected.experiment_id


@pytest.mark.slow
def test_parallel_results_equal_serial_simulation(force_pool):
    serial = run_experiments(["fig21"], fast=True)
    parallel = run_experiments(["fig21"], fast=True, jobs=2)
    assert serial == parallel


def test_spec_run_equals_unit_merge():
    """The work-unit protocol reproduces run() exactly, per module."""
    for experiment_id in ("fig07", "fig25", "fig26"):
        spec = get_spec(experiment_id)
        assert spec.is_partitioned
        via_units = spec.merge(
            [spec.run_unit(u, fast=True) for u in spec.units(fast=True)],
            fast=True,
        )
        assert via_units == spec.run(fast=True)


def test_unpartitioned_spec_is_single_unit():
    spec = get_spec("tab03")
    assert not spec.is_partitioned
    units = spec.units(fast=True)
    assert len(units) == 1
    result = spec.merge([spec.run_unit(units[0], fast=True)], fast=True)
    assert result.experiment_id == "tab03"


def _report_engine_env():
    """Module-level so the pool can pickle it into a worker."""
    from repro.parallel import ENGINE_ENV_VARS

    return {
        name: os.environ.get(name) for name in ENGINE_ENV_VARS
    }, os.getpid()


def test_engine_switches_propagate_to_workers(force_pool):
    """REPRO_SCALAR_NETSIM / REPRO_NETSIM_NO_CC reach pool workers.

    The switches travel per *task*, not per worker spawn: a persistent
    warm worker configured before the flag was set must still see it,
    or a forced-scalar experiment would silently come back vectorized.
    """
    from repro.parallel import pool_map

    previous = os.environ.get("REPRO_SCALAR_NETSIM")
    os.environ["REPRO_SCALAR_NETSIM"] = "1"
    try:
        results = pool_map(_report_engine_env, [()] * 4, jobs=2)
    finally:
        if previous is None:
            del os.environ["REPRO_SCALAR_NETSIM"]
        else:
            os.environ["REPRO_SCALAR_NETSIM"] = previous
    workers = {pid for _, pid in results}
    assert any(pid != os.getpid() for pid in workers)
    for env, pid in results:
        if pid == os.getpid():
            continue  # serial-fallback cells prove nothing here
        assert env["REPRO_SCALAR_NETSIM"] == "1"
        assert env["REPRO_NETSIM_NO_CC"] is None


def test_worker_crash_falls_back_to_serial(force_pool, capfd):
    """Units that die in every worker still complete in the parent."""
    spec = ExperimentSpec(
        experiment_id="crashy", module_name="tests.experiments._crashy_exp"
    )
    (result,) = execute([spec], fast=True, jobs=2)
    assert result.rows == [(0, 0), (1, 1), (2, 4)]
    err = capfd.readouterr().err
    assert "retrying" in err
    assert "falling back to serial" in err


def test_stalled_pool_degrades_to_serial(force_pool, capfd):
    """If no unit completes within the watchdog, the parent takes over."""
    spec = ExperimentSpec(
        experiment_id="sleepy", module_name="tests.experiments._sleepy_exp"
    )
    start = time.time()
    (result,) = execute([spec], fast=True, jobs=2, unit_timeout=0.75)
    assert result.rows == [("awake",)]
    assert time.time() - start < 10.0
    assert "abandoning" in capfd.readouterr().err


def test_error_propagates_when_serial_also_fails(force_pool):
    spec = ExperimentSpec(
        experiment_id="broken", module_name="tests.experiments._broken_exp"
    )
    with pytest.raises(RuntimeError, match="always broken"):
        execute([spec], fast=True, jobs=2)
    with pytest.raises(RuntimeError, match="always broken"):
        execute([spec], fast=True, jobs=1)


def test_main_rejects_unknown_experiment(capsys):
    code = main(["fig99"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown experiment id(s): fig99" in err
    assert "fig01" in err  # the known ids are listed


def test_main_rejects_bad_flags(capsys):
    assert main(["--jobs"]) == 2
    assert main(["--jobs", "lots"]) == 2
    assert main(["--frobnicate"]) == 2
    assert "error" in capsys.readouterr().err


def test_main_runs_parallel_with_cache_flags(capsys):
    code = main(["--jobs", "2", "--no-cache", "tab06"])
    assert code == 0
    out = capsys.readouterr().out
    assert "tab06" in out
    assert "jobs=2" in out


def test_main_cache_clear_without_ids_exits(capsys):
    assert main(["--cache-clear"]) == 0
    assert "cleared" in capsys.readouterr().out
