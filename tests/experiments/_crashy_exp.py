"""Test-only experiment whose units crash in worker processes.

Used by the scheduler tests: every unit raises when executed inside a
pool worker (any process other than the pytest main process), so a
parallel run exercises the retry-then-serial-fallback path and must
still produce the same table as a serial run.
"""

from __future__ import annotations

import multiprocessing

from repro.experiments.base import ExperimentResult


def units(fast: bool = True):
    del fast
    return [0, 1, 2]


def run_unit(unit, fast: bool = True):
    del fast
    if multiprocessing.current_process().name != "MainProcess":
        raise RuntimeError(f"unit {unit} deliberately crashed in a worker")
    return [(unit, unit * unit)]


def merge(unit_results, fast: bool = True) -> ExperimentResult:
    del fast
    return ExperimentResult(
        experiment_id="crashy",
        title="worker-crash fallback test",
        headers=("unit", "square"),
        rows=[row for rows in unit_results for row in rows],
    )


def run(fast: bool = True) -> ExperimentResult:
    return merge([run_unit(u, fast=fast) for u in units(fast=fast)], fast=fast)
