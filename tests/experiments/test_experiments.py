"""Every experiment runs in fast mode and produces sane tables."""

import pytest

from repro.experiments.base import EXPERIMENT_IDS, get_experiment

#: Simulation-backed experiments are slower; still run, but marked so a
#: quick `-m "not slow"` pass can skip them.
SIM_EXPERIMENTS = {"fig21", "fig22", "fig23", "fig24"}

#: Analytical experiments that run full design-space sweeps; slow tier.
SLOW_ANALYTICAL = {"fig17", "fig18", "fig25"}


@pytest.mark.parametrize(
    "experiment_id",
    [
        pytest.param(
            e, marks=[pytest.mark.slow] if e in SLOW_ANALYTICAL else []
        )
        for e in EXPERIMENT_IDS
        if e not in SIM_EXPERIMENTS
    ],
)
def test_analytical_experiment_runs(experiment_id):
    result = get_experiment(experiment_id)(fast=True)
    assert result.experiment_id == experiment_id
    assert result.rows, experiment_id
    assert len(result.headers) == len(result.rows[0])
    table = result.format_table()
    assert experiment_id in table


@pytest.mark.slow
@pytest.mark.parametrize("experiment_id", sorted(SIM_EXPERIMENTS))
def test_simulation_experiment_runs(experiment_id):
    result = get_experiment(experiment_id)(fast=True)
    assert result.rows, experiment_id
    assert result.notes


def test_unknown_experiment_rejected():
    with pytest.raises(ValueError):
        get_experiment("fig99")


def test_runner_executes_subset():
    from repro.experiments.runner import run_experiments

    results = run_experiments(["tab06", "fig01"], fast=True)
    assert [r.experiment_id for r in results] == ["tab06", "fig01"]
