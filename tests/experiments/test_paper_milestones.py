"""Integration tests for the paper's headline quantitative claims.

Each test states the paper's number and asserts our model reproduces it
(or its shape). These are the "did we actually reproduce the paper"
tests; EXPERIMENTS.md records the same comparisons narratively.
"""

import pytest

from repro.core.explorer import ideal_max_ports, max_feasible_design
from repro.core.hetero import apply_heterogeneity
from repro.tech.external_io import AREA_IO, OPTICAL_IO, SERDES_IO
from repro.tech.wsi import INFO_SOW, SI_IF, SI_IF_OVERDRIVEN


def test_abstract_32x_area_only_radix():
    """Abstract: 'up to 32x higher radix ... when only area constraints
    are considered' (8192 vs 256 at 300 mm)."""
    assert ideal_max_ports(300.0) == 32 * 256


@pytest.mark.slow
def test_abstract_4x_radix_from_higher_internal_bandwidth():
    """Abstract/Fig 9: doubling internal I/O bandwidth raises the 300 mm
    radix 4x (2048 -> 8192)."""
    at_3200 = max_feasible_design(300.0, wsi=SI_IF, external_io=OPTICAL_IO)
    at_6400 = max_feasible_design(
        300.0, wsi=SI_IF_OVERDRIVEN, external_io=OPTICAL_IO
    )
    assert at_3200.n_ports == 2048
    assert at_6400.n_ports == 8192


def test_serdes_only_doubles_ports():
    """Fig 7: periphery SerDes reaches only 512 ports even at 300 mm."""
    design = max_feasible_design(300.0, wsi=SI_IF, external_io=SERDES_IO)
    assert design.n_ports == 512


def test_optical_and_area_io_up_to_4x_serdes():
    serdes = max_feasible_design(300.0, wsi=SI_IF, external_io=SERDES_IO)
    optical = max_feasible_design(300.0, wsi=SI_IF, external_io=OPTICAL_IO)
    area = max_feasible_design(300.0, wsi=SI_IF, external_io=AREA_IO)
    assert optical.n_ports == 4 * serdes.n_ports
    assert area.n_ports == 4 * serdes.n_ports


@pytest.mark.slow
def test_62kw_at_8192_ports():
    """Fig 11: the 8192-port switch draws ~62 kW with a 33-43.8% I/O share."""
    design = max_feasible_design(
        300.0, wsi=SI_IF_OVERDRIVEN, external_io=OPTICAL_IO
    )
    assert design.power.total_w == pytest.approx(62000.0, rel=0.08)
    assert 0.33 <= design.power.io_fraction <= 0.438


@pytest.mark.slow
def test_power_density_069_to_048():
    """Fig 16: heterogeneity drops 300 mm density from ~0.69 to ~0.48
    W/mm2, into the water-cooling envelope."""
    design = max_feasible_design(
        300.0, wsi=SI_IF_OVERDRIVEN, external_io=OPTICAL_IO
    )
    hetero = apply_heterogeneity(design, leaf_split=4)
    assert design.power_density_w_per_mm2 == pytest.approx(0.69, abs=0.05)
    assert hetero.power_density_w_per_mm2 == pytest.approx(0.48, abs=0.05)
    assert hetero.cooling.name == "Water"


@pytest.mark.slow
def test_hetero_reduction_30_8_to_33_5():
    """Abstract: heterogeneous design reduces power by 30.8%-33.5%."""
    reductions = []
    for side in (200.0, 300.0):
        design = max_feasible_design(
            side, wsi=SI_IF_OVERDRIVEN, external_io=OPTICAL_IO
        )
        hetero = apply_heterogeneity(design, leaf_split=4)
        reductions.append(hetero.power_reduction_fraction)
    assert min(reductions) == pytest.approx(0.308, abs=0.03)
    assert max(reductions) == pytest.approx(0.335, abs=0.03)


@pytest.mark.slow
def test_deradixing_doubles_radix_at_300mm():
    """Abstract/Fig 17: deradixing increases overall radix by 2x."""
    from repro.core.deradix import deradix_sweep

    sweep = deradix_sweep(300.0, wsi=SI_IF, external_io=OPTICAL_IO)
    assert sweep[2].max_ports == 2 * sweep[1].max_ports


@pytest.mark.slow
def test_info_sow_same_ports_higher_power():
    """Figs 12-13: InFO-SoW matches 6400 Si-IF ports but burns more."""
    si = max_feasible_design(300.0, wsi=SI_IF_OVERDRIVEN, external_io=OPTICAL_IO)
    info = max_feasible_design(300.0, wsi=INFO_SOW, external_io=OPTICAL_IO)
    assert info.n_ports == si.n_ports
    assert info.power.total_w > si.power.total_w
