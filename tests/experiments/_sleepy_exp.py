"""Test-only experiment whose single unit hangs in worker processes.

The sleep is bounded (not infinite) so abandoned workers exit on their
own shortly after the scheduler's stall watchdog gives up on them.
"""

from __future__ import annotations

import multiprocessing
import time

from repro.experiments.base import ExperimentResult


def units(fast: bool = True):
    del fast
    return ["only"]


def run_unit(unit, fast: bool = True):
    del unit, fast
    if multiprocessing.current_process().name != "MainProcess":
        time.sleep(3.0)
    return [("awake",)]


def merge(unit_results, fast: bool = True) -> ExperimentResult:
    del fast
    return ExperimentResult(
        experiment_id="sleepy",
        title="stall watchdog test",
        headers=("state",),
        rows=[row for rows in unit_results for row in rows],
    )


def run(fast: bool = True) -> ExperimentResult:
    return merge([run_unit(u, fast=fast) for u in units(fast=fast)], fast=fast)
