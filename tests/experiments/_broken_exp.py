"""Test-only experiment that fails everywhere (worker and parent)."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult


def units(fast: bool = True):
    del fast
    return ["only"]


def run_unit(unit, fast: bool = True):
    del unit, fast
    raise RuntimeError("always broken")


def merge(unit_results, fast: bool = True) -> ExperimentResult:
    raise AssertionError("merge should never be reached")


def run(fast: bool = True) -> ExperimentResult:
    return merge([run_unit(u, fast=fast) for u in units(fast=fast)], fast=fast)
