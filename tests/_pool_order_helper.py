"""Module-level task functions for the cost-ordering pool test.

``record_order`` uses a module-global counter: inside a single worker
process it numbers the tasks in the order the worker executed them,
which is exactly what the cost-aware-dispatch test needs to observe.
"""

import itertools
import time

_COUNTER = itertools.count()


def record_order(task_id):
    return (task_id, next(_COUNTER))


def block(seconds):
    time.sleep(seconds)
