"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_design_command(capsys):
    code = main(
        [
            "design",
            "--substrate",
            "100",
            "--wsi",
            "Si-IF",
            "--external-io",
            "Optical I/O",
            "--hetero",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "1024 x 200G" in out
    assert "heterogeneous" in out


def test_design_show_mapping(capsys):
    code = main(
        [
            "design",
            "--substrate",
            "100",
            "--wsi",
            "Si-IF",
            "--external-io",
            "Optical I/O",
            "--show-mapping",
        ]
    )
    assert code == 0
    assert "placement" in capsys.readouterr().out


def test_experiments_command(capsys):
    code = main(["experiments", "tab06"])
    assert code == 0
    assert "Clos 3(N/k)" in capsys.readouterr().out


def test_usecases_command(capsys):
    code = main(["usecases"])
    assert code == 0
    out = capsys.readouterr().out
    assert "tab03" in out and "tab09" in out


def test_simulate_command(capsys):
    code = main(
        [
            "simulate",
            "--terminals",
            "32",
            "--radix",
            "8",
            "--vcs",
            "2",
            "--buffer",
            "8",
            "--loads",
            "0.1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "waferscale" in out and "switch-network" in out
