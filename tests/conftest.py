"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.experiments.cache import CACHE_DIR_ENV
from repro.tech.chiplet import tomahawk5
from repro.topology.clos import folded_clos


@pytest.fixture(autouse=True)
def _isolated_result_cache(monkeypatch, tmp_path):
    """Point the experiment result cache at a per-test directory so tests
    never read or write the working tree's ``.repro_cache/``."""
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "repro_cache"))


@pytest.fixture
def th5():
    return tomahawk5()


@pytest.fixture
def small_clos():
    """1024-port Clos (12 chiplets) — cheap enough for mapping tests."""
    return folded_clos(1024)


@pytest.fixture
def tiny_clos():
    """A 16-port Clos of radix-8 SSCs for fast structural tests."""
    from repro.tech.chiplet import SubSwitchChiplet

    ssc = SubSwitchChiplet(
        name="test-ssc",
        radix=8,
        port_bandwidth_gbps=200.0,
        area_mm2=100.0,
        core_power_w=50.0,
    )
    return folded_clos(16, ssc)
