"""Warm worker pool: fast path, warm reuse, crashes, wire, cores.

Complements ``tests/experiments/test_parallel_runner.py`` (which
exercises the pool through the experiment scheduler) with direct tests
of :mod:`repro.parallel`'s own contracts: the degraded-to-serial fast
path, persistent-worker reuse and preload warmth, crash → retry-once →
quarantine accounting, the executor-style ``submit`` facade, effective
core detection under affinity/cgroup limits, and the
:mod:`repro.wire` encoding both sides of the pipe speak.
"""

import os

import pytest

from repro import parallel, wire

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture
def force_pool(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "force")


# Module-level task functions so the pool can pickle them into workers.


def _pid(_=None):
    return os.getpid()


def _env_value(name):
    return os.environ.get(name)


def _square(x):
    return x * x


def _crash_in_worker(x):
    import multiprocessing

    if multiprocessing.current_process().name != "MainProcess":
        raise ValueError(f"unit {x} poisoned")
    return x


def _module_count(_=None):
    import sys

    return len(sys.modules)


# ----------------------------------------------------------------------
# wire encoding
# ----------------------------------------------------------------------


def test_wire_round_trips_scalars_and_containers():
    for obj in (
        None, True, False, 0, -1, 2**62, 2**80, -(2**80), 3.5,
        float("inf"), "text", "ünïcode", b"\x00\xff", [], (), {},
        [1, [2, (3, {"k": b"v"})]], {"a": 1, 2: "b", None: [True]},
        ("mixed", 1, 2.0, None, b"x"),
    ):
        assert wire.decode(wire.encode(obj)) == obj


def test_wire_round_trips_numpy_arrays():
    np = pytest.importorskip("numpy")
    for array in (
        np.arange(12, dtype=np.int64).reshape(3, 4),
        np.linspace(0.0, 1.0, 7),
        np.zeros((0, 3), dtype=np.float32),
        np.array([[True, False]]),
    ):
        back = wire.decode(wire.encode(array))
        assert back.dtype == array.dtype
        assert back.shape == array.shape
        assert (back == array).all()


def test_wire_pickle_fallback_for_arbitrary_objects():
    payload = {"path": __import__("pathlib").Path("/tmp/x"), "n": 3}
    assert wire.decode(wire.encode(payload)) == payload


def test_wire_rejects_trailing_garbage():
    with pytest.raises(ValueError, match="trailing"):
        wire.decode(wire.encode(1) + b"junk")


# ----------------------------------------------------------------------
# effective cores / serial fast path
# ----------------------------------------------------------------------


def test_effective_cpu_count_respects_cgroup_quota(tmp_path, monkeypatch):
    (tmp_path / "cpu.max").write_text("200000 100000\n")
    monkeypatch.setattr(parallel, "_CGROUP_ROOT", str(tmp_path))
    assert parallel._cgroup_cpu_limit() == 2
    assert parallel.effective_cpu_count() <= max(
        1, min(2, len(os.sched_getaffinity(0)))
    )


def test_effective_cpu_count_cgroup_v1_and_unlimited(tmp_path, monkeypatch):
    monkeypatch.setattr(parallel, "_CGROUP_ROOT", str(tmp_path))
    assert parallel._cgroup_cpu_limit() is None  # no cgroup files at all
    (tmp_path / "cpu.max").write_text("max 100000\n")
    assert parallel._cgroup_cpu_limit() is None  # v2 unlimited
    v1 = tmp_path / "cpu"
    v1.mkdir()
    (v1 / "cpu.cfs_quota_us").write_text("350000")
    (v1 / "cpu.cfs_period_us").write_text("100000")
    assert parallel._cgroup_cpu_limit() == 4  # ceil(3.5)


def test_effective_jobs_degrades_small_runs(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    assert parallel.effective_jobs(8, 1) == 1  # one task
    assert parallel.effective_jobs(1, 100) == 1  # one job
    assert parallel.effective_jobs(0, 100) == 1
    # auto never exceeds task count or the effective core count
    many = parallel.effective_jobs(64, 3)
    assert many <= 3
    assert many <= parallel.effective_cpu_count()
    monkeypatch.setenv("REPRO_PARALLEL", "serial")
    assert parallel.effective_jobs(8, 100) == 1
    monkeypatch.setenv("REPRO_PARALLEL", "force")
    assert parallel.effective_jobs(8, 100) == 8


def test_serial_fast_path_never_leaves_the_parent(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "serial")
    stats = []
    results = parallel.pool_map(
        _pid, [()] * 4, jobs=8, dispatch_stats=stats
    )
    assert set(results) == {os.getpid()}
    assert all(row == {"mode": "serial", "dispatch_s": 0.0} for row in stats)


# ----------------------------------------------------------------------
# warm pool behavior (real worker processes)
# ----------------------------------------------------------------------


def test_warm_workers_are_reused_across_calls(force_pool):
    first = parallel.pool_map(_pid, [()] * 4, jobs=2)
    second = parallel.pool_map(_pid, [()] * 4, jobs=2)
    workers = set(first) | set(second)
    assert os.getpid() not in workers
    assert set(second) & set(first), "second call should reuse warm workers"


def test_second_task_on_a_worker_imports_nothing(force_pool):
    # Two rounds on the same worker: the preloaded module set must be
    # complete enough that running another task imports zero modules.
    parallel.pool_map(_module_count, [()], jobs=1)
    stats = []
    parallel.pool_map(_module_count, [()], jobs=1, dispatch_stats=stats)
    assert stats[0]["new_modules"] == 0


def test_env_propagates_per_task_not_per_spawn(force_pool, monkeypatch):
    # Warm the pool first, then change the env: persistent workers must
    # see the *current* value, not the spawn-time snapshot.
    parallel.pool_map(_pid, [()], jobs=1)
    monkeypatch.setenv("REPRO_SCALAR_MAPPING", "1")
    (value,) = parallel.pool_map(
        _env_value, [("REPRO_SCALAR_MAPPING",)], jobs=1
    )
    assert value == "1"
    monkeypatch.delenv("REPRO_SCALAR_MAPPING")
    (value,) = parallel.pool_map(
        _env_value, [("REPRO_SCALAR_MAPPING",)], jobs=1
    )
    assert value is None


def test_quarantine_report_structure(force_pool, capfd):
    quarantine = []
    results = parallel.pool_map(
        _crash_in_worker,
        [(7,)],
        jobs=1,
        labels=["poisoned[7]"],
        quarantine=quarantine,
    )
    assert results == [7]  # serial fallback in the parent succeeded
    (report,) = quarantine
    assert report["label"] == "poisoned[7]"
    assert report["attempts"] == parallel.MAX_POOL_ATTEMPTS
    assert report["quarantined"] is True
    assert "poisoned" in report["error"]
    assert len(report["worker_pids"]) == parallel.MAX_POOL_ATTEMPTS
    err = capfd.readouterr().err
    assert "retrying" in err
    assert "falling back to serial" in err


def test_cost_order_dispatches_expensive_first(force_pool):
    # A dedicated single-worker pool; the worker is held busy by a
    # blocker so all three cost-tagged tasks are queued together, then
    # must drain most-expensive-first.
    import tests._pool_order_helper as helper

    pool = parallel.WorkerPool()
    try:
        pool.ensure_workers(1)
        blocker = pool.submit_task(helper.block, (1.0,))
        futures = {
            task_id: pool.submit_task(
                helper.record_order, (task_id,), cost=cost
            )
            for task_id, cost in ((0, 1.0), (1, 5.0), (2, 3.0))
        }
        blocker.result(timeout=60)
        by_task = {}
        for task_id, future in futures.items():
            returned_id, position = future.result(timeout=60)[0]
            assert returned_id == task_id
            by_task[task_id] = position
        assert by_task[1] < by_task[2] < by_task[0]
    finally:
        pool.shutdown()


def test_executor_submit_facade(force_pool):
    pool = parallel.shared_executor(2)
    future = pool.submit(_square, 9)
    assert future.result(timeout=60) == 81


def test_submit_sets_original_exception_type(force_pool):
    pool = parallel.shared_executor(1)
    future = pool.submit(_crash_in_worker, 1)
    with pytest.raises(ValueError, match="poisoned"):
        future.result(timeout=60)
    report = getattr(future.exception(), "worker_report", None)
    assert report is not None and report["quarantined"] is True


# ----------------------------------------------------------------------
# affinity pinning (stateful partition sessions)
# ----------------------------------------------------------------------


def _die_hard(_=None):
    os._exit(17)


def test_affinity_pins_tasks_to_one_worker(force_pool):
    pool = parallel.WorkerPool()
    try:
        pool.ensure_workers(2)
        pids_a = [
            pool.submit_task(_pid, affinity="run:a").result(timeout=60)[0]
            for _ in range(3)
        ]
        pids_b = [
            pool.submit_task(_pid, affinity="run:b").result(timeout=60)[0]
            for _ in range(3)
        ]
        assert len(set(pids_a)) == 1, "key a must stay on one worker"
        assert len(set(pids_b)) == 1, "key b must stay on one worker"
        # Fewest-pins binding spreads distinct keys over idle workers.
        assert pids_a[0] != pids_b[0]
        # Unpinned tasks are unaffected and still run somewhere.
        assert pool.submit_task(_pid).result(timeout=60)[0] in (
            pids_a[0], pids_b[0]
        )
    finally:
        pool.shutdown()


def test_affinity_lost_on_worker_death_not_retried(force_pool):
    pool = parallel.WorkerPool()
    try:
        pool.ensure_workers(1)
        pool.submit_task(_pid, affinity="run:x").result(timeout=60)
        future = pool.submit_task(_die_hard, affinity="run:x")
        with pytest.raises(parallel.AffinityLostError):
            future.result(timeout=60)
        # The pool itself survives: respawned workers serve new tasks.
        assert pool.submit_task(_square, (4,)).result(timeout=60)[0] == 16
    finally:
        pool.shutdown()


def test_release_affinity_drops_bindings_by_prefix(force_pool):
    pool = parallel.WorkerPool()
    try:
        pool.ensure_workers(1)
        pool.submit_task(_pid, affinity="run1:0").result(timeout=60)
        pool.submit_task(_pid, affinity="run2:0").result(timeout=60)
        assert set(pool._affinity) == {"run1:0", "run2:0"}
        pool.release_affinity("run1")
        assert set(pool._affinity) == {"run2:0"}
        pool.release_affinity("run2")
        assert not pool._affinity
    finally:
        pool.shutdown()
