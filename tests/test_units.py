"""Unit-conversion helpers."""

import pytest

from repro import units


def test_tbps_to_gbps():
    assert units.tbps(51.2) == 51200.0


def test_gbps_to_tbps_roundtrip():
    assert units.gbps_to_tbps(units.tbps(12.8)) == pytest.approx(12.8)


def test_kw_to_watts():
    assert units.kw(4) == 4000.0


def test_w_to_kw_roundtrip():
    assert units.w_to_kw(units.kw(62)) == pytest.approx(62.0)


def test_io_power_200g_at_2pj():
    # 200 Gbps at 2 pJ/bit = 0.4 W
    assert units.io_power_watts(200.0, 2.0) == pytest.approx(0.4)


def test_io_power_th5_line_rate():
    # TH-5's 51.2 Tbps at 2 pJ/bit is the paper's ~100 W I/O figure.
    assert units.io_power_watts(51200.0, 2.0) == pytest.approx(102.4)


def test_mm2_of_square():
    assert units.mm2_of_square(300.0) == 90000.0


def test_require_positive_accepts():
    assert units.require_positive("x", 1.5) == 1.5


def test_require_positive_rejects_zero():
    with pytest.raises(ValueError, match="x must be positive"):
        units.require_positive("x", 0.0)


def test_require_non_negative_accepts_zero():
    assert units.require_non_negative("x", 0.0) == 0.0


def test_require_non_negative_rejects():
    with pytest.raises(ValueError):
        units.require_non_negative("x", -1.0)
