"""Property-based tests over topology constructions (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.tech.chiplet import tomahawk5
from repro.topology.base import NodeRole
from repro.topology.clos import folded_clos, heterogeneous_clos
from repro.topology.dragonfly import dragonfly
from repro.topology.flattened_butterfly import flattened_butterfly
from repro.topology.mesh import direct_mesh

clos_multiples = st.integers(min_value=1, max_value=16).map(lambda m: 256 * m)


@given(clos_multiples)
@settings(max_examples=20, deadline=None)
def test_clos_invariants(n_ports):
    topo = folded_clos(n_ports)
    # Radix, chiplet count, and port budgets all follow the construction.
    assert topo.radix == n_ports
    assert topo.chiplet_count == 3 * n_ports // 256
    degrees = topo.channel_degrees()
    for node in topo.nodes:
        used = node.external_ports + degrees.get(node.index, 0)
        assert used <= node.chiplet.radix
        if node.role is NodeRole.SPINE:
            assert used == node.chiplet.radix  # spines exactly full
    assert topo.is_connected()


@given(clos_multiples, st.sampled_from([2, 4, 8]))
@settings(max_examples=15, deadline=None)
def test_hetero_clos_invariants(n_ports, split):
    topo = heterogeneous_clos(n_ports, leaf_split=split)
    assert topo.radix == n_ports
    # Total uplink channels equal total external ports (full bisection).
    uplinks = sum(link.channels for link in topo.links)
    assert uplinks == n_ports
    assert topo.is_connected()


@given(st.integers(min_value=2, max_value=8), st.integers(min_value=2, max_value=8))
@settings(max_examples=20, deadline=None)
def test_mesh_invariants(rows, cols):
    topo = direct_mesh(rows, cols)
    assert topo.chiplet_count == rows * cols
    assert len(topo.links) == rows * (cols - 1) + (rows - 1) * cols
    assert topo.is_connected()
    degrees = topo.channel_degrees()
    for node in topo.nodes:
        assert node.external_ports + degrees[node.index] == node.chiplet.radix


@given(st.integers(min_value=2, max_value=17))
@settings(max_examples=15, deadline=None)
def test_dragonfly_invariants(groups):
    topo = dragonfly(groups, routers_per_group=8)
    assert topo.chiplet_count == groups * 8
    assert topo.is_connected()
    degrees = topo.channel_degrees()
    for node in topo.nodes:
        assert node.external_ports + degrees[node.index] <= node.chiplet.radix


@given(st.integers(min_value=2, max_value=7), st.integers(min_value=2, max_value=7))
@settings(max_examples=20, deadline=None)
def test_flattened_butterfly_invariants(rows, cols):
    topo = flattened_butterfly(rows, cols)
    assert topo.chiplet_count == rows * cols
    assert topo.is_connected()
    # Every router connects to all row and column mates.
    adjacency = topo.adjacency()
    assert all(len(adjacency[n.index]) == (rows - 1) + (cols - 1) for n in topo.nodes)


@given(clos_multiples)
@settings(max_examples=10, deadline=None)
def test_clos_bisection_is_half_uplinks(n_ports):
    """An index-halving cut of a symmetric Clos crosses >= N/2 channels."""
    topo = folded_clos(n_ports)
    assert topo.bisection_channels() >= n_ports // 2
