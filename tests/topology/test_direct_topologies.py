"""Mesh, butterfly, dragonfly, flattened butterfly (Section VII)."""

import pytest

from repro.tech.chiplet import tomahawk5
from repro.topology.base import NodeRole
from repro.topology.butterfly import tapered_butterfly
from repro.topology.dragonfly import dragonfly
from repro.topology.flattened_butterfly import flattened_butterfly
from repro.topology.mesh import direct_mesh


# ---------------------------------------------------------------- mesh

def test_mesh_node_count():
    assert direct_mesh(4, 5).chiplet_count == 20


def test_mesh_connected():
    assert direct_mesh(5, 5).is_connected()


def test_mesh_all_core_role():
    for node in direct_mesh(3, 3).nodes:
        assert node.role is NodeRole.CORE


def test_mesh_edge_nodes_get_more_external_ports():
    topo = direct_mesh(3, 3)
    corner = topo.nodes[0]
    center = topo.nodes[4]
    assert corner.external_ports > center.external_ports


def test_mesh_internal_fraction_controls_split():
    sparse = direct_mesh(3, 3, internal_fraction=0.2)
    dense = direct_mesh(3, 3, internal_fraction=0.8)
    assert sparse.radix > dense.radix


def test_mesh_link_count():
    # rows*(cols-1) + (rows-1)*cols neighbor links
    topo = direct_mesh(4, 4)
    assert len(topo.links) == 4 * 3 + 3 * 4


def test_mesh_rejects_single_node():
    with pytest.raises(ValueError):
        direct_mesh(1, 1)


def test_mesh_rejects_bad_fraction():
    with pytest.raises(ValueError):
        direct_mesh(3, 3, internal_fraction=1.5)


# ----------------------------------------------------------- butterfly

def test_butterfly_radix():
    # taper=2 with k=256: 170 external ports per leaf
    topo = tapered_butterfly(1700, taper=2)
    assert topo.radix == 1700


def test_butterfly_taper_increases_external_share():
    clos_like = tapered_butterfly(1280, taper=1)
    tapered = tapered_butterfly(1700, taper=2)
    leaf_ext_1 = clos_like.leaves()[0].external_ports
    leaf_ext_2 = tapered.leaves()[0].external_ports
    assert leaf_ext_2 > leaf_ext_1


def test_butterfly_spines_absorb_uplinks():
    topo = tapered_butterfly(1700, taper=2)
    degrees = topo.channel_degrees()
    for spine in topo.spines():
        assert degrees[spine.index] <= spine.chiplet.radix


def test_butterfly_connected():
    assert tapered_butterfly(1700, taper=2).is_connected()


def test_butterfly_rejects_bad_port_count():
    with pytest.raises(ValueError):
        tapered_butterfly(1000, taper=2)


def test_butterfly_fewer_chiplets_per_port_than_clos():
    """The taper is what buys butterfly its ~10% radix edge."""
    from repro.topology.clos import folded_clos

    butterfly = tapered_butterfly(3400, taper=2)
    clos = folded_clos(3072)
    assert (
        butterfly.radix / butterfly.chiplet_count
        > clos.radix / clos.chiplet_count
    )


# ----------------------------------------------------------- dragonfly

def test_dragonfly_node_count():
    assert dragonfly(6, routers_per_group=8).chiplet_count == 48


def test_dragonfly_connected():
    assert dragonfly(6, routers_per_group=8).is_connected()


def test_dragonfly_all_nodes_terminate_ports():
    topo = dragonfly(5, routers_per_group=8)
    for node in topo.nodes:
        assert node.external_ports > 0


def test_dragonfly_balanced_external_ports():
    """Every router exposes exactly p*bundle terminals."""
    topo = dragonfly(6, routers_per_group=8)
    externals = {n.external_ports for n in topo.nodes}
    assert len(externals) == 1


def test_dragonfly_port_budget_respected():
    topo = dragonfly(14, routers_per_group=8)
    degrees = topo.channel_degrees()
    for node in topo.nodes:
        assert node.external_ports + degrees[node.index] <= node.chiplet.radix


def test_dragonfly_group_limit():
    with pytest.raises(ValueError):
        dragonfly(100, routers_per_group=8)  # > a*h + 1 = 17


def test_dragonfly_needs_two_groups():
    with pytest.raises(ValueError):
        dragonfly(1)


def test_dragonfly_local_links_all_to_all():
    topo = dragonfly(3, routers_per_group=4)
    adjacency = topo.adjacency()
    # Within group 0 (nodes 0-3) every pair is connected.
    for r1 in range(4):
        for r2 in range(r1 + 1, 4):
            assert r2 in adjacency[r1]


# ----------------------------------------- flattened butterfly

def test_flattened_butterfly_node_count():
    assert flattened_butterfly(4, 4).chiplet_count == 16


def test_flattened_butterfly_connected():
    assert flattened_butterfly(4, 4).is_connected()


def test_flattened_butterfly_row_col_links():
    topo = flattened_butterfly(3, 3)
    adjacency = topo.adjacency()
    # Node (0,0)=0 connects to row mates 1,2 and column mates 3,6.
    assert set(adjacency[0]) == {1, 2, 3, 6}


def test_flattened_butterfly_uniform_terminals():
    topo = flattened_butterfly(4, 4)
    externals = {n.external_ports for n in topo.nodes}
    assert len(externals) == 1


def test_flattened_butterfly_port_budget():
    topo = flattened_butterfly(5, 5)
    degrees = topo.channel_degrees()
    for node in topo.nodes:
        assert node.external_ports + degrees[node.index] <= node.chiplet.radix


def test_flattened_butterfly_rejects_tiny():
    with pytest.raises(ValueError):
        flattened_butterfly(1, 4)


def test_direct_topologies_lower_radix_per_chiplet_than_clos_leaf():
    """Direct topologies spend more radix on fabric (paper's 1.7-3.2x)."""
    df = dragonfly(14, routers_per_group=8)
    ports_per_chiplet = df.radix / df.chiplet_count
    assert ports_per_chiplet < tomahawk5().radix / 2
