"""Logical-topology data structures and invariants."""

import pytest

from repro.tech.chiplet import SubSwitchChiplet
from repro.topology.base import (
    LogicalLink,
    LogicalTopology,
    NodeRole,
    SwitchNode,
    distribute_evenly,
    merge_links,
    roles_summary,
)


def _ssc(radix=8):
    return SubSwitchChiplet("t", radix, 200.0, 100.0, 50.0)


def _node(i, ext=0, radix=8, role=NodeRole.CORE):
    return SwitchNode(index=i, role=role, chiplet=_ssc(radix), external_ports=ext)


def test_link_rejects_self_loop():
    with pytest.raises(ValueError):
        LogicalLink(1, 1, 2)


def test_link_rejects_zero_channels():
    with pytest.raises(ValueError):
        LogicalLink(0, 1, 0)


def test_node_rejects_external_over_radix():
    with pytest.raises(ValueError, match="exceeds chiplet radix"):
        _node(0, ext=9)


def test_topology_rejects_noncontiguous_indices():
    with pytest.raises(ValueError, match="contiguous"):
        LogicalTopology(
            name="bad",
            nodes=(_node(0), _node(2)),
            links=(),
            port_bandwidth_gbps=200.0,
        )


def test_topology_rejects_duplicate_links():
    with pytest.raises(ValueError, match="duplicate link"):
        LogicalTopology(
            name="bad",
            nodes=(_node(0), _node(1)),
            links=(LogicalLink(0, 1, 1), LogicalLink(1, 0, 1)),
            port_bandwidth_gbps=200.0,
        )


def test_topology_rejects_oversubscribed_node():
    with pytest.raises(ValueError, match="oversubscribed"):
        LogicalTopology(
            name="bad",
            nodes=(_node(0, ext=6), _node(1)),
            links=(LogicalLink(0, 1, 4),),
            port_bandwidth_gbps=200.0,
        )


def test_radix_sums_external_ports():
    topo = LogicalTopology(
        name="t",
        nodes=(_node(0, ext=4), _node(1, ext=2)),
        links=(LogicalLink(0, 1, 2),),
        port_bandwidth_gbps=200.0,
    )
    assert topo.radix == 6
    assert topo.total_external_bandwidth_gbps == pytest.approx(1200.0)


def test_channel_degrees():
    topo = LogicalTopology(
        name="t",
        nodes=(_node(0), _node(1), _node(2)),
        links=(LogicalLink(0, 1, 3), LogicalLink(1, 2, 2)),
        port_bandwidth_gbps=200.0,
    )
    assert topo.channel_degrees() == {0: 3, 1: 5, 2: 2}


def test_is_connected_true():
    topo = LogicalTopology(
        name="t",
        nodes=(_node(0), _node(1), _node(2)),
        links=(LogicalLink(0, 1, 1), LogicalLink(1, 2, 1)),
        port_bandwidth_gbps=200.0,
    )
    assert topo.is_connected()


def test_is_connected_false():
    topo = LogicalTopology(
        name="t",
        nodes=(_node(0), _node(1), _node(2)),
        links=(LogicalLink(0, 1, 1),),
        port_bandwidth_gbps=200.0,
    )
    assert not topo.is_connected()


def test_distribute_evenly_exact():
    assert distribute_evenly(8, 4) == [2, 2, 2, 2]


def test_distribute_evenly_remainder_to_front():
    assert distribute_evenly(7, 3) == [3, 2, 2]


def test_distribute_evenly_total_preserved():
    for total in range(0, 30):
        for bins in range(1, 7):
            shares = distribute_evenly(total, bins)
            assert sum(shares) == total
            assert max(shares) - min(shares) <= 1


def test_merge_links_combines_duplicates():
    merged = merge_links([(0, 1, 2), (1, 0, 3), (2, 1, 1)])
    by_pair = {(l.a, l.b): l.channels for l in merged}
    assert by_pair == {(0, 1): 5, (1, 2): 1}


def test_merge_links_drops_zero_channels():
    assert merge_links([(0, 1, 0)]) == []


def test_roles_summary(tiny_clos):
    summary = roles_summary(tiny_clos)
    assert summary == {"leaf": 4, "spine": 2}
