"""Folded Clos construction (Section IV, Table VI)."""

import pytest

from repro.tech.chiplet import scaled_leaf_die, tomahawk5
from repro.topology.base import NodeRole
from repro.topology.clos import folded_clos, heterogeneous_clos


def test_chiplet_count_formula():
    """Table VI: a Clos needs 3(N/k) chiplets."""
    for n in (256, 512, 1024, 2048, 8192):
        assert folded_clos(n).chiplet_count == 3 * n // 256


def test_radix_matches_request():
    assert folded_clos(2048).radix == 2048


def test_leaf_and_spine_counts():
    topo = folded_clos(2048)
    assert len(topo.leaves()) == 16
    assert len(topo.spines()) == 8


def test_leaves_expose_half_radix_externally():
    topo = folded_clos(1024)
    for leaf in topo.leaves():
        assert leaf.external_ports == 128


def test_spines_have_no_external_ports():
    topo = folded_clos(1024)
    for spine in topo.spines():
        assert spine.external_ports == 0


def test_spines_exactly_full():
    """Every spine port is used: the Clos is rearrangeably non-blocking."""
    topo = folded_clos(2048)
    degrees = topo.channel_degrees()
    for spine in topo.spines():
        assert degrees[spine.index] == spine.chiplet.radix


def test_leaf_uplinks_equal_downlinks():
    """Full bisection: k/2 uplink channels per leaf."""
    topo = folded_clos(4096)
    degrees = topo.channel_degrees()
    for leaf in topo.leaves():
        assert degrees[leaf.index] == leaf.external_ports


def test_uplinks_spread_over_all_spines():
    topo = folded_clos(2048)
    adjacency = topo.adjacency()
    spine_ids = {s.index for s in topo.spines()}
    for leaf in topo.leaves():
        assert set(adjacency[leaf.index]) == spine_ids


def test_connected():
    assert folded_clos(1024).is_connected()


def test_path_diversity_is_spine_count():
    assert folded_clos(2048).path_diversity == 8


def test_invalid_radix_rejected():
    with pytest.raises(ValueError):
        folded_clos(300)  # not a multiple of 256
    with pytest.raises(ValueError):
        folded_clos(128)  # below a single SSC


def test_deradixed_clos():
    ssc = tomahawk5().deradixed(2)
    topo = folded_clos(4096, ssc)
    assert topo.chiplet_count == 3 * 4096 // 128


def test_bisection_channels_positive():
    assert folded_clos(1024).bisection_channels() > 0


# ----------------------------------------------------------------------
# Heterogeneous Clos (Section V.B)
# ----------------------------------------------------------------------

def test_hetero_radix_preserved():
    assert heterogeneous_clos(2048, leaf_split=4).radix == 2048


def test_hetero_split1_is_homogeneous():
    topo = heterogeneous_clos(1024, leaf_split=1)
    assert topo.name.startswith("folded-clos")


def test_hetero_leaf_count_multiplied():
    base = folded_clos(2048)
    hetero = heterogeneous_clos(2048, leaf_split=4)
    assert len(hetero.leaves()) == 4 * len(base.leaves())


def test_hetero_spines_unchanged():
    base = folded_clos(2048)
    hetero = heterogeneous_clos(2048, leaf_split=2)
    assert len(hetero.spines()) == len(base.spines())
    for spine in hetero.spines():
        assert spine.chiplet.radix == 256


def test_hetero_leaves_are_scaled_dies():
    hetero = heterogeneous_clos(2048, leaf_split=4)
    for leaf in hetero.leaves():
        assert leaf.chiplet.radix == 64
        assert leaf.chiplet.core_power_w == pytest.approx(25.0)


def test_hetero_spines_still_full():
    hetero = heterogeneous_clos(2048, leaf_split=4)
    degrees = hetero.channel_degrees()
    for spine in hetero.spines():
        assert degrees[spine.index] == 256


def test_hetero_total_leaf_area_matches_homogeneous():
    """Disaggregated leaves of one site fill the original leaf's area."""
    base = folded_clos(2048)
    hetero = heterogeneous_clos(2048, leaf_split=4)
    base_leaf_area = sum(n.chiplet.area_mm2 for n in base.leaves())
    hetero_leaf_area = sum(n.chiplet.area_mm2 for n in hetero.leaves())
    assert hetero_leaf_area == pytest.approx(base_leaf_area)


def test_hetero_core_power_reduction():
    """Quarter-radix leaves burn 1/4 the leaf power (Fig 16's driver)."""
    base = folded_clos(2048)
    hetero = heterogeneous_clos(2048, leaf_split=4)
    base_core = sum(n.chiplet.core_power_w for n in base.nodes)
    hetero_core = sum(n.chiplet.core_power_w for n in hetero.nodes)
    # Leaves are 2/3 of the chiplets' power budget; saving 3/4 of it
    # cuts total core power by half.
    assert hetero_core == pytest.approx(base_core / 2.0)


def test_hetero_invalid_split_rejected():
    with pytest.raises(ValueError):
        heterogeneous_clos(1024, leaf_split=0)
    with pytest.raises(ValueError):
        heterogeneous_clos(1024, leaf_split=256)


def test_hetero_uses_reference_for_scaling():
    ssc = tomahawk5()
    hetero = heterogeneous_clos(1024, ssc, leaf_split=2)
    expected = scaled_leaf_die(128, reference=ssc)
    assert hetero.leaves()[0].chiplet.core_power_w == pytest.approx(
        expected.core_power_w
    )
