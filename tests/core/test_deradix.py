"""Subswitch deradixing (Section V.C, Figs 17-18)."""

import pytest

from repro.core.deradix import best_deradix_factor, deradix_sweep
from repro.tech.external_io import OPTICAL_IO
from repro.tech.wsi import SI_IF, SI_IF_OVERDRIVEN

# Everything touching deradix_sweep pays for full design-space sweeps
# (the shared fixture alone takes ~30 s); those tests are slow tier.
slow_sweep = pytest.mark.slow


@pytest.fixture(scope="module")
def sweep_3200_200mm():
    return deradix_sweep(
        200.0, wsi=SI_IF, external_io=OPTICAL_IO, mapping_restarts=1
    )


@slow_sweep
def test_sweep_covers_factors(sweep_3200_200mm):
    assert set(sweep_3200_200mm) == {1, 2, 4}


@slow_sweep
def test_factor_radixes(sweep_3200_200mm):
    assert sweep_3200_200mm[1].ssc_radix == 256
    assert sweep_3200_200mm[2].ssc_radix == 128
    assert sweep_3200_200mm[4].ssc_radix == 64


@slow_sweep
def test_deradix2_matches_baseline_at_200mm_3200(sweep_3200_200mm):
    """At 200 mm @3200 both 256- and 128-port SSCs reach 2048 ports."""
    assert sweep_3200_200mm[1].max_ports == 2048
    assert sweep_3200_200mm[2].max_ports == 2048


@slow_sweep
def test_excess_deradix_regresses(sweep_3200_200mm):
    """Fig 17: quartering the radix wastes area and loses ports."""
    assert sweep_3200_200mm[4].max_ports < sweep_3200_200mm[1].max_ports


@slow_sweep
def test_deradix_harmful_at_6400():
    """Fig 18: with sufficient internal bandwidth deradixing only hurts."""
    sweep = deradix_sweep(
        200.0, wsi=SI_IF_OVERDRIVEN, external_io=OPTICAL_IO, mapping_restarts=1
    )
    assert sweep[1].max_ports == 4096
    assert sweep[2].max_ports < sweep[1].max_ports


@slow_sweep
def test_best_factor_prefers_less_deradixing_on_tie(sweep_3200_200mm):
    assert best_deradix_factor(sweep_3200_200mm) == 1


def test_best_factor_picks_max():
    fake = {
        1: type("P", (), {"max_ports": 100})(),
        2: type("P", (), {"max_ports": 300})(),
        4: type("P", (), {"max_ports": 200})(),
    }
    assert best_deradix_factor(fake) == 2
