"""Design-space exploration — the paper's headline radix milestones."""

import pytest

from repro.core.explorer import (
    clos_radix_candidates,
    ideal_max_ports,
    max_chiplets_for,
    max_feasible_design,
)
from repro.tech.chiplet import tomahawk5
from repro.tech.external_io import AREA_IO, OPTICAL_IO, SERDES_IO
from repro.tech.wsi import SI_IF, SI_IF_OVERDRIVEN


def test_max_chiplets_300mm():
    assert max_chiplets_for(300.0, tomahawk5()) == 112


def test_clos_candidates_power_of_two_steps():
    assert clos_radix_candidates(tomahawk5(), 112) == [256, 512, 1024, 2048, 4096, 8192]


def test_clos_candidates_small_budget():
    assert clos_radix_candidates(tomahawk5(), 5) == [256]
    assert clos_radix_candidates(tomahawk5(), 2) == []


def test_ideal_ports_fig6():
    """Fig 6: 4x / 16x / 32x a single TH-5 at 100/200/300 mm."""
    assert ideal_max_ports(100.0) == 1024
    assert ideal_max_ports(200.0) == 4096
    assert ideal_max_ports(300.0) == 8192


def test_ideal_ports_higher_bandwidth_configs():
    from repro.tech.chiplet import TH5_CONFIGURATIONS

    assert ideal_max_ports(200.0, ssc=TH5_CONFIGURATIONS[64]) == 1024


def test_serdes_limits_fig7():
    """Fig 7: SerDes caps at 256/512 ports (100/200 mm)."""
    d100 = max_feasible_design(100.0, wsi=SI_IF, external_io=SERDES_IO)
    d200 = max_feasible_design(200.0, wsi=SI_IF, external_io=SERDES_IO)
    assert d100.n_ports == 256
    assert d200.n_ports == 512


@pytest.mark.slow
def test_optical_3200_internal_bound_fig7():
    """Fig 7: Optical @3200 reaches 1024 at 100 mm, 2048 at 200 mm."""
    d100 = max_feasible_design(100.0, wsi=SI_IF, external_io=OPTICAL_IO)
    d200 = max_feasible_design(200.0, wsi=SI_IF, external_io=OPTICAL_IO)
    assert d100.n_ports == 1024
    assert d200.n_ports == 2048


@pytest.mark.slow
def test_optical_6400_fig9():
    """Fig 9: doubling internal bandwidth doubles the 200 mm radix."""
    d200 = max_feasible_design(
        200.0, wsi=SI_IF_OVERDRIVEN, external_io=OPTICAL_IO
    )
    assert d200.n_ports == 4096  # equals the area-limited ideal


def test_area_io_external_bound():
    """Fig 7/9: Area I/O is externally bound at 1024 (200 mm) either way."""
    at_3200 = max_feasible_design(200.0, wsi=SI_IF, external_io=AREA_IO)
    at_6400 = max_feasible_design(
        200.0, wsi=SI_IF_OVERDRIVEN, external_io=AREA_IO
    )
    assert at_3200.n_ports == 1024
    assert at_6400.n_ports == 1024


def test_unknown_family_rejected():
    with pytest.raises(ValueError, match="unknown topology family"):
        max_feasible_design(200.0, family="torus")


def test_all_families_produce_ideal_designs():
    from repro.core.constraints import AREA_ONLY

    for family in ("clos", "mesh", "butterfly", "dragonfly", "flattened-butterfly"):
        design = max_feasible_design(
            200.0, external_io=None, limits=AREA_ONLY, family=family
        )
        assert design is not None, family
        assert design.n_ports > 0


def test_mesh_ideal_exceeds_clos_ideal():
    """Section VII: mesh lays out natively and beats Clos's ideal radix."""
    from repro.core.constraints import AREA_ONLY

    mesh = max_feasible_design(200.0, external_io=None, limits=AREA_ONLY, family="mesh")
    assert mesh.n_ports > ideal_max_ports(200.0)


@pytest.mark.slow
def test_direct_topologies_trail_clos_when_constrained():
    """Section VII: flattened butterfly trails Clos once constrained."""
    clos = max_feasible_design(200.0, wsi=SI_IF, external_io=OPTICAL_IO)
    fb = max_feasible_design(
        200.0, wsi=SI_IF, external_io=OPTICAL_IO, family="flattened-butterfly"
    )
    assert fb.n_ports < clos.n_ports
