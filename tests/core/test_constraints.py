"""Constraint limits and reports."""

import pytest

from repro.core.constraints import (
    AREA_BANDWIDTH,
    AREA_ONLY,
    ConstraintLimits,
    ConstraintReport,
)
from repro.tech.cooling import WATER_COOLING


def _report(**overrides):
    defaults = dict(
        area_considered=True,
        area_ok=True,
        chiplet_area_mm2=1000.0,
        usable_area_mm2=2000.0,
        external_considered=True,
        external_ok=True,
        external_required_gbps=100.0,
        external_capacity_gbps=200.0,
        internal_considered=True,
        internal_ok=True,
        max_edge_channels=10,
        available_per_port_gbps=300.0,
        required_per_port_gbps=200.0,
        cooling_considered=False,
        cooling_ok=True,
        power_density_w_per_mm2=0.1,
        cooling_limit_w_per_mm2=float("inf"),
    )
    defaults.update(overrides)
    return ConstraintReport(**defaults)


def test_feasible_when_all_ok():
    assert _report().feasible


def test_infeasible_on_area():
    report = _report(area_ok=False)
    assert not report.feasible
    assert report.binding_constraints() == ["area"]


def test_unconsidered_constraint_ignored():
    report = _report(area_ok=False, area_considered=False)
    assert report.feasible
    assert report.binding_constraints() == []


def test_multiple_binding_constraints():
    report = _report(external_ok=False, internal_ok=False)
    assert set(report.binding_constraints()) == {
        "external-bandwidth",
        "internal-bandwidth",
    }


def test_cooling_binding():
    report = _report(cooling_considered=True, cooling_ok=False)
    assert report.binding_constraints() == ["power-density"]


def test_area_only_preset():
    assert AREA_ONLY.consider_area
    assert not AREA_ONLY.consider_external
    assert not AREA_ONLY.consider_internal


def test_default_preset_considers_all_bandwidth():
    assert AREA_BANDWIDTH.consider_internal
    assert AREA_BANDWIDTH.consider_external
    assert AREA_BANDWIDTH.cooling is None


def test_capacity_fraction_validated():
    with pytest.raises(ValueError):
        ConstraintLimits(capacity_fraction=0.0)
    with pytest.raises(ValueError):
        ConstraintLimits(capacity_fraction=1.5)


def test_cooling_limit_carried():
    limits = ConstraintLimits(cooling=WATER_COOLING)
    assert limits.cooling.max_power_density_w_per_mm2 == 0.5
