"""System architecture sizing (Section VIII.A, Figs 29-30)."""

import pytest

from repro.core.system_arch import (
    design_system_architecture,
    reference_200mm_architecture,
    reference_300mm_architecture,
)


@pytest.fixture(scope="module")
def arch300():
    return reference_300mm_architecture()


@pytest.fixture(scope="module")
def arch200():
    return reference_200mm_architecture()


def test_total_ru_300mm_is_20(arch300):
    """Paper: the 300 mm system fits in 20RU (19 front panel + 1 mgmt)."""
    assert arch300.front_panel_ru == 19
    assert arch300.total_ru == 20


def test_total_ru_200mm_is_11(arch200):
    assert arch200.total_ru == 11


def test_psu_count_25(arch300):
    """Paper: 25 x 4 kW PSUs provide 50 kW + 50 kW with N+N redundancy."""
    assert arch300.psu_count == 25


def test_dcdc_count_50(arch300):
    assert arch300.dcdc_count == 50


def test_vrm_count_near_paper(arch300):
    """Paper: ~420 VRMs including 10% redundancy."""
    assert 380 <= arch300.vrm_count <= 500


def test_backside_components_fit(arch300):
    assert arch300.backside_component_area_mm2 < 300.0 * 300.0


def test_pcl_count_36(arch300):
    """Paper: 36 passive cold plates cover the 12x12 chiplet array."""
    assert arch300.pcl_count == 36


def test_supply_channels_12(arch300):
    """Paper: 12 coolant supply channels (3 PCLs per channel)."""
    assert arch300.supply_channel_count == 12


def test_adapter_count_matches_front_panel(arch300):
    # 8192 x 200G = 1638.4 Tbps over 800G adapters = 2048 adapters.
    assert arch300.adapter_count == 2048
    assert arch300.adapter_count <= arch300.front_panel_ru * 108


def test_power_per_port_6_1w(arch300):
    """Table III: ~6.1 W per port."""
    assert arch300.power_per_port_w == pytest.approx(6.1, abs=0.1)


def test_capacity_density_81_9(arch300):
    assert arch300.capacity_density_tbps_per_ru == pytest.approx(81.9, abs=0.1)


def test_cooling_capacity_enforced():
    # A 4x4 chiplet array has only 4 PCLs (6.4 kW); 10 kW must fail.
    with pytest.raises(ValueError, match="cooling loops"):
        design_system_architecture(300.0, 1024, 200.0, 10000.0, chiplet_array_side=4)


def test_invalid_ports_rejected():
    with pytest.raises(ValueError):
        design_system_architecture(300.0, 0, 200.0, 45000.0)


def test_800g_config_uses_splitters(arch300):
    """2048 x 800G config has the same front panel (Section VIII.A)."""
    arch = design_system_architecture(300.0, 2048, 800.0, 45000.0)
    assert arch.adapter_count == arch300.adapter_count
    assert arch.total_ru == arch300.total_ru
