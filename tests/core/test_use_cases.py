"""Use-case accounting (Tables III, VI, VII, VIII, IX)."""

import pytest

from repro.core.use_cases import (
    MODULAR_ROUTERS,
    clos_network_of_boxes,
    datacenter_comparison,
    dcn_comparison,
    gpu_cluster_comparison,
    microarchitecture_chiplet_counts,
    waferscale_router_row,
)


def test_single_box_when_endpoints_fit():
    net = clos_network_of_boxes(200, 256, 200.0)
    assert net.levels == 1
    assert net.switch_count == 1
    assert net.worst_case_hops == 1


def test_two_level_clos_for_8192_on_th5():
    """Table VII: 8192 servers need 96 TH-5 boxes at 2 levels."""
    net = clos_network_of_boxes(8192, 256, 200.0)
    assert net.levels == 2
    assert net.switch_count == 96
    assert net.cable_count == 16384
    assert net.worst_case_hops == 3
    assert net.rack_units == 192


def test_three_level_clos_for_dcn():
    net = clos_network_of_boxes(32768, 64, 800.0)
    assert net.levels == 3
    assert net.worst_case_hops == 5


def test_bisection_half_endpoints():
    net = clos_network_of_boxes(8192, 256, 200.0)
    assert net.bisection_bandwidth_gbps == pytest.approx(8192 / 2 * 200.0)


def test_chiplet_counts_table6():
    counts = microarchitecture_chiplet_counts(8192, 256)
    assert counts == {
        "clos": 96,
        "hierarchical-crossbar": 1024,
        "modular-crossbar": 1024,
    }


def test_chiplet_counts_2048():
    counts = microarchitecture_chiplet_counts(2048, 256)
    assert counts["clos"] == 24
    assert counts["hierarchical-crossbar"] == 64


def test_datacenter_comparison_matches_table7():
    comparison = datacenter_comparison(servers=8192)
    assert comparison.ws_switches == 1
    assert comparison.baseline_switches == 96
    assert comparison.ws_cables == 8192
    assert comparison.baseline_cables == 16384
    assert comparison.ws_hops == 1
    assert comparison.baseline_hops == 3
    assert comparison.cable_reduction == pytest.approx(0.5)
    assert comparison.rack_space_reduction > 0.89  # paper: ~90 %


def test_gpu_cluster_matches_table8():
    comparison = gpu_cluster_comparison(gpus=2048)
    assert comparison.ws_switches == 1
    assert comparison.baseline_switches == 132
    assert comparison.bisection_bandwidth_gbps == pytest.approx(819200.0)


def test_dcn_matches_table9_ws_side():
    """Table IX: 48 WS spines, 65536 cables, 3 hops, 960 RU."""
    comparison = dcn_comparison(racks=16384)
    assert comparison.ws_switches == 48
    assert comparison.ws_cables == 65536
    assert comparison.ws_hops == 3
    assert comparison.ws_rack_units == 960


def test_dcn_baseline_much_larger():
    comparison = dcn_comparison(racks=16384)
    assert comparison.baseline_switches > 40 * comparison.ws_switches
    assert comparison.baseline_hops == 5
    assert comparison.cable_reduction > 0.3


def test_modular_router_power_per_port():
    """Table III: commercial routers burn ~19-23 W per port."""
    for router in MODULAR_ROUTERS:
        assert 18.0 < router.power_per_port_w < 24.0


def test_ws_row_capacity_density():
    row = waferscale_router_row(300, 8192, 50000.0, 20)
    assert row.capacity_density_tbps_per_ru == pytest.approx(81.92, abs=0.01)
    assert row.power_per_port_w == pytest.approx(6.1, abs=0.01)


def test_clos_network_rejects_bad_inputs():
    with pytest.raises(ValueError):
        clos_network_of_boxes(0, 256, 200.0)
