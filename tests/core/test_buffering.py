"""Analytic buffer sizing (Section VI)."""

import math

import pytest

from repro.core.buffering import (
    buffer_requirements_by_connection,
    on_wafer_buffer_reduction,
    required_buffer_bits,
    required_buffer_flits,
)


def test_rule_formula():
    # 200 ns RTT x 200 Gbps / sqrt(1) = 40000 bits
    assert required_buffer_bits(200.0, 200.0) == pytest.approx(40000.0)


def test_sqrt_n_reduction():
    one = required_buffer_bits(200.0, 200.0, n_flows=1)
    many = required_buffer_bits(200.0, 200.0, n_flows=256)
    assert many == pytest.approx(one / 16.0)


def test_flit_rounding():
    flits = required_buffer_flits(200.0, 200.0, flit_bits=4096)
    assert flits == math.ceil(40000 / 4096)


def test_flit_minimum_one():
    assert required_buffer_flits(1.0, 1.0, n_flows=1024) == 1


def test_requirements_cover_table_v():
    requirements = buffer_requirements_by_connection()
    assert set(requirements) == {"on-wafer", "in-rack PCB", "100m optical"}


def test_on_wafer_needs_least_buffering():
    requirements = buffer_requirements_by_connection()
    assert (
        requirements["on-wafer"].buffer_bits
        < requirements["in-rack PCB"].buffer_bits
        < requirements["100m optical"].buffer_bits
    )


def test_on_wafer_fits_sram():
    """Section VI: small buffers can use fast SRAM instead of DRAM."""
    requirements = buffer_requirements_by_connection()
    assert requirements["on-wafer"].fits_sram


def test_reduction_factor_is_rtt_ratio():
    # 350 ns optical vs 20 ns on-wafer -> 17.5x smaller buffers.
    assert on_wafer_buffer_reduction() == pytest.approx(350.0 / 20.0)


def test_invalid_inputs():
    with pytest.raises(ValueError):
        required_buffer_bits(0.0, 200.0)
    with pytest.raises(ValueError):
        required_buffer_bits(10.0, 200.0, n_flows=0)
