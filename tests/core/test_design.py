"""Design-point evaluation."""

import pytest

from repro.core.constraints import AREA_ONLY, ConstraintLimits
from repro.core.design import (
    cached_mapping,
    clear_mapping_cache,
    evaluate_design,
    io_style_for,
)
from repro.mapping.routing import IOStyle
from repro.tech.external_io import AREA_IO, OPTICAL_IO, SERDES_IO
from repro.tech.wsi import SI_IF
from repro.topology.clos import folded_clos


def test_io_style_mapping():
    assert io_style_for(None) is IOStyle.NONE
    assert io_style_for(SERDES_IO) is IOStyle.PERIPHERY
    assert io_style_for(OPTICAL_IO) is IOStyle.PERIPHERY
    assert io_style_for(AREA_IO) is IOStyle.AREA


def test_area_check(small_clos):
    # 12 chiplets x 800 mm2 = 9600 mm2; a 90 mm substrate (8100) fails.
    point = evaluate_design(90.0, small_clos, SI_IF, None, limits=AREA_ONLY)
    assert not point.feasible
    assert point.constraints.binding_constraints() == ["area"]


def test_area_check_passes_at_100mm(small_clos):
    point = evaluate_design(100.0, small_clos, SI_IF, None, limits=AREA_ONLY)
    assert point.feasible


def test_external_capacity_check(small_clos):
    # 1024 ports on SerDes at 100 mm: requires 2*1024*200*2 = 819.2 Tbps
    # against 204.8 Tbps -> infeasible.
    point = evaluate_design(100.0, small_clos, SI_IF, SERDES_IO)
    assert not point.feasible
    assert "external-bandwidth" in point.constraints.binding_constraints()


def test_internal_check_runs_only_after_cheap_checks(small_clos):
    point = evaluate_design(90.0, small_clos, SI_IF, SERDES_IO)
    # Area fails, so no mapping should have been computed.
    assert point.mapping is None


def test_feasible_design_has_mapping_and_power(small_clos):
    point = evaluate_design(100.0, small_clos, SI_IF, OPTICAL_IO)
    assert point.feasible
    assert point.mapping is not None
    assert point.power.total_w > 0
    assert point.power_density_w_per_mm2 > 0


def test_power_density_cooling_constraint(small_clos):
    from repro.tech.cooling import CoolingSolution

    strict = CoolingSolution("strict", 0.01)
    point = evaluate_design(
        100.0,
        small_clos,
        SI_IF,
        OPTICAL_IO,
        limits=ConstraintLimits(cooling=strict),
    )
    assert not point.feasible
    assert "power-density" in point.constraints.binding_constraints()


def test_describe_mentions_feasibility(small_clos):
    point = evaluate_design(100.0, small_clos, SI_IF, OPTICAL_IO)
    assert "feasible" in point.describe()


def test_mapping_cache_hits_return_equal_defensive_copies(small_clos):
    from repro.mapping import store as mapping_store

    clear_mapping_cache()
    mapping_store.reset_stats()
    first = cached_mapping(small_clos, IOStyle.PERIPHERY)
    second = cached_mapping(small_clos, IOStyle.PERIPHERY)
    # Same mapping, distinct objects: callers can't corrupt the cache.
    assert first is not second
    assert first.placement.site_of == second.placement.site_of
    assert first.cost() == second.cost()
    assert mapping_store.stats_snapshot()["memo_hits"] >= 1


def test_mapping_cache_survives_caller_mutation(small_clos):
    clear_mapping_cache()
    first = cached_mapping(small_clos, IOStyle.PERIPHERY)
    pristine = list(first.placement.site_of)
    first.placement.swap_sites(0, 1)
    again = cached_mapping(small_clos, IOStyle.PERIPHERY)
    assert again.placement.site_of == pristine


def test_mapping_cache_distinguishes_io_style(small_clos):
    from repro.core import design

    clear_mapping_cache()
    periphery = cached_mapping(small_clos, IOStyle.PERIPHERY)
    area = cached_mapping(small_clos, IOStyle.AREA)
    assert periphery.io_style is IOStyle.PERIPHERY
    assert area.io_style is IOStyle.AREA
    assert len(design._MAPPING_CACHE) == 2


def test_invalid_substrate_rejected(small_clos):
    with pytest.raises(ValueError):
        evaluate_design(0.0, small_clos, SI_IF, None)
