"""Physical Clos vs mapped Clos (Fig 26)."""

import pytest

from repro.core.explorer import max_feasible_design
from repro.core.physical_clos import (
    evaluate_physical_clos,
    max_physical_clos_ports,
    wiring_area_mm2,
)
from repro.tech.chiplet import tomahawk5
from repro.tech.external_io import OPTICAL_IO
from repro.tech.wsi import SI_IF


def test_wiring_area_scales_with_hops():
    one = wiring_area_mm2(1000, 200.0, SI_IF, tomahawk5().side_mm)
    two = wiring_area_mm2(2000, 200.0, SI_IF, tomahawk5().side_mm)
    assert two == pytest.approx(2 * one)


def test_wiring_area_shrinks_with_density():
    dense = SI_IF.overdriven(4.0)
    assert wiring_area_mm2(1000, 200.0, dense, 28.0) < wiring_area_mm2(
        1000, 200.0, SI_IF, 28.0
    )


def test_physical_clos_feasibility_small():
    result = evaluate_physical_clos(200.0, 1024, SI_IF, OPTICAL_IO)
    assert result.feasible
    assert result.wiring_area_mm2 > 0


def test_physical_clos_lower_radix_than_mapped():
    """Fig 26: physical Clos always trails the mapped Clos."""
    mapped = max_feasible_design(
        200.0, wsi=SI_IF, external_io=OPTICAL_IO, mapping_restarts=1
    )
    physical = max_physical_clos_ports(200.0, SI_IF, OPTICAL_IO)
    assert physical < mapped.n_ports


def test_physical_clos_power_overhead_positive():
    """Fig 26c: ~10% power overhead at iso-radix."""
    from repro.core.design import evaluate_design
    from repro.topology.clos import folded_clos

    physical = evaluate_physical_clos(200.0, 1024, SI_IF, OPTICAL_IO)
    mapped = evaluate_design(
        200.0, folded_clos(1024), SI_IF, OPTICAL_IO, mapping_restarts=1
    )
    overhead = physical.power.total_w / mapped.power.total_w - 1.0
    assert 0.02 < overhead < 0.35


def test_infeasible_when_wiring_exceeds_substrate():
    result = evaluate_physical_clos(100.0, 2048, SI_IF, OPTICAL_IO)
    assert not result.feasible
