"""Power accounting (Figs 10, 11, 13)."""

import pytest

from repro.core.design import cached_mapping
from repro.core.power_breakdown import (
    PowerBreakdown,
    external_io_power_w,
    internal_io_power_w,
    power_breakdown,
)
from repro.mapping.routing import IOStyle
from repro.tech.external_io import OPTICAL_IO, SERDES_IO
from repro.tech.wsi import SI_IF
from repro.topology.clos import folded_clos


def test_breakdown_total():
    breakdown = PowerBreakdown(100.0, 20.0, 30.0)
    assert breakdown.total_w == 150.0
    assert breakdown.io_fraction == pytest.approx(1.0 / 3.0)


def test_scaled_core_keeps_io():
    breakdown = PowerBreakdown(100.0, 20.0, 30.0).scaled_core(50.0)
    assert breakdown.total_w == 100.0
    assert breakdown.internal_io_w == 20.0


def test_internal_io_power_formula():
    # 1000 channel-hops x 200G x 0.3 pJ/bit, both directions.
    expected = 2 * 1000 * 200.0 * 0.3 / 1000.0
    assert internal_io_power_w(1000, 200.0, SI_IF) == pytest.approx(expected)


def test_external_io_power_formula():
    # 1024 ports x 200G x 5 pJ/bit = 1.024 kW
    assert external_io_power_w(1024, 200.0, OPTICAL_IO) == pytest.approx(1024.0)


def test_external_io_none_is_zero():
    assert external_io_power_w(1024, 200.0, None) == 0.0


def test_serdes_costs_more_per_bit_than_optical():
    assert external_io_power_w(512, 200.0, SERDES_IO) > external_io_power_w(
        512, 200.0, OPTICAL_IO
    )


def test_breakdown_core_sums_chiplets(small_clos):
    breakdown = power_breakdown(small_clos, None, SI_IF, OPTICAL_IO)
    assert breakdown.ssc_core_w == pytest.approx(12 * 400.0)


def test_breakdown_with_mapping_uses_hops(small_clos):
    mapping = cached_mapping(small_clos, IOStyle.PERIPHERY)
    with_mapping = power_breakdown(small_clos, mapping, SI_IF, OPTICAL_IO)
    without = power_breakdown(small_clos, None, SI_IF, OPTICAL_IO)
    # Mapped hops exceed the 1-hop lower bound used without a mapping.
    assert with_mapping.internal_io_w > without.internal_io_w


def test_density(small_clos):
    breakdown = power_breakdown(small_clos, None, SI_IF, OPTICAL_IO)
    assert breakdown.density_w_per_mm2(10000.0) == pytest.approx(
        breakdown.total_w / 10000.0
    )
