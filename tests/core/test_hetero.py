"""Heterogeneous switch optimization (Section V.B, Fig 16)."""

import pytest

from repro.core.design import evaluate_design
from repro.core.explorer import max_feasible_design
from repro.core.hetero import apply_heterogeneity, leaf_core_power_w
from repro.tech.external_io import OPTICAL_IO
from repro.tech.wsi import SI_IF, SI_IF_OVERDRIVEN
from repro.topology.clos import folded_clos


@pytest.fixture(scope="module")
def design_200mm():
    return max_feasible_design(
        200.0, wsi=SI_IF_OVERDRIVEN, external_io=OPTICAL_IO, mapping_restarts=1
    )


def test_radix_preserved(design_200mm):
    hetero = apply_heterogeneity(design_200mm, leaf_split=4)
    assert hetero.base.n_ports == design_200mm.n_ports


def test_power_reduction_in_paper_band(design_200mm):
    """Paper: 30.8 %-33.5 % total reduction with quarter-capacity leaves."""
    hetero = apply_heterogeneity(design_200mm, leaf_split=4)
    assert 0.25 <= hetero.power_reduction_fraction <= 0.40


def test_io_power_unchanged(design_200mm):
    """Heterogeneity only reduces SSC core power (paper, Section V.B)."""
    hetero = apply_heterogeneity(design_200mm, leaf_split=4)
    assert hetero.power.internal_io_w == design_200mm.power.internal_io_w
    assert hetero.power.external_io_w == design_200mm.power.external_io_w


def test_split2_saves_less_than_split4(design_200mm):
    half = apply_heterogeneity(design_200mm, leaf_split=2)
    quarter = apply_heterogeneity(design_200mm, leaf_split=4)
    assert quarter.power.total_w < half.power.total_w < design_200mm.power.total_w


def test_density_drops_into_water_envelope(design_200mm):
    """Fig 16: the optimized design fits water cooling."""
    hetero = apply_heterogeneity(design_200mm, leaf_split=4)
    assert design_200mm.power_density_w_per_mm2 > 0.5
    assert hetero.power_density_w_per_mm2 <= 0.5
    assert hetero.cooling.name == "Water"


def test_leaf_core_power(design_200mm):
    leaf_power = leaf_core_power_w(design_200mm)
    total_core = design_200mm.power.ssc_core_w
    assert leaf_power == pytest.approx(total_core * 2.0 / 3.0)


def test_hop_latency_overhead_documented(design_200mm):
    hetero = apply_heterogeneity(design_200mm)
    assert hetero.hop_latency_overhead == pytest.approx(0.01)


def test_rejects_non_clos_design():
    from repro.core.constraints import AREA_ONLY
    from repro.topology.mesh import direct_mesh

    mesh_design = evaluate_design(
        200.0, direct_mesh(4, 4), SI_IF, OPTICAL_IO, limits=AREA_ONLY
    )
    with pytest.raises(ValueError, match="leaf and spine roles"):
        apply_heterogeneity(mesh_design)
