"""Cost model (Section VIII.B)."""

import pytest

from repro.core.costs import (
    compare_costs,
    optics_cost_usd,
    space_cost_usd_per_year,
)
from repro.core.use_cases import dcn_comparison


def test_optics_cost_dominated_by_transceivers():
    cost = optics_cost_usd(1000)
    assert cost > 1000 * 2 * 5000.0
    assert cost < 1000 * 2 * 5000.0 * 1.01


def test_space_cost_range():
    low, high = space_cost_usd_per_year(100)
    assert low == pytest.approx(100 * 75 * 12)
    assert high == pytest.approx(100 * 300 * 12)
    assert low < high


def test_dcn_savings_positive_and_large():
    """Paper: millions (to hundreds of millions) of dollars saved."""
    comparison = dcn_comparison(racks=16384)
    costs = compare_costs(comparison)
    assert costs.optics_savings_usd > 100e6
    low, high = costs.total_first_year_savings_usd
    assert high >= low > 100e6


def test_space_savings_positive():
    costs = compare_costs(dcn_comparison(racks=8192))
    low, high = costs.space_savings_usd_per_year
    assert high >= low > 0
