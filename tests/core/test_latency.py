"""On-wafer latency statistics (Section III.C)."""

import pytest

from repro.core.design import cached_mapping
from repro.core.latency import (
    disaggregation_hop_overhead,
    latency_report,
    switch_network_traversal_ns,
)
from repro.mapping.routing import IOStyle
from repro.topology.clos import folded_clos


@pytest.fixture(scope="module")
def mapping_2048():
    return cached_mapping(folded_clos(2048), IOStyle.PERIPHERY)


def test_report_fields_consistent(mapping_2048):
    report = latency_report(mapping_2048)
    assert report.max_link_hops >= report.mean_link_hops > 0
    assert report.max_link_latency_ns == report.max_link_hops * 1.0


def test_worst_case_bound_holds(mapping_2048):
    """Section III.C: worst-case latency <= 2N ns on an NxN array."""
    report = latency_report(mapping_2048)
    assert report.max_link_hops <= report.worst_case_bound_hops


def test_traversal_is_two_link_hops(mapping_2048):
    report = latency_report(mapping_2048)
    assert report.mean_switch_traversal_hops == pytest.approx(
        2.0 * report.mean_link_hops, rel=0.05
    )


def test_on_wafer_traversal_beats_discrete_network(mapping_2048):
    """Table V: on-wafer traversal is far faster than PCB-linked boxes."""
    report = latency_report(mapping_2048)
    assert report.mean_switch_traversal_ns < switch_network_traversal_ns() / 10


def test_disaggregation_overhead_about_one_percent(mapping_2048):
    """Section V.B: disaggregation adds ~1% average hop latency."""
    overhead = disaggregation_hop_overhead(mapping_2048)
    assert 0.002 < overhead < 0.1


def test_custom_hop_latency_scales(mapping_2048):
    slow = latency_report(mapping_2048, hop_latency_ns=2.0)
    fast = latency_report(mapping_2048, hop_latency_ns=1.0)
    assert slow.max_link_latency_ns == pytest.approx(
        2.0 * fast.max_link_latency_ns
    )


def test_switch_network_traversal_value():
    # 2 levels x 2 links x 150 ns midpoint = 600 ns
    assert switch_network_traversal_ns() == pytest.approx(600.0)
