"""Wafer grid geometry."""

import pytest

from repro.mapping.grid import WaferGrid, grid_for


def test_sites_count():
    assert WaferGrid(3, 4).sites == 12


def test_edge_counts():
    grid = WaferGrid(3, 4)
    assert grid.horizontal_edges == 3 * 3
    assert grid.vertical_edges == 2 * 4
    assert grid.edge_count == 17


def test_position_roundtrip():
    grid = WaferGrid(5, 7)
    for site in range(grid.sites):
        r, c = grid.position(site)
        assert grid.site(r, c) == site


def test_position_out_of_range():
    with pytest.raises(ValueError):
        WaferGrid(2, 2).position(4)


def test_manhattan_distance():
    grid = WaferGrid(5, 5)
    assert grid.manhattan(grid.site(0, 0), grid.site(3, 4)) == 7
    assert grid.manhattan(grid.site(2, 2), grid.site(2, 2)) == 0


def test_boundary_distance():
    grid = WaferGrid(5, 5)
    assert grid.boundary_distance(grid.site(0, 0)) == 0
    assert grid.boundary_distance(grid.site(2, 2)) == 2
    assert grid.boundary_distance(grid.site(1, 3)) == 1


def test_boundary_sites_ring():
    grid = WaferGrid(4, 4)
    assert len(grid.boundary_sites()) == 12  # 16 - 4 interior


def test_neighbors_interior():
    grid = WaferGrid(3, 3)
    assert sorted(grid.neighbors(grid.site(1, 1))) == [1, 3, 5, 7]


def test_neighbors_corner():
    grid = WaferGrid(3, 3)
    assert sorted(grid.neighbors(0)) == [1, 3]


def test_sites_by_centrality_boundary_first():
    grid = WaferGrid(5, 5)
    ordered = grid.sites_by_centrality()
    distances = [grid.boundary_distance(s) for s in ordered]
    assert distances == sorted(distances)


def test_grid_for_near_square():
    grid = grid_for(24)
    assert grid.sites >= 24
    assert abs(grid.rows - grid.cols) <= 1


def test_grid_for_exact_square():
    grid = grid_for(25)
    assert (grid.rows, grid.cols) == (5, 5)


def test_grid_for_single():
    assert grid_for(1).sites == 1


def test_grid_for_rejects_zero():
    with pytest.raises(ValueError):
        grid_for(0)
