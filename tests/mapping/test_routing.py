"""XY routing and edge-load accounting."""

import pytest

from repro.mapping.grid import WaferGrid
from repro.mapping.placement import initial_placement
from repro.mapping.routing import (
    EdgeLoads,
    IOStyle,
    available_bandwidth_per_port_gbps,
    boundary_path_edges,
    compute_edge_loads,
    xy_path_edges,
)
from repro.topology.clos import folded_clos


def test_xy_path_length_is_manhattan():
    grid = WaferGrid(6, 6)
    for a in (0, 7, 14):
        for b in (35, 20, 3):
            edges = list(xy_path_edges(grid, a, b))
            assert len(edges) == grid.manhattan(a, b)


def test_xy_path_same_site_empty():
    grid = WaferGrid(4, 4)
    assert list(xy_path_edges(grid, 5, 5)) == []


def test_xy_path_horizontal_then_vertical():
    grid = WaferGrid(4, 4)
    edges = list(xy_path_edges(grid, grid.site(0, 0), grid.site(2, 2)))
    kinds = [k for k, _, _ in edges]
    assert kinds == ["h", "h", "v", "v"]


def test_boundary_path_empty_on_boundary():
    grid = WaferGrid(5, 5)
    for site in grid.boundary_sites():
        assert list(boundary_path_edges(grid, site)) == []


def test_boundary_path_length_is_boundary_distance():
    grid = WaferGrid(7, 7)
    for site in range(grid.sites):
        edges = list(boundary_path_edges(grid, site))
        assert len(edges) == grid.boundary_distance(site)


def test_edge_loads_add_and_max():
    grid = WaferGrid(3, 3)
    loads = EdgeLoads(grid=grid)
    loads.add_edge(("h", 0, 0), 5)
    loads.add_edge(("v", 1, 2), 7)
    assert loads.max_edge_channels == 7
    assert loads.total_channel_hops == 12


def test_compute_edge_loads_conservation(small_clos):
    """Total channel-hops equals sum over links of channels x distance."""
    placement = initial_placement(small_clos)
    loads = compute_edge_loads(placement, IOStyle.NONE)
    expected = sum(
        link.channels
        * placement.grid.manhattan(
            placement.site_of[link.a], placement.site_of[link.b]
        )
        for link in small_clos.links
    )
    assert loads.total_channel_hops == expected


def test_periphery_adds_external_load(small_clos):
    placement = initial_placement(small_clos, strategy="random")
    none_loads = compute_edge_loads(placement, IOStyle.NONE)
    periphery_loads = compute_edge_loads(placement, IOStyle.PERIPHERY)
    assert periphery_loads.total_channel_hops >= none_loads.total_channel_hops


def test_area_io_equals_none_loads(small_clos):
    placement = initial_placement(small_clos)
    area = compute_edge_loads(placement, IOStyle.AREA)
    none = compute_edge_loads(placement, IOStyle.NONE)
    assert area.total_channel_hops == none.total_channel_hops


def test_available_bandwidth_inverse_of_load():
    from repro.mapping.routing import USABLE_EDGE_CAPACITY_FRACTION

    grid = WaferGrid(2, 2)
    loads = EdgeLoads(grid=grid)
    loads.add_edge(("h", 0, 0), 100)
    assert available_bandwidth_per_port_gbps(loads, 90000.0, 200.0) == pytest.approx(
        USABLE_EDGE_CAPACITY_FRACTION * 90000.0 / 100
    )
    assert available_bandwidth_per_port_gbps(
        loads, 90000.0, 200.0, capacity_fraction=0.5
    ) == pytest.approx(450.0)


def test_available_bandwidth_infinite_when_unloaded():
    loads = EdgeLoads(grid=WaferGrid(2, 2))
    assert available_bandwidth_per_port_gbps(loads, 90000.0, 200.0) == float("inf")


def test_loads_copy_independent():
    grid = WaferGrid(2, 2)
    loads = EdgeLoads(grid=grid)
    loads.add_edge(("h", 0, 0), 1)
    clone = loads.copy()
    clone.add_edge(("h", 0, 0), 1)
    assert loads.max_edge_channels == 1
    assert clone.max_edge_channels == 2
