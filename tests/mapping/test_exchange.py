"""Pairwise exchange optimization (Algorithm 1)."""

import random

import pytest

from repro.mapping.exchange import optimize_mapping, pairwise_exchange
from repro.mapping.grid import grid_for
from repro.mapping.placement import initial_placement
from repro.mapping.routing import IOStyle, compute_edge_loads
from repro.topology.clos import folded_clos


@pytest.fixture(scope="module")
def clos_1024():
    return folded_clos(1024)


def test_exchange_never_worse_than_start(clos_1024):
    start = initial_placement(
        clos_1024, strategy="random", rng=random.Random(11)
    )
    before = compute_edge_loads(start, IOStyle.PERIPHERY).max_edge_channels
    result = pairwise_exchange(start, IOStyle.PERIPHERY)
    assert result.max_edge_channels <= before


def test_exchange_beats_random_substantially(clos_1024):
    """Fig 5: optimized mapping has far lower worst-edge load."""
    start = initial_placement(
        clos_1024, strategy="random", rng=random.Random(5)
    )
    before = compute_edge_loads(start, IOStyle.PERIPHERY).max_edge_channels
    result = pairwise_exchange(start, IOStyle.PERIPHERY)
    assert result.max_edge_channels <= before * 0.8


def test_incremental_loads_match_full_recompute(clos_1024):
    """The optimizer's incremental accounting must equal a fresh pass."""
    result = optimize_mapping(clos_1024, restarts=1)
    fresh = compute_edge_loads(result.placement, IOStyle.PERIPHERY)
    assert fresh.max_edge_channels == result.max_edge_channels
    assert fresh.total_channel_hops == result.total_channel_hops
    result.loads.assert_non_negative()


def test_incremental_loads_match_for_area_io(clos_1024):
    result = optimize_mapping(clos_1024, io_style=IOStyle.AREA, restarts=1)
    fresh = compute_edge_loads(result.placement, IOStyle.AREA)
    assert fresh.total_channel_hops == result.total_channel_hops


def test_optimize_deterministic_given_seed(clos_1024):
    r1 = optimize_mapping(clos_1024, restarts=2, seed=9)
    r2 = optimize_mapping(clos_1024, restarts=2, seed=9)
    assert r1.cost() == r2.cost()
    assert r1.placement.site_of == r2.placement.site_of


def test_more_restarts_never_hurt(clos_1024):
    r1 = optimize_mapping(clos_1024, restarts=1, seed=0)
    r2 = optimize_mapping(clos_1024, restarts=3, seed=0)
    assert r2.cost() <= r1.cost()


def test_paper_milestone_2048_feasible_at_3200():
    """Fig 19: 2048-port Clos meets 200G/port at 3200 Gbps/mm."""
    from repro.mapping.routing import available_bandwidth_per_port_gbps
    from repro.tech.chiplet import tomahawk5
    from repro.tech.wsi import SI_IF

    topo = folded_clos(2048)
    result = optimize_mapping(topo, restarts=2)
    available = available_bandwidth_per_port_gbps(
        result.loads,
        SI_IF.edge_capacity_gbps(tomahawk5().side_mm),
        200.0,
    )
    assert available >= 200.0


def test_grid_too_small_raises(clos_1024):
    with pytest.raises(ValueError):
        optimize_mapping(clos_1024, grid=grid_for(4))


def test_mapping_result_reports_sweeps(clos_1024):
    result = optimize_mapping(clos_1024, restarts=1)
    assert result.sweeps >= 1
    assert result.swaps_accepted >= 0
