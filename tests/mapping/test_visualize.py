"""ASCII visualization of mappings."""

from repro.core.design import cached_mapping
from repro.mapping.routing import IOStyle
from repro.mapping.visualize import describe_mapping, placement_map, utilization_map
from repro.topology.clos import folded_clos


def _mapping():
    return cached_mapping(folded_clos(1024), IOStyle.PERIPHERY)


def test_placement_map_dimensions():
    mapping = _mapping()
    lines = placement_map(mapping).splitlines()
    grid = mapping.placement.grid
    assert len(lines) == grid.rows
    assert all(len(line.split()) == grid.cols for line in lines)


def test_placement_map_role_counts():
    mapping = _mapping()
    rendered = placement_map(mapping)
    topology = mapping.placement.topology
    assert rendered.count("L") == len(topology.leaves())
    assert rendered.count("S") == len(topology.spines())


def test_utilization_map_has_legend():
    rendered = utilization_map(_mapping())
    assert "shade scale" in rendered


def test_utilization_map_peaks_at_full_shade():
    rendered = utilization_map(_mapping())
    assert "@" in rendered  # the worst edge renders at full shade


def test_describe_mapping_combines_views():
    mapping = _mapping()
    described = describe_mapping(mapping)
    assert "placement" in described
    assert "edge utilization" in described
    assert str(mapping.max_edge_channels) in described
