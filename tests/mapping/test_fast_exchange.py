"""Fast/scalar kernel equivalence and the parallel-restart dispatcher."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapping.exchange import (
    mapping_engine_tag,
    optimize_mapping,
    pairwise_exchange,
)
from repro.mapping.fast_exchange import _expand_runs, pairwise_exchange_fast
from repro.mapping.grid import WaferGrid, grid_for
from repro.mapping.placement import initial_placement
from repro.mapping.routing import IOStyle, compute_edge_loads
from repro.tech.chiplet import SubSwitchChiplet
from repro.topology.clos import folded_clos

import numpy as np


@pytest.fixture(scope="module")
def clos_1024():
    return folded_clos(1024)


def _small_ssc(radix: int) -> SubSwitchChiplet:
    return SubSwitchChiplet(
        name=f"test-{radix}",
        radix=radix,
        port_bandwidth_gbps=200.0,
        area_mm2=100.0,
        core_power_w=50.0,
    )


def _both_kernels(topology, grid, seed, strategy, io_style):
    """Run scalar and fast (no escalation) from the same start."""
    start_a = initial_placement(
        topology, grid, strategy=strategy, rng=random.Random(seed)
    )
    start_b = start_a.copy()
    swaps_a, swaps_b = [], []
    scalar = pairwise_exchange(start_a, io_style, record_swaps=swaps_a)
    fast = pairwise_exchange_fast(
        start_b, io_style, escalate=False, record_swaps=swaps_b
    )
    return scalar, fast, swaps_a, swaps_b


def test_expand_runs_matches_naive():
    start = np.array([3, 10, 0, 7], dtype=np.int64)
    step = np.array([1, 4, 1, 2], dtype=np.int64)
    length = np.array([3, 2, 0, 4], dtype=np.int64)
    ids, run_of = _expand_runs(start, step, length)
    expect_ids, expect_runs = [], []
    for run, (s, t, n) in enumerate(zip(start, step, length)):
        for k in range(n):
            expect_ids.append(s + k * t)
            expect_runs.append(run)
    assert ids.tolist() == expect_ids
    assert run_of.tolist() == expect_runs


def test_expand_runs_all_empty():
    ids, run_of = _expand_runs(
        np.array([5], dtype=np.int64),
        np.array([1], dtype=np.int64),
        np.array([0], dtype=np.int64),
    )
    assert ids.size == 0 and run_of.size == 0


@pytest.mark.parametrize("io_style", [IOStyle.PERIPHERY, IOStyle.AREA])
@pytest.mark.parametrize("strategy", ["random", "leaves_out"])
def test_fast_replays_scalar_swap_sequence(clos_1024, io_style, strategy):
    grid = grid_for(clos_1024.chiplet_count)
    scalar, fast, swaps_a, swaps_b = _both_kernels(
        clos_1024, grid, seed=3, strategy=strategy, io_style=io_style
    )
    assert swaps_a == swaps_b
    assert scalar.placement.site_of == fast.placement.site_of
    assert scalar.cost() == fast.cost()
    assert (scalar.loads.h == fast.loads.h).all()
    assert (scalar.loads.v == fast.loads.v).all()
    assert scalar.sweeps == fast.sweeps
    assert scalar.swaps_accepted == fast.swaps_accepted


@given(
    k=st.sampled_from([4, 8]),
    m=st.integers(min_value=2, max_value=6),
    spare_rows=st.integers(min_value=0, max_value=2),
    seed=st.integers(min_value=0, max_value=10_000),
    io_style=st.sampled_from([IOStyle.PERIPHERY, IOStyle.AREA, IOStyle.NONE]),
)
@settings(max_examples=25, deadline=None)
def test_fast_equals_scalar_on_random_instances(k, m, spare_rows, seed, io_style):
    """Property: identical cost AND accepted-swap sequence everywhere."""
    topology = folded_clos(k * m, ssc=_small_ssc(k))
    base = grid_for(topology.chiplet_count)
    grid = WaferGrid(base.rows + spare_rows, base.cols)
    scalar, fast, swaps_a, swaps_b = _both_kernels(
        topology, grid, seed=seed, strategy="random", io_style=io_style
    )
    assert swaps_a == swaps_b
    assert scalar.cost() == fast.cost()
    assert scalar.placement.site_of == fast.placement.site_of


@given(
    k=st.sampled_from([4, 8]),
    m=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_escalation_never_worse_and_loads_consistent(k, m, seed):
    """Escalated fast runs may only improve on the scalar cost, and
    their incremental load accounting must match a fresh recompute."""
    topology = folded_clos(k * m, ssc=_small_ssc(k))
    grid = grid_for(topology.chiplet_count)
    start_a = initial_placement(
        topology, grid, strategy="random", rng=random.Random(seed)
    )
    start_b = start_a.copy()
    scalar = pairwise_exchange(start_a, IOStyle.PERIPHERY)
    fast = pairwise_exchange_fast(start_b, IOStyle.PERIPHERY, escalate=True)
    assert fast.cost() <= scalar.cost()
    fresh = compute_edge_loads(fast.placement, IOStyle.PERIPHERY)
    assert fresh.max_edge_channels == fast.max_edge_channels
    assert fresh.total_channel_hops == fast.total_channel_hops


def test_scalar_escape_hatch_forces_oracle(clos_1024, monkeypatch):
    monkeypatch.setenv("REPRO_SCALAR_MAPPING", "1")
    assert mapping_engine_tag() == "scalar"
    via_env = optimize_mapping(clos_1024, restarts=2, seed=4)
    monkeypatch.delenv("REPRO_SCALAR_MAPPING")
    assert mapping_engine_tag() == "fast-esc"
    fast = optimize_mapping(clos_1024, restarts=2, seed=4)
    # The fast engine must be at least as good; on this instance it
    # lands on the same optimum from the same starts.
    assert fast.cost() <= via_env.cost()


def test_parallel_restarts_match_serial(clos_1024):
    serial = optimize_mapping(clos_1024, restarts=4, seed=7, jobs=1)
    parallel = optimize_mapping(clos_1024, restarts=4, seed=7, jobs=2)
    assert serial.cost() == parallel.cost()
    assert serial.placement.site_of == parallel.placement.site_of


def test_optimize_result_owns_its_placement(clos_1024):
    """Mutating a returned mapping cannot corrupt later optimizations."""
    first = optimize_mapping(clos_1024, restarts=1, seed=2)
    pristine = list(first.placement.site_of)
    first.placement.swap_sites(0, 1)
    again = optimize_mapping(clos_1024, restarts=1, seed=2)
    assert again.placement.site_of == pristine
