"""Persistent mapping store: round trips, keys, cross-process identity."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.mapping import store as mapping_store
from repro.mapping.exchange import optimize_mapping
from repro.mapping.grid import grid_for
from repro.mapping.routing import IOStyle
from repro.mapping.store import MappingStore, default_store, entry_key
from repro.topology.clos import folded_clos

PARAMS = {
    "restarts": 1,
    "seed": 0,
    "strategy": "mixed",
    "max_sweeps": 30,
    "engine": "fast-esc",
}


@pytest.fixture(scope="module")
def clos_1024():
    return folded_clos(1024)


def test_round_trip_is_bit_identical(tmp_path, clos_1024):
    store = MappingStore(tmp_path)
    grid = grid_for(clos_1024.chiplet_count)
    result = optimize_mapping(clos_1024, grid=grid, restarts=1)
    store.store(result, clos_1024, PARAMS)
    loaded = store.load(clos_1024, grid, IOStyle.PERIPHERY, PARAMS)
    assert loaded is not None
    assert loaded.placement.site_of == result.placement.site_of
    assert (loaded.loads.h == result.loads.h).all()
    assert (loaded.loads.v == result.loads.v).all()
    assert loaded.loads.total_channel_hops == result.loads.total_channel_hops
    assert loaded.cost() == result.cost()
    assert (loaded.sweeps, loaded.swaps_accepted) == (
        result.sweeps,
        result.swaps_accepted,
    )


def test_loads_are_fresh_objects_per_load(tmp_path, clos_1024):
    store = MappingStore(tmp_path)
    grid = grid_for(clos_1024.chiplet_count)
    result = optimize_mapping(clos_1024, grid=grid, restarts=1)
    store.store(result, clos_1024, PARAMS)
    first = store.load(clos_1024, grid, IOStyle.PERIPHERY, PARAMS)
    second = store.load(clos_1024, grid, IOStyle.PERIPHERY, PARAMS)
    first.placement.swap_sites(0, 1)
    assert second.placement.site_of != first.placement.site_of


def test_key_distinguishes_params_and_topology(clos_1024):
    grid = grid_for(clos_1024.chiplet_count)
    base = entry_key(clos_1024, grid, IOStyle.PERIPHERY, PARAMS)
    assert entry_key(clos_1024, grid, IOStyle.AREA, PARAMS) != base
    other_params = dict(PARAMS, restarts=2)
    assert entry_key(clos_1024, grid, IOStyle.PERIPHERY, other_params) != base
    other_topo = folded_clos(2048)
    other_grid = grid_for(other_topo.chiplet_count)
    assert entry_key(other_topo, other_grid, IOStyle.PERIPHERY, PARAMS) != base


def test_missing_and_corrupt_entries_load_as_none(tmp_path, clos_1024):
    store = MappingStore(tmp_path)
    grid = grid_for(clos_1024.chiplet_count)
    assert store.load(clos_1024, grid, IOStyle.PERIPHERY, PARAMS) is None
    path = store.entry_path(clos_1024, grid, IOStyle.PERIPHERY, PARAMS)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{not json")
    assert store.load(clos_1024, grid, IOStyle.PERIPHERY, PARAMS) is None


def test_clear_removes_entries(tmp_path, clos_1024):
    store = MappingStore(tmp_path)
    result = optimize_mapping(clos_1024, restarts=1)
    store.store(result, clos_1024, PARAMS)
    assert store.clear() == 1
    grid = grid_for(clos_1024.chiplet_count)
    assert store.load(clos_1024, grid, IOStyle.PERIPHERY, PARAMS) is None


def test_env_kill_switch_disables_store(monkeypatch):
    monkeypatch.setenv(mapping_store.STORE_ENV, "0")
    assert default_store() is None
    monkeypatch.delenv(mapping_store.STORE_ENV)
    assert default_store() is not None


_SUBPROCESS_SCRIPT = """
import json, sys
from repro.core.design import cached_mapping
from repro.mapping import store as mapping_store
from repro.mapping.routing import IOStyle
from repro.topology.clos import folded_clos

result = cached_mapping(folded_clos(1024), IOStyle.PERIPHERY)
print(json.dumps({
    "site_of": result.placement.site_of,
    "cost": list(result.cost()),
    "sweeps": result.sweeps,
    "stats": mapping_store.stats_snapshot(),
}))
"""


def test_two_fresh_processes_share_one_mapping(tmp_path):
    """Second process must fetch the first's mapping bit-identically."""
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(tmp_path)
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parents[2] / "src"
    ) + os.pathsep + env.get("PYTHONPATH", "")
    outputs = []
    for _ in range(2):
        proc = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.append(json.loads(proc.stdout))
    first, second = outputs
    assert first["site_of"] == second["site_of"]
    assert first["cost"] == second["cost"]
    assert first["sweeps"] == second["sweeps"]
    assert first["stats"]["optimized"] == 1
    assert first["stats"]["store_hits"] == 0
    assert second["stats"]["optimized"] == 0
    assert second["stats"]["store_hits"] == 1
