"""Placement construction and swapping."""

import random

import pytest

from repro.mapping.grid import WaferGrid
from repro.mapping.placement import EMPTY, Placement, initial_placement
from repro.topology.clos import folded_clos


def test_from_assignment_roundtrip(small_clos):
    grid = WaferGrid(4, 3)
    placement = Placement.from_assignment(
        grid, small_clos, list(range(small_clos.chiplet_count))
    )
    for node in range(small_clos.chiplet_count):
        assert placement.node_at[placement.site_of[node]] == node


def test_from_assignment_rejects_duplicates(small_clos):
    grid = WaferGrid(4, 3)
    sites = [0] * small_clos.chiplet_count
    with pytest.raises(ValueError):
        Placement.from_assignment(grid, small_clos, sites)


def test_from_assignment_rejects_wrong_length(small_clos):
    grid = WaferGrid(4, 3)
    with pytest.raises(ValueError):
        Placement.from_assignment(grid, small_clos, [0, 1])


def test_swap_occupied_sites(small_clos):
    placement = initial_placement(small_clos)
    site_a, site_b = placement.site_of[0], placement.site_of[1]
    placement.swap_sites(site_a, site_b)
    assert placement.site_of[0] == site_b
    assert placement.site_of[1] == site_a
    assert placement.node_at[site_b] == 0


def test_swap_with_empty_site():
    topo = folded_clos(1024)  # 12 chiplets on a 4x3=12... use bigger grid
    grid = WaferGrid(4, 4)
    placement = initial_placement(topo, grid)
    empty_sites = [s for s, n in enumerate(placement.node_at) if n == EMPTY]
    assert empty_sites
    old_site = placement.site_of[0]
    placement.swap_sites(old_site, empty_sites[0])
    assert placement.site_of[0] == empty_sites[0]
    assert placement.node_at[old_site] == EMPTY


def test_copy_is_independent(small_clos):
    placement = initial_placement(small_clos)
    clone = placement.copy()
    clone.swap_sites(0, 1)
    assert placement.node_at[0] != clone.node_at[0] or placement.node_at[1] != clone.node_at[1]


def test_random_strategy_deterministic_with_seed(small_clos):
    p1 = initial_placement(small_clos, strategy="random", rng=random.Random(3))
    p2 = initial_placement(small_clos, strategy="random", rng=random.Random(3))
    assert p1.site_of == p2.site_of


def test_leaves_out_places_leaves_on_boundary(small_clos):
    placement = initial_placement(small_clos, strategy="leaves_out")
    grid = placement.grid
    leaf_distances = [
        grid.boundary_distance(placement.site_of[n.index])
        for n in small_clos.leaves()
    ]
    spine_distances = [
        grid.boundary_distance(placement.site_of[n.index])
        for n in small_clos.spines()
    ]
    assert max(leaf_distances) <= max(spine_distances)


def test_unknown_strategy_rejected(small_clos):
    with pytest.raises(ValueError):
        initial_placement(small_clos, strategy="bogus")


def test_grid_too_small_rejected(small_clos):
    with pytest.raises(ValueError):
        initial_placement(small_clos, WaferGrid(2, 2))
