"""Property-based tests for routing/mapping (hypothesis)."""

import random

from hypothesis import given, settings, strategies as st

from repro.mapping.grid import WaferGrid
from repro.mapping.placement import initial_placement
from repro.mapping.routing import (
    IOStyle,
    boundary_path_edges,
    compute_edge_loads,
    xy_path_edges,
)
from repro.topology.clos import folded_clos

grids = st.tuples(
    st.integers(min_value=2, max_value=9), st.integers(min_value=2, max_value=9)
).map(lambda rc: WaferGrid(*rc))


@given(grids, st.data())
@settings(max_examples=40, deadline=None)
def test_xy_path_connects_endpoints(grid, data):
    """Walking the XY edges from src must land exactly on dst."""
    src = data.draw(st.integers(min_value=0, max_value=grid.sites - 1))
    dst = data.draw(st.integers(min_value=0, max_value=grid.sites - 1))
    r, c = grid.position(src)
    for kind, er, ec in xy_path_edges(grid, src, dst):
        if kind == "h":
            assert er == r and ec in (c - 1, c)
            c = ec + 1 if ec == c else ec
        else:
            assert ec == c and er in (r - 1, r)
            r = er + 1 if er == r else er
    assert (r, c) == grid.position(dst)


@given(grids, st.data())
@settings(max_examples=40, deadline=None)
def test_boundary_path_reaches_site(grid, data):
    site = data.draw(st.integers(min_value=0, max_value=grid.sites - 1))
    edges = list(boundary_path_edges(grid, site))
    assert len(edges) == grid.boundary_distance(site)
    if edges:
        # The final edge must touch the site itself.
        kind, er, ec = edges[-1]
        r, c = grid.position(site)
        if kind == "v":
            assert ec == c and er in (r - 1, r)
        else:
            assert er == r and ec in (c - 1, c)


@given(
    st.sampled_from([512, 1024, 1536]),
    st.integers(min_value=0, max_value=100),
    st.data(),
)
@settings(max_examples=25, deadline=None)
def test_placement_inversion_and_swap_round_trip(n_ports, seed, data):
    """site_of/node_at stay mutually inverse; swapping twice is identity."""
    from repro.mapping.placement import EMPTY

    topo = folded_clos(n_ports)
    placement = initial_placement(
        topo, strategy="random", rng=random.Random(seed)
    )
    before_site_of = list(placement.site_of)
    before_node_at = list(placement.node_at)
    a = data.draw(
        st.integers(min_value=0, max_value=placement.grid.sites - 1), label="a"
    )
    b = data.draw(
        st.integers(min_value=0, max_value=placement.grid.sites - 1), label="b"
    )
    placement.swap_sites(a, b)
    for node, site in enumerate(placement.site_of):
        assert placement.node_at[site] == node
    for site, node in enumerate(placement.node_at):
        if node != EMPTY:
            assert placement.site_of[node] == site
    placement.swap_sites(a, b)
    assert placement.site_of == before_site_of
    assert placement.node_at == before_node_at


@given(
    st.sampled_from([512, 1024, 1536]),
    st.integers(min_value=0, max_value=100),
    st.sampled_from(list(IOStyle)),
)
@settings(max_examples=15, deadline=None)
def test_edge_loads_non_negative_and_conserved(n_ports, seed, io_style):
    topo = folded_clos(n_ports)
    placement = initial_placement(
        topo, strategy="random", rng=random.Random(seed)
    )
    loads = compute_edge_loads(placement, io_style)
    loads.assert_non_negative()
    link_hops = sum(
        link.channels
        * placement.grid.manhattan(
            placement.site_of[link.a], placement.site_of[link.b]
        )
        for link in topo.links
    )
    if io_style is IOStyle.PERIPHERY:
        external_hops = sum(
            node.external_ports
            * placement.grid.boundary_distance(placement.site_of[node.index])
            for node in topo.nodes
        )
    else:
        external_hops = 0
    assert loads.total_channel_hops == link_hops + external_hops
