"""WSI technology models (Table I, Section V.A)."""

import pytest

from repro.tech.wsi import (
    INFO_SOW,
    SI_IF,
    SI_IF_OVERDRIVEN,
    SILICON_INTERPOSER,
    WSI_TECHNOLOGIES,
    WSITechnology,
)


def test_si_if_baseline_density_is_3200():
    assert SI_IF.bandwidth_density_gbps_per_mm == pytest.approx(3200.0)


def test_overdriven_density_doubles():
    assert SI_IF_OVERDRIVEN.bandwidth_density_gbps_per_mm == pytest.approx(6400.0)


def test_overdrive_energy_penalty_superlinear():
    """Doubling link bandwidth via Vdd must cost >2x energy per bit."""
    ratio = SI_IF_OVERDRIVEN.energy_pj_per_bit / SI_IF.energy_pj_per_bit
    assert 2.0 < ratio < 3.0


def test_info_sow_is_12800():
    assert INFO_SOW.bandwidth_density_gbps_per_mm == pytest.approx(12800.0)


def test_info_sow_higher_energy_than_si_if():
    assert INFO_SOW.energy_pj_per_bit > SI_IF.energy_pj_per_bit


def test_interposer_limited_substrate():
    """Table I: silicon interposers cap out near 8.5 cm^2."""
    assert SILICON_INTERPOSER.max_substrate_mm < 50


def test_edge_capacity_scales_with_edge_length():
    assert SI_IF.edge_capacity_gbps(28.0) == pytest.approx(28.0 * 3200.0)


def test_edge_capacity_rejects_non_positive():
    with pytest.raises(ValueError):
        SI_IF.edge_capacity_gbps(0.0)


def test_overdriven_name_tagged():
    assert "overdrive" in SI_IF_OVERDRIVEN.name


def test_registry_contains_all():
    assert {"Si-IF", "InFO-SoW", "Silicon interposer"} <= set(WSI_TECHNOLOGIES)


def test_invalid_layers_rejected():
    with pytest.raises(ValueError):
        WSITechnology(
            name="bad",
            bandwidth_density_gbps_per_mm_per_layer=100.0,
            signal_layers=0,
            energy_pj_per_bit=1.0,
            hop_latency_ns=1.0,
            io_pitch_um=4.0,
            max_substrate_mm=300.0,
        )


def test_overdrive_is_monotone_in_multiplier():
    e2 = SI_IF.overdriven(2.0).energy_pj_per_bit
    e4 = SI_IF.overdriven(4.0).energy_pj_per_bit
    assert e4 > e2 > SI_IF.energy_pj_per_bit


def test_overdrive_identity_multiplier():
    same = SI_IF.overdriven(1.0)
    assert same.energy_pj_per_bit == pytest.approx(SI_IF.energy_pj_per_bit)
    assert same.bandwidth_density_gbps_per_mm == pytest.approx(
        SI_IF.bandwidth_density_gbps_per_mm
    )
