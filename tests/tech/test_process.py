"""Process-node normalization (Fig 15 methodology)."""

import pytest

from repro.tech.process import (
    SUPPORTED_NODES_NM,
    energy_factor,
    normalize_power_to_node,
)


def test_5nm_is_reference():
    assert energy_factor(5) == 1.0


def test_older_nodes_cost_more_energy():
    factors = [energy_factor(node) for node in sorted(SUPPORTED_NODES_NM)]
    assert factors == sorted(factors)
    assert energy_factor(180) > energy_factor(28) > energy_factor(7) > energy_factor(5)


def test_normalize_down_reduces_power():
    assert normalize_power_to_node(400.0, 16, 5) < 400.0


def test_normalize_identity():
    assert normalize_power_to_node(123.0, 7, 7) == pytest.approx(123.0)


def test_normalize_roundtrip():
    down = normalize_power_to_node(400.0, 16, 5)
    back = normalize_power_to_node(down, 5, 16)
    assert back == pytest.approx(400.0)


def test_unknown_node_rejected():
    with pytest.raises(ValueError, match="unsupported process node"):
        energy_factor(6)


def test_negative_power_rejected():
    with pytest.raises(ValueError):
        normalize_power_to_node(-1.0, 7, 5)
