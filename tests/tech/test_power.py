"""Power scaling laws (Section V)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.tech.power import (
    link_energy_scaling,
    quadratic_power_fit,
    solve_vdd_for_bandwidth,
    switch_core_power,
)


def test_th5_anchor_point():
    assert switch_core_power(256) == pytest.approx(400.0)


def test_half_radix_quarter_power():
    """Quadratic law: half the radix is a quarter of the power."""
    assert switch_core_power(128) == pytest.approx(100.0)


def test_disaggregation_power_halving():
    """Two half-radix dies burn half a full-radix die (Section V.B)."""
    assert 2 * switch_core_power(128) == pytest.approx(switch_core_power(256) / 2)


def test_quarter_split_power_quarter():
    """Four quarter-radix dies burn 1/4 of the original leaf."""
    assert 4 * switch_core_power(64) == pytest.approx(switch_core_power(256) / 4)


def test_custom_reference():
    assert switch_core_power(64, reference_power_w=100.0, reference_radix=64) == 100.0


def test_rejects_zero_radix():
    with pytest.raises(ValueError):
        switch_core_power(0)


def test_quadratic_fit_exact_data():
    radixes = [64, 128, 256]
    powers = [0.01 * k * k for k in radixes]
    a, rms = quadratic_power_fit(radixes, powers)
    assert a == pytest.approx(0.01)
    assert rms == pytest.approx(0.0, abs=1e-12)


def test_quadratic_fit_rejects_empty():
    with pytest.raises(ValueError):
        quadratic_power_fit([], [])


def test_quadratic_fit_rejects_mismatched():
    with pytest.raises(ValueError):
        quadratic_power_fit([1, 2], [1.0])


def test_solve_vdd_identity():
    assert solve_vdd_for_bandwidth(1.0, vdd0=1.0, vth=0.3) == pytest.approx(1.0)


def test_solve_vdd_monotone():
    v2 = solve_vdd_for_bandwidth(2.0, vdd0=1.0, vth=0.3)
    v4 = solve_vdd_for_bandwidth(4.0, vdd0=1.0, vth=0.3)
    assert v4 > v2 > 1.0


def test_solve_vdd_satisfies_bandwidth_equation():
    vth = 0.3125
    for multiplier in (1.5, 2.0, 3.0):
        vdd = solve_vdd_for_bandwidth(multiplier, vdd0=1.0, vth=vth)
        b0 = (1.0 - vth) ** 2 / 1.0
        b = (vdd - vth) ** 2 / vdd
        assert b == pytest.approx(multiplier * b0, rel=1e-9)


def test_energy_scaling_doubling_between_2_and_3x():
    assert 2.0 < link_energy_scaling(2.0) < 3.0


def test_energy_scaling_identity():
    assert link_energy_scaling(1.0) == pytest.approx(1.0)


def test_energy_scaling_rejects_bad_vth_ratio():
    with pytest.raises(ValueError):
        link_energy_scaling(2.0, vth_over_vdd=1.5)


@given(st.floats(min_value=1.0, max_value=16.0))
def test_energy_scaling_superlinear_property(multiplier):
    """Energy/bit multiplier always >= bandwidth multiplier^0 and grows."""
    scaling = link_energy_scaling(multiplier)
    assert scaling >= 1.0
    assert math.isfinite(scaling)


@given(
    st.floats(min_value=1.01, max_value=8.0),
    st.floats(min_value=1.01, max_value=8.0),
)
def test_energy_scaling_monotone_property(m1, m2):
    lo, hi = sorted((m1, m2))
    assert link_energy_scaling(lo) <= link_energy_scaling(hi) + 1e-12
