"""External I/O technology models (Table IV)."""

import pytest

from repro.tech.external_io import (
    AREA_IO,
    EXTERNAL_IO_TECHNOLOGIES,
    OPTICAL_IO,
    SERDES_IO,
    ExternalIOTechnology,
    IOPlacement,
)


def test_serdes_capacity_300mm():
    # 4 x 300 mm x 512 Gbps/mm = 614.4 Tbps
    assert SERDES_IO.capacity_gbps(300.0) == pytest.approx(614400.0)


def test_optical_capacity_300mm():
    # 4 layers at 800 Gbps/mm/layer over the 1200 mm perimeter
    assert OPTICAL_IO.capacity_gbps(300.0) == pytest.approx(3840000.0)


def test_area_capacity_300mm():
    # 16 Gbps/mm2 x 90000 mm2 = 1.44 Pbps
    assert AREA_IO.capacity_gbps(300.0) == pytest.approx(1440000.0)


def test_area_scales_with_area_not_perimeter():
    assert AREA_IO.capacity_gbps(200.0) / AREA_IO.capacity_gbps(100.0) == pytest.approx(4.0)


def test_periphery_scales_with_perimeter():
    assert SERDES_IO.capacity_gbps(200.0) / SERDES_IO.capacity_gbps(100.0) == pytest.approx(2.0)


def test_serdes_max_ports_match_paper():
    """Fig 7: SerDes supports 256 / 512 / 512 ports at 100/200/300 mm."""
    assert SERDES_IO.max_bidirectional_ports(100.0, 200.0) == 256
    assert SERDES_IO.max_bidirectional_ports(200.0, 200.0) == 512
    # 300 mm raw ceiling is 768; the power-of-two Clos step lands at 512.
    assert SERDES_IO.max_bidirectional_ports(300.0, 200.0) < 1024


def test_optical_max_ports_allow_8192_at_300mm():
    assert OPTICAL_IO.max_bidirectional_ports(300.0, 200.0) >= 8192


def test_area_io_max_ports_2048_at_300mm():
    assert 2048 <= AREA_IO.max_bidirectional_ports(300.0, 200.0) < 4096


def test_serdes_required_multiplier():
    assert SERDES_IO.required_multiplier == 2.0
    assert SERDES_IO.required_gbps(512, 200.0) == pytest.approx(
        2 * 512 * 200.0 * 2.0
    )


def test_optical_required_nominal():
    assert OPTICAL_IO.required_gbps(1024, 200.0) == pytest.approx(2 * 1024 * 200.0)


def test_area_io_single_layer_enforced():
    with pytest.raises(ValueError, match="single-layer"):
        ExternalIOTechnology(
            name="bad-area",
            placement=IOPlacement.AREA,
            bandwidth_density=16.0,
            layers=2,
            energy_pj_per_bit=8.0,
        )


def test_registry_names():
    assert set(EXTERNAL_IO_TECHNOLOGIES) == {"SerDes", "Optical I/O", "Area I/O"}


def test_energy_values_match_table_iv():
    assert SERDES_IO.energy_pj_per_bit == 8.0
    assert OPTICAL_IO.energy_pj_per_bit == 5.0
    assert AREA_IO.energy_pj_per_bit == 8.0


def test_capacity_rejects_bad_substrate():
    with pytest.raises(ValueError):
        OPTICAL_IO.capacity_gbps(-1.0)
