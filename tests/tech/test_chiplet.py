"""Sub-switch chiplet models (Table II, Sections V.B-C)."""

import math

import pytest

from repro.tech.chiplet import (
    TH5_CONFIGURATIONS,
    SubSwitchChiplet,
    scaled_leaf_die,
    tomahawk5,
)


def test_th5_default_parameters():
    ssc = tomahawk5()
    assert ssc.radix == 256
    assert ssc.port_bandwidth_gbps == 200.0
    assert ssc.area_mm2 == 800.0
    assert ssc.core_power_w == 400.0


def test_th5_switching_capacity_is_51_2_tbps():
    for ssc in TH5_CONFIGURATIONS.values():
        assert ssc.switching_capacity_gbps == pytest.approx(51200.0)


def test_th5_side_mm():
    assert tomahawk5().side_mm == pytest.approx(math.sqrt(800.0))


def test_th5_rejects_invalid_config():
    with pytest.raises(ValueError):
        tomahawk5(256, 400.0)
    with pytest.raises(ValueError):
        tomahawk5(100, 200.0)


def test_deradix_keeps_area():
    """Section V.C: deradixing keeps die area (feedthrough I/O) fixed."""
    half = tomahawk5().deradixed(2)
    assert half.area_mm2 == 800.0
    assert half.radix == 128


def test_deradix_power_follows_quadratic():
    half = tomahawk5().deradixed(2)
    assert half.core_power_w == pytest.approx(100.0)


def test_deradix_factor_one_is_identity():
    ssc = tomahawk5()
    assert ssc.deradixed(1) is ssc


def test_deradix_rejects_non_divisor():
    with pytest.raises(ValueError):
        tomahawk5().deradixed(3)


def test_scaled_leaf_area_scales_linearly():
    quarter = scaled_leaf_die(64)
    assert quarter.area_mm2 == pytest.approx(200.0)


def test_scaled_leaf_power_quadratic():
    quarter = scaled_leaf_die(64)
    assert quarter.core_power_w == pytest.approx(25.0)


def test_four_scaled_quarters_match_one_leaf_area():
    """The disaggregated dies of one leaf fill one grid site."""
    quarter = scaled_leaf_die(64)
    assert 4 * quarter.area_mm2 == pytest.approx(tomahawk5().area_mm2)


def test_scaled_leaf_rejects_oversize():
    with pytest.raises(ValueError):
        scaled_leaf_die(512)


def test_chiplet_validation():
    with pytest.raises(ValueError):
        SubSwitchChiplet("bad", 1, 200.0, 800.0, 400.0)
    with pytest.raises(ValueError):
        SubSwitchChiplet("bad", 8, -1.0, 800.0, 400.0)
