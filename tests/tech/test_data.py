"""Historical datasets (Fig 1, Fig 15, Table V)."""

import pytest

from repro.tech.data import (
    CONNECTION_LATENCIES_NS,
    PACKAGING_DENSITY,
    SWITCH_SCALING_2010_2022,
    TERALYNX_SERIES,
    TOMAHAWK_SERIES,
    bandwidth_growth_factor,
    packaging_growth_factor,
    radix_growth_factor,
)


def test_radix_growth_is_8x():
    """Paper Fig 1a: radix grew only 8x over 2010-2022."""
    assert radix_growth_factor() == pytest.approx(8.0)


def test_bandwidth_outgrew_radix():
    assert bandwidth_growth_factor() > 4 * radix_growth_factor()


def test_bga_growth_8x():
    assert packaging_growth_factor("BGA") == pytest.approx(8.0)


def test_lga_growth_2_6x():
    assert packaging_growth_factor("LGA") == pytest.approx(2.6)


def test_unknown_packaging_rejected():
    with pytest.raises(ValueError):
        packaging_growth_factor("PGA")


def test_switch_series_sorted_by_year():
    years = [g.year for g in SWITCH_SCALING_2010_2022]
    assert years == sorted(years)


def test_tomahawk_series_spans_th1_to_th5():
    names = [g.name for g in TOMAHAWK_SERIES]
    assert names[0] == "Tomahawk-1"
    assert names[-1] == "Tomahawk-5"


def test_teralynx_series_nonempty():
    assert len(TERALYNX_SERIES) == 3


def test_connection_latency_ordering():
    """Table V: on-wafer << in-rack PCB << 100m optical."""
    on_wafer = CONNECTION_LATENCIES_NS["on-wafer"][1]
    pcb = CONNECTION_LATENCIES_NS["in-rack PCB"][0]
    optical = CONNECTION_LATENCIES_NS["100m optical"][0]
    assert on_wafer < pcb < optical


def test_packaging_samples_have_both_technologies():
    technologies = {s.technology for s in PACKAGING_DENSITY}
    assert technologies == {"BGA", "LGA"}
