"""Yield models (Section III.A's integration-choice argument)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tech.yield_model import (
    chiplet_system_yield,
    compare_integration_yield,
    die_yield,
    monolithic_wafer_yield,
)


def test_die_yield_decreases_with_area():
    assert die_yield(100.0) > die_yield(800.0) > die_yield(5000.0)


def test_die_yield_perfect_at_zero_defects():
    assert die_yield(800.0, defect_density_per_mm2=0.0) == 1.0


def test_die_yield_in_unit_interval():
    assert 0.0 < die_yield(800.0) <= 1.0


def test_monolithic_yield_collapses_without_redundancy():
    """A 96-reticle monolithic wafer with no redundancy barely yields."""
    yield_96 = monolithic_wafer_yield(96, 800.0)
    assert yield_96 < die_yield(800.0) ** 95  # strictly compounding
    assert yield_96 < 0.5


def test_redundancy_recovers_monolithic_yield():
    without = monolithic_wafer_yield(96, 800.0)
    with_spares = monolithic_wafer_yield(101, 800.0, required_sites=96)
    assert with_spares > without


def test_chiplet_yield_high_with_kgd():
    """Section III: >99.9% bonding gives high assembly yield at 96 dies."""
    assert chiplet_system_yield(96) > 0.9


def test_chiplet_spares_improve_yield():
    assert chiplet_system_yield(96, spare_sites=2) > chiplet_system_yield(96)


def test_chiplet_yield_perfect_bonding():
    assert chiplet_system_yield(96, bond_yield=1.0) == 1.0


def test_comparison_favors_chiplets():
    """The paper's reason for choosing chiplet-based WSI."""
    comparison = compare_integration_yield(96)
    assert comparison.chiplet_based > comparison.monolithic_with_redundancy
    assert comparison.chiplet_advantage > 1.0


def test_comparison_redundancy_beats_none():
    comparison = compare_integration_yield(96)
    assert (
        comparison.monolithic_with_redundancy
        >= comparison.monolithic_no_redundancy
    )


def test_invalid_inputs():
    with pytest.raises(ValueError):
        die_yield(-1.0)
    with pytest.raises(ValueError):
        monolithic_wafer_yield(0, 800.0)
    with pytest.raises(ValueError):
        monolithic_wafer_yield(10, 800.0, required_sites=11)
    with pytest.raises(ValueError):
        chiplet_system_yield(10, bond_yield=0.0)
    with pytest.raises(ValueError):
        compare_integration_yield(96, redundancy_fraction=1.0)


@given(
    st.integers(min_value=1, max_value=60),
    st.floats(min_value=0.9, max_value=1.0),
    st.integers(min_value=0, max_value=5),
)
@settings(max_examples=30, deadline=None)
def test_chiplet_yield_is_probability(n, bond, spares):
    value = chiplet_system_yield(n, bond_yield=bond, spare_sites=spares)
    assert 0.0 <= value <= 1.0


@given(st.integers(min_value=2, max_value=40))
@settings(max_examples=20, deadline=None)
def test_monolithic_monotone_in_required_sites(n):
    """Requiring fewer working sites can only help yield."""
    strict = monolithic_wafer_yield(n, 800.0, required_sites=n)
    relaxed = monolithic_wafer_yield(n, 800.0, required_sites=max(1, n - 1))
    assert relaxed >= strict
