"""Cooling envelopes (Figs 16, 28)."""

import pytest

from repro.tech.cooling import (
    AIR_COOLING,
    MULTIPHASE_COOLING,
    WATER_COOLING,
    best_cooling_for,
)


def test_envelope_ordering():
    assert (
        AIR_COOLING.max_power_density_w_per_mm2
        < WATER_COOLING.max_power_density_w_per_mm2
        < MULTIPHASE_COOLING.max_power_density_w_per_mm2
    )


def test_water_cooling_handles_hetero_300mm_design():
    """Paper: 0.48 W/mm2 post-heterogeneity fits water cooling."""
    assert WATER_COOLING.supports(0.48 * 90000, 90000)


def test_water_cooling_rejects_unoptimized_300mm_design():
    """Paper: 0.69 W/mm2 exceeds the water envelope."""
    assert not WATER_COOLING.supports(0.69 * 90000, 90000)


def test_multiphase_handles_unoptimized_design():
    assert MULTIPHASE_COOLING.supports(0.69 * 90000, 90000)


def test_best_cooling_selects_cheapest():
    assert best_cooling_for(0.05 * 90000, 90000) is AIR_COOLING
    assert best_cooling_for(0.45 * 90000, 90000) is WATER_COOLING
    assert best_cooling_for(1.0 * 90000, 90000) is MULTIPHASE_COOLING


def test_best_cooling_none_when_impossible():
    assert best_cooling_for(10.0 * 90000, 90000) is None


def test_max_power_scales_with_area():
    assert WATER_COOLING.max_power_w(90000) == pytest.approx(45000.0)


def test_supports_boundary_inclusive():
    assert WATER_COOLING.supports(WATER_COOLING.max_power_w(1000), 1000)
