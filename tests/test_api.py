"""Tests for the repro.api facade.

The facade is the serve layer's contract: typed queries round-trip
through JSON, content keys are stable and engine-sensitive, and
``execute`` answers every query kind without any ``REPRO_*``
environment variable being set.
"""

import json

import pytest

from repro import api

TINY_SIM = dict(
    network="single-router",
    terminals=8,
    vcs=2,
    buffer_flits=8,
    loads=(0.2,),
    warmup_cycles=50,
    measure_cycles=100,
)


# ----------------------------------------------------------------------
# Query serialization
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "query",
    [
        api.DesignQuery(),
        api.DesignQuery(substrate_mm=100.0, hetero=True, mapping_restarts=1),
        api.SweepQuery(experiments=("fig01", "tab06"), fast=True),
        api.SimQuery(**TINY_SIM),
        api.SimQuery(telemetry=True, loads=(0.1, 0.3)),
    ],
)
def test_query_roundtrips_through_json(query):
    payload = json.loads(json.dumps(query.to_dict()))
    assert api.query_from_dict(payload) == query


def test_query_from_dict_requires_kind():
    with pytest.raises(api.QueryError, match="kind"):
        api.query_from_dict({"substrate_mm": 100.0})
    with pytest.raises(api.QueryError, match="unknown query kind"):
        api.query_from_dict({"kind": "frobnicate"})


def test_query_from_dict_rejects_unknown_fields():
    with pytest.raises(api.QueryError, match="unknown design query fields"):
        api.query_from_dict({"kind": "design", "wattage": 9000})


def test_query_key_is_stable_and_engine_sensitive():
    query = api.SimQuery(**TINY_SIM)
    same = api.query_from_dict(query.to_dict())
    assert api.query_key(query) == api.query_key(same)
    assert api.query_key(query, engine="scalar") != api.query_key(
        query, engine="numpy"
    )
    assert api.query_key(query) != api.query_key(api.SimQuery(**{**TINY_SIM, "seed": 2}))


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def test_execute_simulate_envelope_and_engines():
    response = api.execute(api.SimQuery(**TINY_SIM), engine="numpy")
    json.dumps(response)  # strictly serializable
    assert response["schema"] == api.RESPONSE_SCHEMA
    assert response["kind"] == "simulate"
    assert response["engines"]["netsim"] == "numpy"
    assert len(response["result"]["points"]) == 1
    point = response["result"]["points"][0]
    assert point["offered_load"] == 0.2
    assert point["avg_latency_cycles"] > 0


def test_execute_engine_forcing_is_bit_identical():
    """scalar and numpy kernels must agree through the facade too."""
    a = api.execute(api.SimQuery(**TINY_SIM), engine="scalar")
    b = api.execute(api.SimQuery(**TINY_SIM), engine="numpy")
    assert a["result"]["points"] == b["result"]["points"]


def test_execute_simulate_streams_telemetry():
    seen = []
    response = api.execute(
        api.SimQuery(**{**TINY_SIM, "telemetry": True, "loads": (0.1, 0.2)}),
        on_telemetry=lambda load, report: seen.append((load, report["schema"])),
    )
    assert [load for load, _ in seen] == [0.1, 0.2]
    assert all(schema == "repro-netsim-telemetry" for _, schema in seen)
    assert len(response["result"]["telemetry"]) == 2


def test_execute_rejects_bad_sim_queries():
    with pytest.raises(api.QueryError, match="traffic pattern"):
        api.execute(api.SimQuery(**{**TINY_SIM, "pattern": "bogus"}))
    with pytest.raises(api.QueryError, match="network model"):
        api.execute(api.SimQuery(**{**TINY_SIM, "network": "hypercube"}))
    with pytest.raises(api.QueryError, match="at least one load"):
        api.execute(api.SimQuery(**{**TINY_SIM, "loads": ()}))


@pytest.mark.slow
def test_execute_design_rehydrates(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    response = api.execute(
        api.DesignQuery(substrate_mm=100.0, mapping_restarts=1)
    )
    json.dumps(response)
    result = response["result"]
    assert result["feasible"]
    from repro.core.design import DesignPoint

    design = DesignPoint.from_dict(result["design"])
    assert design.feasible
    assert design.substrate_side_mm == 100.0


def test_execute_design_rejects_unknown_technologies():
    with pytest.raises(api.QueryError, match="WSI technology"):
        api.execute(api.DesignQuery(wsi="unobtainium"))
    with pytest.raises(api.QueryError, match="external I/O technology"):
        api.execute(api.DesignQuery(external_io="carrier pigeon"))
    with pytest.raises(api.QueryError, match="topology family"):
        api.execute(api.DesignQuery(family="torus-of-tori"))


@pytest.mark.slow
def test_execute_sweep_uses_cache(tmp_path):
    response = api.execute(
        api.SweepQuery(experiments=("fig01",)), cache=tmp_path
    )
    assert response["result"]["cached"]
    tables = response["result"]["experiments"]
    assert len(tables) == 1
    # Second run must be served from the cache directory we pinned.
    again = api.execute(api.SweepQuery(experiments=("fig01",)), cache=tmp_path)
    assert again["result"]["experiments"] == tables
    assert any(tmp_path.iterdir())


def test_execute_sweep_rejects_unknown_ids():
    with pytest.raises(api.QueryError, match="unknown experiment ids"):
        api.execute(api.SweepQuery(experiments=("fig99",)), cache=None)


def test_execute_payload_matches_execute():
    query = api.SimQuery(**TINY_SIM)
    direct = api.execute(query, engine="numpy")
    via_payload = api.execute_payload(query.to_dict(), engine="numpy")
    assert via_payload == direct
