"""Tests for the shared cache-path resolver (repro.paths)."""

from pathlib import Path

from repro import paths


def test_default_root_is_relative_repro_cache(monkeypatch):
    monkeypatch.delenv(paths.CACHE_DIR_ENV, raising=False)
    assert paths.cache_root() == Path(paths.DEFAULT_CACHE_DIR)


def test_env_var_overrides_default(monkeypatch, tmp_path):
    monkeypatch.setenv(paths.CACHE_DIR_ENV, str(tmp_path))
    assert paths.cache_root() == tmp_path


def test_explicit_override_beats_env(monkeypatch, tmp_path):
    monkeypatch.setenv(paths.CACHE_DIR_ENV, str(tmp_path / "env"))
    assert paths.cache_root(tmp_path / "arg") == tmp_path / "arg"


def test_layer_subdirectories_share_one_root(monkeypatch, tmp_path):
    monkeypatch.setenv(paths.CACHE_DIR_ENV, str(tmp_path))
    assert paths.experiment_cache_dir() == tmp_path
    assert paths.mapping_store_dir() == tmp_path / "mappings"
    assert paths.serve_cache_dir() == tmp_path / "serve"


def test_deprecation_shims_still_importable(monkeypatch, tmp_path):
    """PR-3/4 call sites import these names from their old homes."""
    from repro.experiments import cache as exp_cache
    from repro.mapping import store as map_store

    assert exp_cache.CACHE_DIR_ENV == paths.CACHE_DIR_ENV
    assert map_store.CACHE_DIR_ENV == paths.CACHE_DIR_ENV
    monkeypatch.setenv(paths.CACHE_DIR_ENV, str(tmp_path))
    assert exp_cache.default_cache_dir() == paths.experiment_cache_dir()
    assert map_store.default_store_dir() == tmp_path / "mappings"
