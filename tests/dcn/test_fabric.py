"""DCN fabric geometry and failure-aware routing."""

import pytest

from repro.dcn.fabric import DCNFabric, DCNRouteError, DCNShape, _mix
from repro.dcn.failures import DCNFailures


def _failures(terminals=(), links=()):
    return DCNFailures(
        dead_sscs=(), dead_terminals=tuple(terminals), dead_links=tuple(links)
    )


def test_shape_geometry_spined():
    shape = DCNShape(n_hosts=32, wafer_radix=16, ssc_radix=8)
    assert shape.n_leaves == 4
    assert shape.n_spines == 2
    assert shape.n_wafers == 6
    assert shape.hosts_per_leaf == 8
    assert shape.wafer_terminals == 16
    assert shape.leaf_of_host(17) == 2
    assert shape.local_of_host(17) == 1


def test_shape_geometry_back_to_back():
    shape = DCNShape(
        n_hosts=16, wafer_radix=16, ssc_radix=8, back_to_back=True
    )
    assert shape.n_leaves == 2
    assert shape.n_spines == 0
    assert shape.n_wafers == 2


def test_shape_validation():
    with pytest.raises(ValueError):
        DCNShape(n_hosts=24, wafer_radix=16, ssc_radix=8)  # not a multiple
    with pytest.raises(ValueError):
        DCNShape(n_hosts=16, wafer_radix=16, ssc_radix=6)  # bad intra shape
    with pytest.raises(ValueError):
        DCNShape(
            n_hosts=32, wafer_radix=16, ssc_radix=8, back_to_back=True
        )  # b2b needs hosts == radix
    with pytest.raises(ValueError):
        DCNShape(
            n_hosts=16, wafer_radix=16, ssc_radix=8, inter_wafer_latency=0
        )


def test_channels_fill_every_wafer_exactly():
    shape = DCNShape(n_hosts=64, wafer_radix=16, ssc_radix=8)
    fabric = DCNFabric(shape)
    for leaf in range(shape.n_leaves):
        assert sum(fabric.channels[leaf]) == shape.hosts_per_leaf
    for spine in range(shape.n_spines):
        assert (
            sum(fabric.channels[leaf][spine] for leaf in range(shape.n_leaves))
            == shape.wafer_terminals
        )


def test_route_segments_chain_consistently():
    shape = DCNShape(n_hosts=32, wafer_radix=16, ssc_radix=8)
    fabric = DCNFabric(shape)
    H = shape.hosts_per_leaf
    for dcn_id, (src, dst) in enumerate(((0, 31), (9, 2), (5, 6), (30, 1))):
        route = fabric.route(dcn_id, src, dst)
        if shape.leaf_of_host(src) == shape.leaf_of_host(dst):
            assert len(route) == 1
            continue
        assert len(route) == 3
        first, middle, last = route
        assert first.wafer == shape.leaf_of_host(src)
        assert first.entry == shape.local_of_host(src)
        assert first.exit >= H  # a gateway
        assert middle.wafer >= shape.n_leaves  # a spine wafer
        assert last.wafer == shape.leaf_of_host(dst)
        assert last.exit == shape.local_of_host(dst)


def test_route_is_deterministic_per_packet_id():
    shape = DCNShape(n_hosts=32, wafer_radix=16, ssc_radix=8)
    fabric = DCNFabric(shape)
    assert fabric.route(7, 0, 31) == fabric.route(7, 0, 31)
    spread = {tuple(fabric.route(i, 0, 31)) for i in range(64)}
    assert len(spread) > 1, "hash must spread packets over channels"


def test_mix_is_stable():
    # Pinned values: partition parity depends on this hash never moving.
    assert _mix(0) == 16294208416658607535
    assert _mix(1) == 10451216379200822465


def test_dead_host_is_unroutable():
    shape = DCNShape(n_hosts=32, wafer_radix=16, ssc_radix=8)
    fabric = DCNFabric(shape, _failures(terminals=[(0, 0)]))
    assert 0 not in fabric.alive_hosts
    with pytest.raises(DCNRouteError):
        fabric.route(0, 0, 31)
    with pytest.raises(DCNRouteError):
        fabric.route(0, 31, 0)


def test_dead_channels_restrict_options():
    shape = DCNShape(n_hosts=32, wafer_radix=16, ssc_radix=8)
    clean = DCNFabric(shape)
    all_options = clean._pair_options(0, 1)
    # Kill every channel from leaf 0 to spine 0.
    links = [(0, 0, c) for c in range(clean.channels[0][0])]
    fabric = DCNFabric(shape, _failures(links=links))
    remaining = fabric._pair_options(0, 1)
    assert remaining
    assert len(remaining) < len(all_options)
    assert all(spine != 0 for spine, _, _ in remaining)
    # Kill the other spine's uplinks too: leaf 0 is fully cut off.
    links += [(0, 1, c) for c in range(clean.channels[0][1])]
    cut = DCNFabric(shape, _failures(links=links))
    with pytest.raises(DCNRouteError):
        cut.route(0, 0, 31)


def test_back_to_back_routes_are_two_segments():
    shape = DCNShape(
        n_hosts=16, wafer_radix=16, ssc_radix=8, back_to_back=True
    )
    fabric = DCNFabric(shape)
    route = fabric.route(3, 0, 15)
    assert len(route) == 2
    assert route[0].wafer == 0 and route[1].wafer == 1
    assert route[0].exit >= shape.hosts_per_leaf
    assert route[1].entry >= shape.hosts_per_leaf
    # Same channel index on both sides of the trunk.
    assert route[0].exit == route[1].entry
