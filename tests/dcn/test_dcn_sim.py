"""End-to-end DCN runs: parity, epoch invariance, conservation, API."""

import pytest

from repro.api import DCNQuery, QueryError, execute
from repro.dcn import DCNConfig, DCNShape, FailureConfig, run_dcn
from repro.parallel import shutdown_shared_executor

GOLDEN = DCNConfig(
    shape=DCNShape(
        n_hosts=16, wafer_radix=16, ssc_radix=8, back_to_back=True
    ),
    pattern="uniform",
    duration_cycles=96,
    load=0.06,
    traffic_seed=2,
)

SPINED = DCNConfig(
    shape=DCNShape(n_hosts=32, wafer_radix=16, ssc_radix=8),
    pattern="alltoall",
    duration_cycles=64,
    load=0.08,
    traffic_seed=4,
)


def _outcome(result):
    """The physical outcome a run must reproduce regardless of epoching."""
    return (
        result.latencies,
        result.flits_offered,
        result.flits_delivered,
        result.packets_delivered,
        result.per_wafer,
    )


def test_golden_two_wafer_pool_matches_serial_bit_for_bit():
    serial = run_dcn(GOLDEN, executor="serial")
    try:
        pool = run_dcn(GOLDEN, executor="pool", jobs=2)
    finally:
        shutdown_shared_executor()
    assert serial.n_wafers == 2
    assert not serial.truncated and not pool.truncated
    assert serial.packets_delivered > 0
    assert serial.parity_signature() == pool.parity_signature()


def test_lookahead_sweep_is_outcome_invariant():
    import dataclasses

    reference = run_dcn(GOLDEN, executor="serial")
    for lookahead in (5, 13, 40):
        probe = run_dcn(
            dataclasses.replace(GOLDEN, lookahead=lookahead),
            executor="serial",
        )
        assert probe.epoch_cycles == lookahead
        assert _outcome(probe) == _outcome(reference)
    # More barriers for the same simulated span.
    assert (
        run_dcn(
            dataclasses.replace(GOLDEN, lookahead=5), executor="serial"
        ).epochs
        > reference.epochs
    )


def test_scalar_engine_reproduces_fast_outcome():
    import dataclasses

    fast = run_dcn(GOLDEN, executor="serial")
    scalar = run_dcn(
        dataclasses.replace(GOLDEN, engine="scalar"), executor="serial"
    )
    assert scalar.engine == "scalar"
    assert fast.engine != "scalar"
    assert _outcome(scalar) == _outcome(fast)


def test_spined_run_conserves_flits_and_drains():
    result = run_dcn(SPINED, executor="serial")
    assert result.n_wafers == 6
    assert not result.truncated
    assert result.packets_delivered == result.packets_routed > 0
    assert result.flits_delivered == result.flits_offered
    assert all(c["inflight"] == 0 for c in result.per_wafer)


def test_failed_link_run_conserves_flits():
    import dataclasses

    config = dataclasses.replace(
        SPINED,
        failures=FailureConfig(
            seed=11, ssc_area_mm2=400.0, link_failure_prob=0.2
        ),
    )
    result = run_dcn(config, executor="serial")
    assert result.dead_sscs + result.dead_links > 0
    assert not result.truncated
    # Unroutable packets are dropped at the plan stage; everything that
    # entered a wafer must come out.
    assert result.flits_delivered == result.flits_offered
    assert result.packets_delivered == result.packets_routed
    # Same failure seed, same run, bit for bit.
    again = run_dcn(config, executor="serial")
    assert again.parity_signature() == result.parity_signature()


def test_bad_lookahead_rejected():
    import dataclasses

    with pytest.raises(ValueError):
        dataclasses.replace(GOLDEN, lookahead=41)  # > inter_wafer_latency


def test_dcn_query_roundtrip():
    query = DCNQuery(
        hosts=16,
        wafer_radix=16,
        back_to_back=True,
        duration_cycles=48,
        load=0.06,
        seed=2,
    )
    result = execute(query)["result"]
    assert result["n_wafers"] == 2
    assert result["executor"] == "serial"
    assert result["packets_delivered"] > 0
    assert result["latency"]["count"] == result["packets_delivered"]


def test_dcn_query_failure_injection():
    query = DCNQuery(
        hosts=32,
        duration_cycles=32,
        failure_seed=7,
        ssc_area_mm2=400.0,
        link_failure_prob=0.2,
    )
    result = execute(query)["result"]
    assert result["dead_sscs"] + result["dead_links"] > 0


def test_dcn_query_validation():
    with pytest.raises(QueryError):
        execute(DCNQuery(pattern="bogus"))
    with pytest.raises(QueryError):
        execute(DCNQuery(executor="threads"))
    with pytest.raises(QueryError):
        execute(DCNQuery(hosts=24))  # not a wafer_radix multiple
