"""WaferPartition: epoch-driven stepping, engine parity, conservation."""

import numpy as np
import pytest

from repro.netsim.network import waferscale_clos_network
from repro.netsim.partition import WaferPartition


def _network():
    return waferscale_clos_network(
        16, 8, num_vcs=4, buffer_flits_per_port=16
    )


def _workload(duration=64, seed=9, n=16):
    import random

    rng = random.Random(seed)
    events = []
    tag = 100
    for cycle in range(duration):
        for src in range(n):
            if rng.random() < 0.1:
                dst = (src + rng.randrange(1, n)) % n
                events.append((cycle, src, dst, 4, tag))
                tag += 1
    events.sort()
    return events


def _drain(partition, events, epoch=16, deadline=5000):
    """Feed ``events`` epoch by epoch and run until in-flight hits 0."""
    bundles = []
    cursor = 0
    end = 0
    while cursor < len(events) or partition.inflight_flits:
        end += epoch
        assert end < deadline, "partition failed to drain"
        batch = []
        while cursor < len(events) and events[cursor][0] < end:
            batch.append(events[cursor])
            cursor += 1
        partition.enqueue(batch)
        terms, tags, arrives, counters = partition.advance(end)
        bundles.append((terms, tags, arrives))
    return bundles, counters


def test_enqueue_rejects_bad_schedules():
    partition = WaferPartition(_network())
    partition.enqueue([(0, 0, 5, 4, 1), (3, 1, 6, 4, 2)])
    partition.advance(8)
    with pytest.raises(ValueError):
        partition.enqueue([(2, 0, 5, 4, 3)])  # in the past
    with pytest.raises(ValueError):
        partition.enqueue([(20, 0, 5, 4, 4), (9, 1, 6, 4, 5)])  # unsorted
    partition.enqueue([(30, 0, 5, 4, 6)])
    with pytest.raises(ValueError):
        partition.enqueue([(25, 1, 6, 4, 7)])  # behind prior schedule


def test_delivery_bundle_echoes_tags_sorted():
    partition = WaferPartition(_network())
    events = _workload(duration=32)
    bundles, counters = _drain(partition, events)
    seen_tags = np.concatenate([tags for _, tags, _ in bundles])
    assert sorted(seen_tags.tolist()) == sorted(e[4] for e in events)
    for terms, tags, arrives in bundles:
        rows = list(zip(arrives.tolist(), terms.tolist(), tags.tolist()))
        assert rows == sorted(rows)
    assert counters["inflight"] == 0


def test_conservation_and_counters():
    partition = WaferPartition(_network())
    events = _workload(duration=48, seed=3)
    _, counters = _drain(partition, events)
    assert counters["offered_packets"] == len(events)
    assert counters["offered_flits"] == sum(e[3] for e in events)
    assert counters["delivered_packets"] == counters["offered_packets"]
    assert counters["delivered_flits"] == counters["offered_flits"]


@pytest.mark.parametrize("epoch", [4, 16, 128])
def test_epoch_length_does_not_change_deliveries(epoch):
    reference, _ = _drain(WaferPartition(_network()), _workload(), epoch=16)
    probe, _ = _drain(WaferPartition(_network()), _workload(), epoch=epoch)

    def flat(bundles):
        terms = np.concatenate([b[0] for b in bundles])
        tags = np.concatenate([b[1] for b in bundles])
        arrives = np.concatenate([b[2] for b in bundles])
        order = np.lexsort((tags, terms, arrives))
        return terms[order].tolist(), tags[order].tolist(), arrives[order].tolist()

    assert flat(reference) == flat(probe)


def test_scalar_and_fast_engines_agree():
    fast = WaferPartition(_network(), engine="numpy")
    scalar = WaferPartition(_network(), engine="scalar")
    assert fast.engine_name != "scalar"
    assert scalar.engine_name == "scalar"
    events = _workload(duration=40, seed=5)
    fast_bundles, fast_counters = _drain(fast, events)
    scalar_bundles, scalar_counters = _drain(scalar, events)
    assert len(fast_bundles) == len(scalar_bundles)
    for (ft, fg, fa), (st, sg, sa) in zip(fast_bundles, scalar_bundles):
        assert ft.tolist() == st.tolist()
        assert fg.tolist() == sg.tolist()
        assert fa.tolist() == sa.tolist()
    assert fast_counters == scalar_counters
