"""Yield-sampled failure sets: determinism, reproducibility, plumbing."""

from repro.dcn.fabric import DCNFabric, DCNShape
from repro.dcn.failures import FailureConfig, sample_failures

SHAPE = DCNShape(n_hosts=32, wafer_radix=16, ssc_radix=8)

#: Absurd die area so the compound-Poisson yield gives a failure rate
#: high enough that every draw matters in a small fabric.
HOT = dict(ssc_area_mm2=2500.0, link_failure_prob=0.25)


def test_same_seed_same_failures():
    for seed in range(8):
        config = FailureConfig(seed=seed, **HOT)
        first = sample_failures(SHAPE, config)
        second = sample_failures(SHAPE, config)
        assert first == second
        # Element order is part of the contract, not just set equality.
        assert first.dead_terminals == second.dead_terminals
        assert first.dead_links == second.dead_links


def test_different_seeds_differ():
    samples = {
        sample_failures(SHAPE, FailureConfig(seed=seed, **HOT))
        for seed in range(16)
    }
    assert len(samples) > 1


def test_failure_probability_tracks_yield_model():
    clean = FailureConfig(ssc_area_mm2=1e-9, link_failure_prob=0.0)
    assert clean.ssc_failure_prob < 0.002  # only bond yield remains
    sample = sample_failures(SHAPE, clean)
    assert sample.dead_links == ()
    hot = FailureConfig(**HOT)
    assert hot.ssc_failure_prob > 0.5
    assert sample_failures(SHAPE, hot).dead_sscs


def test_dead_ssc_kills_its_terminal_slice():
    config = FailureConfig(seed=0, **HOT)
    sample = sample_failures(SHAPE, config)
    per_ssc = SHAPE.ssc_radix // 2
    dead = set(sample.dead_terminals)
    for wafer, ssc in sample.dead_sscs:
        for slot in range(per_ssc):
            assert (wafer, ssc * per_ssc + slot) in dead
    assert len(dead) == len(sample.dead_sscs) * per_ssc


def test_sampled_links_exist_in_the_fabric():
    fabric = DCNFabric(SHAPE)
    sample = sample_failures(SHAPE, FailureConfig(seed=4, **HOT))
    for leaf, spine, channel in sample.dead_links:
        assert 0 <= channel < fabric.channels[leaf][spine]


def test_fabric_excludes_failed_hosts():
    sample = sample_failures(SHAPE, FailureConfig(seed=1, **HOT))
    fabric = DCNFabric(SHAPE, sample)
    dead = set(sample.dead_terminals)
    for host in fabric.alive_hosts:
        assert (SHAPE.leaf_of_host(host), SHAPE.local_of_host(host)) not in dead
    dead_hosts = {
        leaf * SHAPE.hosts_per_leaf + term
        for leaf, term in dead
        if leaf < SHAPE.n_leaves and term < SHAPE.hosts_per_leaf
    }
    assert len(fabric.alive_hosts) == SHAPE.n_hosts - len(dead_hosts)


def test_back_to_back_trunk_failures_keyed_from_leaf_zero():
    shape = DCNShape(
        n_hosts=16, wafer_radix=16, ssc_radix=8, back_to_back=True
    )
    sample = sample_failures(
        shape, FailureConfig(seed=3, link_failure_prob=0.5)
    )
    assert sample.dead_links  # p=0.5 over 8 channels: ~certain
    assert all(leaf == 0 and spine == 0 for leaf, spine, _ in sample.dead_links)
    # A dead trunk channel is unusable from both directions.
    fabric = DCNFabric(shape, sample)
    dead_channels = {c for _, _, c in sample.dead_links}
    for direction in ((0, 1), (1, 0)):
        for _, up, down in fabric._pair_options(*direction):
            assert up == down
            assert up not in dead_channels
