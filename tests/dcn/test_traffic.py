"""DCN traffic generators: determinism and shape invariants."""

import pytest

from repro.dcn.traffic import PATTERNS, generate

HOSTS = tuple(range(16))


@pytest.mark.parametrize("pattern", PATTERNS)
def test_generate_is_deterministic(pattern):
    first = generate(pattern, HOSTS, duration=200, seed=5, load=0.2)
    second = generate(pattern, HOSTS, duration=200, seed=5, load=0.2)
    assert first == second
    assert first, f"{pattern} produced no traffic at load=0.2"


@pytest.mark.parametrize("pattern", PATTERNS)
def test_generate_invariants(pattern):
    events = generate(pattern, HOSTS, duration=200, seed=7, load=0.2)
    assert events == sorted(events)
    for cycle, src, dst, size in events:
        assert 0 <= cycle < 200
        assert src in HOSTS and dst in HOSTS
        assert src != dst
        assert size >= 1


def test_generate_respects_alive_subset():
    alive = (0, 3, 4, 9, 15)
    events = generate("uniform", alive, duration=400, seed=2, load=0.3)
    endpoints = {src for _, src, _, _ in events} | {
        dst for _, _, dst, _ in events
    }
    assert endpoints <= set(alive)


def test_seeds_change_traffic():
    runs = {
        tuple(generate("uniform", HOSTS, duration=100, seed=s, load=0.2))
        for s in range(6)
    }
    assert len(runs) > 1


def test_elephant_mouse_is_bimodal():
    events = generate(
        "elephant_mouse", HOSTS, duration=400, seed=1, load=0.2, size_flits=4
    )
    sizes = {size for _, _, _, size in events}
    assert 4 in sizes and 16 in sizes


def test_incast_converges_on_victims():
    from collections import Counter

    # Four complete rounds with rotating victims: exactly four hosts
    # each absorb a full n-1 fan-in, everyone else receives nothing.
    events = generate("incast", HOSTS, duration=20, seed=1, load=0.2)
    fanin = Counter(dst for _, _, dst, _ in events)
    assert max(fanin.values()) == len(HOSTS) - 1
    assert len(fanin) == 4


def test_unknown_pattern_rejected():
    with pytest.raises(ValueError):
        generate("nope", HOSTS, duration=10, seed=0)
