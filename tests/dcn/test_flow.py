"""Flow-level fidelity: determinism, conservation, stitching, caching."""

import dataclasses
import json

import pytest

from repro.api import DCNQuery, QueryError, execute
from repro.dcn import DCNConfig, DCNShape, run_dcn
from repro.dcn.flow import (
    FlowWaferNode,
    ServiceCurve,
    calibrate_wafer,
    curves_for_shape,
)
from repro.parallel import shutdown_shared_executor

SPINED = DCNConfig(
    shape=DCNShape(n_hosts=32, wafer_radix=16, ssc_radix=8),
    pattern="uniform",
    duration_cycles=128,
    load=0.08,
    traffic_seed=4,
)

FLOW = dataclasses.replace(SPINED, fidelity="flow")
HYBRID = dataclasses.replace(SPINED, fidelity="hybrid", cycle_wafers=(0, 5))


def _summary(result):
    summary = result.to_dict()
    summary.pop("wall_seconds", None)
    return summary


# ---------------------------------------------------------------- determinism


def test_flow_run_is_deterministic():
    first = run_dcn(FLOW, executor="serial")
    second = run_dcn(FLOW, executor="serial")
    assert first.packets_delivered > 0
    assert _summary(first) == _summary(second)


def test_hybrid_run_is_deterministic():
    first = run_dcn(HYBRID, executor="serial")
    second = run_dcn(HYBRID, executor="serial")
    assert _summary(first) == _summary(second)


def test_fidelities_differ_but_seeds_do_not():
    cycle = run_dcn(SPINED, executor="serial")
    flow = run_dcn(FLOW, executor="serial")
    # Same offered traffic (shared generators), different service model.
    assert cycle.flits_offered == flow.flits_offered
    assert cycle.latencies != flow.latencies


# -------------------------------------------------------------- conservation


@pytest.mark.parametrize("config", [FLOW, HYBRID], ids=["flow", "hybrid"])
def test_untruncated_runs_conserve_flits(config):
    result = run_dcn(config, executor="serial")
    assert not result.truncated
    inflight = sum(c["inflight"] for c in result.per_wafer)
    assert result.flits_offered == result.flits_delivered + inflight
    assert inflight == 0
    assert result.packets_delivered == result.packets_created


def test_hybrid_counts_cycle_wafers():
    result = run_dcn(HYBRID, executor="serial")
    assert result.fidelity == "hybrid"
    assert result.cycle_accurate_wafers == 2
    flow_only = run_dcn(FLOW, executor="serial")
    assert flow_only.cycle_accurate_wafers == 0
    cycle = run_dcn(SPINED, executor="serial")
    assert cycle.cycle_accurate_wafers == cycle.n_wafers


# --------------------------------------------------------------- error gate


def test_flow_throughput_tracks_cycle_within_gate():
    cycle = run_dcn(SPINED, executor="serial")
    flow = run_dcn(FLOW, executor="serial")
    reference = cycle.flits_delivered / cycle.makespan
    probe = flow.flits_delivered / flow.makespan
    assert abs(probe - reference) / reference <= 0.10


# ---------------------------------------------------------------- stitching


def test_hybrid_pool_matches_serial_bit_for_bit():
    serial = run_dcn(HYBRID, executor="serial")
    try:
        pool = run_dcn(HYBRID, executor="pool", jobs=2)
    finally:
        shutdown_shared_executor()
    assert serial.parity_signature() == pool.parity_signature()


def test_flow_conserves_under_any_epoch_length():
    # Unlike the cycle-accurate engine, flow fidelity estimates
    # utilization per epoch batch, so per-packet latencies may shift
    # with the epoch length — but offered traffic, conservation, and
    # within-lookahead determinism must all hold.
    reference = run_dcn(FLOW, executor="serial")
    for lookahead in (7, 20):
        probe = run_dcn(
            dataclasses.replace(FLOW, lookahead=lookahead),
            executor="serial",
        )
        assert probe.epochs > reference.epochs
        assert probe.flits_offered == reference.flits_offered
        assert probe.flits_delivered == probe.flits_offered
        assert not probe.truncated


# -------------------------------------------------------------- node contract


def test_flow_node_interface_mirrors_partition():
    curve = ServiceCurve(
        wafer_terminals=8,
        ssc_radix=8,
        loads=(0.0, 0.5),
        latencies=(10.0, 20.0),
        capacity_flits_per_cycle=4.0,
    )
    node = FlowWaferNode(curve, n_terminals=8)
    node.enqueue([(0, 1, 2, 4, 7), (3, 0, 5, 2, 9)])
    terms, tags, arrives, counters = node.advance(400)
    assert list(tags) == [7, 9]
    assert list(terms) == [2, 5]
    assert all(a > 0 for a in arrives)
    assert counters["offered_flits"] == 6
    assert counters["delivered_flits"] == 6
    assert counters["inflight"] == 0
    # Delivery order is (arrival, terminal, tag)-sorted like the
    # cycle-accurate partition's harvest.
    pairs = list(zip(arrives, terms, tags))
    assert pairs == sorted(pairs)


def test_flow_node_rejects_unsorted_events():
    curve = ServiceCurve(
        wafer_terminals=4,
        ssc_radix=4,
        loads=(0.0,),
        latencies=(5.0,),
        capacity_flits_per_cycle=2.0,
    )
    node = FlowWaferNode(curve, n_terminals=4)
    node.advance(10)
    with pytest.raises(ValueError):
        node.enqueue([(5, 0, 1, 4, 1)])  # before current cycle


# -------------------------------------------------------------------- curves


def test_curve_cache_roundtrip(tmp_path):
    first = calibrate_wafer(8, 8, cache=True, cache_root=tmp_path)
    cached = calibrate_wafer(8, 8, cache=True, cache_root=tmp_path)
    assert first == cached
    files = list((tmp_path / "dcn").glob("curve-*.json"))
    assert len(files) == 1
    payload = json.loads(files[0].read_text())
    assert payload["wafer_terminals"] == 8
    # A corrupt cache entry is recalibrated, not trusted.
    files[0].write_text("{not json")
    again = calibrate_wafer(8, 8, cache=True, cache_root=tmp_path)
    assert again == first


def test_curve_latency_is_clamped_and_congestion_sensitive():
    curves = curves_for_shape(SPINED.shape)
    curve = curves["leaf"]
    # Probe samples are empirical (light loads can jitter), but the
    # congestion trend and the clamps are structural.
    assert all(curve.latency_at(u) > 0 for u in (0.0, 0.1, 0.3, 0.9))
    assert curve.latency_at(0.9) > curve.latency_at(0.0)
    assert curve.latency_at(-1.0) == curve.latency_at(0.0)
    assert curve.latency_at(99.0) == curve.latency_at(1.0)
    assert curve.capacity_flits_per_cycle > 0
    assert curves["spine"] is curves["leaf"]  # equal radix: shared fit


# ----------------------------------------------------------------------- api


def test_api_threads_fidelity():
    result = execute(
        DCNQuery(
            hosts=32,
            wafer_radix=16,
            ssc_radix=8,
            duration_cycles=64,
            load=0.05,
            fidelity="hybrid",
            cycle_wafers=(0,),
        )
    )["result"]
    assert result["fidelity"] == "hybrid"
    assert result["cycle_accurate_wafers"] == 1
    assert "delivered_throughput" in result


def test_api_rejects_unknown_fidelity():
    with pytest.raises(QueryError):
        execute(DCNQuery(hosts=32, fidelity="analytic"))


def test_config_rejects_bad_hybrid_selection():
    with pytest.raises(ValueError):
        DCNConfig(shape=SPINED.shape, fidelity="flow", cycle_wafers=(0,))
    with pytest.raises(ValueError):
        DCNConfig(shape=SPINED.shape, fidelity="hybrid", cycle_wafers=(99,))
