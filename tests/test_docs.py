"""Documentation stays honest: relative links resolve, doctests pass.

Part of the fast tier so docs can't rot silently: a renamed file breaks
the link check and a stale docstring example breaks the doctest pass.
"""

import doctest
import importlib
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

MARKDOWN_FILES = sorted(REPO_ROOT.glob("*.md")) + sorted(
    (REPO_ROOT / "docs").glob("*.md")
)

#: ``[text](target)`` — target without spaces (excludes footnote syntax).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCED_CODE = re.compile(r"```.*?```", re.DOTALL)


def _relative_link_targets(markdown: str):
    text = _FENCED_CODE.sub("", markdown)
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target


@pytest.mark.parametrize(
    "md_file", MARKDOWN_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_markdown_links_resolve(md_file):
    broken = []
    for target in _relative_link_targets(md_file.read_text()):
        path = target.split("#", 1)[0]
        if path and not (md_file.parent / path).exists():
            broken.append(target)
    assert not broken, f"{md_file.name}: broken relative link(s): {broken}"


def _modules_with_doctests():
    """Every repro module whose source contains a ``>>>`` example."""
    for path in sorted((SRC_ROOT / "repro").rglob("*.py")):
        if ">>>" in path.read_text():
            relative = path.relative_to(SRC_ROOT).with_suffix("")
            yield ".".join(relative.parts)


DOCTEST_MODULES = list(_modules_with_doctests())


def test_some_modules_carry_doctests():
    """The doctest pass must actually cover something."""
    assert "repro.experiments.base" in DOCTEST_MODULES
    assert "repro.experiments.cache" in DOCTEST_MODULES


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_docstring_examples_run(module_name):
    module = importlib.import_module(module_name)
    outcome = doctest.testmod(module, verbose=False)
    assert outcome.attempted > 0, f"{module_name}: '>>>' present but no doctests collected"
    assert outcome.failed == 0, f"{module_name}: {outcome.failed} doctest failure(s)"
