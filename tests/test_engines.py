"""Tests for explicit engine selection (repro.engines).

Covers the resolution ladder (env override > explicit argument >
process default > hard default), validation, and the threading of
process defaults through the pool-worker initializer.
"""

import pytest

from repro import engines
from repro.parallel import pool_map


@pytest.fixture(autouse=True)
def _pristine(monkeypatch):
    """Each test starts with no env overrides and 'auto' defaults."""
    for name in (
        engines.SCALAR_NETSIM_ENV,
        engines.NO_CC_ENV,
        engines.SCALAR_MAPPING_ENV,
    ):
        monkeypatch.delenv(name, raising=False)
    before = engines.default_engines()
    engines.set_default_engines(netsim="auto", mapping="auto")
    yield
    engines.set_default_engines(**before)


def test_auto_resolves_to_c_then_numpy_then_scalar(monkeypatch):
    assert engines.resolve_netsim_engine("auto") == "c"
    monkeypatch.setenv(engines.NO_CC_ENV, "1")
    assert engines.resolve_netsim_engine("auto") == "numpy"
    monkeypatch.setenv(engines.SCALAR_NETSIM_ENV, "1")
    assert engines.resolve_netsim_engine("auto") == "scalar"


def test_explicit_argument_wins_over_process_default():
    engines.set_default_engines(netsim="scalar")
    assert engines.resolve_netsim_engine("auto") == "scalar"
    assert engines.resolve_netsim_engine("numpy") == "numpy"


def test_env_override_wins_over_explicit_argument(monkeypatch):
    monkeypatch.setenv(engines.SCALAR_NETSIM_ENV, "1")
    assert engines.resolve_netsim_engine("c") == "scalar"
    monkeypatch.delenv(engines.SCALAR_NETSIM_ENV)
    monkeypatch.setenv(engines.NO_CC_ENV, "1")
    assert engines.resolve_netsim_engine("c") == "numpy"
    # NO_CC only demotes the C kernel; other requests are untouched.
    assert engines.resolve_netsim_engine("scalar") == "scalar"


def test_mapping_resolution_ladder(monkeypatch):
    assert engines.resolve_mapping_engine("auto") == "fast"
    engines.set_default_engines(mapping="scalar")
    assert engines.resolve_mapping_engine("auto") == "scalar"
    assert engines.resolve_mapping_engine("fast") == "fast"
    monkeypatch.setenv(engines.SCALAR_MAPPING_ENV, "1")
    assert engines.resolve_mapping_engine("fast") == "scalar"


def test_unknown_engine_names_rejected():
    with pytest.raises(ValueError, match="unknown netsim engine"):
        engines.resolve_netsim_engine("turbo")
    with pytest.raises(ValueError, match="unknown mapping engine"):
        engines.set_default_engines(mapping="turbo")
    # A failed set_default_engines must not partially apply.
    assert engines.default_engines() == {"netsim": "auto", "mapping": "auto"}


def _resolved_in_worker(_dummy):
    from repro.engines import resolve_mapping_engine, resolve_netsim_engine

    return (resolve_netsim_engine("auto"), resolve_mapping_engine("auto"))


def test_process_defaults_cross_pool_boundary():
    """set_default_engines in the parent pins workers too (satellite)."""
    engines.set_default_engines(netsim="numpy", mapping="scalar")
    results = pool_map(_resolved_in_worker, [(0,), (1,)], jobs=2)
    assert results == [("numpy", "scalar"), ("numpy", "scalar")]
