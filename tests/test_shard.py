"""Shard runner: coordinator + two local runner processes, one host.

The satellite acceptance test for :mod:`repro.shard`: a small sweep
coordinated over the queue protocol with two runner processes must
produce results bit-identical to a plain serial run, and the
coordinator must finish the work itself when no runners show up.
"""

import pytest

from repro import shard
from repro.experiments.runner import run_experiments

SAMPLE_IDS = ["fig01", "tab06"]


def test_shard_round_trip_two_runners():
    stats = {}
    sharded = shard.coordinate(
        SAMPLE_IDS,
        fast=True,
        local_runners=2,
        result_timeout=120.0,
        stats_out=stats,
    )
    serial = run_experiments(SAMPLE_IDS, fast=True)
    assert [r.experiment_id for r in sharded] == SAMPLE_IDS
    for got, want in zip(sharded, serial):
        assert got == want, got.experiment_id
    assert stats["units"] == stats["sharded"] + stats["local"]
    assert stats["sharded"] > 0, "runners should have executed units"


def test_coordinator_completes_without_runners():
    # Zero runners + a tiny watchdog: every unit times out on the queue
    # and is executed locally, so the run still completes correctly.
    stats = {}
    (result,) = shard.coordinate(
        ["fig01"],
        fast=True,
        local_runners=0,
        result_timeout=0.2,
        stats_out=stats,
    )
    (serial,) = run_experiments(["fig01"], fast=True)
    assert result == serial
    assert stats["local"] == stats["units"]


def test_runner_reported_error_is_retried_locally(monkeypatch):
    # A unit that fails on every runner (crashy raises outside the
    # main process) must be retried by the coordinator and succeed.
    stats = {}
    from repro.experiments import base

    real_get_spec = base.get_spec

    def fake_get_spec(experiment_id):
        if experiment_id == "crashy":
            return base.ExperimentSpec(
                experiment_id="crashy",
                module_name="tests.experiments._crashy_exp",
            )
        return real_get_spec(experiment_id)

    monkeypatch.setattr(shard, "get_spec", fake_get_spec)
    (result,) = shard.coordinate(
        ["crashy"],
        fast=True,
        local_runners=1,
        result_timeout=120.0,
        stats_out=stats,
    )
    assert result.rows == [(0, 0), (1, 1), (2, 4)]
    assert stats["local"] == stats["units"] == 3
