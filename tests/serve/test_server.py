"""End-to-end serve tests: real sockets, real dispatcher, real pool.

Each test boots a :class:`ServeServer` on a kernel-picked loopback
port inside the test's event loop and speaks actual HTTP/1.1 to it.
"""

import asyncio
import json

import pytest

from repro.serve.dispatch import Dispatcher, ResponseCache
from repro.serve.server import ServeServer

SIM_QUERY = {
    "network": "single-router",
    "terminals": 8,
    "vcs": 2,
    "buffer_flits": 8,
    "loads": [0.1],
    "warmup_cycles": 50,
    "measure_cycles": 100,
}


async def http(port, method, path, body=None, raw_body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        data = raw_body if raw_body is not None else (
            b"" if body is None else json.dumps(body).encode()
        )
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {len(data)}\r\nConnection: close\r\n\r\n"
            ).encode()
            + data
        )
        await writer.drain()
        response = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    head, _, payload = response.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    if b"Transfer-Encoding: chunked" in head:
        decoded = b""
        while payload:
            size_line, _, rest = payload.partition(b"\r\n")
            size = int(size_line, 16)
            if size == 0:
                break
            decoded += rest[:size]
            payload = rest[size + 2:]
        return status, decoded
    return status, payload


def run_with_server(scenario, tmp_path):
    """Boot a server around ``scenario(port, dispatcher)``, tear down."""

    async def body():
        dispatcher = Dispatcher(cache=ResponseCache(tmp_path / "serve"))
        server = ServeServer(dispatcher, port=0)
        await server.start()
        try:
            return await scenario(server.port, dispatcher)
        finally:
            await server.stop()

    return asyncio.run(body())


def test_healthz_stats_and_routing(tmp_path):
    async def scenario(port, dispatcher):
        status, payload = await http(port, "GET", "/healthz")
        assert (status, json.loads(payload)) == (200, {"ok": True})
        status, payload = await http(port, "GET", "/v1/stats")
        assert status == 200
        assert json.loads(payload)["counters"]["requests"] == 0
        status, _ = await http(port, "GET", "/v1/nope")
        assert status == 404
        status, _ = await http(port, "POST", "/v1/nope", {})
        assert status == 404
        status, payload = await http(
            port, "POST", "/v1/simulate", raw_body=b"{corrupt"
        )
        assert status == 400
        assert json.loads(payload)["error"]["type"] == "BadJSON"
        # A kind that contradicts the route is rejected, not guessed.
        status, _ = await http(
            port, "POST", "/v1/design", {"kind": "simulate"}
        )
        assert status == 400

    run_with_server(scenario, tmp_path)


def test_cold_then_warm_query_through_real_pool(tmp_path, monkeypatch):
    """Satellite/CI shape: cold query computes on the shared pool, the
    identical warm query is answered from the response cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))

    async def scenario(port, dispatcher):
        status, payload = await http(port, "POST", "/v1/simulate", SIM_QUERY)
        assert status == 200
        cold = json.loads(payload)
        assert cold["kind"] == "simulate"
        assert dispatcher.counters["pool_submissions"] == 1

        status, payload = await http(port, "POST", "/v1/simulate", SIM_QUERY)
        assert status == 200
        assert json.loads(payload) == cold
        assert dispatcher.counters["cache_hits"] == 1
        assert dispatcher.counters["pool_submissions"] == 1  # unchanged

    run_with_server(scenario, tmp_path)


def test_streaming_telemetry_over_chunked_ndjson(tmp_path):
    query = {**SIM_QUERY, "telemetry": True, "loads": [0.1, 0.2], "seed": 5}

    async def scenario(port, dispatcher):
        status, payload = await http(
            port, "POST", "/v1/simulate?stream=1", query
        )
        assert status == 200
        events = [json.loads(line) for line in payload.decode().splitlines()]
        assert [e["event"] for e in events] == [
            "telemetry",
            "telemetry",
            "result",
        ]
        assert [e["load"] for e in events[:-1]] == [0.1, 0.2]
        assert events[0]["report"]["schema"] == "repro-netsim-telemetry"
        result = events[-1]
        assert result["status"] == 200
        assert len(result["body"]["result"]["points"]) == 2
        assert dispatcher.counters["streamed"] == 1

        # The streamed response landed in the cache; a warm stream
        # replays the same telemetry without recomputing.
        status, payload = await http(
            port, "POST", "/v1/simulate?stream=1", query
        )
        events = [json.loads(line) for line in payload.decode().splitlines()]
        assert [e["event"] for e in events] == [
            "telemetry",
            "telemetry",
            "result",
        ]
        assert dispatcher.counters["cache_hits"] == 1

    run_with_server(scenario, tmp_path)


def test_stream_rejects_non_simulate_queries(tmp_path):
    async def scenario(port, dispatcher):
        # stream=1 without telemetry falls back to a plain response.
        status, payload = await http(
            port, "POST", "/v1/simulate?stream=1", {**SIM_QUERY, "seed": 9}
        )
        assert status == 200
        assert json.loads(payload)["kind"] == "simulate"

        status, payload = await http(
            port, "POST", "/v1/query?stream=1", {"kind": "design", "telemetry": True}
        )
        assert status == 200  # chunked error stream
        events = [json.loads(line) for line in payload.decode().splitlines()]
        assert events[-1]["status"] == 400
        assert events[-1]["body"]["error"]["type"] == "QueryError"

    run_with_server(scenario, tmp_path)
