"""Dispatcher unit tests: coalescing, crash isolation, caching.

The executor is injected, so these tests control exactly when (and
whether) cold work completes — no process pool, no timing races.
"""

import asyncio
import json
from concurrent.futures import Future

import pytest

from repro import api
from repro.serve.dispatch import Dispatcher, ResponseCache

QUERY = {
    "kind": "simulate",
    "network": "single-router",
    "terminals": 8,
    "vcs": 2,
    "buffer_flits": 8,
    "loads": [0.2],
    "warmup_cycles": 50,
    "measure_cycles": 100,
}


class FakeExecutor:
    """Records submissions; the test resolves the futures by hand."""

    def __init__(self):
        self.futures = []

    def submit(self, fn, *args, **kwargs):
        del fn, args, kwargs
        future = Future()
        self.futures.append(future)
        return future


async def _settled(dispatcher, n, resolve):
    """n concurrent identical submits; ``resolve(executor)`` fires once
    every waiter is parked on the in-flight future."""
    tasks = [
        asyncio.ensure_future(dispatcher.submit(dict(QUERY))) for _ in range(n)
    ]
    # Let every task reach its await point (cache miss -> coalesce).
    for _ in range(10):
        await asyncio.sleep(0)
    resolve()
    return await asyncio.gather(*tasks)


def test_concurrent_identical_cold_queries_submit_once():
    """Satellite: N identical in-flight queries -> one pool submission."""
    executor = FakeExecutor()
    dispatcher = Dispatcher(executor=executor, cache=None)

    async def scenario():
        return await _settled(
            dispatcher,
            25,
            lambda: executor.futures[0].set_result({"ok": True}),
        )

    outcomes = asyncio.run(scenario())
    assert len(executor.futures) == 1
    assert all(outcome == (200, {"ok": True}) for outcome in outcomes)
    counters = dispatcher.counters
    assert counters["requests"] == 25
    assert counters["pool_submissions"] == 1
    assert counters["coalesced"] == 24
    assert dispatcher.stats()["dedup_ratio"] == pytest.approx(24 / 25)


def test_crash_returns_structured_error_to_all_waiters(tmp_path):
    """Satellite: a crashing cold query faults every waiter identically
    and leaves nothing in the response cache."""
    executor = FakeExecutor()
    cache = ResponseCache(tmp_path)
    dispatcher = Dispatcher(executor=executor, cache=cache)

    async def scenario():
        return await _settled(
            dispatcher,
            10,
            lambda: executor.futures[0].set_exception(
                RuntimeError("worker exploded")
            ),
        )

    outcomes = asyncio.run(scenario())
    assert len(executor.futures) == 1
    for status, body in outcomes:
        assert status == 500
        assert body["error"]["type"] == "RuntimeError"
        assert "worker exploded" in body["error"]["message"]
    # The cache was not poisoned: no entry exists, and a retry of the
    # same query goes back to the pool instead of replaying the error.
    assert list(tmp_path.iterdir()) == []

    async def retry():
        task = asyncio.ensure_future(dispatcher.submit(dict(QUERY)))
        for _ in range(10):
            await asyncio.sleep(0)
        executor.futures[1].set_result({"ok": True})
        return await task

    assert asyncio.run(retry()) == (200, {"ok": True})
    # One failed computation -> one error, however many waiters shared it.
    assert dispatcher.counters["errors"] == 1
    assert dispatcher.counters["pool_submissions"] == 2


def test_completed_response_is_cached_and_served_warm(tmp_path):
    executor = FakeExecutor()
    dispatcher = Dispatcher(executor=executor, cache=ResponseCache(tmp_path))

    async def scenario():
        first = asyncio.ensure_future(dispatcher.submit(dict(QUERY)))
        for _ in range(10):
            await asyncio.sleep(0)
        executor.futures[0].set_result({"answer": 42})
        assert await first == (200, {"answer": 42})
        # Same query again: served from disk, no new submission.
        return await dispatcher.submit(dict(QUERY))

    assert asyncio.run(scenario()) == (200, {"answer": 42})
    assert len(executor.futures) == 1
    assert dispatcher.counters["cache_hits"] == 1
    # The entry is plain JSON on disk under the content key.
    key = api.query_key(api.query_from_dict(dict(QUERY)))
    entry = tmp_path / f"response-{key}.json"
    assert json.loads(entry.read_text()) == {"answer": 42}


def test_malformed_queries_answered_without_submission():
    executor = FakeExecutor()
    dispatcher = Dispatcher(executor=executor, cache=None)

    async def scenario():
        return [
            await dispatcher.submit(payload)
            for payload in (
                "not a dict",
                {"no": "kind"},
                {"kind": "simulate", "pattern": 3.14, "loads": "xyz"},
                {"kind": "design", "wattage": 9000},
            )
        ]

    outcomes = asyncio.run(scenario())
    assert [status for status, _ in outcomes] == [400, 400, 400, 400]
    assert all(body["error"]["type"] == "QueryError" for _, body in outcomes)
    assert executor.futures == []
    assert dispatcher.counters["errors"] == 4


def test_distinct_queries_do_not_coalesce():
    executor = FakeExecutor()
    dispatcher = Dispatcher(executor=executor, cache=None)

    async def scenario():
        a = asyncio.ensure_future(dispatcher.submit(dict(QUERY)))
        b = asyncio.ensure_future(dispatcher.submit({**QUERY, "seed": 7}))
        for _ in range(10):
            await asyncio.sleep(0)
        executor.futures[0].set_result({"which": "a"})
        executor.futures[1].set_result({"which": "b"})
        return await asyncio.gather(a, b)

    outcomes = asyncio.run(scenario())
    assert len(executor.futures) == 2
    assert dispatcher.counters["coalesced"] == 0
    assert {body["which"] for _, body in outcomes} == {"a", "b"}


def test_unreadable_cache_entry_is_a_miss(tmp_path):
    cache = ResponseCache(tmp_path)
    key = api.query_key(api.query_from_dict(dict(QUERY)))
    cache.directory.mkdir(parents=True, exist_ok=True)
    cache.entry_path(key).write_text("{corrupt json")
    assert cache.load(key) is None
    assert cache.clear() == 1
