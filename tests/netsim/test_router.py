"""Router pipeline behaviour on a single router."""

import pytest

from repro.netsim.config import RouterConfig
from repro.netsim.network import single_router_network
from repro.netsim.packet import Packet


def _run(network, cycles):
    for _ in range(cycles):
        network.step()


def test_single_packet_delivery():
    network = single_router_network(4)
    packet = Packet(0, 2, 4, 0)
    network.terminals[0].offer_packet(packet)
    _run(network, 60)
    assert network.terminals[2].flits_received == 4
    assert packet.arrive_cycle > 0


def test_zero_load_latency_components():
    """io + RC + per-flit pipeline + io: a 1-flit packet's floor."""
    network = single_router_network(
        4, routing_delay=1, pipeline_delay=1, io_latency=1
    )
    packet = Packet(0, 1, 1, 0)
    network.terminals[0].offer_packet(packet)
    _run(network, 20)
    # inject(1) + RC(1) + SA + ST(1+1) + eject(1) ~ 5-6 cycles
    assert 4 <= packet.latency_cycles <= 8


def test_routing_delay_adds_latency():
    fast = single_router_network(4, routing_delay=1)
    slow = single_router_network(4, routing_delay=8)
    p_fast, p_slow = Packet(0, 1, 2, 0), Packet(0, 1, 2, 0)
    fast.terminals[0].offer_packet(p_fast)
    slow.terminals[0].offer_packet(p_slow)
    _run(fast, 40)
    _run(slow, 40)
    assert p_slow.latency_cycles == p_fast.latency_cycles + 7


def test_flits_stay_in_order():
    network = single_router_network(4)
    packet = Packet(0, 3, 6, 0)
    network.terminals[0].offer_packet(packet)
    received = []
    original_receive = network.terminals[3].receive

    def spy(flit, now):
        received.append(flit.index)
        original_receive(flit, now)

    network.terminals[3].receive = spy
    _run(network, 60)
    assert received == list(range(6))


def test_two_sources_one_destination_all_delivered():
    network = single_router_network(4)
    p1, p2 = Packet(0, 2, 4, 0), Packet(1, 2, 4, 0)
    network.terminals[0].offer_packet(p1)
    network.terminals[1].offer_packet(p2)
    _run(network, 80)
    assert network.terminals[2].flits_received == 8
    assert p1.arrive_cycle > 0 and p2.arrive_cycle > 0


def test_no_flit_loss_under_burst():
    network = single_router_network(4, buffer_flits_per_port=8, num_vcs=2)
    total = 0
    for i in range(10):
        network.terminals[0].offer_packet(Packet(0, 1 + i % 3, 3, 0))
        total += 3
    _run(network, 300)
    delivered = sum(t.flits_received for t in network.terminals)
    assert delivered == total
    assert network.in_flight_flits() == 0


def test_buffer_never_overflows():
    """Credits must keep occupancy within the shared pool (else the
    router raises an AssertionError)."""
    network = single_router_network(6, buffer_flits_per_port=4, num_vcs=2)
    for i in range(20):
        network.terminals[i % 6].offer_packet(
            Packet(i % 6, (i + 1) % 6, 4, 0)
        )
    _run(network, 500)  # would raise on protocol violation
    assert network.in_flight_flits() == 0


def test_router_counts_forwarded_flits():
    network = single_router_network(4)
    network.terminals[0].offer_packet(Packet(0, 1, 5, 0))
    _run(network, 60)
    assert network.routers[0].flits_forwarded == 5


def test_config_validation():
    with pytest.raises(ValueError):
        RouterConfig(num_vcs=0)
    with pytest.raises(ValueError):
        RouterConfig(num_vcs=8, buffer_flits_per_port=4)
    with pytest.raises(ValueError):
        RouterConfig(routing_delay=-1)
