"""Trace generation and replay."""

import pytest

from repro.netsim.network import waferscale_clos_network
from repro.netsim.trace import (
    TRACE_NAMES,
    SyntheticTraceSpec,
    TraceEvent,
    duplicate_trace,
    replay_trace,
    synthetic_nersc_trace,
)


def test_event_validation():
    with pytest.raises(ValueError):
        TraceEvent(-1, 0, 1, 1)
    with pytest.raises(ValueError):
        TraceEvent(0, 2, 2, 1)
    with pytest.raises(ValueError):
        TraceEvent(0, 0, 1, 0)


def test_all_traces_generate():
    spec = SyntheticTraceSpec(n_nodes=16, iterations=2)
    for name in TRACE_NAMES:
        events = synthetic_nersc_trace(name, spec)
        assert events, name
        assert all(0 <= e.src < 16 and 0 <= e.dst < 16 for e in events)
        cycles = [e.cycle for e in events]
        assert cycles == sorted(cycles)


def test_unknown_trace_rejected():
    with pytest.raises(ValueError):
        synthetic_nersc_trace("hpl", SyntheticTraceSpec(n_nodes=16))


def test_lulesh_is_local_and_bursty():
    """LULESH: halo exchange -> all messages at iteration boundaries."""
    spec = SyntheticTraceSpec(n_nodes=8, iterations=2, iteration_gap_cycles=100)
    events = synthetic_nersc_trace("lulesh", spec)
    assert all(e.cycle % 100 < 10 for e in events)


def test_nekbone_has_allreduce_partners():
    spec = SyntheticTraceSpec(n_nodes=16, iterations=1)
    events = synthetic_nersc_trace("nekbone", spec)
    xor_partners = {(e.src, e.dst) for e in events if e.size_flits == 1}
    assert (0, 1) in xor_partners and (0, 2) in xor_partners


def test_nekbone_requires_power_of_two():
    with pytest.raises(ValueError):
        synthetic_nersc_trace("nekbone", SyntheticTraceSpec(n_nodes=12))


def test_multigrid_strides_grow():
    spec = SyntheticTraceSpec(n_nodes=32, iterations=1)
    events = synthetic_nersc_trace("multigrid", spec)
    strides = {(e.dst - e.src) % 32 for e in events}
    assert {1, 2, 4} <= strides


def test_duplicate_trace_offsets_copies():
    events = [TraceEvent(0, 0, 1, 2)]
    doubled = duplicate_trace(events, copies=2, nodes_per_copy=8)
    assert len(doubled) == 2
    assert {(e.src, e.dst) for e in doubled} == {(0, 1), (8, 9)}


def test_duplicate_preserves_timing():
    events = [TraceEvent(5, 0, 1, 2), TraceEvent(9, 1, 0, 1)]
    doubled = duplicate_trace(events, copies=3, nodes_per_copy=4)
    assert sorted({e.cycle for e in doubled}) == [5, 9]


def test_replay_delivers_everything():
    network = waferscale_clos_network(32, 8, num_vcs=2, buffer_flits_per_port=8)
    spec = SyntheticTraceSpec(n_nodes=16, iterations=1)
    events = duplicate_trace(
        synthetic_nersc_trace("nekbone", spec), copies=2, nodes_per_copy=16
    )
    stats = replay_trace(network, events)
    assert stats.flits_delivered == stats.flits_offered
    assert stats.packets_delivered == len(events)


def test_replay_compression_speeds_completion():
    spec = SyntheticTraceSpec(n_nodes=16, iterations=2, iteration_gap_cycles=400)
    events = synthetic_nersc_trace("multigrid", spec)

    def run(compression):
        network = waferscale_clos_network(
            16, 8, num_vcs=2, buffer_flits_per_port=8
        )
        return replay_trace(network, events, compression=compression)

    slow = run(1.0)
    fast = run(8.0)
    assert fast.measure_end < slow.measure_end


def test_replay_rejects_bad_compression():
    network = waferscale_clos_network(16, 8, num_vcs=2, buffer_flits_per_port=8)
    with pytest.raises(ValueError):
        replay_trace(network, [], compression=0.0)
