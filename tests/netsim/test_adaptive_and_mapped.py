"""Adaptive spine selection and non-uniform mapped link latencies."""

import pytest

from repro.netsim.config import RouterConfig
from repro.netsim.network import (
    clos_network,
    mapped_pair_latency_fn,
    waferscale_clos_network,
)
from repro.netsim.packet import Packet
from repro.netsim.sim import saturation_throughput
from repro.netsim.traffic import make_pattern


def _config():
    return RouterConfig(num_vcs=4, buffer_flits_per_port=16)


def test_adaptive_network_delivers():
    network = clos_network(
        "adaptive", 64, 16, _config(), 1, 2, spine_selection="adaptive"
    )
    packet = Packet(0, 63, 4, 0)
    network.terminals[0].offer_packet(packet)
    for _ in range(300):
        network.step()
    assert packet.arrive_cycle > 0


def test_invalid_spine_selection_rejected():
    with pytest.raises(ValueError):
        clos_network("bad", 64, 16, _config(), 1, 2, spine_selection="magic")


def test_adaptive_at_least_as_good_on_hotspot():
    """Credit-based adaptivity should not lose to oblivious hashing
    under skewed traffic."""

    def build(selection):
        return lambda: clos_network(
            selection, 64, 16, _config(), 1, 2, spine_selection=selection
        )

    adaptive = saturation_throughput(
        build("adaptive"),
        lambda n: make_pattern("hotspot", n),
        warmup_cycles=200,
        measure_cycles=600,
    )
    oblivious = saturation_throughput(
        build("hash"),
        lambda n: make_pattern("hotspot", n),
        warmup_cycles=200,
        measure_cycles=600,
    )
    assert adaptive >= 0.8 * oblivious


def test_mapped_pair_latencies_from_mapping():
    from repro.core.design import cached_mapping
    from repro.mapping.routing import IOStyle
    from repro.topology.clos import folded_clos

    topology = folded_clos(1024)
    mapping = cached_mapping(topology, IOStyle.PERIPHERY)
    pair_fn = mapped_pair_latency_fn(mapping)
    shape_leaves = len(topology.leaves())
    shape_spines = len(topology.spines())
    latencies = [
        pair_fn(leaf, spine)
        for leaf in range(shape_leaves)
        for spine in range(shape_spines)
    ]
    assert all(lat >= 1 for lat in latencies)
    assert max(latencies) > min(latencies)  # genuinely non-uniform


def test_nonuniform_latency_does_not_hurt_throughput():
    """Section IV: mapping-induced non-uniform latencies do not affect
    the switch's performance (input buffers absorb them)."""
    def uniform_factory():
        return waferscale_clos_network(
            64, 16, num_vcs=4, buffer_flits_per_port=16, link_latency=2
        )

    def nonuniform_factory():
        # Alternate 1- and 3-cycle links around the same 2-cycle mean.
        return clos_network(
            "nonuniform",
            64,
            16,
            RouterConfig(
                num_vcs=4,
                buffer_flits_per_port=16,
                routing_delay=1,
                pipeline_delay=11,
            ),
            inter_switch_latency=2,
            io_latency=8,
            ingress_routing_delay=2,
            pair_latency_fn=lambda leaf, spine: 1 + 2 * ((leaf + spine) % 2),
        )

    uniform = saturation_throughput(
        uniform_factory,
        lambda n: make_pattern("uniform", n),
        warmup_cycles=300,
        measure_cycles=700,
    )
    nonuniform = saturation_throughput(
        nonuniform_factory,
        lambda n: make_pattern("uniform", n),
        warmup_cycles=300,
        measure_cycles=700,
    )
    assert nonuniform == pytest.approx(uniform, rel=0.15)


def test_new_traffic_patterns():
    import random

    from repro.netsim.traffic import make_pattern

    rng = random.Random(0)
    tornado = make_pattern("tornado", 16)
    assert tornado.destination(3, rng) == 11
    reverse = make_pattern("bit-reverse", 16)
    assert reverse.destination(1, rng) == 8  # 0b0001 -> 0b1000
    assert reverse.destination(6, rng) == 6 or reverse.destination(6, rng) == 7
