"""Synthetic traffic patterns."""

import random
from collections import Counter

import pytest

from repro.netsim.traffic import (
    BernoulliInjector,
    TRAFFIC_PATTERNS,
    make_pattern,
)


def test_all_patterns_constructible():
    for name in TRAFFIC_PATTERNS:
        pattern = make_pattern(name, 64)
        rng = random.Random(1)
        for src in range(64):
            dst = pattern.destination(src, rng)
            assert 0 <= dst < 64
            assert dst != src


def test_unknown_pattern_rejected():
    with pytest.raises(ValueError):
        make_pattern("zipf", 64)


def test_uniform_covers_destinations():
    pattern = make_pattern("uniform", 16)
    rng = random.Random(0)
    destinations = {pattern.destination(3, rng) for _ in range(500)}
    assert destinations == set(range(16)) - {3}


def test_transpose_is_involution():
    pattern = make_pattern("transpose", 64)
    rng = random.Random(0)
    for src in range(64):
        dst = pattern.destination(src, rng)
        if dst != (src + 1) % 64:  # skip self-redirects
            assert pattern.destination(dst, rng) == src


def test_bit_complement_fixed():
    pattern = make_pattern("bit-complement", 32)
    rng = random.Random(0)
    assert pattern.destination(0, rng) == 31
    assert pattern.destination(5, rng) == 26


def test_shuffle_rotates_bits():
    pattern = make_pattern("shuffle", 8)
    rng = random.Random(0)
    # 3 = 0b011 -> 0b110 = 6
    assert pattern.destination(3, rng) == 6


def test_neighbor_wraps():
    pattern = make_pattern("neighbor", 10)
    rng = random.Random(0)
    assert pattern.destination(9, rng) == 0


def test_power_of_two_required():
    with pytest.raises(ValueError):
        make_pattern("transpose", 48)


def test_hotspot_concentrates_traffic():
    pattern = make_pattern("hotspot", 64)
    rng = random.Random(2)
    counts = Counter(pattern.destination(7, rng) for _ in range(4000))
    top = counts.most_common(4)
    share = sum(count for _, count in top) / 4000
    assert share > 0.15  # 20% hotspot fraction across 4 hotspots


def test_asymmetric_prefers_first_half():
    pattern = make_pattern("asymmetric", 64)
    rng = random.Random(3)
    first_half = sum(
        1 for _ in range(2000) if pattern.destination(40, rng) < 32
    )
    assert first_half / 2000 > 0.6


def test_bernoulli_rate():
    pattern = make_pattern("uniform", 8)
    injector = BernoulliInjector(pattern, 0.4, packet_size_flits=4, seed=5)
    generated = sum(
        1
        for cycle in range(20000)
        if injector.generate(cycle, cycle % 8) is not None
    )
    # 0.4 flits/cycle at 4-flit packets = 0.1 packets/cycle.
    assert generated / 20000 == pytest.approx(0.1, rel=0.1)


def test_bernoulli_rejects_overload():
    pattern = make_pattern("uniform", 8)
    with pytest.raises(ValueError):
        BernoulliInjector(pattern, 1.5, 4)
