"""Links and credit channels."""

import pytest

from repro.netsim.link import CreditChannel, Link
from repro.netsim.packet import Packet, flits_of


def _flit():
    return flits_of(Packet(0, 1, 1, 0))[0]


def test_link_delivers_after_latency():
    link = Link(3)
    flit = _flit()
    link.send(flit, now=0)
    assert link.deliver(1) == []
    assert link.deliver(2) == []
    assert link.deliver(3) == [flit]


def test_link_preserves_order():
    link = Link(2)
    f1, f2 = _flit(), _flit()
    link.send(f1, now=0)
    link.send(f2, now=1)
    assert link.deliver(2) == [f1]
    assert link.deliver(3) == [f2]


def test_link_extra_delay():
    link = Link(1)
    flit = _flit()
    link.send(flit, now=0, extra_delay=4)
    assert link.deliver(4) == []
    assert link.deliver(5) == [flit]


def test_link_occupancy():
    link = Link(5)
    link.send(_flit(), now=0)
    link.send(_flit(), now=0)
    assert link.occupancy == 2
    link.deliver(5)
    assert link.occupancy == 0


def test_link_rejects_zero_latency():
    with pytest.raises(ValueError):
        Link(0)


def test_credit_channel_sums():
    channel = CreditChannel(2)
    channel.send(1, now=0)
    channel.send(3, now=0)
    assert channel.deliver(1) == 0
    assert channel.deliver(2) == 4
    assert channel.deliver(3) == 0
