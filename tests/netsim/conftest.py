"""Netsim test fixtures: fast-tier simulation budgets.

The fast tier (``pytest -m "not slow"``) must finish in well under a
minute, so when slow tests are deselected the *default* warmup /
measure / drain budgets of :meth:`Simulator.run` shrink for the whole
session. Tests that pass explicit cycle counts (every current netsim
test, including the golden-parity harness) are unaffected; the shrink
only guards against a future default-budget ``run()`` call dragging
the fast tier past its budget. The full suite keeps the original
Booksim-style depths.
"""

from __future__ import annotations

import pytest

from repro.netsim.sim import Simulator

#: Fast-tier (warmup, measure, drain, telemetry, engine) defaults —
#: must match the arity of Simulator.run's trailing defaulted
#: parameters (defaults right-align, so a mismatched tuple would
#: silently shift budgets onto the wrong parameters).
FAST_RUN_DEFAULTS = (250, 500, 750, None, "auto")


@pytest.fixture(scope="session", autouse=True)
def fast_tier_sim_defaults(request):
    """Shrink Simulator.run's default budgets when slow is deselected."""
    markexpr = getattr(request.config.option, "markexpr", "") or ""
    if "not slow" not in markexpr.replace("'", "").replace('"', ""):
        yield
        return
    original = Simulator.run.__defaults__
    Simulator.run.__defaults__ = FAST_RUN_DEFAULTS
    try:
        yield
    finally:
        Simulator.run.__defaults__ = original
