"""Telemetry layer: correctness, schema, and zero-cost-when-off.

Three classes of guarantee:

* **Observer only** — attaching a sink changes nothing the simulator
  computes (parity test; the golden-parity harness separately pins the
  telemetry-off behaviour to the recorded fixtures).
* **Correct accounting** — histograms match a brute-force
  reconstruction from the run's latency list; counters obey
  conservation (channel loads sum to flits forwarded); the JSON
  round-trips through the schema validator.
* **Near-zero disabled cost** — a telemetry-off run makes *zero* calls
  into ``repro.netsim.telemetry`` (deterministic structural check), and
  an optional strict-mode timing check (``REPRO_BENCH_STRICT=1``)
  bounds the disabled-mode wall-clock overhead at 2 %.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys

import pytest

from repro.netsim.config import RouterConfig, SimConfig
from repro.netsim.mesh_network import mesh_network
from repro.netsim.network import single_router_network, waferscale_clos_network
from repro.netsim.packet import reset_packet_ids
from repro.netsim.sim import run_sim, saturation_throughput
from repro.netsim.telemetry import (
    LatencyHistogram,
    Telemetry,
    validate_telemetry,
)
from repro.netsim.trace import (
    SyntheticTraceSpec,
    replay_trace,
    synthetic_nersc_trace,
)
from repro.netsim.traffic import make_pattern


def small_mesh():
    return mesh_network(
        2,
        2,
        terminals_per_router=2,
        neighbor_channels=1,
        config=RouterConfig(num_vcs=2, buffer_flits_per_port=8),
        io_latency=2,
    )


CFG = SimConfig(
    warmup_cycles=120, measure_cycles=400, drain_cycles=600, seed=11
)


def run_mesh(telemetry=None, load=0.35, seed=11):
    reset_packet_ids()
    cfg = SimConfig(
        warmup_cycles=CFG.warmup_cycles,
        measure_cycles=CFG.measure_cycles,
        drain_cycles=CFG.drain_cycles,
        seed=seed,
    )
    network = small_mesh()
    stats = run_sim(network, "uniform", load, config=cfg, telemetry=telemetry)
    return network, stats


# ----------------------------------------------------------------------
# Observer only
# ----------------------------------------------------------------------

def test_telemetry_does_not_perturb_results():
    _, plain = run_mesh(telemetry=None)
    _, observed = run_mesh(telemetry=Telemetry(sample_interval=4))
    assert observed.latencies_cycles == plain.latencies_cycles
    assert observed.flits_delivered == plain.flits_delivered
    assert observed.flits_offered == plain.flits_offered
    assert observed.packets_created == plain.packets_created


# ----------------------------------------------------------------------
# Histogram correctness
# ----------------------------------------------------------------------

def brute_force_buckets(latencies):
    """Reference bucketing: log2 buckets from the raw latency list."""
    counts = {}
    for latency in latencies:
        index = latency.bit_length() - 1 if latency > 1 else 0
        counts[index] = counts.get(index, 0) + 1
    return [
        [1 << index if index else 0, 1 << (index + 1), count]
        for index, count in sorted(counts.items())
    ]


def test_histogram_matches_brute_force_on_mesh():
    telemetry = Telemetry(sample_interval=8)
    _, stats = run_mesh(telemetry=telemetry)
    assert stats.packets_delivered > 50  # the comparison is non-trivial
    measured = telemetry.to_dict()["windows"][1]
    assert measured["name"] == "measurement"
    histogram = measured["latency"]
    # The measurement-window histogram covers exactly the packets the
    # run's latency list covers: created in the window, delivered by
    # the end of drain (telemetry records on arrival but attributes by
    # creation cycle, matching RunStats.record_arrival's filter).
    assert histogram["total"] == stats.packets_delivered
    assert histogram["min"] == min(stats.latencies_cycles)
    assert histogram["max"] == max(stats.latencies_cycles)
    assert histogram["buckets"] == brute_force_buckets(stats.latencies_cycles)
    assert histogram["avg"] == round(
        sum(stats.latencies_cycles) / len(stats.latencies_cycles), 3
    )


def test_histogram_bucket_edges():
    histogram = LatencyHistogram()
    for latency in (0, 1, 2, 3, 4, 7, 8, 1023, 1024):
        histogram.add(latency)
    buckets = {lo: (hi, count) for lo, hi, count in histogram.to_dict()["buckets"]}
    assert buckets[0] == (2, 2)  # 0 and 1 share the clamped first bucket
    assert buckets[2] == (4, 2)  # 2, 3
    assert buckets[4] == (8, 2)  # 4, 7
    assert buckets[8] == (16, 1)
    assert buckets[512] == (1024, 1)  # 1023
    assert buckets[1024] == (2048, 1)  # 1024
    assert histogram.total == 9


def test_per_flow_histograms():
    telemetry = Telemetry(sample_interval=8, collect_flows=True)
    network, stats = run_mesh(telemetry=telemetry)
    measured = telemetry.to_dict()["windows"][1]
    flows = measured["flows"]
    assert sum(f["total"] for f in flows.values()) == measured["latency"]["total"]
    # Flow keys name real terminal pairs.
    n = network.n_terminals
    for key in flows:
        src, dst = key.split("->")
        assert 0 <= int(src) < n and 0 <= int(dst) < n and src != dst


# ----------------------------------------------------------------------
# Counter conservation and stall attribution
# ----------------------------------------------------------------------

def test_channel_load_conservation():
    telemetry = Telemetry(sample_interval=8)
    network, _ = run_mesh(telemetry=telemetry)
    report = telemetry.to_dict()
    # Summed over all windows, per-router forwarded flits must equal
    # the router's own cumulative counter.
    for router_id, router in enumerate(network.routers):
        forwarded = sum(
            window["routers"][router_id]["flits_forwarded"]
            for window in report["windows"]
        )
        assert forwarded == router.flits_forwarded


def test_saturated_clos_attributes_stalls():
    """At saturation the telemetry must name a non-trivial bottleneck."""
    reset_packet_ids()
    telemetry = Telemetry(sample_interval=16)
    saturation_throughput(
        lambda: waferscale_clos_network(
            32, 8, num_vcs=4, buffer_flits_per_port=8
        ),
        lambda n: make_pattern("uniform", n),
        warmup_cycles=150,
        measure_cycles=400,
        telemetry=telemetry,
    )
    report = telemetry.to_dict()
    validate_telemetry(report)
    measured = next(
        w for w in report["windows"] if w["name"] == "measurement"
    )
    total_stalls = {"credit": 0, "va": 0, "rc": 0, "sa_conflict": 0}
    for router in measured["routers"]:
        for key, value in router["stall_attribution"].items():
            total_stalls[key] += value
    # A line-rate-offered Clos is contended somewhere every cycle.
    assert sum(total_stalls.values()) > measured["cycles"]
    assert total_stalls["sa_conflict"] > 0
    # Injection-side credit stalls: terminals are offered more than the
    # fabric accepts, so source queues back up against credits.
    assert sum(measured["terminals"]["credit_stall_cycles"]) > 0


def test_occupancy_sampling_bounded_by_buffer_capacity():
    telemetry = Telemetry(sample_interval=2)
    network, _ = run_mesh(telemetry=telemetry)
    cap = network.routers[0].buffer_cap
    for window in telemetry.to_dict()["windows"]:
        for router in window["routers"]:
            for avg in router["buffers"]["occupancy_avg_per_port"]:
                assert 0.0 <= avg <= cap
            for peak in router["buffers"]["occupancy_peak_per_port"]:
                assert 0 <= peak <= cap


# ----------------------------------------------------------------------
# Schema round-trip
# ----------------------------------------------------------------------

def test_json_schema_round_trip(tmp_path):
    telemetry = Telemetry(sample_interval=8)
    run_mesh(telemetry=telemetry)
    path = tmp_path / "nested" / "telemetry.json"
    telemetry.write_json(path)
    report = json.loads(path.read_text())
    validate_telemetry(report)
    assert report == json.loads(telemetry.to_json())


def test_validator_rejects_malformed_reports():
    telemetry = Telemetry(sample_interval=8)
    run_mesh(telemetry=telemetry)
    good = telemetry.to_dict()
    validate_telemetry(good)

    def corrupt(mutate):
        report = json.loads(json.dumps(good))
        mutate(report)
        with pytest.raises(ValueError):
            validate_telemetry(report)

    corrupt(lambda r: r.update(schema="something-else"))
    corrupt(lambda r: r.update(version=99))
    corrupt(lambda r: r["windows"][0].pop("latency"))
    corrupt(lambda r: r["windows"][0]["latency"]["buckets"][0].__setitem__(2, 10**9))
    corrupt(lambda r: r["windows"][0]["routers"][0]["stall_attribution"].update(credit=-1))
    corrupt(lambda r: r["windows"][0]["routers"][0]["channel_load_per_port"].append(0))
    corrupt(lambda r: r["windows"][0]["routers"][0].pop("sa"))


def test_trace_replay_window(tmp_path):
    reset_packet_ids()
    telemetry = Telemetry(sample_interval=16)
    events = synthetic_nersc_trace(
        "nekbone", SyntheticTraceSpec(n_nodes=16, iterations=1)
    )
    network = waferscale_clos_network(16, 8, num_vcs=4, buffer_flits_per_port=8)
    stats = replay_trace(network, events, telemetry=telemetry)
    report = telemetry.to_dict()
    validate_telemetry(report)
    (window,) = report["windows"]
    assert window["name"] == "replay"
    assert window["latency"]["total"] == stats.packets_delivered
    assert stats.packets_created == len(events)


# ----------------------------------------------------------------------
# Attach rules
# ----------------------------------------------------------------------

def test_attach_is_exclusive_and_idempotent():
    network = single_router_network(4)
    telemetry = Telemetry()
    telemetry.attach(network)
    telemetry.attach(network)  # idempotent on the same network
    with pytest.raises(ValueError):
        Telemetry().attach(network)  # one sink per network
    with pytest.raises(ValueError):
        telemetry.attach(single_router_network(4))  # one network per sink


def test_sample_interval_validated():
    with pytest.raises(ValueError):
        Telemetry(sample_interval=0)


# ----------------------------------------------------------------------
# Near-zero cost when disabled
# ----------------------------------------------------------------------

def test_disabled_run_never_calls_into_telemetry():
    """With no sink attached, the hot path must not touch telemetry.py.

    This is the deterministic half of the <=2 % overhead budget: the
    disabled path is a handful of ``is not None`` checks, asserted here
    by profiling every function call of a full run and counting frames
    from the telemetry module (must be exactly zero).
    """
    import repro.netsim.telemetry as telemetry_module

    module_file = telemetry_module.__file__
    calls = {"telemetry": 0}

    def profiler(frame, event, arg):
        if event == "call" and frame.f_code.co_filename == module_file:
            calls["telemetry"] += 1

    sys.setprofile(profiler)
    try:
        run_mesh(telemetry=None)
    finally:
        sys.setprofile(None)
    assert calls["telemetry"] == 0


def test_plain_hot_paths_reference_no_telemetry_names():
    """The disabled-mode allocate loops carry zero telemetry bytecode.

    ``Telemetry.attach`` routes instrumented runs through the
    ``*_telemetry`` twins, so the plain ``vc_allocate`` /
    ``switch_allocate`` — the two hottest loops — must not even name
    telemetry state. This is the deterministic half of the <=2 %
    disabled-overhead budget: the only per-cycle cost left is one
    ``telemetry is None`` branch in ``NetworkModel.step``. (The timing
    half is the REPRO_BENCH_STRICT test below.)
    """
    from repro.netsim.router import Router

    for method in (Router.vc_allocate, Router.switch_allocate):
        names = method.__code__.co_names
        assert "telemetry" not in names, (
            f"{method.__name__} touches self.telemetry; instrumentation "
            "belongs in its *_telemetry twin"
        )
    for method in (Router.vc_allocate_telemetry, Router.switch_allocate_telemetry):
        assert "telemetry" in method.__code__.co_names


def test_fast_engine_hot_paths_reference_no_telemetry_names():
    """The vectorized numpy step loop carries zero telemetry bytecode.

    Instrumented vectorized runs go through the compiled C kernel
    (whose counters sit behind one ``s->tel`` flag); without a kernel
    they fall back to the scalar oracle. The numpy loop therefore
    never needs telemetry state, and keeping its bytecode clean is
    what extends the zero-cost-when-off guarantee to the fast engine.
    """
    from repro.netsim.fast_core import FastEngine

    for method in (
        FastEngine._step,
        FastEngine._recv_router,
        FastEngine._recv_terminal,
        FastEngine._inject,
        FastEngine._va,
        FastEngine._va_alloc,
        FastEngine._sa,
        FastEngine._commit,
    ):
        assert "telemetry" not in method.__code__.co_names, (
            f"FastEngine.{method.__name__} touches telemetry state; "
            "vectorized instrumentation belongs in the C kernel "
            "(_fast_step) behind its tel flag"
        )


@pytest.mark.slow
@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_STRICT") != "1",
    reason="timing-sensitive; set REPRO_BENCH_STRICT=1 to enforce the "
    "2% disabled-mode overhead budget on a quiet machine",
)
def test_disabled_overhead_within_bench_baseline():
    """Telemetry-off cycles/sec regresses <=2% vs BENCH_netsim.json.

    Re-times the recorded benchmark workloads on this tree (best of 5)
    and holds the disabled path to 98% of the cycles/sec recorded in
    the repo-root BENCH_netsim.json. Raw timings are first normalized
    by the calibration loop recorded in the same file (shared hosts
    swing 30%+ run to run; the ratio cancels that drift while real
    hot-path regressions survive it). Cross-machine / cross-load
    timing is still inherently jittery, which is why this runs only
    under REPRO_BENCH_STRICT=1 — the deterministic zero-call test
    above is the always-on guard.
    """
    bench_path = (
        pathlib.Path(__file__).resolve().parents[2] / "BENCH_netsim.json"
    )
    if not bench_path.exists():
        pytest.skip("no BENCH_netsim.json recorded on this machine")
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[2] / "benchmarks")
    )
    try:
        from bench_netsim_speed import calibration_score, run_workload
    finally:
        sys.path.pop(0)
    recorded = json.loads(bench_path.read_text())
    if "calibration_ops_per_sec" not in recorded:
        pytest.skip("BENCH_netsim.json predates the calibration probe; "
                    "re-run benchmarks/bench_netsim_speed.py")
    scale = calibration_score(repeats=5) / recorded["calibration_ops_per_sec"]
    for name in ("mesh_8x8_lowload", "mesh_8x8_uniform"):
        baseline = recorded["workloads"][name]["cycles_per_sec"] * scale
        # Contention only ever makes a run slower, never faster, so the
        # best observation across a few attempts is the fair estimate
        # of this tree's unloaded speed; retry before declaring a miss.
        now = 0.0
        for _ in range(4):
            now = max(now, run_workload(name, repeats=3)["cycles_per_sec"])
            if now >= 0.98 * baseline:
                break
        assert now >= 0.98 * baseline, (
            f"{name}: telemetry-off path runs at {now:.0f} cycles/s, "
            f"below the 2% budget floor {0.98 * baseline:.0f} "
            f"(recorded {recorded['workloads'][name]['cycles_per_sec']:.0f} "
            f"c/s, machine-speed scale {scale:.3f})"
        )
