"""Engine toggles shared by the parity and differential suites.

Three implementations produce bit-identical runs:

* the scalar object simulator (the oracle, ``REPRO_SCALAR_NETSIM=1``),
* the vectorized engine's numpy step loop (``REPRO_NETSIM_NO_CC=1``),
* the vectorized engine's compiled C kernel (the default).

These context managers flip the environment switches around a run and
restore whatever was set before, so tests can drive the same scenario
through every engine from one process.
"""

from __future__ import annotations

import contextlib
import os

from repro.netsim._fast_step import NO_CC_ENV
from repro.netsim.fast_core import SCALAR_ENV


@contextlib.contextmanager
def _forced_env(name: str):
    previous = os.environ.get(name)
    os.environ[name] = "1"
    try:
        yield
    finally:
        if previous is None:
            del os.environ[name]
        else:
            os.environ[name] = previous


def scalar_oracle():
    """Force the scalar object simulator (the parity oracle)."""
    return _forced_env(SCALAR_ENV)


def numpy_engine():
    """Force the vectorized engine's numpy loop (no C kernel)."""
    return _forced_env(NO_CC_ENV)


@contextlib.contextmanager
def default_engine():
    """No forcing: the dispatcher's normal choice (C kernel if built)."""
    yield


#: name -> context-manager factory, for parametrized cross-engine runs.
ENGINES = {
    "scalar": scalar_oracle,
    "numpy": numpy_engine,
    "compiled": default_engine,
}
