"""Round-robin arbitration."""

import pytest

from repro.netsim.arbiter import RoundRobinArbiter, rotate_from


def test_grants_requesting_index():
    arb = RoundRobinArbiter(4)
    assert arb.pick([2]) == 2


def test_no_request_no_grant():
    arb = RoundRobinArbiter(4)
    assert arb.pick([]) is None


def test_round_robin_rotation():
    arb = RoundRobinArbiter(3)
    assert arb.pick([0, 1, 2]) == 0
    assert arb.pick([0, 1, 2]) == 1
    assert arb.pick([0, 1, 2]) == 2
    assert arb.pick([0, 1, 2]) == 0


def test_fairness_over_many_rounds():
    arb = RoundRobinArbiter(4)
    grants = {i: 0 for i in range(4)}
    for _ in range(400):
        winner = arb.pick([0, 1, 2, 3])
        grants[winner] += 1
    assert all(count == 100 for count in grants.values())


def test_skips_non_requesting():
    arb = RoundRobinArbiter(4)
    assert arb.pick([3]) == 3
    assert arb.pick([1, 3]) == 1  # pointer moved past 3


def test_rejects_zero_size():
    with pytest.raises(ValueError):
        RoundRobinArbiter(0)


def test_rotate_from():
    assert rotate_from([1, 2, 3, 4], 2) == [3, 4, 1, 2]
    assert rotate_from([], 3) == []
    assert rotate_from([1, 2], 5) == [2, 1]
