"""Differential fuzz harness: the vectorized core vs the scalar oracle.

Hypothesis draws random topologies (mesh / Clos / adaptive Clos /
mapped Clos / single router), traffic patterns, loads and seeds, runs
the identical workload through every engine — the scalar object
simulator (``REPRO_SCALAR_NETSIM=1``), the vectorized numpy loop
(``REPRO_NETSIM_NO_CC=1``) and the compiled C kernel — and requires
bit-identical results: every latency sample, every per-terminal and
per-router flit count, the final cycle and the leftover in-flight
flits.

The fast tier runs a small derandomized corpus (the same examples every
run, so CI failures reproduce locally); ``-m slow`` widens the sweep to
larger shapes, more packet sizes and more examples.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from tests.netsim.engines import ENGINES

from repro.netsim import fast_core
from repro.netsim.config import RouterConfig
from repro.netsim.mesh_network import mesh_network
from repro.netsim.network import (
    clos_network,
    single_router_network,
    waferscale_clos_network,
)
from repro.netsim.packet import reset_packet_ids
from repro.netsim.sim import Simulator
from repro.netsim.trace import TraceEvent, replay_trace
from repro.netsim.traffic import BernoulliInjector, make_pattern

#: Patterns that are valid for every terminal count the specs produce.
PATTERNS = ("uniform", "transpose", "hotspot", "tornado", "neighbor")


def _build(spec: dict):
    config = RouterConfig(
        num_vcs=spec["V"], buffer_flits_per_port=spec["buf"]
    )
    kind = spec["kind"]
    if kind == "mesh":
        return mesh_network(
            spec["rows"],
            spec["cols"],
            terminals_per_router=spec["tpr"],
            neighbor_channels=spec["nc"],
            config=config,
            io_latency=spec["io"],
        )
    if kind == "clos":
        return waferscale_clos_network(
            spec["n"],
            spec["k"],
            num_vcs=spec["V"],
            buffer_flits_per_port=spec["buf"],
            io_latency=spec["io"],
        )
    if kind == "clos_adaptive":
        return clos_network(
            "fuzz-adaptive",
            spec["n"],
            spec["k"],
            config,
            inter_switch_latency=1,
            io_latency=spec["io"],
            spine_selection="adaptive",
        )
    if kind == "clos_mapped":
        mod = spec["mod"]
        return clos_network(
            "fuzz-mapped",
            spec["n"],
            spec["k"],
            config,
            inter_switch_latency=1,
            io_latency=spec["io"],
            pair_latency_fn=lambda leaf, spine: 1 + (leaf + 2 * spine) % mod,
        )
    assert kind == "single"
    return single_router_network(
        spec["n"],
        num_vcs=spec["V"],
        buffer_flits_per_port=spec["buf"],
        io_latency=spec["io"],
    )


@st.composite
def network_specs(draw, deep: bool = False):
    kind = draw(
        st.sampled_from(
            ["mesh", "clos", "clos_adaptive", "clos_mapped", "single"]
        )
    )
    spec = {
        "kind": kind,
        "V": draw(st.sampled_from([1, 2, 4])),
        "buf": draw(st.sampled_from([8, 16])),
        "io": draw(st.integers(min_value=1, max_value=3)),
    }
    if kind == "mesh":
        limit = 4 if deep else 3
        spec["rows"] = draw(st.integers(min_value=2, max_value=limit))
        spec["cols"] = draw(st.integers(min_value=2, max_value=limit))
        spec["tpr"] = draw(st.integers(min_value=1, max_value=2))
        spec["nc"] = draw(st.integers(min_value=1, max_value=2))
    elif kind == "single":
        spec["n"] = draw(st.integers(min_value=4, max_value=8))
    else:
        shapes = [(16, 8), (32, 8)] + ([(64, 16)] if deep else [])
        spec["n"], spec["k"] = draw(st.sampled_from(shapes))
        if kind == "clos_mapped":
            spec["mod"] = draw(st.integers(min_value=2, max_value=4))
    return spec


def _run_summary(spec, pattern_name, load, seed, psize, warmup, measure, drain):
    """One clean-slate run, summarised down to every observable bit."""
    reset_packet_ids()
    network = _build(spec)
    pattern = make_pattern(pattern_name, network.n_terminals)
    sim = Simulator(network, pattern, load, packet_size_flits=psize, seed=seed)
    stats = sim.run(
        warmup_cycles=warmup, measure_cycles=measure, drain_cycles=drain
    )
    return {
        "latencies": list(stats.latencies_cycles),
        "flits_offered": stats.flits_offered,
        "flits_delivered": stats.flits_delivered,
        "packets_created": stats.packets_created,
        "final_cycle": network.cycle,
        "in_flight": network.in_flight_flits(),
        "per_terminal": [
            (t.flits_sent, t.flits_received, len(t.packets_received))
            for t in network.terminals
        ],
        "per_router": [r.flits_forwarded for r in network.routers],
    }


def _assert_engines_agree(spec, pattern_name, load, seed, psize, cycles):
    warmup, measure, drain = cycles
    results = {}
    for engine, ctx in ENGINES.items():
        with ctx():
            results[engine] = _run_summary(
                spec, pattern_name, load, seed, psize, warmup, measure, drain
            )
    reference = results.pop("scalar")
    # Conservation holds on the oracle; equality then carries it over.
    assert reference["flits_offered"] + sum(
        t[0] for t in reference["per_terminal"]
    ) >= reference["flits_delivered"]
    for engine, result in results.items():
        assert result["latencies"] == reference["latencies"], (
            engine,
            spec,
            pattern_name,
            load,
            seed,
        )
        assert result == reference, (engine, spec, pattern_name, load, seed)


@given(
    spec=network_specs(),
    pattern_name=st.sampled_from(PATTERNS),
    load=st.floats(min_value=0.02, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(
    max_examples=12,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_bernoulli_differential(spec, pattern_name, load, seed):
    """Fast tier: a fixed fuzz corpus through all three engines."""
    _assert_engines_agree(spec, pattern_name, load, seed, 4, (30, 100, 300))


@pytest.mark.slow
@given(
    spec=network_specs(deep=True),
    pattern_name=st.sampled_from(PATTERNS),
    load=st.floats(min_value=0.02, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31),
    psize=st.integers(min_value=1, max_value=6),
)
@settings(
    max_examples=60,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_bernoulli_differential_deep(spec, pattern_name, load, seed, psize):
    """Slow tier: larger shapes, variable packet sizes, longer runs."""
    _assert_engines_agree(
        spec, pattern_name, load, seed, psize, (80, 250, 600)
    )


@given(
    spec=network_specs(),
    load=st.floats(min_value=0.05, max_value=0.6),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_flit_conservation_differential(spec, load, seed):
    """With no warmup, offered == delivered + in-flight on every engine."""
    for engine, ctx in ENGINES.items():
        with ctx():
            result = _run_summary(
                spec, "uniform", load, seed, 4, 0, 150, 200
            )
        delivered = sum(t[1] for t in result["per_terminal"])
        assert result["flits_offered"] == delivered + result["in_flight"], (
            engine,
            spec,
        )


@given(
    workload=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=31),  # src
            st.integers(min_value=0, max_value=31),  # dst
            st.integers(min_value=1, max_value=6),  # size
            st.integers(min_value=0, max_value=120),  # cycle
        ),
        min_size=1,
        max_size=60,
    ),
    compression=st.sampled_from([0.5, 1.0, 2.0]),
    max_cycles=st.sampled_from([90, 4000]),
)
@settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_trace_replay_differential(workload, compression, max_cycles):
    """Random event schedules replay identically — truncation included."""
    events = [
        TraceEvent(cycle, src, dst, size)
        for src, dst, size, cycle in workload
        if src != dst
    ]
    assume(events)

    results = {}
    for engine, ctx in ENGINES.items():
        with ctx():
            reset_packet_ids()
            network = waferscale_clos_network(
                32, 8, num_vcs=2, buffer_flits_per_port=8, io_latency=2
            )
            stats = replay_trace(
                network,
                events,
                compression=compression,
                max_cycles=max_cycles,
            )
            results[engine] = {
                "latencies": list(stats.latencies_cycles),
                "flits_offered": stats.flits_offered,
                "flits_delivered": stats.flits_delivered,
                "packets_created": stats.packets_created,
                "final_cycle": network.cycle,
                "in_flight": network.in_flight_flits(),
                "per_terminal": [
                    t.flits_received for t in network.terminals
                ],
            }
    reference = results.pop("scalar")
    for engine, result in results.items():
        assert result == reference, (engine, compression, max_cycles)


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    load=st.floats(min_value=0.01, max_value=0.9),
    cycles=st.integers(min_value=1, max_value=80),
)
@settings(max_examples=25, deadline=None, derandomize=True)
def test_pregen_uniform_matches_python_rng(seed, load, cycles):
    """The C Bernoulli pre-generator replays CPython's MT bit-for-bit.

    The kernel transliterates ``random()`` and the ``randrange``
    rejection loop; this pins its event stream *and* the handed-back
    RNG state against a pure-Python replay of the same draws.
    """
    reset_packet_ids()
    network = mesh_network(
        2,
        2,
        terminals_per_router=2,
        neighbor_channels=1,
        config=RouterConfig(num_vcs=2, buffer_flits_per_port=8),
    )
    engine = fast_core.engine_for(network)
    if engine is None:
        # The scalar oracle has no pre-generator to pin; with
        # REPRO_SCALAR_NETSIM=1 forced, assume() would filter every
        # input and trip hypothesis' health check instead of skipping.
        pytest.skip("no fast engine available (scalar oracle forced)")
    pattern = make_pattern("uniform", network.n_terminals)
    injector = BernoulliInjector(pattern, load, 4, seed=seed)
    reference_rng = random.Random()
    reference_rng.setstate(injector.rng.getstate())

    pre = engine._c_pregen(injector, cycles)
    if pre is None:
        pytest.skip("no C toolchain in this environment")
    ev_when, ev_term, ev_dst, ev_gid = pre

    expected = []
    probability = injector.packet_probability
    for now in range(cycles):
        for term in range(network.n_terminals):
            if reference_rng.random() < probability:
                expected.append(
                    (now, term, pattern.destination(term, reference_rng))
                )
    got = list(
        zip(ev_when.tolist(), ev_term.tolist(), ev_dst.tolist())
    )
    assert got == expected
    assert injector.rng.getstate() == reference_rng.getstate()
    assert ev_gid == sorted(ev_gid) and len(ev_gid) == len(expected)
