"""Packets and flits."""

import pytest

from repro.netsim.packet import Packet, flits_of, reset_packet_ids


def test_packet_ids_monotone():
    reset_packet_ids()
    p1 = Packet(0, 1, 4, 0)
    p2 = Packet(1, 2, 4, 0)
    assert p2.packet_id == p1.packet_id + 1


def test_packet_rejects_self_send():
    with pytest.raises(ValueError):
        Packet(3, 3, 4, 0)


def test_packet_rejects_empty():
    with pytest.raises(ValueError):
        Packet(0, 1, 0, 0)


def test_flits_head_and_tail():
    flits = flits_of(Packet(0, 1, 4, 0))
    assert len(flits) == 4
    assert flits[0].is_head and not flits[0].is_tail
    assert flits[-1].is_tail and not flits[-1].is_head
    assert not flits[1].is_head and not flits[1].is_tail


def test_single_flit_packet_is_head_and_tail():
    (flit,) = flits_of(Packet(0, 1, 1, 0))
    assert flit.is_head and flit.is_tail


def test_latency_requires_arrival():
    packet = Packet(0, 1, 2, 10)
    with pytest.raises(ValueError):
        _ = packet.latency_cycles
    packet.arrive_cycle = 25
    assert packet.latency_cycles == 15


def test_flit_exposes_endpoints():
    packet = Packet(3, 7, 2, 0)
    flit = flits_of(packet)[0]
    assert flit.src == 3
    assert flit.dst == 7
