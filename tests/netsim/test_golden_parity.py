"""Golden-parity harness: the optimized hot path must be bit-identical.

The JSON fixtures under ``goldens/`` were recorded on the simulator
*before* the active-set scheduler and the inlined router hot path went
in. Every optimization since is required to be behaviour-preserving,
so a fixed (topology, pattern, load, seed) run must reproduce every
latency sample and every per-component flit count exactly. Regenerate
the fixtures only when the simulated behaviour is *meant* to change:

    PYTHONPATH=src python tests/netsim/goldens/record_goldens.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tests.netsim.golden_scenarios import SCENARIOS, run_scenario

from repro.netsim.packet import reset_packet_ids
from repro.netsim.sim import Simulator
from repro.netsim.traffic import make_pattern

GOLDEN_DIR = Path(__file__).parent / "goldens"


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_parity(name):
    golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    result = run_scenario(name)
    # Latency samples first: a mismatch here is the clearest signal a
    # change altered arbitration or timing rather than bookkeeping.
    assert result["latencies_cycles"] == golden["latencies_cycles"], (
        f"{name}: per-packet latency samples diverged from the "
        "pre-optimization golden run"
    )
    assert result == golden


@pytest.mark.parametrize("name", ["mesh_high", "clos_high"])
def test_goldens_drained(name):
    """The fixtures themselves must come from fully-drained runs."""
    golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    assert golden["in_flight_after_drain"] == 0


@pytest.mark.parametrize(
    "name", ["mesh_low", "mesh_high", "clos_high", "clos_on_mesh_high"]
)
def test_flit_conservation(name):
    """Every flit offered is delivered or still somewhere in the system.

    Runs with no warmup so ``flits_offered`` counts every flit ever
    created; ``in_flight_flits`` covers source backlog, router buffers,
    and flits on the wire, so the identity holds even if the drain
    budget runs out.
    """
    factory, pattern_name, load, seed = SCENARIOS[name]
    reset_packet_ids()
    network = factory()
    pattern = make_pattern(pattern_name, network.n_terminals)
    sim = Simulator(network, pattern, load, packet_size_flits=4, seed=seed)
    stats = sim.run(warmup_cycles=0, measure_cycles=400, drain_cycles=600)

    delivered = sum(t.flits_received for t in network.terminals)
    in_flight = network.in_flight_flits()
    assert stats.flits_offered == delivered + in_flight
    # Cross-check the terminal send counters against the same identity:
    # injected = delivered + in-network (in_flight minus source backlog).
    injected = sum(t.flits_sent for t in network.terminals)
    backlog = sum(len(t.source_queue) for t in network.terminals)
    assert injected == delivered + in_flight - backlog


@pytest.mark.parametrize("name", ["mesh_high", "clos_on_mesh_high"])
def test_same_seed_determinism(name):
    """Two clean-slate runs of one scenario are indistinguishable."""
    first = run_scenario(name)
    second = run_scenario(name)
    assert first == second
