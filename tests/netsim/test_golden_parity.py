"""Golden-parity harness: the optimized hot path must be bit-identical.

The JSON fixtures under ``goldens/`` were recorded on the simulator
*before* the active-set scheduler and the inlined router hot path went
in. Every optimization since is required to be behaviour-preserving,
so a fixed (topology, pattern, load, seed) run must reproduce every
latency sample and every per-component flit count exactly. Regenerate
the fixtures only when the simulated behaviour is *meant* to change:

    PYTHONPATH=src python tests/netsim/goldens/record_goldens.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tests.netsim.engines import ENGINES
from tests.netsim.golden_scenarios import (
    FAILURE_SCENARIOS,
    SCENARIOS,
    TRACE_SCENARIOS,
    run_failure_scenario,
    run_scenario,
    run_trace_scenario,
)

from repro.netsim.packet import reset_packet_ids
from repro.netsim.sim import Simulator
from repro.netsim.traffic import make_pattern

GOLDEN_DIR = Path(__file__).parent / "goldens"


def _golden(name):
    return json.loads((GOLDEN_DIR / f"{name}.json").read_text())


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_parity(name):
    golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    result = run_scenario(name)
    # Latency samples first: a mismatch here is the clearest signal a
    # change altered arbitration or timing rather than bookkeeping.
    assert result["latencies_cycles"] == golden["latencies_cycles"], (
        f"{name}: per-packet latency samples diverged from the "
        "pre-optimization golden run"
    )
    assert result == golden


@pytest.mark.parametrize("name", ["mesh_high", "clos_high"])
def test_goldens_drained(name):
    """The fixtures themselves must come from fully-drained runs."""
    golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    assert golden["in_flight_after_drain"] == 0


@pytest.mark.parametrize(
    "name", ["mesh_low", "mesh_high", "clos_high", "clos_on_mesh_high"]
)
def test_flit_conservation(name):
    """Every flit offered is delivered or still somewhere in the system.

    Runs with no warmup so ``flits_offered`` counts every flit ever
    created; ``in_flight_flits`` covers source backlog, router buffers,
    and flits on the wire, so the identity holds even if the drain
    budget runs out.
    """
    factory, pattern_name, load, seed = SCENARIOS[name]
    reset_packet_ids()
    network = factory()
    pattern = make_pattern(pattern_name, network.n_terminals)
    sim = Simulator(network, pattern, load, packet_size_flits=4, seed=seed)
    stats = sim.run(warmup_cycles=0, measure_cycles=400, drain_cycles=600)

    delivered = sum(t.flits_received for t in network.terminals)
    in_flight = network.in_flight_flits()
    assert stats.flits_offered == delivered + in_flight
    # Cross-check the terminal send counters against the same identity:
    # injected = delivered + in-network (in_flight minus source backlog).
    injected = sum(t.flits_sent for t in network.terminals)
    backlog = sum(len(t.source_queue) for t in network.terminals)
    assert injected == delivered + in_flight - backlog


@pytest.mark.parametrize("name", ["mesh_high", "clos_on_mesh_high"])
def test_same_seed_determinism(name):
    """Two clean-slate runs of one scenario are indistinguishable."""
    first = run_scenario(name)
    second = run_scenario(name)
    assert first == second


@pytest.mark.parametrize("name", sorted(TRACE_SCENARIOS))
def test_trace_golden_parity(name):
    """Synthetic mini-app replays reproduce their goldens exactly.

    ``trace_multigrid_truncated`` pins the truncation contract: when
    ``max_cycles`` cuts the schedule short, the offered counts (and the
    global packet-id counter behind them) stop at the cutoff.
    """
    golden = _golden(name)
    result = run_trace_scenario(name)
    assert result["latencies_cycles"] == golden["latencies_cycles"], (
        f"{name}: replay latency samples diverged from the golden run"
    )
    assert result == golden


@pytest.mark.parametrize("name", sorted(FAILURE_SCENARIOS))
def test_failure_golden_parity(name):
    """Sabotaged networks fail with the exact recorded error."""
    assert run_failure_scenario(name) == _golden(name)


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize(
    "name", ["mesh_high", "clos_adaptive_high", "overcredited_link"]
)
def test_cross_engine_golden_parity(engine, name):
    """Every engine reproduces the goldens — including the failures.

    The full corpus x engine product lives in the slow tier
    (``test_differential.py``); this smoke slice keeps one Bernoulli
    run, one adaptive run and one protocol-violation run under all
    three engines in the fast tier.
    """
    runner = run_failure_scenario if name in FAILURE_SCENARIOS else run_scenario
    with ENGINES[engine]():
        assert runner(name) == _golden(name)


@pytest.mark.slow
@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_cross_engine_full_corpus(engine):
    """Slow tier: the whole golden corpus under each engine."""
    with ENGINES[engine]():
        for name in SCENARIOS:
            assert run_scenario(name) == _golden(name), (engine, name)
        for name in TRACE_SCENARIOS:
            assert run_trace_scenario(name) == _golden(name), (engine, name)
        for name in FAILURE_SCENARIOS:
            assert run_failure_scenario(name) == _golden(name), (engine, name)
