"""Regenerate the golden RunStats fixtures.

Run from the repo root (only when simulated behaviour is *meant* to
change — the whole point of the goldens is to freeze behaviour across
performance work)::

    PYTHONPATH=src python tests/netsim/goldens/record_goldens.py
"""

from __future__ import annotations

import json
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent))

from golden_scenarios import (  # noqa: E402
    FAILURE_SCENARIOS,
    SCENARIOS,
    TRACE_SCENARIOS,
    run_failure_scenario,
    run_scenario,
    run_trace_scenario,
)


def main() -> None:
    for name in SCENARIOS:
        result = run_scenario(name)
        path = HERE / f"{name}.json"
        path.write_text(json.dumps(result, indent=1) + "\n")
        print(
            f"{name}: {result['packets_delivered']} packets, "
            f"{result['flits_delivered']} flits measured -> {path.name}"
        )
    for name in TRACE_SCENARIOS:
        result = run_trace_scenario(name)
        path = HERE / f"{name}.json"
        path.write_text(json.dumps(result, indent=1) + "\n")
        print(
            f"{name}: {result['packets_delivered']}/"
            f"{result['packets_created']} packets delivered -> {path.name}"
        )
    for name in FAILURE_SCENARIOS:
        result = run_failure_scenario(name)
        path = HERE / f"{name}.json"
        path.write_text(json.dumps(result, indent=1) + "\n")
        print(f"{name}: {result['error_message']!r} -> {path.name}")


if __name__ == "__main__":
    main()
