"""Failure injection: the simulator must detect protocol violations
loudly rather than corrupting results silently."""

import pytest

from repro.netsim.config import RouterConfig
from repro.netsim.link import CreditChannel, Link
from repro.netsim.network import single_router_network
from repro.netsim.packet import Packet, flits_of
from repro.netsim.router import Router
from repro.netsim.terminal import Terminal


def test_invalid_route_function_detected():
    """A route function returning an out-of-range port must raise."""
    config = RouterConfig(num_vcs=2, buffer_flits_per_port=4)
    router = Router(0, 2, config, route_fn=lambda r, p, f: 99)
    link = Link(1)
    credits = CreditChannel(1)
    router.attach_input(0, credits, from_terminal=True)
    router.attach_output(1, Link(1), None, 0, is_terminal=True)
    flit = flits_of(Packet(0, 1, 1, 0))[0]
    flit.vc = 0
    router.receive_flit(0, flit, now=0)
    with pytest.raises(AssertionError, match="invalid port"):
        for cycle in range(5):
            router.vc_allocate(cycle)


def test_unwired_output_detected():
    """Forwarding into an unwired port must raise, not drop flits."""
    config = RouterConfig(num_vcs=2, buffer_flits_per_port=4)
    router = Router(0, 2, config, route_fn=lambda r, p, f: 1)
    router.attach_input(0, CreditChannel(1), from_terminal=True)
    # Output 1 never wired; mark as terminal so VA allows it.
    router.out_is_terminal[1] = True
    flit = flits_of(Packet(0, 1, 1, 0))[0]
    flit.vc = 0
    router.receive_flit(0, flit, now=0)
    with pytest.raises(AssertionError, match="not wired"):
        for cycle in range(5):
            router.vc_allocate(cycle)
            router.switch_allocate(cycle)


def test_buffer_overflow_detected():
    """Pushing flits beyond the shared pool must raise immediately."""
    config = RouterConfig(num_vcs=2, buffer_flits_per_port=2)
    router = Router(0, 2, config, route_fn=lambda r, p, f: 1)
    packet = Packet(0, 1, 4, 0)
    with pytest.raises(AssertionError, match="buffer overflow"):
        for i, flit in enumerate(flits_of(packet)):
            flit.vc = 0
            router.receive_flit(0, flit, now=i)


def test_body_flit_on_idle_vc_detected():
    """Wormhole ordering violation (body before head) must raise."""
    config = RouterConfig(num_vcs=2, buffer_flits_per_port=4)
    router = Router(0, 2, config, route_fn=lambda r, p, f: 1)
    body = flits_of(Packet(0, 1, 3, 0))[1]
    body.vc = 0
    with pytest.raises(AssertionError, match="body flit"):
        router.receive_flit(0, body, now=0)


def test_terminal_without_attachment_cannot_inject():
    terminal = Terminal(0, num_vcs=2)
    terminal.offer_packet(Packet(0, 1, 1, 0))
    # credits default to 0 and no link attached: inject is a no-op.
    terminal.inject(now=0)
    assert terminal.flits_sent == 0


def test_network_survives_empty_cycles():
    network = single_router_network(2)
    for _ in range(50):
        network.step()
    assert network.in_flight_flits() == 0
