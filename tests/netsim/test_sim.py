"""Simulation drivers: latency curves and saturation."""

import pytest

from repro.netsim.network import waferscale_clos_network
from repro.netsim.sim import (
    Simulator,
    load_latency_sweep,
    saturation_throughput,
)
from repro.netsim.traffic import make_pattern


def _small_network():
    return waferscale_clos_network(
        32, 8, num_vcs=2, buffer_flits_per_port=8, io_latency=2
    )


def test_simulator_rejects_mismatched_pattern():
    with pytest.raises(ValueError):
        Simulator(_small_network(), make_pattern("uniform", 64), 0.2)


def test_run_produces_latencies():
    sim = Simulator(_small_network(), make_pattern("uniform", 32), 0.1, seed=2)
    stats = sim.run(warmup_cycles=200, measure_cycles=400)
    assert stats.packets_delivered > 0
    assert stats.avg_latency_cycles > 0
    assert stats.avg_latency_ns == pytest.approx(stats.avg_latency_cycles * 20)


def test_accepted_tracks_offered_below_saturation():
    sim = Simulator(_small_network(), make_pattern("uniform", 32), 0.1, seed=2)
    stats = sim.run(warmup_cycles=300, measure_cycles=800)
    assert stats.accepted_load == pytest.approx(0.1, rel=0.3)


def test_latency_grows_with_load():
    results = load_latency_sweep(
        _small_network,
        lambda n: make_pattern("uniform", n),
        loads=[0.05, 0.6],
        warmup_cycles=200,
        measure_cycles=600,
    )
    assert results[1].avg_latency_cycles > results[0].avg_latency_cycles


def test_sweep_starting_past_saturation_flags_every_point():
    """Regression: a sweep that starts beyond the knee must not anchor
    its zero-load reference on the (already saturated) first point.

    Before the guard, the first non-NaN latency became the zero-load
    latency even when the network was saturated, so later points were
    compared against an inflated reference and reported unsaturated.
    """
    results = load_latency_sweep(
        _small_network,
        lambda n: make_pattern("bit-complement", n),
        loads=[0.9, 1.0],
        warmup_cycles=200,
        measure_cycles=600,
    )
    assert all(point.saturated for point in results)


def test_sweep_low_load_point_not_saturated():
    """The guard must not misfire on a healthy low-load point."""
    results = load_latency_sweep(
        _small_network,
        lambda n: make_pattern("uniform", n),
        loads=[0.05],
        warmup_cycles=200,
        measure_cycles=600,
    )
    assert not results[0].saturated


def test_saturation_throughput_below_unity():
    throughput = saturation_throughput(
        _small_network,
        lambda n: make_pattern("uniform", n),
        warmup_cycles=200,
        measure_cycles=600,
    )
    assert 0.1 < throughput < 1.0


def test_neighbor_traffic_saturates_higher_than_bitcomp():
    """Local traffic avoids the spine; adversarial traffic does not."""
    neighbor = saturation_throughput(
        _small_network,
        lambda n: make_pattern("neighbor", n),
        warmup_cycles=200,
        measure_cycles=600,
    )
    bitcomp = saturation_throughput(
        _small_network,
        lambda n: make_pattern("bit-complement", n),
        warmup_cycles=200,
        measure_cycles=600,
    )
    assert neighbor >= bitcomp


def test_p99_at_least_average():
    sim = Simulator(_small_network(), make_pattern("uniform", 32), 0.2, seed=3)
    stats = sim.run(warmup_cycles=200, measure_cycles=500)
    assert stats.p99_latency_cycles >= stats.avg_latency_cycles


# ----------------------------------------------------------------------
# Measurement windowing (the explicit warmup/measure/drain contract)
# ----------------------------------------------------------------------

class _FakePacket:
    def __init__(self, create_cycle, arrive_cycle):
        self.create_cycle = create_cycle
        self.arrive_cycle = arrive_cycle


def test_record_arrival_excludes_warmup_and_drain_creations():
    """The latency window covers creation, not delivery, time.

    Regression guard for the windowing filter: a warmup-created packet
    delivered inside (or after) the measurement window must never leak
    into the measured average, even when the drain runs long; a
    measurement-created packet delivered deep in the drain must count.
    """
    from repro.netsim.stats import RunStats

    stats = RunStats(measure_start=100, measure_end=200)
    assert not stats.record_arrival(_FakePacket(50, 150))    # warmup-created
    assert not stats.record_arrival(_FakePacket(99, 4000))   # warmup, late
    assert stats.record_arrival(_FakePacket(100, 101))       # first window cycle
    assert stats.record_arrival(_FakePacket(199, 5000))      # drains very late
    assert not stats.record_arrival(_FakePacket(200, 260))   # drain-created
    assert stats.latencies_cycles == [1, 4801]
    assert stats.packets_delivered == 2


def test_run_latencies_only_cover_measurement_creations():
    """End to end: every measured latency maps to an in-window packet."""
    network = _small_network()
    sim = Simulator(network, make_pattern("uniform", 32), 0.4, seed=9)
    stats = sim.run(warmup_cycles=150, measure_cycles=300, drain_cycles=2000)
    in_window = sorted(
        packet.latency_cycles
        for terminal in network.terminals
        for packet in terminal.packets_received
        if stats.measure_start <= packet.create_cycle < stats.measure_end
    )
    warmup_delivered = sum(
        1
        for terminal in network.terminals
        for packet in terminal.packets_received
        if packet.create_cycle < stats.measure_start
    )
    assert warmup_delivered > 0  # the exclusion below is non-vacuous
    assert sorted(stats.latencies_cycles) == in_window
    assert stats.packets_created >= stats.packets_delivered


def test_packets_outstanding_reports_censoring():
    """drain_cycles=0 cuts off in-flight measurement packets."""
    sim = Simulator(_small_network(), make_pattern("uniform", 32), 0.5, seed=4)
    stats = sim.run(warmup_cycles=150, measure_cycles=300, drain_cycles=0)
    assert stats.packets_outstanding > 0
    assert (
        stats.packets_created
        == stats.packets_delivered + stats.packets_outstanding
    )


def test_generous_drain_leaves_nothing_outstanding():
    sim = Simulator(_small_network(), make_pattern("uniform", 32), 0.1, seed=4)
    stats = sim.run(warmup_cycles=100, measure_cycles=200, drain_cycles=5000)
    assert stats.packets_outstanding == 0
