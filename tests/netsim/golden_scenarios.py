"""Golden-parity scenarios: fixed seeds, fixed cycle budgets.

Each scenario builds a small network, drives it with Bernoulli traffic
for an exact number of warmup/measure/drain cycles, and summarises the
run as plain JSON-able data (every latency sample, every flit count).
``tests/netsim/goldens/*.json`` holds the output recorded *before* the
hot-path optimization; ``test_golden_parity.py`` asserts the simulator
still reproduces it bit for bit.

Regenerate (only when the simulated behaviour is *meant* to change)
with::

    PYTHONPATH=src python tests/netsim/goldens/record_goldens.py
"""

from __future__ import annotations

from repro.netsim.config import RouterConfig
from repro.netsim.mesh_network import mesh_network
from repro.netsim.network import clos_network, waferscale_clos_network
from repro.netsim.packet import reset_packet_ids
from repro.netsim.sim import Simulator
from repro.netsim.trace import (
    SyntheticTraceSpec,
    replay_trace,
    synthetic_nersc_trace,
)
from repro.netsim.traffic import make_pattern


def _small_mesh():
    """4x4 mesh, 2 terminals per router (32 terminals)."""
    return mesh_network(
        4,
        4,
        terminals_per_router=2,
        neighbor_channels=2,
        config=RouterConfig(num_vcs=2, buffer_flits_per_port=8),
        io_latency=2,
    )


def _small_clos():
    """32-terminal waferscale Clos of radix-8 SSCs."""
    return waferscale_clos_network(
        32, 8, num_vcs=2, buffer_flits_per_port=8, io_latency=2
    )


def _clos_on_mesh():
    """Clos with the non-uniform leaf-spine latencies of a mesh mapping.

    A deterministic arithmetic stand-in for ``mapped_pair_latency_fn``
    (no placement solve needed): latency grows with the Manhattan-like
    separation of the pair indices.
    """
    return clos_network(
        "clos-on-mesh",
        32,
        8,
        RouterConfig(num_vcs=2, buffer_flits_per_port=8, pipeline_delay=3),
        inter_switch_latency=1,
        io_latency=2,
        pair_latency_fn=lambda leaf, spine: 1 + (leaf + 2 * spine) % 4,
    )


def _clos_adaptive():
    """Clos with credit-based adaptive spine selection at the leaves."""
    return clos_network(
        "clos-adaptive",
        32,
        8,
        RouterConfig(num_vcs=2, buffer_flits_per_port=8),
        inter_switch_latency=1,
        io_latency=2,
        spine_selection="adaptive",
    )


#: name -> (network factory, pattern name, load, seed)
SCENARIOS = {
    "mesh_low": (_small_mesh, "uniform", 0.05, 11),
    "mesh_high": (_small_mesh, "uniform", 0.35, 12),
    "clos_low": (_small_clos, "uniform", 0.05, 13),
    "clos_high": (_small_clos, "uniform", 0.40, 14),
    "clos_on_mesh_low": (_clos_on_mesh, "transpose", 0.05, 15),
    "clos_on_mesh_high": (_clos_on_mesh, "transpose", 0.40, 16),
    # Hotspot traffic so the credit-sensing actually steers: under
    # uniform load the adaptive and hashed paths rarely diverge.
    "clos_adaptive_low": (_clos_adaptive, "hotspot", 0.05, 17),
    "clos_adaptive_high": (_clos_adaptive, "hotspot", 0.40, 18),
}

WARMUP_CYCLES = 150
MEASURE_CYCLES = 400
DRAIN_CYCLES = 800


def run_scenario(name: str) -> dict:
    """Run one scenario from a clean slate and summarise it exactly."""
    factory, pattern_name, load, seed = SCENARIOS[name]
    reset_packet_ids()  # packet ids feed the routing hash; must restart
    network = factory()
    pattern = make_pattern(pattern_name, network.n_terminals)
    sim = Simulator(network, pattern, load, packet_size_flits=4, seed=seed)
    stats = sim.run(
        warmup_cycles=WARMUP_CYCLES,
        measure_cycles=MEASURE_CYCLES,
        drain_cycles=DRAIN_CYCLES,
    )
    return {
        "scenario": name,
        "latencies_cycles": list(stats.latencies_cycles),
        "flits_offered": stats.flits_offered,
        "flits_delivered": stats.flits_delivered,
        "packets_delivered": stats.packets_delivered,
        "measure_start": stats.measure_start,
        "measure_end": stats.measure_end,
        "final_cycle": network.cycle,
        "in_flight_after_drain": network.in_flight_flits(),
        "flits_received_per_terminal": [
            t.flits_received for t in network.terminals
        ],
        "flits_forwarded_per_router": [
            r.flits_forwarded for r in network.routers
        ],
    }


#: name -> (network factory, trace name, compression, max_cycles).
#: ``trace_multigrid_truncated`` stops injection mid-schedule: its
#: golden pins the truncation contract (offered counts stop at the
#: cutoff, and so does the global packet-id counter).
TRACE_SCENARIOS = {
    "trace_lulesh_mesh": (_small_mesh, "lulesh", 1.0, 20_000),
    "trace_nekbone_clos": (_small_clos, "nekbone", 2.0, 20_000),
    "trace_multigrid_truncated": (_small_mesh, "multigrid", 1.0, 150),
}


def run_trace_scenario(name: str) -> dict:
    """Replay one synthetic mini-app trace and summarise it exactly."""
    factory, trace_name, compression, max_cycles = TRACE_SCENARIOS[name]
    reset_packet_ids()
    network = factory()
    spec = SyntheticTraceSpec(
        n_nodes=network.n_terminals,
        iterations=3,
        iteration_gap_cycles=120,
        seed=21,
    )
    events = synthetic_nersc_trace(trace_name, spec)
    stats = replay_trace(
        network, events, compression=compression, max_cycles=max_cycles
    )
    return {
        "scenario": name,
        "latencies_cycles": list(stats.latencies_cycles),
        "flits_offered": stats.flits_offered,
        "flits_delivered": stats.flits_delivered,
        "packets_created": stats.packets_created,
        "packets_delivered": stats.packets_delivered,
        "final_cycle": network.cycle,
        "in_flight_after_drain": network.in_flight_flits(),
        "flits_received_per_terminal": [
            t.flits_received for t in network.terminals
        ],
        "flits_forwarded_per_router": [
            r.flits_forwarded for r in network.routers
        ],
    }


def _overcredited_link():
    """Mesh whose router 0 advertises more credits than the downstream
    port's share of the buffer pool — a credit protocol violation the
    simulator must detect as a buffer overflow, never absorb."""
    network = _small_mesh()
    router = network.routers[0]
    for port in range(router.n_ports):
        if router.out_link[port] is not None and not router.out_is_terminal[port]:
            router.out_credits[port] += 64
            break
    return network


def _overcredited_terminal():
    """Mesh whose terminal 0 holds more injection credits than its
    ingress port can buffer."""
    network = _small_mesh()
    network.terminals[0].credits += 64
    return network


#: name -> (sabotaged network factory, pattern name, load, seed).
#: Saturating load: the phantom credits only matter once the sabotaged
#: port actually backs up past its share of the buffer pool.
FAILURE_SCENARIOS = {
    "overcredited_link": (_overcredited_link, "uniform", 0.90, 19),
    "overcredited_terminal": (_overcredited_terminal, "uniform", 0.90, 20),
}


def run_failure_scenario(name: str) -> dict:
    """Run one sabotaged network until its protocol violation trips.

    Both engines must fail loudly — and identically — rather than
    corrupt results silently; the golden freezes the exact error.
    """
    factory, pattern_name, load, seed = FAILURE_SCENARIOS[name]
    reset_packet_ids()
    network = factory()
    pattern = make_pattern(pattern_name, network.n_terminals)
    sim = Simulator(network, pattern, load, packet_size_flits=4, seed=seed)
    try:
        sim.run(
            warmup_cycles=WARMUP_CYCLES,
            measure_cycles=MEASURE_CYCLES,
            drain_cycles=DRAIN_CYCLES,
        )
    except AssertionError as exc:
        return {
            "scenario": name,
            "error_type": "AssertionError",
            "error_message": str(exc),
        }
    raise AssertionError(f"{name}: the sabotage went undetected")
