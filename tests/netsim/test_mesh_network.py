"""Direct mesh network of SSC routers (Section VII)."""

import pytest

from repro.netsim.config import RouterConfig
from repro.netsim.mesh_network import mesh_network
from repro.netsim.network import waferscale_clos_network
from repro.netsim.packet import Packet
from repro.netsim.sim import saturation_throughput
from repro.netsim.traffic import make_pattern


def _run(network, cycles):
    for _ in range(cycles):
        network.step()


def test_mesh_structure():
    network = mesh_network(3, 3, terminals_per_router=2)
    assert len(network.routers) == 9
    assert network.n_terminals == 18


def test_mesh_local_delivery():
    network = mesh_network(3, 3, terminals_per_router=2)
    packet = Packet(0, 1, 2, 0)  # both on router (0,0)
    network.terminals[0].offer_packet(packet)
    _run(network, 100)
    assert network.terminals[1].flits_received == 2


def test_mesh_corner_to_corner():
    network = mesh_network(3, 3, terminals_per_router=2)
    packet = Packet(0, 17, 2, 0)  # (0,0) -> (2,2)
    network.terminals[0].offer_packet(packet)
    _run(network, 300)
    assert packet.arrive_cycle > 0


def test_mesh_conservation():
    network = mesh_network(3, 3, terminals_per_router=2)
    injected = 0
    for i in range(15):
        src = (i * 5) % 18
        dst = (src + 7) % 18
        network.terminals[src].offer_packet(Packet(src, dst, 3, 0))
        injected += 3
    _run(network, 800)
    assert sum(t.flits_received for t in network.terminals) == injected
    assert network.in_flight_flits() == 0


def test_mesh_latency_grows_with_distance():
    near_net = mesh_network(4, 4, terminals_per_router=1)
    near = Packet(0, 1, 2, 0)  # one hop east
    near_net.terminals[0].offer_packet(near)
    _run(near_net, 200)
    far_net = mesh_network(4, 4, terminals_per_router=1)
    far = Packet(0, 15, 2, 0)  # six hops
    far_net.terminals[0].offer_packet(far)
    _run(far_net, 200)
    assert far.latency_cycles > near.latency_cycles


def test_mesh_validation():
    with pytest.raises(ValueError):
        mesh_network(1, 3, terminals_per_router=2)
    with pytest.raises(ValueError):
        mesh_network(3, 3, terminals_per_router=0)


def test_clos_saturates_higher_than_mesh():
    """Section VII: the mesh switch is blocking with poor bisection;
    the Clos-based waferscale switch sustains more uniform traffic."""
    def mesh_factory():
        return mesh_network(
            4, 4, terminals_per_router=4, neighbor_channels=2,
            config=RouterConfig(num_vcs=4, buffer_flits_per_port=16),
        )

    def clos_factory():
        return waferscale_clos_network(
            64, 16, num_vcs=4, buffer_flits_per_port=16,
            ssc_pipeline_delay=1, ingress_routing_delay=None,
        )

    mesh_sat = saturation_throughput(
        mesh_factory,
        lambda n: make_pattern("uniform", n),
        warmup_cycles=300,
        measure_cycles=700,
    )
    clos_sat = saturation_throughput(
        clos_factory,
        lambda n: make_pattern("uniform", n),
        warmup_cycles=300,
        measure_cycles=700,
    )
    assert clos_sat > mesh_sat
