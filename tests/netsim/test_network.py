"""Clos network construction and end-to-end delivery."""

import pytest

from repro.netsim.network import (
    ClosShape,
    baseline_switch_network,
    waferscale_clos_network,
)
from repro.netsim.packet import Packet


def _run(network, cycles):
    for _ in range(cycles):
        network.step()


def test_clos_shape_counts():
    shape = ClosShape(64, 16)
    assert shape.n_leaves == 8
    assert shape.n_spines == 4
    assert shape.down_per_leaf == 8
    assert shape.channels_per_pair == 2


def test_clos_shape_validation():
    with pytest.raises(ValueError):
        ClosShape(60, 16)  # not a multiple of radix
    with pytest.raises(ValueError):
        ClosShape(64, 15)  # odd radix


def test_network_router_count():
    network = waferscale_clos_network(64, 16, num_vcs=2, buffer_flits_per_port=8)
    assert len(network.routers) == 12  # 8 leaves + 4 spines
    assert network.n_terminals == 64


def test_same_leaf_delivery_single_hop():
    network = waferscale_clos_network(64, 16, num_vcs=2, buffer_flits_per_port=8)
    packet = Packet(0, 1, 2, 0)  # both on leaf 0
    network.terminals[0].offer_packet(packet)
    _run(network, 100)
    assert network.terminals[1].flits_received == 2


def test_cross_leaf_delivery_via_spine():
    network = waferscale_clos_network(64, 16, num_vcs=2, buffer_flits_per_port=8)
    packet = Packet(0, 63, 2, 0)  # leaf 0 -> leaf 7
    network.terminals[0].offer_packet(packet)
    _run(network, 200)
    assert network.terminals[63].flits_received == 2


def test_all_pairs_eventually_delivered():
    network = waferscale_clos_network(32, 8, num_vcs=2, buffer_flits_per_port=8)
    packets = []
    for src in range(0, 32, 5):
        dst = (src + 11) % 32
        packet = Packet(src, dst, 2, 0)
        packets.append(packet)
        network.terminals[src].offer_packet(packet)
    _run(network, 400)
    assert all(p.arrive_cycle > 0 for p in packets)
    assert network.in_flight_flits() == 0


def test_cross_leaf_slower_than_same_leaf():
    net1 = waferscale_clos_network(64, 16, num_vcs=2, buffer_flits_per_port=8)
    same = Packet(0, 1, 2, 0)
    net1.terminals[0].offer_packet(same)
    _run(net1, 200)
    net2 = waferscale_clos_network(64, 16, num_vcs=2, buffer_flits_per_port=8)
    cross = Packet(0, 63, 2, 0)
    net2.terminals[0].offer_packet(cross)
    _run(net2, 200)
    assert cross.latency_cycles > same.latency_cycles


def test_baseline_has_higher_latency_than_waferscale():
    """Section VI: box-to-box links and deeper pipelines slow the
    discrete switch network."""
    ws = waferscale_clos_network(64, 16, num_vcs=2, buffer_flits_per_port=8)
    bl = baseline_switch_network(64, 16, num_vcs=2, buffer_flits_per_port=8)
    p_ws, p_bl = Packet(0, 63, 2, 0), Packet(0, 63, 2, 0)
    ws.terminals[0].offer_packet(p_ws)
    bl.terminals[0].offer_packet(p_bl)
    _run(ws, 400)
    _run(bl, 400)
    assert p_bl.latency_cycles > p_ws.latency_cycles


def test_conservation_no_duplication():
    """Flits injected == flits delivered after drain (no loss, no dup)."""
    network = waferscale_clos_network(64, 16, num_vcs=4, buffer_flits_per_port=16)
    injected = 0
    for i in range(30):
        src = (i * 7) % 64
        dst = (src + 13) % 64
        network.terminals[src].offer_packet(Packet(src, dst, 3, 0))
        injected += 3
    _run(network, 1000)
    delivered = sum(t.flits_received for t in network.terminals)
    assert delivered == injected
    assert network.in_flight_flits() == 0
