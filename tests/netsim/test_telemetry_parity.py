"""Telemetry parity: the vectorized engine's instrumentation must be
field-for-field identical to the object engine's.

The scalar simulator *is* the instrumented reference implementation —
its routers and terminals bump the telemetry counters inline. The
compiled kernel maintains the same counters in C arrays and bridges
them back at window boundaries; this suite holds the bridged reports
(counters, stall attribution, occupancy samples, histograms, per-flow
histograms) to exact equality on full warmup/measurement/drain runs.
"""

from __future__ import annotations

import pytest

from tests.netsim.engines import scalar_oracle
from tests.netsim.golden_scenarios import (
    DRAIN_CYCLES,
    MEASURE_CYCLES,
    SCENARIOS,
    WARMUP_CYCLES,
)

from repro.netsim.network import single_router_network
from repro.netsim.packet import reset_packet_ids
from repro.netsim.sim import Simulator
from repro.netsim.telemetry import Telemetry, validate_telemetry
from repro.netsim.traffic import make_pattern


def _run(name, telemetry, drain_cycles=DRAIN_CYCLES):
    """One clean-slate golden-scenario run with a telemetry sink."""
    factory, pattern_name, load, seed = SCENARIOS[name]
    reset_packet_ids()
    network = factory()
    pattern = make_pattern(pattern_name, network.n_terminals)
    sim = Simulator(network, pattern, load, packet_size_flits=4, seed=seed)
    stats = sim.run(
        warmup_cycles=WARMUP_CYCLES,
        measure_cycles=MEASURE_CYCLES,
        drain_cycles=drain_cycles,
        telemetry=telemetry,
    )
    return stats, telemetry.to_dict()


def _stats_tuple(stats):
    return (
        stats.measure_start,
        stats.measure_end,
        list(stats.latencies_cycles),
        stats.flits_delivered,
        stats.flits_offered,
        stats.packets_created,
    )


@pytest.mark.parametrize(
    "name, interval, flows, drain",
    [
        ("mesh_low", 4, True, DRAIN_CYCLES),
        ("mesh_high", 16, False, DRAIN_CYCLES),
        ("clos_high", 1, False, 0),  # saturated, no drain window
        ("clos_adaptive_high", 8, True, DRAIN_CYCLES),
    ],
)
def test_telemetry_report_parity(name, interval, flows, drain):
    vec_stats, vec_report = _run(
        name, Telemetry(sample_interval=interval, collect_flows=flows), drain
    )
    with scalar_oracle():
        ref_stats, ref_report = _run(
            name,
            Telemetry(sample_interval=interval, collect_flows=flows),
            drain,
        )
    validate_telemetry(vec_report)
    assert _stats_tuple(vec_stats) == _stats_tuple(ref_stats)
    # Windows first: a divergence here names the window and is far
    # easier to read than the whole-report diff below.
    for vec_window, ref_window in zip(
        vec_report["windows"], ref_report["windows"]
    ):
        assert vec_window == ref_window, (name, vec_window.get("name"))
    assert vec_report == ref_report


def test_telemetry_parity_single_router():
    """Smallest network: every port is terminal-facing."""
    def run(telemetry):
        reset_packet_ids()
        network = single_router_network(4)
        pattern = make_pattern("uniform", 4)
        sim = Simulator(network, pattern, 0.5, packet_size_flits=4, seed=3)
        stats = sim.run(
            warmup_cycles=60,
            measure_cycles=200,
            drain_cycles=200,
            telemetry=telemetry,
        )
        return _stats_tuple(stats), telemetry.to_dict()

    vec = run(Telemetry(sample_interval=2, collect_flows=True))
    with scalar_oracle():
        ref = run(Telemetry(sample_interval=2, collect_flows=True))
    assert vec == ref


def test_telemetry_attach_conflicts_still_raise():
    """Engine dispatch must not weaken the attach contract."""
    factory, pattern_name, load, seed = SCENARIOS["mesh_low"]
    reset_packet_ids()
    network = factory()
    telemetry = Telemetry()
    telemetry.attach(network)
    pattern = make_pattern(pattern_name, network.n_terminals)
    sim = Simulator(network, pattern, load, packet_size_flits=4, seed=seed)
    other = Telemetry()
    other.attach(single_router_network(2))
    with pytest.raises(ValueError):
        sim.run(
            warmup_cycles=10,
            measure_cycles=10,
            drain_cycles=10,
            telemetry=other,
        )
