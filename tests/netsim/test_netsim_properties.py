"""Property-based tests for the simulator (hypothesis).

The central invariant: for any workload the network delivers every
injected flit exactly once, in order, with buffers never overflowing
(overflow raises inside the router).
"""

from hypothesis import given, settings, strategies as st

from repro.netsim.network import waferscale_clos_network
from repro.netsim.packet import Packet

workloads = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=31),  # src
        st.integers(min_value=0, max_value=31),  # dst
        st.integers(min_value=1, max_value=6),  # size
        st.integers(min_value=0, max_value=50),  # creation cycle
    ),
    min_size=1,
    max_size=40,
)


@given(workloads, st.integers(min_value=2, max_value=4))
@settings(max_examples=25, deadline=None)
def test_conservation_and_completion(workload, num_vcs):
    network = waferscale_clos_network(
        32, 8, num_vcs=num_vcs, buffer_flits_per_port=4 * num_vcs
    )
    schedule = sorted(
        ((cycle, src, dst, size) for src, dst, size, cycle in workload),
        key=lambda item: item[0],
    )
    packets = []
    injected_flits = 0
    index = 0
    for _ in range(3000):
        now = network.cycle
        while index < len(schedule) and schedule[index][0] <= now:
            _, src, dst, size = schedule[index]
            index += 1
            if src == dst:
                continue
            packet = Packet(src, dst, size, now)
            packets.append(packet)
            network.terminals[src].offer_packet(packet)
            injected_flits += size
        network.step()
        if index == len(schedule) and network.in_flight_flits() == 0:
            break
    delivered = sum(t.flits_received for t in network.terminals)
    assert delivered == injected_flits
    assert network.in_flight_flits() == 0
    for packet in packets:
        assert packet.arrive_cycle >= packet.create_cycle


@given(
    st.integers(min_value=0, max_value=31),
    st.integers(min_value=0, max_value=31),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=25, deadline=None)
def test_single_packet_latency_bounded(src, dst, size):
    if src == dst:
        dst = (dst + 1) % 32
    network = waferscale_clos_network(32, 8, num_vcs=2, buffer_flits_per_port=8)
    packet = Packet(src, dst, size, 0)
    network.terminals[src].offer_packet(packet)
    for _ in range(500):
        network.step()
        if packet.arrive_cycle >= 0:
            break
    assert packet.arrive_cycle >= 0
    # An unloaded network's latency is a few pipeline depths + flits.
    assert packet.latency_cycles < 120 + size
