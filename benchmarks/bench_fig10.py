"""Regenerate paper artifact fig10 (see repro.experiments.fig10)."""


def test_fig10(run_experiment):
    result = run_experiment("fig10")
    assert result.rows
