"""Regenerate paper artifact fig19 (see repro.experiments.fig19)."""


def test_fig19(run_experiment):
    result = run_experiment("fig19")
    assert result.rows
