"""Regenerate paper artifact tab06 (see repro.experiments.tab06)."""


def test_tab06(run_experiment):
    result = run_experiment("tab06")
    assert result.rows
