"""Regenerate paper artifact fig01 (see repro.experiments.fig01)."""


def test_fig01(run_experiment):
    result = run_experiment("fig01")
    assert result.rows
