"""Regenerate paper artifact tab07 (see repro.experiments.tab07)."""


def test_tab07(run_experiment):
    result = run_experiment("tab07")
    assert result.rows
