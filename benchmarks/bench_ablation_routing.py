"""Ablation: oblivious vs adaptive spine selection; uniform vs
mapping-derived non-uniform link latencies (Section IV's robustness
claim)."""

from repro.netsim.config import RouterConfig
from repro.netsim.network import clos_network, waferscale_clos_network
from repro.netsim.sim import saturation_throughput
from repro.netsim.traffic import make_pattern


def _factory(spine_selection="hash", pair_latency_fn=None):
    def build():
        return clos_network(
            f"ablation-{spine_selection}",
            64,
            16,
            RouterConfig(
                num_vcs=4,
                buffer_flits_per_port=16,
                routing_delay=1,
                pipeline_delay=11,
            ),
            inter_switch_latency=2,
            io_latency=8,
            ingress_routing_delay=2,
            spine_selection=spine_selection,
            pair_latency_fn=pair_latency_fn,
        )

    return build


def test_routing_ablation(benchmark):
    def run():
        results = {}
        for pattern in ("uniform", "hotspot"):
            for selection in ("hash", "adaptive"):
                results[(pattern, selection)] = saturation_throughput(
                    _factory(selection),
                    lambda n, p=pattern: make_pattern(p, n),
                    warmup_cycles=300,
                    measure_cycles=700,
                )
        results[("uniform", "non-uniform-links")] = saturation_throughput(
            _factory(pair_latency_fn=lambda l, s: 1 + 2 * ((l + s) % 2)),
            lambda n: make_pattern("uniform", n),
            warmup_cycles=300,
            measure_cycles=700,
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for key, throughput in sorted(results.items()):
        print(f"{key[0]:>8s} / {key[1]:18s}: saturation {throughput:.3f}")
    uniform_hash = results[("uniform", "hash")]
    nonuniform = results[("uniform", "non-uniform-links")]
    # Section IV: non-uniform latency does not degrade throughput.
    assert nonuniform > 0.85 * uniform_hash
