"""Regenerate paper artifact fig17 (see repro.experiments.fig17)."""


def test_fig17(run_experiment):
    result = run_experiment("fig17")
    assert result.rows
