"""Regenerate paper artifact fig22 (see repro.experiments.fig22)."""


def test_fig22(run_experiment):
    result = run_experiment("fig22")
    assert result.rows
