"""Ablation: mapping optimizer initial-placement strategy and restarts.

The paper runs Algorithm 1 from 1000 random initial mappings; we show
why the library's default alternates random and leaves-out starts —
random starts escape the heuristic's local optimum on mid-size Clos
instances, and a few mixed restarts already converge (the paper
likewise reports <1 % spread across its trials).
"""

from repro.mapping.exchange import optimize_mapping
from repro.topology.clos import folded_clos


def test_mapping_strategy_ablation(benchmark):
    topology = folded_clos(2048)

    def run():
        return {
            ("leaves_out", 2): optimize_mapping(
                topology, restarts=2, strategy="leaves_out"
            ).max_edge_channels,
            ("random", 2): optimize_mapping(
                topology, restarts=2, strategy="random"
            ).max_edge_channels,
            ("mixed", 2): optimize_mapping(
                topology, restarts=2, strategy="mixed"
            ).max_edge_channels,
            ("mixed", 4): optimize_mapping(
                topology, restarts=4, strategy="mixed"
            ).max_edge_channels,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for (strategy, restarts), load in sorted(results.items()):
        print(f"start={strategy:10s} restarts={restarts}: worst edge {load} channels")
    # Mixed matches the best single strategy, and extra restarts change
    # little (the paper's <1% spread observation).
    best_single = min(
        results[("leaves_out", 2)], results[("random", 2)]
    )
    assert results[("mixed", 2)] <= best_single
    assert results[("mixed", 4)] <= results[("mixed", 2)]
