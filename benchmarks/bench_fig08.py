"""Regenerate paper artifact fig08 (see repro.experiments.fig08)."""


def test_fig08(run_experiment):
    result = run_experiment("fig08")
    assert result.rows
