"""Regenerate paper artifact fig15 (see repro.experiments.fig15)."""


def test_fig15(run_experiment):
    result = run_experiment("fig15")
    assert result.rows
