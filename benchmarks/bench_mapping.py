"""Mapping-engine benchmark: kernel speedup, restart scaling, store.

Measures the three layers of the fast mapping stack on the 64-site
(8x8) wafer Clos — ``folded_clos(4096)``, 48 sub-switch chiplets plus
dummy-repeater spares, the largest wafer the analytical experiments
map — and writes ``BENCH_mapping.json``:

1. **kernel speedup** — scalar oracle vs vectorized kernel through
   ``optimize_mapping`` at equal restarts (the ISSUE-4 acceptance
   target is >=5x; costs must agree exactly or the fast engine must be
   strictly better);
2. **restart scaling** — fast-kernel wall time at 1/2/4/8 restarts,
   serial and ``jobs=4``, showing full mode's higher restart budget is
   affordable;
3. **store timings** — cold optimize+persist vs warm fetch through
   ``cached_mapping`` (acceptance: warm fetch under 50 ms).

Usage::

    PYTHONPATH=src python benchmarks/bench_mapping.py
    PYTHONPATH=src python benchmarks/bench_mapping.py --quick

Also collected by pytest as a quick smoke test (small instance).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import tempfile
import time

from repro.core.design import cached_mapping, clear_mapping_cache
from repro.mapping.exchange import SCALAR_ENV, optimize_mapping
from repro.mapping.grid import WaferGrid, grid_for
from repro.mapping.routing import IOStyle
from repro.topology.clos import folded_clos

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT_PATH = REPO_ROOT / "BENCH_mapping.json"


def _time_optimize(topology, grid, scalar: bool, restarts: int, jobs: int = 1):
    previous = os.environ.get(SCALAR_ENV)
    os.environ[SCALAR_ENV] = "1" if scalar else "0"
    try:
        start = time.perf_counter()
        result = optimize_mapping(
            topology, grid=grid, restarts=restarts, seed=0, jobs=jobs
        )
        return time.perf_counter() - start, result
    finally:
        if previous is None:
            os.environ.pop(SCALAR_ENV, None)
        else:
            os.environ[SCALAR_ENV] = previous


def _store_timings(topology) -> dict:
    """Cold optimize+persist vs warm fetch via ``cached_mapping``."""
    previous = os.environ.get("REPRO_CACHE_DIR")
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as cache_dir:
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        try:
            clear_mapping_cache()
            start = time.perf_counter()
            cold = cached_mapping(topology, IOStyle.PERIPHERY, restarts=1)
            cold_s = time.perf_counter() - start
            clear_mapping_cache()  # drop the memo; force the disk store
            start = time.perf_counter()
            warm = cached_mapping(topology, IOStyle.PERIPHERY, restarts=1)
            warm_s = time.perf_counter() - start
        finally:
            clear_mapping_cache()
            if previous is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = previous
    assert warm.placement.site_of == cold.placement.site_of
    return {
        "cold_optimize_seconds": round(cold_s, 4),
        "warm_fetch_seconds": round(warm_s, 4),
        "warm_fetch_under_50ms": warm_s < 0.050,
    }


def run_bench(n_ports: int = 4096, restarts: int = 2) -> dict:
    topology = folded_clos(n_ports)
    grid = (
        WaferGrid(8, 8) if n_ports == 4096 else grid_for(topology.chiplet_count)
    )

    scalar_s, scalar_result = _time_optimize(
        topology, grid, scalar=True, restarts=restarts
    )
    fast_s, fast_result = _time_optimize(
        topology, grid, scalar=False, restarts=restarts
    )
    print(
        f"kernel @ {restarts} restarts: scalar {scalar_s:6.2f}s "
        f"{scalar_result.cost()} vs fast {fast_s:6.2f}s {fast_result.cost()}"
    )

    scaling = {}
    for n_restarts in (1, 2, 4, 8):
        serial_s, _ = _time_optimize(
            topology, grid, scalar=False, restarts=n_restarts
        )
        parallel_s, _ = _time_optimize(
            topology, grid, scalar=False, restarts=n_restarts, jobs=4
        )
        scaling[str(n_restarts)] = {
            "serial_seconds": round(serial_s, 3),
            "jobs4_seconds": round(parallel_s, 3),
        }
        print(
            f"restarts={n_restarts}: serial {serial_s:6.2f}s, "
            f"jobs=4 {parallel_s:6.2f}s"
        )

    store = _store_timings(topology)
    print(
        f"store: cold {store['cold_optimize_seconds']:.3f}s, "
        f"warm {store['warm_fetch_seconds'] * 1000:.1f}ms"
    )

    return {
        "topology": topology.name,
        "grid": [grid.rows, grid.cols],
        "restarts": restarts,
        "cpu_count": os.cpu_count(),
        "scalar_seconds": round(scalar_s, 3),
        "fast_seconds": round(fast_s, 3),
        "kernel_speedup": round(scalar_s / fast_s, 1),
        "scalar_cost": list(scalar_result.cost()),
        "fast_cost": list(fast_result.cost()),
        "fast_no_worse": fast_result.cost() <= scalar_result.cost(),
        "restart_scaling": scaling,
        "store": store,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small instance (1024 ports), no artifact written",
    )
    args = parser.parse_args()

    if args.quick:
        report = run_bench(n_ports=1024, restarts=2)
        print(json.dumps(report, indent=1))
        return 0
    report = run_bench(n_ports=4096, restarts=2)
    ok = (
        report["kernel_speedup"] >= 5.0
        and report["fast_no_worse"]
        and report["store"]["warm_fetch_under_50ms"]
    )
    print(
        f"kernel speedup {report['kernel_speedup']}x, "
        f"fast no worse: {report['fast_no_worse']}, "
        f"warm fetch <50ms: {report['store']['warm_fetch_under_50ms']}"
    )
    ARTIFACT_PATH.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {ARTIFACT_PATH}")
    return 0 if ok else 1


def test_mapping_bench_smoke():
    """Tiny end-to-end pass: fast no worse than scalar, store under 50ms."""
    report = run_bench(n_ports=1024, restarts=1)
    assert report["fast_no_worse"]
    assert report["store"]["warm_fetch_under_50ms"]


if __name__ == "__main__":
    raise SystemExit(main())
