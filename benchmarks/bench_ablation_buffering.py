"""Ablation: analytic buffer sizing vs the fig21 simulation.

Cross-checks Section VI's ``B = RTT x BW / sqrt(n)`` rule against the
cycle-accurate sweep: the link latency at which a given buffer stops
sustaining throughput should track the rule's RTT scaling.
"""

from repro.core.buffering import (
    buffer_requirements_by_connection,
    on_wafer_buffer_reduction,
    required_buffer_flits,
)


def test_buffer_sizing_ablation(benchmark):
    def run():
        return buffer_requirements_by_connection()

    requirements = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, req in requirements.items():
        verdict = "SRAM" if req.fits_sram else "DRAM-class"
        print(
            f"{name:15s} RTT {req.rtt_ns:6.0f} ns -> "
            f"{req.buffer_mbit:8.2f} Mbit ({verdict})"
        )
    print(f"on-wafer buffer reduction vs optical: {on_wafer_buffer_reduction():.1f}x")
    # Per-port flit counts at 200G, matching the fig21 sweep's regimes.
    for latency_ns in (20, 200):
        flits = required_buffer_flits(2 * latency_ns, 200.0)
        print(f"per-port buffer at {latency_ns} ns links: {flits} flits")
    assert requirements["on-wafer"].fits_sram
