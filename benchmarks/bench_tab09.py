"""Regenerate paper artifact tab09 (see repro.experiments.tab09)."""


def test_tab09(run_experiment):
    result = run_experiment("tab09")
    assert result.rows
