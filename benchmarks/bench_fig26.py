"""Regenerate paper artifact fig26 (see repro.experiments.fig26)."""


def test_fig26(run_experiment):
    result = run_experiment("fig26")
    assert result.rows
