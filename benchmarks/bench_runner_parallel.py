"""Experiment-runner benchmark: serial vs parallel vs warm cache.

Times three runs of the same experiment suite through
``repro.experiments.runner.run_experiments``:

1. **parallel cold** — work units fanned over ``--jobs`` processes,
   no result cache;
2. **serial cold** — one process, storing into a fresh result cache;
3. **warm cache** — the same suite again, served from the cache.

Both cold phases start from an empty in-process mapping memo AND an
empty persistent mapping store (redirected into the benchmark's temp
directory), so they measure genuine compute. Verifies the parallel
tables are identical to the serial ones and writes
``BENCH_runner.json`` with all three wall-clocks plus the parallel and
cache speedups. Parallel speedup scales with physical cores (a
single-core container shows ~1x or a small regression); the cache
speedup is machine-independent and must stay large.

Usage::

    PYTHONPATH=src python benchmarks/bench_runner_parallel.py
    PYTHONPATH=src python benchmarks/bench_runner_parallel.py --ids fig07 fig17
    PYTHONPATH=src python benchmarks/bench_runner_parallel.py --full --jobs 8

Also collected by pytest as a quick smoke test (two tiny experiments).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import tempfile
import time

from repro.core.design import clear_mapping_cache
from repro.experiments.base import EXPERIMENT_IDS
from repro.experiments.cache import CACHE_DIR_ENV, ResultCache
from repro.experiments.runner import run_experiments
from repro.mapping.store import MappingStore

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT_PATH = REPO_ROOT / "BENCH_runner.json"


def _timed(label: str, cold: bool = False, **kwargs):
    clear_mapping_cache()
    if cold:
        MappingStore().clear()
    start = time.perf_counter()
    results = run_experiments(**kwargs)
    elapsed = time.perf_counter() - start
    print(f"{label:>13}: {elapsed:7.2f}s for {len(results)} experiment(s)")
    return results, elapsed


def run_bench(ids, fast: bool = True, jobs: int = 4) -> dict:
    ids = list(ids)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        # Redirect the persistent mapping store into the temp dir too, so
        # "cold" means cold and the repo's real store is untouched.
        previous_env = os.environ.get(CACHE_DIR_ENV)
        os.environ[CACHE_DIR_ENV] = cache_dir
        try:
            cache = ResultCache(cache_dir)
            parallel, parallel_s = _timed(
                "parallel cold", cold=True, ids=ids, fast=fast, jobs=jobs
            )
            serial, serial_s = _timed(
                "serial cold", cold=True, ids=ids, fast=fast, jobs=1, cache=cache
            )
            warm, warm_s = _timed(
                "warm cache", ids=ids, fast=fast, jobs=1, cache=cache
            )
        finally:
            if previous_env is None:
                os.environ.pop(CACHE_DIR_ENV, None)
            else:
                os.environ[CACHE_DIR_ENV] = previous_env
    rows_identical = parallel == serial and warm == serial
    report = {
        "experiments": ids,
        "mode": "fast" if fast else "full",
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "parallel_cold_seconds": round(parallel_s, 3),
        "serial_cold_seconds": round(serial_s, 3),
        "warm_cache_seconds": round(warm_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "cache_speedup": round(serial_s / warm_s, 2),
        "rows_identical": rows_identical,
    }
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--ids", nargs="*", default=None, help="experiment ids (default: all)"
    )
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--jobs", type=int, default=4)
    args = parser.parse_args()

    ids = args.ids or list(EXPERIMENT_IDS)
    report = run_bench(ids, fast=not args.full, jobs=args.jobs)
    print(
        f"parallel speedup {report['parallel_speedup']}x "
        f"(on {report['cpu_count']} cpu(s)), "
        f"cache speedup {report['cache_speedup']}x, "
        f"rows identical: {report['rows_identical']}"
    )
    ARTIFACT_PATH.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {ARTIFACT_PATH}")
    return 0 if report["rows_identical"] else 1


def test_runner_parallel_smoke(tmp_path, monkeypatch):
    """Tiny end-to-end pass: identical tables, cache round trip."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    report = run_bench(["fig01", "tab06"], fast=True, jobs=2)
    assert report["rows_identical"]
    assert report["warm_cache_seconds"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
