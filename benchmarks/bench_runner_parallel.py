"""Experiment-runner benchmark: serial vs warm-pool parallel vs cache.

Times three runs of the same experiment suite through
``repro.experiments.runner.run_experiments``:

1. **parallel cold** — work units fanned over the warm worker pool
   (``--jobs``), no result cache;
2. **serial cold** — one process, storing into a fresh result cache;
3. **warm cache** — the same suite again, served from the cache.

Both cold phases start from an empty in-process mapping memo AND an
empty persistent mapping store (redirected into the benchmark's temp
directory), so they measure genuine compute. Verifies the parallel
tables are identical to the serial ones, measures the warm pool's
per-task dispatch latency with a microbenchmark, and writes
``BENCH_runner.json`` with the wall-clocks, the speedups, and two
**gates**:

* ``parallel_gate`` — ``parallel_speedup >= min(effective_cores,
  units) / 2``. On a multi-core box the pool must actually pay; on a
  single effective core the degraded-to-serial fast path makes the
  parallel run ≈ the serial run, so the gate threshold is 0.5 and a
  healthy fast path clears it at ~1.0.
* ``fastpath_gate`` — on one effective core the "parallel" cold run
  must stay within 5% of plain serial (the fast path may not tax
  small machines). Skipped (passes trivially) on multi-core.

Usage::

    PYTHONPATH=src python benchmarks/bench_runner_parallel.py
    PYTHONPATH=src python benchmarks/bench_runner_parallel.py --ids fig07 fig17
    PYTHONPATH=src python benchmarks/bench_runner_parallel.py --full --jobs 8

Also collected by pytest as a quick smoke test (two tiny experiments).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import tempfile
import time

from repro.core.design import clear_mapping_cache
from repro.experiments.base import EXPERIMENT_IDS, get_spec
from repro.experiments.cache import CACHE_DIR_ENV, ResultCache
from repro.experiments.runner import run_experiments
from repro.mapping.store import MappingStore
from repro.parallel import (
    PARALLEL_MODE_ENV,
    effective_cpu_count,
    pool_map,
    shutdown_shared_executor,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT_PATH = REPO_ROOT / "BENCH_runner.json"

#: Tasks in the dispatch-latency microbenchmark.
DISPATCH_PROBE_TASKS = 32


def _timed(label: str, cold: bool = False, **kwargs):
    clear_mapping_cache()
    if cold:
        MappingStore().clear()
    start = time.perf_counter()
    results = run_experiments(**kwargs)
    elapsed = time.perf_counter() - start
    print(f"{label:>13}: {elapsed:7.2f}s for {len(results)} experiment(s)")
    return results, elapsed


def _noop(index: int) -> int:
    return index


def measure_dispatch_latency(tasks: int = DISPATCH_PROBE_TASKS) -> dict:
    """Warm-pool per-task dispatch overhead on trivial tasks.

    Forces the pool on (so the serial fast path cannot hide the cost
    being measured), runs one warm-up batch, then times a batch of
    no-op tasks. ``dispatch_s`` per task is the time the task and its
    result spent crossing process boundaries — the pool's whole
    overhead, since the task itself does nothing.
    """
    previous = os.environ.get(PARALLEL_MODE_ENV)
    os.environ[PARALLEL_MODE_ENV] = "force"
    try:
        pool_map(_noop, [(i,) for i in range(4)], jobs=2)  # warm the pool
        stats: list = []
        start = time.perf_counter()
        pool_map(
            _noop, [(i,) for i in range(tasks)], jobs=2, dispatch_stats=stats
        )
        batch_s = time.perf_counter() - start
    finally:
        if previous is None:
            os.environ.pop(PARALLEL_MODE_ENV, None)
        else:
            os.environ[PARALLEL_MODE_ENV] = previous
    latencies = sorted(
        row["dispatch_s"] for row in stats if row and "dispatch_s" in row
    )
    return {
        "tasks": tasks,
        "batch_seconds": round(batch_s, 4),
        "dispatch_p50_ms": round(
            statistics.median(latencies) * 1000, 3
        ) if latencies else None,
        "dispatch_mean_ms": round(
            statistics.fmean(latencies) * 1000, 3
        ) if latencies else None,
        "dispatch_max_ms": round(latencies[-1] * 1000, 3)
        if latencies else None,
    }


def run_bench(ids, fast: bool = True, jobs: int = 4) -> dict:
    ids = list(ids)
    units = sum(len(get_spec(i).units(fast=fast)) for i in ids)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        # Redirect the persistent mapping store into the temp dir too, so
        # "cold" means cold and the repo's real store is untouched.
        previous_env = os.environ.get(CACHE_DIR_ENV)
        os.environ[CACHE_DIR_ENV] = cache_dir
        try:
            cache = ResultCache(cache_dir)
            parallel, parallel_s = _timed(
                "parallel cold", cold=True, ids=ids, fast=fast, jobs=jobs
            )
            serial, serial_s = _timed(
                "serial cold", cold=True, ids=ids, fast=fast, jobs=1, cache=cache
            )
            warm, warm_s = _timed(
                "warm cache", ids=ids, fast=fast, jobs=1, cache=cache
            )
            dispatch = measure_dispatch_latency()
        finally:
            if previous_env is None:
                os.environ.pop(CACHE_DIR_ENV, None)
            else:
                os.environ[CACHE_DIR_ENV] = previous_env
            # The probe's forced workers hold the temp cache dir open.
            shutdown_shared_executor()
    rows_identical = parallel == serial and warm == serial
    cores = effective_cpu_count()
    speedup = round(serial_s / parallel_s, 2)
    gate_threshold = round(min(cores, max(units, 1)) / 2, 2)
    fastpath_overhead_pct = round((parallel_s / serial_s - 1.0) * 100, 1)
    report = {
        "experiments": ids,
        "mode": "fast" if fast else "full",
        "jobs": jobs,
        "units": units,
        "cpu_count": os.cpu_count(),
        "effective_cores": cores,
        "parallel_cold_seconds": round(parallel_s, 3),
        "serial_cold_seconds": round(serial_s, 3),
        "warm_cache_seconds": round(warm_s, 6),
        "parallel_speedup": speedup,
        "cache_speedup": round(serial_s / warm_s, 2),
        "rows_identical": rows_identical,
        "parallel_gate": {
            "threshold": gate_threshold,
            "passed": speedup >= gate_threshold,
        },
        "fastpath_gate": {
            # Only binding when the serial fast path is what ran the
            # "parallel" phase (one effective core).
            "overhead_pct": fastpath_overhead_pct,
            "passed": cores > 1 or fastpath_overhead_pct <= 5.0,
        },
        "warm_pool_dispatch": dispatch,
    }
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--ids", nargs="*", default=None, help="experiment ids (default: all)"
    )
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--jobs", type=int, default=4)
    args = parser.parse_args()

    ids = args.ids or list(EXPERIMENT_IDS)
    report = run_bench(ids, fast=not args.full, jobs=args.jobs)
    print(
        f"parallel speedup {report['parallel_speedup']}x on "
        f"{report['effective_cores']} effective core(s) "
        f"(gate >= {report['parallel_gate']['threshold']}: "
        f"{'pass' if report['parallel_gate']['passed'] else 'FAIL'}), "
        f"cache speedup {report['cache_speedup']}x, "
        f"dispatch p50 {report['warm_pool_dispatch']['dispatch_p50_ms']}ms, "
        f"rows identical: {report['rows_identical']}"
    )
    ARTIFACT_PATH.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {ARTIFACT_PATH}")
    ok = (
        report["rows_identical"]
        and report["parallel_gate"]["passed"]
        and report["fastpath_gate"]["passed"]
    )
    return 0 if ok else 1


def test_runner_parallel_smoke(tmp_path, monkeypatch):
    """Tiny end-to-end pass: identical tables, cache round trip."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    report = run_bench(["fig01", "tab06"], fast=True, jobs=2)
    assert report["rows_identical"]
    assert report["warm_cache_seconds"] > 0
    assert report["warm_pool_dispatch"]["dispatch_p50_ms"] is not None


if __name__ == "__main__":
    raise SystemExit(main())
