"""Regenerate paper artifact fig09 (see repro.experiments.fig09)."""


def test_fig09(run_experiment):
    result = run_experiment("fig09")
    assert result.rows
