"""Partitioned-DCN benchmark: N wafer partitions over the warm pool.

Runs one multi-wafer DCN configuration (see :mod:`repro.dcn`) twice on
identical inputs:

1. **serial** — every wafer partition stepped in-process, one after
   the other per epoch (the monolithic single-process reference);
2. **pool** — each partition pinned to a warm worker of
   :mod:`repro.parallel` via affinity keys, epochs exchanged as
   wire-encoded bundles.

Verifies the two runs are **bit-identical** (per-packet latency
samples, per-wafer flit counts) and writes ``BENCH_dcn.json`` with the
wall-clocks and one **gate**:

* ``partition_gate`` — ``pool_speedup >= min(effective_cores,
  n_wafers) / 2``. On a multi-core box partitioning must actually pay;
  on a single effective core the threshold is 0.5, i.e. the barrier +
  wire crossing may at most double the wall-clock.

The process exit code enforces the gate (and parity, and that the run
drained without truncation) — CI fails the ``dcn-smoke`` job on any
regression.

Usage::

    PYTHONPATH=src python benchmarks/bench_dcn.py
    PYTHONPATH=src python benchmarks/bench_dcn.py --hosts 64 --duration 600

Also collected by pytest as a quick smoke test (tiny back-to-back
fabric).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib

from repro.dcn import DCNConfig, DCNShape, run_dcn
from repro.parallel import effective_cpu_count, shutdown_shared_executor

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT_PATH = REPO_ROOT / "BENCH_dcn.json"


def run_bench(
    hosts: int = 32,
    wafer_radix: int = 16,
    ssc_radix: int = 8,
    pattern: str = "uniform",
    duration: int = 400,
    load: float = 0.12,
    seed: int = 3,
    jobs: int = 0,
) -> dict:
    shape = DCNShape(
        n_hosts=hosts, wafer_radix=wafer_radix, ssc_radix=ssc_radix
    )
    config = DCNConfig(
        shape=shape,
        pattern=pattern,
        duration_cycles=duration,
        load=load,
        traffic_seed=seed,
    )
    cores = effective_cpu_count()
    # Worker count: one per partition when the cores exist; at least 2
    # so the single-core box still exercises real cross-process epochs.
    workers = jobs or min(shape.n_wafers, max(2, cores))

    serial = run_dcn(config, executor="serial")
    print(
        f"       serial: {serial.wall_seconds:7.2f}s for {serial.epochs} "
        f"epochs, {serial.packets_delivered} packets ({serial.engine})"
    )
    pool = run_dcn(config, executor="pool", jobs=workers)
    print(
        f"         pool: {pool.wall_seconds:7.2f}s on {workers} worker(s)"
    )

    parity = serial.parity_signature() == pool.parity_signature()
    speedup = round(serial.wall_seconds / pool.wall_seconds, 2)
    # The gate actually applied: min(effective_cores, n_wafers) / 2 —
    # NOT the raw cores/2 ratio. Keep the derivation in the report so
    # the pass/FAIL message can show exactly what was enforced.
    threshold = round(min(cores, shape.n_wafers) / 2, 2)
    return {
        "config": {
            "hosts": hosts,
            "wafer_radix": wafer_radix,
            "ssc_radix": ssc_radix,
            "n_wafers": shape.n_wafers,
            "pattern": pattern,
            "duration_cycles": duration,
            "load": load,
            "seed": seed,
            "epoch_cycles": config.epoch_cycles,
        },
        "engine": serial.engine,
        "jobs": workers,
        "cpu_count": os.cpu_count(),
        "effective_cores": cores,
        "serial_seconds": serial.wall_seconds,
        "pool_seconds": pool.wall_seconds,
        "pool_speedup": speedup,
        "epochs": serial.epochs,
        "packets_delivered": serial.packets_delivered,
        "flits_delivered": serial.flits_delivered,
        "latency": serial.latency_stats(),
        "parity": parity,
        "truncated": serial.truncated or pool.truncated,
        "partition_gate": {
            "threshold": threshold,
            "passed": speedup >= threshold,
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hosts", type=int, default=32)
    parser.add_argument("--wafer-radix", type=int, default=16)
    parser.add_argument("--radix", type=int, default=8)
    from repro.dcn.traffic import PATTERNS

    parser.add_argument("--pattern", choices=PATTERNS, default="uniform")
    parser.add_argument("--duration", type=int, default=400)
    parser.add_argument("--load", type=float, default=0.12)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--jobs", type=int, default=0, help="pool workers (0 = auto)"
    )
    args = parser.parse_args()

    try:
        report = run_bench(
            hosts=args.hosts,
            wafer_radix=args.wafer_radix,
            ssc_radix=args.radix,
            pattern=args.pattern,
            duration=args.duration,
            load=args.load,
            seed=args.seed,
            jobs=args.jobs,
        )
    finally:
        shutdown_shared_executor()
    gate = report["partition_gate"]
    cores = report["effective_cores"]
    n_wafers = report["config"]["n_wafers"]
    # Show the gate actually applied — min(cores, n_wafers)/2 — not
    # the unfloored cores/2 ratio, so a FAIL names the real threshold.
    print(
        f"pool speedup {report['pool_speedup']}x over serial partition "
        f"execution (gate: speedup >= min(effective_cores={cores}, "
        f"n_wafers={n_wafers})/2 = {gate['threshold']}: "
        f"{'pass' if gate['passed'] else 'FAIL'}), "
        f"parity: {report['parity']}"
    )
    ARTIFACT_PATH.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {ARTIFACT_PATH}")
    ok = report["parity"] and gate["passed"] and not report["truncated"]
    return 0 if ok else 1


def test_dcn_bench_smoke():
    """Tiny end-to-end pass: bit parity + a well-formed gate report."""
    try:
        report = run_bench(
            hosts=16,
            wafer_radix=16,
            ssc_radix=8,
            duration=120,
            load=0.06,
            seed=2,
            jobs=2,
        )
    finally:
        shutdown_shared_executor()
    assert report["parity"]
    assert not report["truncated"]
    assert report["packets_delivered"] > 0
    assert 0 < report["partition_gate"]["threshold"] <= report["config"]["n_wafers"] / 2


if __name__ == "__main__":
    raise SystemExit(main())
