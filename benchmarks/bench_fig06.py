"""Regenerate paper artifact fig06 (see repro.experiments.fig06)."""


def test_fig06(run_experiment):
    result = run_experiment("fig06")
    assert result.rows
