"""Regenerate paper artifact fig12 (see repro.experiments.fig12)."""


def test_fig12(run_experiment):
    result = run_experiment("fig12")
    assert result.rows
