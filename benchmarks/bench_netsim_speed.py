"""Netsim throughput microbenchmark (cycles/sec, flits/sec).

Tracks the simulator's own speed — the quantity every load sweep and
trace replay multiplies — on fixed workloads:

* ``mesh_8x8_uniform`` — the headline workload: 8x8 mesh, 2 terminals
  per router, uniform Bernoulli traffic at 0.3 flits/cycle/terminal.
* ``clos_256_uniform`` — a 256-terminal waferscale Clos at 0.3 load.
* ``mesh_8x8_lowload`` — the same mesh at 0.02 load, where the
  active-set scheduler should shine (most components idle).

Usage::

    PYTHONPATH=src python benchmarks/bench_netsim_speed.py

Writes ``BENCH_netsim.json`` next to the repo root with cycles/sec and
flits/sec per workload, plus the speedup over
``benchmarks/baselines/netsim_speed_baseline.json`` (recorded before
the hot-path optimization).  Pass ``--update-baseline`` to overwrite
that baseline (only meaningful on a pre-change tree or to re-anchor
after intentional behaviour changes).

Also collected by pytest as a quick smoke test (one tiny run).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.netsim.config import RouterConfig
from repro.netsim.mesh_network import mesh_network
from repro.netsim.network import waferscale_clos_network
from repro.netsim.packet import reset_packet_ids
from repro.netsim.sim import Simulator
from repro.netsim.traffic import make_pattern

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "benchmarks" / "baselines" / "netsim_speed_baseline.json"
ARTIFACT_PATH = REPO_ROOT / "BENCH_netsim.json"


def _mesh_8x8():
    return mesh_network(
        8,
        8,
        terminals_per_router=2,
        neighbor_channels=2,
        config=RouterConfig(num_vcs=4, buffer_flits_per_port=16),
    )


def _clos_256():
    return waferscale_clos_network(256, 32, num_vcs=4, buffer_flits_per_port=16)


#: name -> (network factory, load, warmup, measure)
WORKLOADS = {
    "mesh_8x8_uniform": (_mesh_8x8, 0.30, 200, 1200),
    "clos_256_uniform": (_clos_256, 0.30, 200, 800),
    "mesh_8x8_lowload": (_mesh_8x8, 0.02, 200, 1200),
}


def run_workload(name: str, repeats: int = 1, telemetry_factory=None) -> dict:
    """Time one workload; report the best of ``repeats`` runs.

    ``telemetry_factory`` (e.g. ``lambda: Telemetry()``) attaches a
    fresh telemetry sink per run — used by the on/off overhead section.
    """
    factory, load, warmup, measure = WORKLOADS[name]
    best = None
    for _ in range(repeats):
        reset_packet_ids()
        network = factory()
        pattern = make_pattern("uniform", network.n_terminals)
        sim = Simulator(network, pattern, load, packet_size_flits=4, seed=7)
        telemetry = telemetry_factory() if telemetry_factory else None
        start = time.perf_counter()
        stats = sim.run(
            warmup_cycles=warmup,
            measure_cycles=measure,
            drain_cycles=1000,
            telemetry=telemetry,
        )
        elapsed = time.perf_counter() - start
        flits_moved = sum(r.flits_forwarded for r in network.routers)
        result = {
            "workload": name,
            "cycles": network.cycle,
            "wall_seconds": round(elapsed, 4),
            "cycles_per_sec": round(network.cycle / elapsed, 1),
            "flits_forwarded": flits_moved,
            "flits_per_sec": round(flits_moved / elapsed, 1),
            "packets_delivered": stats.packets_delivered,
        }
        if best is None or result["cycles_per_sec"] > best["cycles_per_sec"]:
            best = result
    return best


#: Iterations of the calibration loop (fixed work, pure bytecode).
CALIBRATION_LOOPS = 300_000


def calibration_score(repeats: int = 3) -> float:
    """Machine-speed probe: ops/sec of a fixed pure-Python loop.

    Recorded into ``BENCH_netsim.json`` next to the workload timings so
    later runs can normalize away host-speed drift (shared containers
    swing 30%+ run to run): dividing a workload's cycles/sec by the
    same run's calibration score yields a machine-independent ratio
    that the strict overhead test compares across recordings.
    """
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        acc = 0
        slots = {}
        for i in range(CALIBRATION_LOOPS):
            acc += i & 7
            slots[i & 63] = acc
        elapsed = time.perf_counter() - start
        best = max(best, CALIBRATION_LOOPS / elapsed)
    return best


def telemetry_overhead(name: str = "mesh_8x8_uniform", repeats: int = 3) -> dict:
    """Telemetry on-vs-off cost on one workload (best-of-repeats).

    ``off`` is the disabled path (the one the golden-parity suite and
    every default run take) — its budget is <=2 % slower than the
    recorded BENCH baseline. ``on`` prices the opt-in instrumentation.
    """
    from repro.netsim.telemetry import Telemetry

    off = run_workload(name, repeats)
    on = run_workload(name, repeats, telemetry_factory=lambda: Telemetry())
    return {
        "workload": name,
        "off_cycles_per_sec": off["cycles_per_sec"],
        "on_cycles_per_sec": on["cycles_per_sec"],
        "enabled_overhead_pct": round(
            (off["cycles_per_sec"] / on["cycles_per_sec"] - 1.0) * 100.0, 1
        ),
    }


def engine_speedup(vectorized: dict, repeats: int = 1) -> dict:
    """Vectorized-engine speedup over the scalar oracle, per workload.

    Re-runs every workload with ``REPRO_SCALAR_NETSIM=1`` (the object
    simulator that the differential harness holds the vectorized core
    to bit parity with) and divides the vectorized cycles/sec from the
    same report. The scalar runs are slow — this is the section that
    prices exactly how slow.
    """
    import os

    from repro.netsim.fast_core import SCALAR_ENV

    section = {}
    previous = os.environ.get(SCALAR_ENV)
    os.environ[SCALAR_ENV] = "1"
    try:
        for name in WORKLOADS:
            scalar = run_workload(name, repeats)
            section[name] = {
                "scalar_cycles_per_sec": scalar["cycles_per_sec"],
                "vectorized_cycles_per_sec": vectorized[name][
                    "cycles_per_sec"
                ],
                "speedup": round(
                    vectorized[name]["cycles_per_sec"]
                    / scalar["cycles_per_sec"],
                    2,
                ),
            }
    finally:
        if previous is None:
            del os.environ[SCALAR_ENV]
        else:
            os.environ[SCALAR_ENV] = previous
    return section


#: Allowed drop below the committed per-workload baseline (fraction).
SPEED_GATE_SLACK = 0.20


def speed_regression_gate(report: dict, committed: dict) -> dict:
    """Hold vectorized cycles/sec to the committed BENCH baselines.

    Mirrors the ``BENCH_runner.json`` gate pattern: each workload's
    measured cycles/sec must stay within :data:`SPEED_GATE_SLACK` of
    the ``engine_speedup`` baseline recorded in the committed
    ``BENCH_netsim.json``, after normalizing host-speed drift through
    the calibration probe ratio. ``main`` exits non-zero on a miss.
    """
    gate: dict = {
        "slack_pct": round(SPEED_GATE_SLACK * 100.0, 1),
        "workloads": {},
        "passed": True,
    }
    baselines = committed.get("engine_speedup") or {}
    base_calibration = committed.get("calibration_ops_per_sec")
    if not baselines or not base_calibration:
        gate["skipped"] = "committed report lacks engine_speedup/calibration"
        return gate
    scale = report["calibration_ops_per_sec"] / base_calibration
    gate["calibration_scale"] = round(scale, 3)
    for name, entry in baselines.items():
        if name not in report["workloads"]:
            continue
        baseline = entry["vectorized_cycles_per_sec"]
        floor = baseline * scale * (1.0 - SPEED_GATE_SLACK)
        measured = report["workloads"][name]["cycles_per_sec"]
        passed = measured >= floor
        gate["workloads"][name] = {
            "baseline_cycles_per_sec": baseline,
            "floor_cycles_per_sec": round(floor, 1),
            "measured_cycles_per_sec": measured,
            "passed": passed,
        }
        if not passed:
            gate["passed"] = False
    return gate


def run_all(repeats: int = 2) -> dict:
    # Calibrate before AND after the workloads and keep the max: best-of
    # converges on the host's unloaded speed, the most stable estimator
    # a shared machine offers.
    calibration = calibration_score()
    results = {name: run_workload(name, repeats) for name in WORKLOADS}
    calibration = max(calibration, calibration_score())
    report = {"workloads": results}
    report["calibration_ops_per_sec"] = round(calibration, 1)
    report["telemetry_overhead"] = telemetry_overhead(repeats=repeats)
    report["engine_speedup"] = engine_speedup(results)
    committed = (
        json.loads(ARTIFACT_PATH.read_text()) if ARTIFACT_PATH.exists()
        else {}
    )
    report["speed_gate"] = speed_regression_gate(report, committed)
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())["workloads"]
        speedups = {}
        for name, result in results.items():
            if name in baseline:
                speedups[name] = round(
                    result["cycles_per_sec"] / baseline[name]["cycles_per_sec"], 2
                )
        report["speedup_vs_baseline"] = speedups
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="overwrite the stored pre-change baseline with this run",
    )
    parser.add_argument("--repeats", type=int, default=2)
    args = parser.parse_args()

    report = run_all(repeats=args.repeats)
    for name, result in report["workloads"].items():
        line = (
            f"{name}: {result['cycles_per_sec']:>10.0f} cycles/s  "
            f"{result['flits_per_sec']:>10.0f} flits/s  "
            f"({result['cycles']} cycles in {result['wall_seconds']}s)"
        )
        speedup = report.get("speedup_vs_baseline", {}).get(name)
        if speedup is not None:
            line += f"  {speedup}x vs baseline"
        print(line)
    for name, entry in report["engine_speedup"].items():
        print(
            f"{name}: vectorized {entry['vectorized_cycles_per_sec']:.0f} c/s"
            f" vs scalar {entry['scalar_cycles_per_sec']:.0f} c/s"
            f"  ({entry['speedup']}x)"
        )
    overhead = report["telemetry_overhead"]
    print(
        f"telemetry on {overhead['workload']}: "
        f"off {overhead['off_cycles_per_sec']:.0f} c/s, "
        f"on {overhead['on_cycles_per_sec']:.0f} c/s "
        f"({overhead['enabled_overhead_pct']:+.1f}% when enabled)"
    )

    gate = report["speed_gate"]
    if gate.get("skipped"):
        print(f"speed gate: skipped ({gate['skipped']})")
    else:
        for name, entry in gate["workloads"].items():
            print(
                f"speed gate {name}: {entry['measured_cycles_per_sec']:.0f}"
                f" c/s vs floor {entry['floor_cycles_per_sec']:.0f} c/s "
                f"({'pass' if entry['passed'] else 'FAIL'})"
            )

    ARTIFACT_PATH.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {ARTIFACT_PATH}")
    if args.update_baseline:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(report, indent=1) + "\n")
        print(f"wrote {BASELINE_PATH}")
    return 0 if gate["passed"] else 1


def test_netsim_speed_smoke():
    """One tiny timed run so the bench stays importable and runnable."""
    result = run_workload("mesh_8x8_lowload", repeats=1)
    assert result["cycles"] > 0
    assert result["cycles_per_sec"] > 0


def test_speed_regression_gate():
    """Gate math: pass at baseline, fail past the slack, scale-aware."""
    committed = {
        "calibration_ops_per_sec": 1000.0,
        "engine_speedup": {
            "w": {"vectorized_cycles_per_sec": 100.0, "speedup": 10.0}
        },
    }
    report = {
        "calibration_ops_per_sec": 500.0,  # host half as fast -> floor 40
        "workloads": {"w": {"cycles_per_sec": 41.0}},
    }
    gate = speed_regression_gate(report, committed)
    assert gate["passed"] and gate["workloads"]["w"]["passed"]
    report["workloads"]["w"]["cycles_per_sec"] = 39.0
    assert not speed_regression_gate(report, committed)["passed"]
    assert speed_regression_gate(report, {}).get("skipped")


if __name__ == "__main__":
    raise SystemExit(main())
