"""Regenerate paper artifact fig25 (see repro.experiments.fig25)."""


def test_fig25(run_experiment):
    result = run_experiment("fig25")
    assert result.rows
