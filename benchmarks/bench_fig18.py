"""Regenerate paper artifact fig18 (see repro.experiments.fig18)."""


def test_fig18(run_experiment):
    result = run_experiment("fig18")
    assert result.rows
