"""Regenerate paper artifact fig05 (see repro.experiments.fig05)."""


def test_fig05(run_experiment):
    result = run_experiment("fig05")
    assert result.rows
