"""Regenerate paper artifact fig21 (see repro.experiments.fig21)."""


def test_fig21(run_experiment):
    result = run_experiment("fig21")
    assert result.rows
