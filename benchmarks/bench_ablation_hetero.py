"""Ablation: heterogeneous leaf split factor (half vs quarter dies).

DESIGN.md calls out the leaf-die choice as the design decision behind
the paper's 30.8-33.5 % power reduction; this ablation quantifies each
option on the 200 mm design.
"""

from repro.core.explorer import max_feasible_design
from repro.core.hetero import apply_heterogeneity
from repro.tech.external_io import OPTICAL_IO
from repro.tech.wsi import SI_IF_OVERDRIVEN


def test_hetero_leaf_split_ablation(benchmark):
    def run():
        design = max_feasible_design(
            200.0, wsi=SI_IF_OVERDRIVEN, external_io=OPTICAL_IO
        )
        return design, {
            split: apply_heterogeneity(design, leaf_split=split)
            for split in (2, 4, 8)
        }

    design, results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nbaseline: {design.power.total_w / 1000:.1f} kW")
    for split, hetero in sorted(results.items()):
        print(
            f"leaf_split={split}: {hetero.power.total_w / 1000:.1f} kW "
            f"(-{hetero.power_reduction_fraction * 100:.1f}%), "
            f"{hetero.power_density_w_per_mm2:.3f} W/mm2, "
            f"{hetero.cooling.name} cooling"
        )
    assert results[4].power.total_w < results[2].power.total_w
