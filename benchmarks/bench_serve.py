"""Serve-layer load benchmark: latency, coalescing, cache hit rate.

Boots ``python -m repro serve`` as a real subprocess on a loopback
port with an isolated cache directory, then drives it with an asyncio
HTTP client through three phases:

1. **warm latency** — one cold design query populates the response
   cache, then many sequential warm repeats measure the per-request
   p50/p99 (acceptance: warm p50 < 20 ms);
2. **dedup** — N concurrent *identical* cold queries; the in-flight
   coalescing table must collapse them into a handful of pool
   submissions (acceptance: dedup ratio >= 0.9, i.e. <= N/10
   submissions for N=100);
3. **mixed storm** — a large burst of concurrent queries mixing warm
   design/sweep/simulate hits with a spread of cold simulate queries
   (acceptance: zero failed requests).

Writes ``BENCH_serve.json`` with the latency percentiles, dedup ratio,
cache hit rate and server counters. Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --warm 500 --mixed 2000

Also collected by pytest as a scaled-down smoke test.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import statistics
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT_PATH = REPO_ROOT / "BENCH_serve.json"

#: Small-but-real queries: cold compute is a fraction of a second so
#: the benchmark finishes quickly, yet every layer (pool, cache,
#: coalescing) is exercised exactly as with full-size queries.
DESIGN_QUERY = {"substrate_mm": 100.0, "mapping_restarts": 1}
SWEEP_QUERY = {"experiments": ["fig01"]}


def sim_query(seed: int = 1) -> dict:
    return {
        "network": "single-router",
        "terminals": 8,
        "vcs": 2,
        "buffer_flits": 8,
        "loads": [0.1],
        "warmup_cycles": 50,
        "measure_cycles": 100,
        "seed": seed,
    }


# ----------------------------------------------------------------------
# Minimal asyncio HTTP client (keep-alive per request, JSON bodies)
# ----------------------------------------------------------------------


async def request(port: int, method: str, path: str, body=None):
    """One HTTP exchange; returns (status, parsed-JSON body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        data = b"" if body is None else json.dumps(body).encode()
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\nHost: bench\r\n"
                f"Content-Length: {len(data)}\r\nConnection: close\r\n\r\n"
            ).encode()
            + data
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    head, _, payload = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(payload)


async def timed_request(port: int, path: str, body) -> tuple:
    start = time.perf_counter()
    status, _ = await request(port, "POST", path, body)
    return status, (time.perf_counter() - start) * 1000.0


def percentile(samples, fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


# ----------------------------------------------------------------------
# Server lifecycle
# ----------------------------------------------------------------------


class ServerProcess:
    """``python -m repro serve`` on a kernel-picked port."""

    def __init__(self, cache_dir: str):
        env = dict(os.environ, REPRO_CACHE_DIR=cache_dir)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        banner = self.proc.stdout.readline()
        if "listening on" not in banner:
            raise RuntimeError(f"serve failed to boot: {banner!r}")
        self.port = int(banner.rsplit(":", 1)[1])

    def stop(self) -> None:
        self.proc.terminate()
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()


# ----------------------------------------------------------------------
# Phases
# ----------------------------------------------------------------------


async def phase_warm(port: int, repeats: int) -> dict:
    status, cold_ms = await timed_request(port, "/v1/design", DESIGN_QUERY)
    assert status == 200, f"cold design query failed: {status}"
    latencies = []
    for _ in range(repeats):
        status, warm_ms = await timed_request(port, "/v1/design", DESIGN_QUERY)
        assert status == 200
        latencies.append(warm_ms)
    return {
        "cold_ms": round(cold_ms, 2),
        "requests": repeats,
        "p50_ms": round(percentile(latencies, 0.50), 3),
        "p99_ms": round(percentile(latencies, 0.99), 3),
    }


async def stats(port: int) -> dict:
    status, body = await request(port, "GET", "/v1/stats")
    assert status == 200
    return body


async def phase_dedup(port: int, concurrency: int) -> dict:
    before = (await stats(port))["counters"]
    query = sim_query(seed=424242)  # never seen before -> genuinely cold
    outcomes = await asyncio.gather(
        *[timed_request(port, "/v1/simulate", query) for _ in range(concurrency)]
    )
    failed = sum(1 for status, _ in outcomes if status != 200)
    after = (await stats(port))["counters"]
    submissions = after["pool_submissions"] - before["pool_submissions"]
    return {
        "requests": concurrency,
        "failed": failed,
        "pool_submissions": submissions,
        "dedup_ratio": round(1.0 - submissions / concurrency, 4),
    }


async def phase_mixed(port: int, total: int, cold_seeds: int) -> dict:
    """Concurrent storm: mostly warm hits plus a spread of cold sims."""
    tasks = []
    for i in range(total):
        slot = i % 10
        if slot < 4:
            tasks.append(timed_request(port, "/v1/design", DESIGN_QUERY))
        elif slot < 7:
            tasks.append(timed_request(port, "/v1/simulate", sim_query(seed=1)))
        elif slot < 9:
            tasks.append(timed_request(port, "/v1/sweep", SWEEP_QUERY))
        else:
            # Cold sims, cycled over a small seed pool so several
            # requests coalesce onto each genuinely new computation.
            tasks.append(
                timed_request(
                    port, "/v1/simulate", sim_query(seed=9000 + i % cold_seeds)
                )
            )
    start = time.perf_counter()
    outcomes = await asyncio.gather(*tasks)
    wall = time.perf_counter() - start
    latencies = [ms for _, ms in outcomes]
    return {
        "requests": total,
        "failed": sum(1 for status, _ in outcomes if status != 200),
        "wall_seconds": round(wall, 2),
        "requests_per_second": round(total / wall, 1),
        "p50_ms": round(percentile(latencies, 0.50), 2),
        "p99_ms": round(percentile(latencies, 0.99), 2),
    }


async def drive(port: int, warm: int, dedup: int, mixed: int) -> dict:
    # Prime the sweep + warm sim entries so the mixed storm measures a
    # realistic warm/cold blend rather than 1000 cold stampedes.
    status, _ = await request(port, "POST", "/v1/sweep", SWEEP_QUERY)
    assert status == 200
    status, _ = await request(port, "POST", "/v1/simulate", sim_query(seed=1))
    assert status == 200

    report = {
        "warm_design": await phase_warm(port, warm),
        "dedup": await phase_dedup(port, dedup),
        "mixed": await phase_mixed(port, mixed, cold_seeds=max(2, mixed // 100)),
    }
    final = await stats(port)
    report["server"] = final
    report["cache_hit_rate"] = round(final["cache_hit_rate"], 4)
    return report


def run_bench(warm: int = 300, dedup: int = 100, mixed: int = 1000) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as cache_dir:
        server = ServerProcess(cache_dir)
        try:
            report = asyncio.run(drive(server.port, warm, dedup, mixed))
        finally:
            server.stop()
    report["scale"] = {"warm": warm, "dedup": dedup, "mixed": mixed}
    report["passed"] = (
        report["warm_design"]["p50_ms"] < 20.0
        and report["dedup"]["dedup_ratio"] >= 0.9
        and report["dedup"]["failed"] == 0
        and report["mixed"]["failed"] == 0
    )
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--warm", type=int, default=300)
    parser.add_argument("--dedup", type=int, default=100)
    parser.add_argument("--mixed", type=int, default=1000)
    args = parser.parse_args()

    report = run_bench(warm=args.warm, dedup=args.dedup, mixed=args.mixed)
    print(
        f"warm design p50 {report['warm_design']['p50_ms']} ms "
        f"(p99 {report['warm_design']['p99_ms']} ms, cold "
        f"{report['warm_design']['cold_ms']} ms)\n"
        f"dedup: {report['dedup']['requests']} concurrent identical -> "
        f"{report['dedup']['pool_submissions']} pool submission(s), "
        f"ratio {report['dedup']['dedup_ratio']}\n"
        f"mixed: {report['mixed']['requests']} concurrent, "
        f"{report['mixed']['failed']} failed, "
        f"{report['mixed']['requests_per_second']} req/s "
        f"(p50 {report['mixed']['p50_ms']} ms, p99 {report['mixed']['p99_ms']} ms)\n"
        f"cache hit rate {report['cache_hit_rate']}, "
        f"passed: {report['passed']}"
    )
    ARTIFACT_PATH.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {ARTIFACT_PATH}")
    return 0 if report["passed"] else 1


def test_serve_bench_smoke(tmp_path, monkeypatch):
    """Scaled-down pass of all three phases against a real subprocess."""
    del tmp_path, monkeypatch  # isolation comes from run_bench's temp dir
    report = run_bench(warm=20, dedup=20, mixed=60)
    assert report["dedup"]["failed"] == 0
    assert report["mixed"]["failed"] == 0
    assert report["dedup"]["pool_submissions"] <= 2
    assert report["warm_design"]["p50_ms"] < 100  # generous for shared CI


if __name__ == "__main__":
    raise SystemExit(main())
