"""Fidelity-ladder benchmark: paper-scale DCN fabrics in minutes.

Two measurements, one artifact (``BENCH_dcn_scale.json``), exit code
enforcing every gate — the CI ``dcn-smoke`` job runs this on every
push:

1. **Flow-vs-cycle error gate** (smoke shape).  A fabric small enough
   to hold every wafer cycle-accurate is run at ``fidelity=cycle``,
   ``flow`` and ``hybrid`` on identical traffic.  The flow and hybrid
   runs must reproduce the cycle-accurate *delivered throughput*
   (flits per cycle over the makespan) within ``ERROR_GATE`` (10 %).
   Mean latency error is recorded alongside (not gated — latency is
   a modelled quantity at flow fidelity, throughput is the paper
   claim).

2. **Table-VIII-shape scale run.**  A fabric of the paper's *shape* —
   hundreds of wafers in a leaf/spine Clos, far beyond what the
   cycle-accurate partition simulator can hold — simulated end to end
   at ``fidelity=flow`` under both ``uniform`` and LLM-training
   (``dp_allreduce``) traffic.  Gates: the run drains untruncated,
   conserves flits, and completes within ``SCALE_WALL_GATE_S``
   (minutes, not hours).  The measured mean latency is compared
   against the paper-style analytical expectation
   ``hops x wafer_traversal + (hops-1) x inter_wafer_latency``
   (Tables VII-IX account latency by hop count; docs/experiments.md
   carries the full comparison table).

The default scale shape is 2592 hosts over radix-72 wafers: 72 leaf +
36 spine = **108 wafers**, the same 3-stage geometry as the paper's
Table IX deployment (which fields 48 radix-600+ spine wafers for
16384 racks) at a per-wafer radix the CI container calibrates in
seconds.  The full-radix invocation is documented in
docs/dcn_scale.md and scales by swapping the shape arguments.

Usage::

    PYTHONPATH=src python benchmarks/bench_dcn_scale.py
    PYTHONPATH=src python benchmarks/bench_dcn_scale.py \
        --scale-hosts 5184 --scale-wafer-radix 144 --scale-radix 24
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import time

from repro.dcn import DCNConfig, DCNShape, run_dcn
from repro.dcn.flow import calibrate_wafer

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT_PATH = REPO_ROOT / "BENCH_dcn_scale.json"

#: Max relative error of flow/hybrid delivered throughput vs the
#: cycle-accurate reference at the smoke shape.
ERROR_GATE = 0.10

#: The scale run must finish inside this wall budget (seconds).
SCALE_WALL_GATE_S = 900.0

#: Paper analytical context (Tables VII-IX): a WS leaf/spine DCN
#: resolves any host pair in 3 switch hops (vs 5 for the TH-5 Clos),
#: and fields 48 WS spine switches at 16384 racks.
PAPER_ANALYTICAL = {
    "ws_hops": 3,
    "baseline_hops": 5,
    "ws_spine_switches_at_16384_racks": 48,
}


def _throughput(result) -> float:
    return result.flits_delivered / result.makespan if result.makespan else 0.0


def _mean_latency(result) -> float:
    done = [l for l in result.latencies if l >= 0]
    return sum(done) / len(done) if done else 0.0


def run_smoke_gate(
    hosts: int = 32,
    wafer_radix: int = 16,
    ssc_radix: int = 8,
    duration: int = 256,
    load: float = 0.1,
    seed: int = 3,
) -> dict:
    """Flow and hybrid runs vs the cycle-accurate reference."""
    shape = DCNShape(
        n_hosts=hosts, wafer_radix=wafer_radix, ssc_radix=ssc_radix
    )
    base = DCNConfig(
        shape=shape,
        pattern="uniform",
        duration_cycles=duration,
        load=load,
        traffic_seed=seed,
    )
    runs = {}
    for fidelity in ("cycle", "flow", "hybrid"):
        config = dataclasses.replace(
            base,
            fidelity=fidelity,
            cycle_wafers=(0, 1) if fidelity == "hybrid" else (),
        )
        started = time.perf_counter()
        runs[fidelity] = run_dcn(config, executor="serial")
        print(
            f"  smoke {fidelity:>6}: {_throughput(runs[fidelity]):7.3f} "
            f"flits/cycle, mean latency "
            f"{_mean_latency(runs[fidelity]):7.2f}, "
            f"{time.perf_counter() - started:5.2f}s"
        )
    reference = _throughput(runs["cycle"])
    report = {
        "config": {
            "hosts": hosts,
            "wafer_radix": wafer_radix,
            "ssc_radix": ssc_radix,
            "n_wafers": shape.n_wafers,
            "duration_cycles": duration,
            "load": load,
            "seed": seed,
        },
        "error_gate": ERROR_GATE,
        "cycle_throughput": round(reference, 4),
        "cycle_mean_latency": round(_mean_latency(runs["cycle"]), 3),
    }
    for fidelity in ("flow", "hybrid"):
        result = runs[fidelity]
        throughput = _throughput(result)
        error = abs(throughput - reference) / reference if reference else 1.0
        latency_ref = _mean_latency(runs["cycle"])
        latency_err = (
            abs(_mean_latency(result) - latency_ref) / latency_ref
            if latency_ref
            else 0.0
        )
        report[fidelity] = {
            "throughput": round(throughput, 4),
            "throughput_error": round(error, 4),
            "mean_latency": round(_mean_latency(result), 3),
            "latency_error": round(latency_err, 4),
            "conserved": result.flits_offered
            == result.flits_delivered + sum(
                c["inflight"] for c in result.per_wafer
            ),
            "passed": error <= ERROR_GATE,
        }
    report["passed"] = all(
        report[f]["passed"] and report[f]["conserved"]
        for f in ("flow", "hybrid")
    )
    return report


def run_scale(
    hosts: int = 2592,
    wafer_radix: int = 72,
    ssc_radix: int = 12,
    duration: int = 256,
    load: float = 0.03,
    seed: int = 5,
    patterns=("uniform", "dp_allreduce"),
) -> dict:
    """Hundreds of wafers, flow fidelity, end to end."""
    shape = DCNShape(
        n_hosts=hosts, wafer_radix=wafer_radix, ssc_radix=ssc_radix
    )
    curve = calibrate_wafer(
        shape.wafer_terminals,
        shape.ssc_radix,
        num_vcs=shape.num_vcs,
        buffer_flits=shape.buffer_flits,
    )
    zero_load = curve.latency_at(0.0)
    analytical_latency = (
        PAPER_ANALYTICAL["ws_hops"] * zero_load
        + (PAPER_ANALYTICAL["ws_hops"] - 1) * shape.inter_wafer_latency
    )
    report = {
        "config": {
            "hosts": hosts,
            "wafer_radix": wafer_radix,
            "ssc_radix": ssc_radix,
            "n_wafers": shape.n_wafers,
            "n_leaves": shape.n_leaves,
            "n_spines": shape.n_spines,
            "inter_wafer_latency": shape.inter_wafer_latency,
            "duration_cycles": duration,
            "load": load,
            "seed": seed,
        },
        "paper_analytical": dict(
            PAPER_ANALYTICAL,
            wafer_traversal_cycles=round(zero_load, 2),
            inter_leaf_latency_cycles=round(analytical_latency, 2),
        ),
        "wall_gate_seconds": SCALE_WALL_GATE_S,
        "patterns": {},
    }
    total_wall = 0.0
    all_ok = True
    for pattern in patterns:
        config = DCNConfig(
            shape=shape,
            pattern=pattern,
            duration_cycles=duration,
            load=load,
            traffic_seed=seed,
            fidelity="flow",
        )
        started = time.perf_counter()
        result = run_dcn(config, executor="serial")
        wall = time.perf_counter() - started
        total_wall += wall
        conserved = result.flits_offered == result.flits_delivered
        mean_latency = _mean_latency(result)
        latency_vs_analytical = (
            mean_latency / analytical_latency if analytical_latency else 0.0
        )
        ok = conserved and not result.truncated
        all_ok = all_ok and ok
        report["patterns"][pattern] = {
            "packets_delivered": result.packets_delivered,
            "packets_created": result.packets_created,
            "flits_delivered": result.flits_delivered,
            "epochs": result.epochs,
            "makespan": result.makespan,
            "throughput_flits_per_cycle": round(_throughput(result), 3),
            "mean_latency": round(mean_latency, 2),
            "latency": result.latency_stats(),
            "latency_vs_analytical": round(latency_vs_analytical, 3),
            "truncated": result.truncated,
            "conserved": conserved,
            "wall_seconds": round(wall, 3),
        }
        print(
            f"  scale {pattern:>12}: {result.packets_delivered} packets "
            f"over {shape.n_wafers} wafers in {wall:6.2f}s, mean latency "
            f"{mean_latency:7.2f} (analytical {analytical_latency:.2f})"
        )
    report["total_wall_seconds"] = round(total_wall, 3)
    report["passed"] = all_ok and total_wall <= SCALE_WALL_GATE_S
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke-hosts", type=int, default=32)
    parser.add_argument("--smoke-duration", type=int, default=256)
    parser.add_argument("--scale-hosts", type=int, default=2592)
    parser.add_argument("--scale-wafer-radix", type=int, default=72)
    parser.add_argument("--scale-radix", type=int, default=12)
    parser.add_argument("--scale-duration", type=int, default=256)
    parser.add_argument("--scale-load", type=float, default=0.03)
    args = parser.parse_args()

    print("flow-vs-cycle error gate (smoke shape):")
    smoke = run_smoke_gate(
        hosts=args.smoke_hosts, duration=args.smoke_duration
    )
    print("Table-VIII-shape scale run (flow fidelity):")
    scale = run_scale(
        hosts=args.scale_hosts,
        wafer_radix=args.scale_wafer_radix,
        ssc_radix=args.scale_radix,
        duration=args.scale_duration,
        load=args.scale_load,
    )
    report = {
        "smoke": smoke,
        "scale": scale,
        "passed": smoke["passed"] and scale["passed"],
    }
    ARTIFACT_PATH.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {ARTIFACT_PATH}")
    for fidelity in ("flow", "hybrid"):
        entry = smoke[fidelity]
        print(
            f"{fidelity}: throughput error {entry['throughput_error']:.1%} "
            f"(gate <= {ERROR_GATE:.0%}: "
            f"{'pass' if entry['passed'] else 'FAIL'})"
        )
    print(
        f"scale: {scale['config']['n_wafers']} wafers in "
        f"{scale['total_wall_seconds']}s "
        f"(gate <= {SCALE_WALL_GATE_S:.0f}s: "
        f"{'pass' if scale['passed'] else 'FAIL'})"
    )
    return 0 if report["passed"] else 1


def test_dcn_scale_bench_smoke():
    """Tiny end-to-end pass: error gate well-formed and honest."""
    smoke = run_smoke_gate(hosts=32, duration=128, load=0.08)
    assert smoke["flow"]["conserved"] and smoke["hybrid"]["conserved"]
    assert smoke["flow"]["throughput_error"] <= ERROR_GATE
    assert smoke["hybrid"]["throughput_error"] <= ERROR_GATE
    scale = run_scale(
        hosts=288, wafer_radix=24, ssc_radix=12, duration=96,
        patterns=("uniform",),
    )
    assert scale["config"]["n_wafers"] == 36
    assert scale["patterns"]["uniform"]["conserved"]
    assert not scale["patterns"]["uniform"]["truncated"]


if __name__ == "__main__":
    raise SystemExit(main())
