"""Regenerate paper artifact tab03 (see repro.experiments.tab03)."""


def test_tab03(run_experiment):
    result = run_experiment("tab03")
    assert result.rows
