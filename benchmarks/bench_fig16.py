"""Regenerate paper artifact fig16 (see repro.experiments.fig16)."""


def test_fig16(run_experiment):
    result = run_experiment("fig16")
    assert result.rows
