"""Regenerate paper artifact fig11 (see repro.experiments.fig11)."""


def test_fig11(run_experiment):
    result = run_experiment("fig11")
    assert result.rows
