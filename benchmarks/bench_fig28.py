"""Regenerate paper artifact fig28 (see repro.experiments.fig28)."""


def test_fig28(run_experiment):
    result = run_experiment("fig28")
    assert result.rows
