"""Regenerate paper artifact fig13 (see repro.experiments.fig13)."""


def test_fig13(run_experiment):
    result = run_experiment("fig13")
    assert result.rows
