"""Ablation: monolithic vs chiplet-based WSI yield (Section III.A).

Quantifies why the paper builds on chiplet-based integration: KGD
testing plus >99.9 % bonding keeps assembly yield high at 96 chiplets,
while a monolithic waferscale part needs heavy redundancy.
"""

from repro.tech.yield_model import compare_integration_yield


def test_integration_yield_ablation(benchmark):
    def run():
        return {
            n: compare_integration_yield(n) for n in (12, 24, 48, 96)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"{'chiplets':>9s} {'monolithic':>11s} {'mono+spares':>12s} "
        f"{'chiplet WSI':>12s}"
    )
    for n, comparison in sorted(results.items()):
        print(
            f"{n:>9d} {comparison.monolithic_no_redundancy:>11.3f} "
            f"{comparison.monolithic_with_redundancy:>12.3f} "
            f"{comparison.chiplet_based:>12.3f}"
        )
    assert results[96].chiplet_based > results[96].monolithic_with_redundancy
