"""Regenerate paper artifact fig24 (see repro.experiments.fig24)."""


def test_fig24(run_experiment):
    result = run_experiment("fig24")
    assert result.rows
