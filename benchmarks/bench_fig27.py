"""Regenerate paper artifact fig27 (see repro.experiments.fig27)."""


def test_fig27(run_experiment):
    result = run_experiment("fig27")
    assert result.rows
