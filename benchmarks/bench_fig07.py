"""Regenerate paper artifact fig07 (see repro.experiments.fig07)."""


def test_fig07(run_experiment):
    result = run_experiment("fig07")
    assert result.rows
