"""Regenerate paper artifact fig23 (see repro.experiments.fig23)."""


def test_fig23(run_experiment):
    result = run_experiment("fig23")
    assert result.rows
