"""Benchmark harness configuration.

Every benchmark regenerates one paper artifact end-to-end (fast-mode
scale by default; set REPRO_BENCH_FULL=1 for the full-scale runs) and
prints its table so `pytest benchmarks/ --benchmark-only` doubles as
the reproduction report.
"""

from __future__ import annotations

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def pytest_configure(config):
    # Benchmark runs should always report where the time went; mirror
    # an explicit `pytest --durations=20` unless the caller set one.
    if not getattr(config.option, "durations", None):
        config.option.durations = 20


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment once under the benchmark timer and print it."""

    def runner(experiment_id: str):
        from repro.experiments.base import get_experiment

        run = get_experiment(experiment_id)
        result = benchmark.pedantic(
            lambda: run(fast=not FULL), rounds=1, iterations=1
        )
        print()
        print(result.format_table())
        return result

    return runner
