"""Regenerate paper artifact tab08 (see repro.experiments.tab08)."""


def test_tab08(run_experiment):
    result = run_experiment("tab08")
    assert result.rows
