"""Datacenter planning with waferscale switches (Section VIII.B).

Compares a single-switch datacenter and a WS-spine DCN against their
conventional TH-5 Clos equivalents, including the dollar savings from
removed optics and reclaimed rack space (Tables VII and IX).

Run:  python examples/datacenter_planning.py [--racks 16384]
"""

from __future__ import annotations

import argparse

from repro.core.costs import compare_costs
from repro.core.use_cases import datacenter_comparison, dcn_comparison


def show(comparison, costs=None) -> None:
    print(f"\n{comparison.label}")
    print(f"  {'':24s}{'waferscale':>12s}{'TH-5 Clos':>12s}")
    rows = (
        ("switches", comparison.ws_switches, comparison.baseline_switches),
        ("optical cables", comparison.ws_cables, comparison.baseline_cables),
        ("worst-case hops", comparison.ws_hops, comparison.baseline_hops),
        ("rack units", comparison.ws_rack_units, comparison.baseline_rack_units),
    )
    for name, ws, baseline in rows:
        print(f"  {name:24s}{ws:>12,}{baseline:>12,}")
    print(
        f"  {'bisection bandwidth':24s}"
        f"{comparison.bisection_bandwidth_gbps / 1000:>10.1f} Tbps (both)"
    )
    print(
        f"  cable reduction {comparison.cable_reduction * 100:.0f}%, "
        f"rack-space reduction {comparison.rack_space_reduction * 100:.0f}%"
    )
    if costs is not None:
        low, high = costs.total_first_year_savings_usd
        print(
            f"  first-year savings (optics + colocation): "
            f"${low / 1e6:,.0f}M - ${high / 1e6:,.0f}M"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--servers", type=int, default=8192)
    parser.add_argument("--racks", type=int, default=16384)
    args = parser.parse_args()

    single = datacenter_comparison(servers=args.servers)
    show(single, compare_costs(single))

    dcn = dcn_comparison(racks=args.racks)
    show(dcn, compare_costs(dcn))


if __name__ == "__main__":
    main()
