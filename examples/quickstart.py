"""Quickstart: size a waferscale network switch.

Evaluates the paper's headline design — a 300 mm substrate of TH-5-like
sub-switch chiplets with overdriven Si-IF internal links and Optical
I/O — then applies the heterogeneous-leaf optimization and sizes the
physical enclosure.

Run:  python examples/quickstart.py [--substrate 200]
"""

from __future__ import annotations

import argparse

from repro.core import (
    apply_heterogeneity,
    design_system_architecture,
    max_feasible_design,
)
from repro.tech import OPTICAL_IO, SI_IF_OVERDRIVEN


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--substrate",
        type=float,
        default=300.0,
        help="square substrate side in mm (paper: 100/200/300)",
    )
    args = parser.parse_args()

    print(f"Searching the max feasible Clos on a {args.substrate:g}mm wafer...")
    design = max_feasible_design(
        args.substrate, wsi=SI_IF_OVERDRIVEN, external_io=OPTICAL_IO
    )
    if design is None:
        print("No feasible waferscale design; a single TH-5 is the answer.")
        return

    print(f"  {design.describe()}")
    print(f"  worst-edge load: {design.constraints.max_edge_channels} channels")
    print(
        f"  per-port internal bandwidth: "
        f"{design.constraints.available_per_port_gbps:.0f} Gbps"
    )
    print(
        f"  power: {design.power.total_w / 1000:.1f} kW "
        f"({design.power.io_fraction * 100:.0f}% I/O), "
        f"{design.power_density_w_per_mm2:.2f} W/mm2"
    )

    hetero = apply_heterogeneity(design, leaf_split=4)
    print("\nAfter heterogeneous-leaf optimization (scaled TH-3-like leaves):")
    print(
        f"  power: {hetero.power.total_w / 1000:.1f} kW "
        f"(-{hetero.power_reduction_fraction * 100:.1f}%), "
        f"{hetero.power_density_w_per_mm2:.2f} W/mm2 "
        f"-> {hetero.cooling.name} cooling"
    )

    arch = design_system_architecture(
        args.substrate,
        design.n_ports,
        design.topology.port_bandwidth_gbps,
        hetero.power.total_w,
    )
    print("\nEnclosure:")
    print(f"  {arch.psu_count} PSUs, {arch.dcdc_count} DC-DC, {arch.vrm_count} VRMs")
    print(f"  {arch.pcl_count} cold plates on {arch.supply_channel_count} loops")
    print(
        f"  {arch.adapter_count} optical adapters in {arch.front_panel_ru}RU "
        f"+ 1RU management = {arch.total_ru}RU total"
    )
    print(
        f"  {arch.power_per_port_w:.1f} W/port, "
        f"{arch.capacity_density_tbps_per_ru:.1f} Tbps/RU"
    )


if __name__ == "__main__":
    main()
