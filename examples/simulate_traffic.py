"""Cycle-accurate comparison: waferscale switch vs switch network.

Runs the Section VI simulation on a scaled-down 2-level Clos (64 hosts,
radix-16 SSCs by default): load-latency curves for uniform traffic plus
a synthetic LULESH trace replay.

Run:  python examples/simulate_traffic.py [--terminals 128 --radix 16]
"""

from __future__ import annotations

import argparse

from repro.netsim import (
    baseline_switch_network,
    duplicate_trace,
    load_latency_sweep,
    synthetic_nersc_trace,
    waferscale_clos_network,
)
from repro.netsim.trace import SyntheticTraceSpec, replay_trace
from repro.netsim.traffic import make_pattern


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--terminals", type=int, default=64)
    parser.add_argument("--radix", type=int, default=16)
    args = parser.parse_args()

    common = dict(
        n_terminals=args.terminals,
        ssc_radix=args.radix,
        num_vcs=4,
        buffer_flits_per_port=16,
    )
    factories = {
        "waferscale": lambda: waferscale_clos_network(**common),
        "switch-network": lambda: baseline_switch_network(**common),
    }

    print(f"Uniform traffic, {args.terminals} hosts on radix-{args.radix} SSCs")
    print(f"{'load':>6s}  " + "".join(f"{name:>18s}" for name in factories))
    loads = (0.1, 0.3, 0.5, 0.7)
    curves = {
        name: load_latency_sweep(
            factory, lambda n: make_pattern("uniform", n), loads
        )
        for name, factory in factories.items()
    }
    for i, load in enumerate(loads):
        cells = "".join(
            f"{curves[name][i].avg_latency_cycles:>15.1f}cyc"
            for name in factories
        )
        print(f"{load:>6.1f}  {cells}")

    print("\nSynthetic LULESH trace replay (halo-exchange bursts):")
    spec = SyntheticTraceSpec(n_nodes=args.terminals // 2, iterations=3)
    events = duplicate_trace(
        synthetic_nersc_trace("lulesh", spec),
        copies=2,
        nodes_per_copy=args.terminals // 2,
    )
    for name, factory in factories.items():
        stats = replay_trace(factory(), events, compression=4.0)
        print(
            f"  {name:15s} finished in {stats.measure_end} cycles, "
            f"avg packet latency {stats.avg_latency_cycles:.1f} cycles"
        )


if __name__ == "__main__":
    main()
