"""Full design-space sweep: the paper's Figures 6-9 in one report.

Sweeps substrate sizes, internal bandwidth densities, and external I/O
technologies, printing the maximum feasible radix and its binding
constraint for each point.

Run:  python examples/design_space_sweep.py [--full]
      (--full includes the 300 mm substrate; ~2-4 minutes on first run)
"""

from __future__ import annotations

import argparse

from repro.core import max_feasible_design
from repro.core.explorer import ideal_max_ports
from repro.tech import (
    AREA_IO,
    OPTICAL_IO,
    SERDES_IO,
    SI_IF,
    SI_IF_OVERDRIVEN,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args()

    substrates = (100.0, 200.0, 300.0) if args.full else (100.0, 200.0)
    wsis = ((SI_IF, "3200"), (SI_IF_OVERDRIVEN, "6400"))
    externals = (SERDES_IO, OPTICAL_IO, AREA_IO)

    header = f"{'substrate':>9s} {'internal':>9s} {'external':>12s} {'ports':>6s} {'ideal':>6s}  binding"
    print(header)
    print("-" * len(header))
    for side in substrates:
        ideal = ideal_max_ports(side)
        for wsi, density in wsis:
            for ext in externals:
                design = max_feasible_design(side, wsi=wsi, external_io=ext)
                if design is None:
                    print(
                        f"{side:>7.0f}mm {density:>9s} {ext.name:>12s} "
                        f"{'—':>6s} {ideal:>6d}  (none feasible)"
                    )
                    continue
                binding = (
                    "none (area-ideal)"
                    if design.n_ports == ideal
                    else "internal/external bandwidth"
                )
                print(
                    f"{side:>7.0f}mm {density:>9s} {ext.name:>12s} "
                    f"{design.n_ports:>6d} {ideal:>6d}  {binding}"
                )


if __name__ == "__main__":
    main()
