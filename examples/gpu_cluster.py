"""Sizing a singular GPU cluster around a waferscale switch (Table VIII).

Builds the paper's 2048 x 800G switch configuration, checks its
feasibility on a 300 mm substrate, and compares the resulting GPU
cluster to a DGX-GH200-style NVSwitch network.

Run:  python examples/gpu_cluster.py
"""

from __future__ import annotations

from repro.core.design import evaluate_design
from repro.core.use_cases import NVSWITCH_BASELINE, gpu_cluster_comparison
from repro.tech import OPTICAL_IO, SI_IF_OVERDRIVEN
from repro.tech.chiplet import TH5_CONFIGURATIONS
from repro.topology import folded_clos


def main() -> None:
    # TH-5 in its 64 x 800G configuration; 2048 ports = 32x one chip.
    ssc = TH5_CONFIGURATIONS[64]
    topology = folded_clos(2048, ssc)
    design = evaluate_design(300.0, topology, SI_IF_OVERDRIVEN, OPTICAL_IO)
    print("GPU switch design:", design.describe())
    print(
        f"  per-port internal bandwidth: "
        f"{design.constraints.available_per_port_gbps:.0f} Gbps "
        f"(needs {ssc.port_bandwidth_gbps:g})"
    )

    comparison = gpu_cluster_comparison(gpus=2048)
    print(f"\n{comparison.label} vs NVSwitch network:")
    print(f"  GPUs:        2048 vs {NVSWITCH_BASELINE['gpus']}")
    print(f"  switches:    {comparison.ws_switches} vs {comparison.baseline_switches}")
    print(f"  cables:      {comparison.ws_cables} vs {comparison.baseline_cables}")
    print(f"  hop count:   {comparison.ws_hops} vs {comparison.baseline_hops}")
    print(f"  rack units:  {comparison.ws_rack_units} vs {comparison.baseline_rack_units}")
    print(
        f"  bisection:   {comparison.bisection_bandwidth_gbps / 1000:.1f} Tbps "
        f"vs {NVSWITCH_BASELINE['bisection_tbps']} Tbps"
    )
    # 96 GB HBM per GPU (GH200-class) -> shared VRAM pool at one hop.
    vram_tb = 2048 * 576 / 1024
    print(f"  shared VRAM: {vram_tb / 1000:.2f} PB at a single switch hop")


if __name__ == "__main__":
    main()
