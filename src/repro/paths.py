"""One resolver for every on-disk cache location.

The experiment result cache, the persistent mapping store, and the
serve-layer response cache all live under a single root —
``.repro_cache/`` in the working directory unless ``REPRO_CACHE_DIR``
overrides it. The resolution logic used to be duplicated in
:mod:`repro.experiments.cache` and :mod:`repro.mapping.store`; both now
delegate here (their old module-level names remain importable as
deprecation shims).

Explicit always beats implicit: every function takes an optional
``root``/``override`` argument so programmatic callers — the
:mod:`repro.api` facade and the :mod:`repro.serve` server — can pin a
cache directory without touching the process environment. The
environment variable stays as the CLI-era escape hatch.

Layout under the root::

    .repro_cache/
        <experiment>-<mode>-<key>.json   experiment result cache
        mappings/mapping-<key>.json      persistent mapping store
        serve/response-<key>.json        serve-layer response cache
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

#: Environment variable overriding the shared cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache root (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

PathLike = Union[str, Path]


def cache_root(override: Optional[PathLike] = None) -> Path:
    """The shared cache root directory (not created).

    Resolution order: the explicit ``override`` argument, then
    ``$REPRO_CACHE_DIR``, then ``.repro_cache`` in the cwd.

    >>> import os
    >>> os.environ.pop("REPRO_CACHE_DIR", None) and None
    >>> cache_root().name
    '.repro_cache'
    >>> cache_root("/tmp/elsewhere").as_posix()
    '/tmp/elsewhere'
    """
    if override is not None:
        return Path(override)
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


def experiment_cache_dir(root: Optional[PathLike] = None) -> Path:
    """Directory holding experiment result entries (the root itself)."""
    return cache_root(root)


def mapping_store_dir(root: Optional[PathLike] = None) -> Path:
    """Directory holding persisted mapping entries."""
    return cache_root(root) / "mappings"


def serve_cache_dir(root: Optional[PathLike] = None) -> Path:
    """Directory holding serve-layer query/response entries."""
    return cache_root(root) / "serve"
