"""Unit helpers and physical constants shared across the library.

All internal computation uses a consistent unit system:

* bandwidth        — Gbps (gigabits per second)
* length           — mm
* area             — mm^2
* power            — W
* energy per bit   — pJ/bit
* time             — ns

The conversion helpers below exist so that call sites can state their
units explicitly (``tbps(51.2)`` reads better than ``51.2e3``).
"""

from __future__ import annotations

GBPS_PER_TBPS = 1000.0
W_PER_KW = 1000.0
MM_PER_CM = 10.0
NS_PER_US = 1000.0

#: Rack unit height in mm (EIA-310), used by the system-architecture model.
MM_PER_RU = 44.45


def tbps(value: float) -> float:
    """Convert terabits per second to the library's Gbps unit."""
    return value * GBPS_PER_TBPS


def gbps_to_tbps(value: float) -> float:
    """Convert Gbps to Tbps (for reporting)."""
    return value / GBPS_PER_TBPS


def kw(value: float) -> float:
    """Convert kilowatts to watts."""
    return value * W_PER_KW


def w_to_kw(value: float) -> float:
    """Convert watts to kilowatts (for reporting)."""
    return value / W_PER_KW


def io_power_watts(bandwidth_gbps: float, energy_pj_per_bit: float) -> float:
    """Power in watts of an I/O link.

    ``Gbps * pJ/bit = 1e9 bit/s * 1e-12 J/bit = 1e-3 W``, hence the
    division by 1000.
    """
    return bandwidth_gbps * energy_pj_per_bit / 1000.0


def mm2_of_square(side_mm: float) -> float:
    """Area of a square substrate of the given side."""
    return side_mm * side_mm


def require_positive(name: str, value: float) -> float:
    """Validate that a model parameter is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Validate that a model parameter is non-negative."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value
