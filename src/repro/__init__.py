"""repro: a reproduction of "Waferscale Network Switches" (ISCA 2024).

Public API overview:

* ``repro.tech`` — technology parameter models (WSI substrates,
  external I/O, TH-5-like chiplets, power scaling, cooling).
* ``repro.topology`` — logical switch topologies (folded Clos,
  heterogeneous Clos, mesh, butterfly, dragonfly, flattened butterfly).
* ``repro.mapping`` — logical-to-physical mapping onto the wafer mesh
  with the pairwise-exchange heuristic (Algorithm 1).
* ``repro.core`` — the design-space study: feasibility constraints,
  max-radix exploration, heterogeneity / deradixing optimizations,
  power breakdowns, system architecture, and use-case comparisons.
* ``repro.netsim`` — cycle-accurate network simulator (Booksim2
  equivalent) for the Section VI performance experiments.
* ``repro.experiments`` — one module per paper table/figure.

Quickstart::

    from repro.core import max_feasible_design
    from repro.tech import SI_IF_OVERDRIVEN, OPTICAL_IO

    design = max_feasible_design(
        300, wsi=SI_IF_OVERDRIVEN, external_io=OPTICAL_IO
    )
    print(design.describe())  # 8192 x 200G ports, ~62 kW
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
