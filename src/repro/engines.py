"""Explicit engine selection for the netsim and mapping kernels.

The repo carries three interchangeable netsim implementations (the
scalar object oracle, the vectorized numpy loop, and the compiled C
step kernel) and two mapping kernels (scalar oracle, delta-vectorized
fast kernel). Historically the only way to pick one was an environment
variable set before the run (``REPRO_SCALAR_NETSIM``,
``REPRO_NETSIM_NO_CC``, ``REPRO_SCALAR_MAPPING``) — fine for CI parity
jobs, hostile to programmatic callers. This module is the explicit
front door: every simulation entry point now takes an ``engine=``
keyword whose value is resolved here, **once per run**, before any
dispatch happens.

Netsim engine names (``NETSIM_ENGINES``):

* ``"auto"``   — the process default (normally ``"c"``); what you get
  when you don't care.
* ``"c"``      — the vectorized engine with the compiled C step kernel;
  falls back to ``"numpy"`` when no C toolchain is available.
* ``"numpy"``  — the vectorized engine's pure-numpy step loop.
* ``"scalar"`` — the object-model oracle.

Mapping engine names (``MAPPING_ENGINES``): ``"auto"``, ``"fast"``
(delta-vectorized numpy kernel), ``"scalar"`` (pure-Python oracle).

Resolution order, most binding first:

1. **Environment overrides** — ``REPRO_SCALAR_NETSIM=1`` forces
   ``"scalar"``; ``REPRO_NETSIM_NO_CC=1`` demotes ``"c"`` to
   ``"numpy"``; ``REPRO_SCALAR_MAPPING=1`` forces the scalar mapping
   kernel. These exist so CI parity jobs can pin a whole test
   process (including subprocesses) without editing call sites.
2. **The explicit ``engine=`` argument** of the entry point.
3. **The process default** (:func:`set_default_engines`), which the
   pool-worker initializer in :mod:`repro.parallel` mirrors into
   workers so ``--jobs`` runs honor a top-level choice.

A request the hardware cannot satisfy degrades gracefully in the same
direction the env switches always have: ``"c"`` without a C toolchain
runs the numpy loop; a network shape the vectorized engine does not
support runs on the scalar oracle regardless of the request. All
engines are held to bit-identical results by the differential harness,
so degradation changes speed, never answers.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

#: Accepted ``engine=`` values for the netsim entry points.
NETSIM_ENGINES = ("auto", "c", "numpy", "scalar")

#: Accepted ``engine=`` values for the mapping optimizer.
MAPPING_ENGINES = ("auto", "fast", "scalar")

#: Env switch forcing the scalar netsim oracle (CI parity override).
SCALAR_NETSIM_ENV = "REPRO_SCALAR_NETSIM"

#: Env switch disabling the compiled C kernel (CI parity override).
NO_CC_ENV = "REPRO_NETSIM_NO_CC"

#: Env switch forcing the scalar mapping kernel (CI parity override).
SCALAR_MAPPING_ENV = "REPRO_SCALAR_MAPPING"

#: Process-wide defaults used when a caller passes ``engine="auto"``.
_DEFAULTS: Dict[str, str] = {"netsim": "auto", "mapping": "auto"}


def set_default_engines(
    netsim: Optional[str] = None, mapping: Optional[str] = None
) -> None:
    """Set the process-wide engines behind ``engine="auto"``.

    The :mod:`repro.parallel` pool initializer replays these defaults
    into every worker, so one call before a ``--jobs`` run pins the
    engine everywhere. Pass ``None`` to leave a default unchanged.
    """
    if netsim is not None:
        _validate(netsim, NETSIM_ENGINES, "netsim")
        _DEFAULTS["netsim"] = netsim
    if mapping is not None:
        _validate(mapping, MAPPING_ENGINES, "mapping")
        _DEFAULTS["mapping"] = mapping


def default_engines() -> Dict[str, str]:
    """Copy of the process defaults (the pool initializer payload)."""
    return dict(_DEFAULTS)


def _validate(engine: str, allowed, kind: str) -> str:
    if engine not in allowed:
        raise ValueError(
            f"unknown {kind} engine {engine!r}; choose from {allowed}"
        )
    return engine


def resolve_netsim_engine(engine: str = "auto") -> str:
    """Resolve an ``engine=`` request to ``"c"``, ``"numpy"`` or ``"scalar"``.

    >>> resolve_netsim_engine("scalar")
    'scalar'
    >>> resolve_netsim_engine("numpy")
    'numpy'
    """
    _validate(engine, NETSIM_ENGINES, "netsim")
    if os.environ.get(SCALAR_NETSIM_ENV, "") == "1":
        return "scalar"
    if engine == "auto":
        engine = _DEFAULTS["netsim"]
    if engine == "auto":
        engine = "c"
    if engine == "c" and os.environ.get(NO_CC_ENV, "") == "1":
        return "numpy"
    return engine


def resolve_mapping_engine(engine: str = "auto") -> str:
    """Resolve an ``engine=`` request to ``"fast"`` or ``"scalar"``.

    >>> resolve_mapping_engine("fast")
    'fast'
    """
    _validate(engine, MAPPING_ENGINES, "mapping")
    if os.environ.get(SCALAR_MAPPING_ENV, "") == "1":
        return "scalar"
    if engine == "auto":
        engine = _DEFAULTS["mapping"]
    return "fast" if engine == "auto" else engine
