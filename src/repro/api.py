"""Programmatic facade: typed queries in, JSON-serializable results out.

Everything the CLI can do — evaluate a design point, sweep paper
experiments, run a cycle-accurate simulation — is reachable here
through three frozen query dataclasses:

* :class:`DesignQuery`   — max-feasible-design search for a substrate /
  WSI / external-I/O / topology-family combination;
* :class:`SweepQuery`    — paper-artifact experiment tables, served
  through the content-addressed result cache;
* :class:`SimQuery`      — a load-latency sweep on one of the netsim
  network models, optionally with telemetry capture;
* :class:`DCNQuery`      — a partitioned multi-wafer DCN simulation
  (leaf/spine folded Clos of wafers, see :mod:`repro.dcn`).

Each query round-trips through ``to_dict``/``from_dict`` (the wire
format of the :mod:`repro.serve` server) and has a deterministic
content key (:func:`query_key`) covering the query fields, the engine
selection **and** a transitive source fingerprint of this module — so
a cached response can never outlive an edit to any code that produced
it.

Engine and cache selection is *explicit*: :func:`execute` takes
``engine=`` (netsim kernel), ``mapping_engine=`` and ``cache=``
keywords instead of requiring callers to set ``REPRO_SCALAR_NETSIM`` /
``REPRO_NETSIM_NO_CC`` / ``REPRO_SCALAR_MAPPING`` environment
variables (those remain as CI overrides — see :mod:`repro.engines`).

>>> query = query_from_dict({"kind": "design", "substrate_mm": 100.0})
>>> query.substrate_mm, query.family
(100.0, 'clos')
>>> query == DesignQuery.from_dict(query.to_dict())
True
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.engines import resolve_mapping_engine, resolve_netsim_engine

#: Schema tag/version for every facade response envelope.
RESPONSE_SCHEMA = "repro-api-response"
RESPONSE_SCHEMA_VERSION = 1

#: Schema tag/version for serialized queries.
QUERY_SCHEMA = "repro-api-query"
QUERY_SCHEMA_VERSION = 1

#: Telemetry callback: ``on_telemetry(load, report_dict)`` per point.
TelemetryCallback = Callable[[float, Dict[str, Any]], None]


class QueryError(ValueError):
    """A query that cannot be executed (unknown names, bad payloads)."""


# ----------------------------------------------------------------------
# Query dataclasses
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DesignQuery:
    """Find the max feasible waferscale switch for one configuration."""

    substrate_mm: float = 300.0
    wsi: str = "Si-IF (x2 overdrive)"
    external_io: str = "Optical I/O"
    family: str = "clos"
    hetero: bool = False
    mapping_restarts: int = 2

    kind = "design"

    def to_dict(self) -> Dict[str, Any]:
        return _query_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DesignQuery":
        return _query_from_dict(cls, payload)


@dataclass(frozen=True)
class SweepQuery:
    """Run paper-artifact experiments (all of them when empty)."""

    experiments: Tuple[str, ...] = ()
    fast: bool = True

    kind = "sweep"

    def __post_init__(self):
        object.__setattr__(self, "experiments", tuple(self.experiments))

    def to_dict(self) -> Dict[str, Any]:
        return _query_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SweepQuery":
        return _query_from_dict(cls, payload)


@dataclass(frozen=True)
class SimQuery:
    """Cycle-accurate load-latency sweep on one network model."""

    network: str = "waferscale"  # waferscale | switch-network | single-router
    terminals: int = 64
    radix: int = 16
    vcs: int = 4
    buffer_flits: int = 16
    pattern: str = "uniform"
    loads: Tuple[float, ...] = (0.1, 0.3)
    packet_size_flits: int = 4
    warmup_cycles: int = 500
    measure_cycles: int = 1500
    seed: int = 1
    telemetry: bool = False

    kind = "simulate"

    def __post_init__(self):
        object.__setattr__(
            self, "loads", tuple(float(x) for x in self.loads)
        )

    def to_dict(self) -> Dict[str, Any]:
        return _query_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimQuery":
        return _query_from_dict(cls, payload)


@dataclass(frozen=True)
class DCNQuery:
    """Partitioned multi-wafer DCN simulation (see :mod:`repro.dcn`).

    ``executor`` defaults to ``"serial"`` — the safe choice on the
    serve path, where queries already run inside pool workers and must
    not open nested pools.  Direct callers wanting partition-level
    parallelism pass ``"pool"`` (or ``"auto"``).  ``failure_seed < 0``
    disables failure injection entirely.

    ``fidelity`` selects the rung of the fidelity ladder
    (docs/dcn_scale.md): ``"cycle"`` holds every wafer cycle-accurate,
    ``"flow"`` models every wafer as a calibrated queueing node (the
    only tractable mode at the paper's Tables VII–IX scale), and
    ``"hybrid"`` keeps ``cycle_wafers`` cycle-accurate while the rest
    run flow-level, stitched at the same epoch barrier.
    """

    hosts: int = 16
    wafer_radix: int = 16
    ssc_radix: int = 8
    back_to_back: bool = False
    pattern: str = "uniform"
    duration_cycles: int = 128
    load: float = 0.05
    packet_size_flits: int = 4
    seed: int = 1
    lookahead: int = 0
    inter_wafer_latency: int = 40
    vcs: int = 4
    buffer_flits: int = 16
    failure_seed: int = -1
    ssc_area_mm2: float = 25.0
    link_failure_prob: float = 0.0
    executor: str = "serial"
    fidelity: str = "cycle"
    cycle_wafers: Tuple[int, ...] = ()

    kind = "dcn"

    def __post_init__(self):
        object.__setattr__(
            self, "cycle_wafers", tuple(int(w) for w in self.cycle_wafers)
        )

    def to_dict(self) -> Dict[str, Any]:
        return _query_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DCNQuery":
        return _query_from_dict(cls, payload)


Query = Union[DesignQuery, SweepQuery, SimQuery, DCNQuery]

_QUERY_KINDS = {
    DesignQuery.kind: DesignQuery,
    SweepQuery.kind: SweepQuery,
    SimQuery.kind: SimQuery,
    DCNQuery.kind: DCNQuery,
}


def _query_to_dict(query: Query) -> Dict[str, Any]:
    payload = {
        "schema": QUERY_SCHEMA,
        "version": QUERY_SCHEMA_VERSION,
        "kind": query.kind,
    }
    for f in dataclasses.fields(query):
        value = getattr(query, f.name)
        payload[f.name] = list(value) if isinstance(value, tuple) else value
    return payload


def _query_from_dict(cls, payload: Dict[str, Any]):
    if payload.get("schema") not in (None, QUERY_SCHEMA):
        raise QueryError(f"not a {QUERY_SCHEMA} payload")
    kind = payload.get("kind", cls.kind)
    if kind != cls.kind:
        raise QueryError(f"expected a {cls.kind!r} query, got {kind!r}")
    names = {f.name for f in dataclasses.fields(cls)}
    extra = set(payload) - names - {"schema", "version", "kind"}
    if extra:
        raise QueryError(f"unknown {kind} query fields: {sorted(extra)}")
    kwargs = {name: payload[name] for name in names if name in payload}
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise QueryError(f"bad {kind} query: {exc}") from exc


def query_from_dict(payload: Dict[str, Any]) -> Query:
    """Build the right query type from a ``{"kind": ...}`` payload."""
    try:
        kind = payload["kind"]
    except (TypeError, KeyError):
        raise QueryError('query payload needs a "kind" field') from None
    try:
        cls = _QUERY_KINDS[kind]
    except KeyError:
        raise QueryError(
            f"unknown query kind {kind!r}; choose from {sorted(_QUERY_KINDS)}"
        ) from None
    return cls.from_dict(payload)


@lru_cache(maxsize=None)
def _api_fingerprint() -> str:
    """Source fingerprint over everything this facade transitively uses."""
    from repro.fingerprint import source_fingerprint, transitive_modules

    return source_fingerprint(transitive_modules("repro.api"))


def query_key(
    query: Query, engine: str = "auto", mapping_engine: str = "auto"
) -> str:
    """Deterministic content key for coalescing and response caching.

    Two requests share a key iff they would compute the same thing:
    same query fields, same *resolved* engines, same source tree.
    """
    raw = json.dumps(
        {
            "query": query.to_dict(),
            "engine": resolve_netsim_engine(engine),
            "mapping_engine": resolve_mapping_engine(mapping_engine),
            "source": _api_fingerprint(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(raw.encode()).hexdigest()[:24]


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def _envelope(query: Query, engine: str, mapping_engine: str) -> Dict[str, Any]:
    return {
        "schema": RESPONSE_SCHEMA,
        "version": RESPONSE_SCHEMA_VERSION,
        "kind": query.kind,
        "key": query_key(query, engine, mapping_engine),
        "query": query.to_dict(),
        "engines": {
            "netsim": resolve_netsim_engine(engine),
            "mapping": resolve_mapping_engine(mapping_engine),
        },
    }


def _execute_design(
    query: DesignQuery, engine: str, mapping_engine: str
) -> Dict[str, Any]:
    from repro.core.explorer import TOPOLOGY_FAMILIES, max_feasible_design
    from repro.core.hetero import apply_heterogeneity
    from repro.tech.external_io import EXTERNAL_IO_TECHNOLOGIES
    from repro.tech.wsi import WSI_TECHNOLOGIES

    try:
        wsi = WSI_TECHNOLOGIES[query.wsi]
    except KeyError:
        raise QueryError(
            f"unknown WSI technology {query.wsi!r}; "
            f"choose from {sorted(WSI_TECHNOLOGIES)}"
        ) from None
    if query.external_io is None:
        external = None
    else:
        try:
            external = EXTERNAL_IO_TECHNOLOGIES[query.external_io]
        except KeyError:
            raise QueryError(
                f"unknown external I/O technology {query.external_io!r}; "
                f"choose from {sorted(EXTERNAL_IO_TECHNOLOGIES)}"
            ) from None
    if query.family not in TOPOLOGY_FAMILIES:
        raise QueryError(
            f"unknown topology family {query.family!r}; "
            f"choose from {sorted(TOPOLOGY_FAMILIES)}"
        )
    design = max_feasible_design(
        query.substrate_mm,
        wsi=wsi,
        external_io=external,
        family=query.family,
        mapping_restarts=query.mapping_restarts,
    )
    result: Dict[str, Any] = {
        "feasible": design is not None,
        "design": None if design is None else design.to_dict(),
    }
    if design is not None and query.hetero:
        hetero = apply_heterogeneity(design, leaf_split=4)
        result["hetero"] = {
            "total_power_w": hetero.power.total_w,
            "power_reduction_fraction": hetero.power_reduction_fraction,
            "cooling": hetero.cooling.name,
        }
    return result


def _execute_sweep(query: SweepQuery, cache) -> Dict[str, Any]:
    from repro.experiments.base import EXPERIMENT_IDS
    from repro.experiments.runner import run_experiments

    unknown = [i for i in query.experiments if i not in EXPERIMENT_IDS]
    if unknown:
        raise QueryError(
            f"unknown experiment ids {unknown}; see repro.experiments"
        )
    results = run_experiments(
        list(query.experiments) or None, fast=query.fast, cache=cache
    )
    return {
        "experiments": [r.to_dict() for r in results],
        "cached": cache is not None,
    }


def _sim_network_factory(query: SimQuery):
    from repro.netsim.network import (
        baseline_switch_network,
        single_router_network,
        waferscale_clos_network,
    )

    if query.network == "waferscale":
        return lambda: waferscale_clos_network(
            n_terminals=query.terminals,
            ssc_radix=query.radix,
            num_vcs=query.vcs,
            buffer_flits_per_port=query.buffer_flits,
        )
    if query.network == "switch-network":
        return lambda: baseline_switch_network(
            n_terminals=query.terminals,
            ssc_radix=query.radix,
            num_vcs=query.vcs,
            buffer_flits_per_port=query.buffer_flits,
        )
    if query.network == "single-router":
        return lambda: single_router_network(
            query.terminals,
            num_vcs=query.vcs,
            buffer_flits_per_port=query.buffer_flits,
        )
    raise QueryError(
        f"unknown network model {query.network!r}; choose from "
        "['single-router', 'switch-network', 'waferscale']"
    )


def _execute_sim(
    query: SimQuery,
    engine: str,
    on_telemetry: Optional[TelemetryCallback],
) -> Dict[str, Any]:
    from repro.netsim.sim import load_latency_sweep
    from repro.netsim.telemetry import Telemetry
    from repro.netsim.traffic import TRAFFIC_PATTERNS, make_pattern

    if query.pattern not in TRAFFIC_PATTERNS:
        raise QueryError(
            f"unknown traffic pattern {query.pattern!r}; "
            f"choose from {list(TRAFFIC_PATTERNS)}"
        )
    if not query.loads:
        raise QueryError("simulate query needs at least one load")
    factory = _sim_network_factory(query)

    reports: List[Dict[str, Any]] = []
    pending: List[Tuple[float, Telemetry]] = []

    def flush() -> None:
        # A point's sink is complete once the sweep moves past it; the
        # factory call for the next point (and the tail flush) drain
        # finished sinks so ``on_telemetry`` streams per point.
        while pending:
            done_load, sink = pending.pop(0)
            report = sink.to_dict()
            reports.append({"load": done_load, "report": report})
            if on_telemetry is not None:
                on_telemetry(done_load, report)

    def telemetry_factory(load: float) -> Telemetry:
        flush()
        sink = Telemetry()
        pending.append((load, sink))
        return sink

    points = load_latency_sweep(
        factory,
        lambda n: make_pattern(query.pattern, n),
        list(query.loads),
        packet_size_flits=query.packet_size_flits,
        warmup_cycles=query.warmup_cycles,
        measure_cycles=query.measure_cycles,
        seed=query.seed,
        telemetry_factory=telemetry_factory if query.telemetry else None,
        engine=engine,
    )
    flush()
    result: Dict[str, Any] = {
        "points": [dataclasses.asdict(p) for p in points],
    }
    if query.telemetry:
        result["telemetry"] = reports
    return result


def _execute_dcn(query: DCNQuery, engine: str) -> Dict[str, Any]:
    from repro.dcn import DCNConfig, DCNShape, FailureConfig, run_dcn
    from repro.dcn.sim import EXECUTORS, FIDELITIES
    from repro.dcn.traffic import PATTERNS

    if query.executor not in EXECUTORS:
        raise QueryError(
            f"unknown executor {query.executor!r}; choose from {EXECUTORS}"
        )
    if query.fidelity not in FIDELITIES:
        raise QueryError(
            f"unknown fidelity {query.fidelity!r}; choose from {FIDELITIES}"
        )
    if query.pattern not in PATTERNS:
        raise QueryError(
            f"unknown DCN traffic pattern {query.pattern!r}; "
            f"choose from {PATTERNS}"
        )
    failures = (
        FailureConfig(
            seed=query.failure_seed,
            ssc_area_mm2=query.ssc_area_mm2,
            link_failure_prob=query.link_failure_prob,
        )
        if query.failure_seed >= 0
        else None
    )
    try:
        shape = DCNShape(
            n_hosts=query.hosts,
            wafer_radix=query.wafer_radix,
            ssc_radix=query.ssc_radix,
            back_to_back=query.back_to_back,
            inter_wafer_latency=query.inter_wafer_latency,
            num_vcs=query.vcs,
            buffer_flits=query.buffer_flits,
        )
        config = DCNConfig(
            shape=shape,
            pattern=query.pattern,
            duration_cycles=query.duration_cycles,
            load=query.load,
            size_flits=query.packet_size_flits,
            traffic_seed=query.seed,
            lookahead=query.lookahead,
            failures=failures,
            engine=engine,
            fidelity=query.fidelity,
            cycle_wafers=query.cycle_wafers,
        )
    except ValueError as exc:
        raise QueryError(f"bad dcn query: {exc}") from exc
    return run_dcn(config, executor=query.executor).to_dict()


def execute(
    query: Query,
    engine: str = "auto",
    mapping_engine: str = "auto",
    cache: Any = "default",
    on_telemetry: Optional[TelemetryCallback] = None,
) -> Dict[str, Any]:
    """Execute one query and return its JSON-serializable response.

    ``engine`` / ``mapping_engine`` pick the simulation and mapping
    kernels explicitly (:mod:`repro.engines` names; resolved once
    here). ``cache`` applies to sweep queries: ``"default"`` uses the
    result cache at :func:`repro.paths.cache_root`, ``None`` disables
    it, and any :class:`~repro.experiments.cache.ResultCache` instance
    is used as-is. ``on_telemetry`` streams per-load telemetry reports
    of a ``telemetry=True`` :class:`SimQuery` as they are produced.

    Raises :class:`QueryError` for malformed queries; any other
    exception is a genuine execution failure.
    """
    engine = resolve_netsim_engine(engine)
    mapping_engine = resolve_mapping_engine(mapping_engine)
    response = _envelope(query, engine, mapping_engine)
    if isinstance(query, DesignQuery):
        result = _execute_design(query, engine, mapping_engine)
    elif isinstance(query, SweepQuery):
        result = _execute_sweep(query, _resolve_cache(cache))
    elif isinstance(query, SimQuery):
        result = _execute_sim(query, engine, on_telemetry)
    elif isinstance(query, DCNQuery):
        result = _execute_dcn(query, engine)
    else:
        raise QueryError(f"not a query: {query!r}")
    response["result"] = result
    return response


def _resolve_cache(cache: Any):
    from repro.experiments.cache import ResultCache

    if cache == "default":
        return ResultCache()
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(directory=cache)


def execute_payload(
    payload: Dict[str, Any],
    engine: str = "auto",
    mapping_engine: str = "auto",
    cache: Any = "default",
    on_telemetry: Optional[TelemetryCallback] = None,
) -> Dict[str, Any]:
    """:func:`execute` for an already-serialized query dict.

    The process-pool entry point of the serve layer: module-level and
    picklable, query in / response out as plain dicts.
    """
    return execute(
        query_from_dict(payload),
        engine=engine,
        mapping_engine=mapping_engine,
        cache=cache,
        on_telemetry=on_telemetry,
    )
