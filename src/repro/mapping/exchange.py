"""Pairwise-exchange mapping optimization (paper Algorithm 1).

Starting from an initial placement, repeatedly try swapping the
occupants of every pair of sites; keep a swap iff it strictly lowers the
cost, until a full sweep makes no improvement. Cost is primarily
``C(M)`` — the maximum channel load on any inter-chiplet edge — with
total channel-hops as a tie-breaker (fewer hops = less internal I/O
power; the paper's plain ``C(M)`` cost plateaus early without it).

Swaps are evaluated incrementally: only the links incident to the two
affected nodes (plus their external-boundary paths) are re-routed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.mapping.grid import WaferGrid, grid_for
from repro.mapping.placement import EMPTY, Placement, initial_placement
from repro.mapping.routing import (
    EdgeLoads,
    IOStyle,
    apply_external,
    apply_link,
    compute_edge_loads,
    incident_links,
)
from repro.topology.base import LogicalTopology

Cost = Tuple[int, int]


@dataclass
class MappingResult:
    """A mapped topology: placement plus its routed edge loads."""

    placement: Placement
    loads: EdgeLoads
    io_style: IOStyle
    sweeps: int
    swaps_accepted: int

    @property
    def max_edge_channels(self) -> int:
        return self.loads.max_edge_channels

    @property
    def total_channel_hops(self) -> int:
        return self.loads.total_channel_hops

    def cost(self) -> Cost:
        return (self.max_edge_channels, self.total_channel_hops)


def _cost(loads: EdgeLoads) -> Cost:
    return (loads.max_edge_channels, loads.total_channel_hops)


def _apply_nodes(
    loads: EdgeLoads,
    placement: Placement,
    nodes: List[int],
    incident,
    io_style: IOStyle,
    sign: int,
) -> None:
    """Add/remove all load contributions touching the given nodes."""
    seen: Set[Tuple[int, int]] = set()
    for node in nodes:
        for link in incident[node]:
            key = (link.a, link.b)
            if key in seen:
                continue
            seen.add(key)
            apply_link(loads, placement, link, sign)
        apply_external(loads, placement, node, io_style, sign)


def pairwise_exchange(
    placement: Placement,
    io_style: IOStyle = IOStyle.PERIPHERY,
    max_sweeps: int = 30,
) -> MappingResult:
    """Run Algorithm 1 to convergence (or ``max_sweeps``) in place."""
    topology = placement.topology
    incident = incident_links(topology)
    loads = compute_edge_loads(placement, io_style)
    best_cost = _cost(loads)
    swaps_accepted = 0

    sites = list(range(placement.grid.sites))
    sweeps = 0
    improved = True
    while improved and sweeps < max_sweeps:
        improved = False
        sweeps += 1
        for i_idx, site_i in enumerate(sites):
            for site_j in sites[i_idx + 1:]:
                node_i = placement.node_at[site_i]
                node_j = placement.node_at[site_j]
                if node_i == EMPTY and node_j == EMPTY:
                    continue
                affected = [n for n in (node_i, node_j) if n != EMPTY]
                _apply_nodes(loads, placement, affected, incident, io_style, -1)
                placement.swap_sites(site_i, site_j)
                _apply_nodes(loads, placement, affected, incident, io_style, +1)
                new_cost = _cost(loads)
                if new_cost < best_cost:
                    best_cost = new_cost
                    swaps_accepted += 1
                    improved = True
                else:
                    _apply_nodes(loads, placement, affected, incident, io_style, -1)
                    placement.swap_sites(site_i, site_j)
                    _apply_nodes(loads, placement, affected, incident, io_style, +1)

    return MappingResult(
        placement=placement,
        loads=loads,
        io_style=io_style,
        sweeps=sweeps,
        swaps_accepted=swaps_accepted,
    )


def optimize_mapping(
    topology: LogicalTopology,
    grid: Optional[WaferGrid] = None,
    io_style: IOStyle = IOStyle.PERIPHERY,
    restarts: int = 4,
    seed: int = 0,
    strategy: str = "mixed",
    max_sweeps: int = 30,
) -> MappingResult:
    """Multi-restart pairwise exchange; returns the best mapping found.

    The paper uses 1000 random restarts but reports <1 % spread between
    trials; we use a handful of seeded restarts, alternating random and
    leaves-out-heuristic starts by default (``strategy="mixed"``) —
    random starts escape the heuristic's local optima on mid-size Clos
    instances while the heuristic wins on boundary-constrained ones.
    """
    if grid is None:
        grid = grid_for(topology.chiplet_count)
    best: Optional[MappingResult] = None
    for restart in range(max(1, restarts)):
        if strategy == "mixed":
            start_strategy = "random" if restart % 2 == 0 else "leaves_out"
        else:
            start_strategy = strategy
        rng = random.Random(seed + restart)
        start = initial_placement(
            topology, grid, strategy=start_strategy, rng=rng
        )
        result = pairwise_exchange(start, io_style, max_sweeps=max_sweeps)
        if best is None or result.cost() < best.cost():
            best = result
    return best
