"""Pairwise-exchange mapping optimization (paper Algorithm 1).

Starting from an initial placement, repeatedly try swapping the
occupants of every pair of sites; keep a swap iff it strictly lowers the
cost, until a full sweep makes no improvement. Cost is primarily
``C(M)`` — the maximum channel load on any inter-chiplet edge — with
total channel-hops as a tie-breaker (fewer hops = less internal I/O
power; the paper's plain ``C(M)`` cost plateaus early without it).

Two interchangeable kernels implement the sweep:

* the **scalar oracle** in this module (:func:`pairwise_exchange`):
  pure-Python incremental re-routing of the links incident to the two
  affected nodes. Simple, slow, and the definition of correctness.
* the **fast kernel** in :mod:`repro.mapping.fast_exchange`:
  delta-vectorized with numpy, replaying the oracle's accepted-swap
  sequence exactly, plus an optional Kernighan-Lin-style escalation
  pass that only ever improves the final cost.

:func:`optimize_mapping` dispatches to the fast kernel unless
``REPRO_SCALAR_MAPPING=1`` is set in the environment (the escape hatch
for auditing the vectorized path against the oracle), and can fan its
independent seeded restarts across the shared warm worker pool
(``jobs > 1``; :mod:`repro.parallel`) with deterministic best-of
selection — the same pool lifecycle the experiment scheduler and the
serve dispatcher use, so restart fan-out reuses already-warm workers.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.mapping.grid import WaferGrid, grid_for
from repro.mapping.placement import EMPTY, Placement, initial_placement
from repro.mapping.routing import (
    EdgeLoads,
    IOStyle,
    apply_external,
    apply_link,
    compute_edge_loads,
    incident_links,
)
from repro.topology.base import LogicalTopology

Cost = Tuple[int, int]

#: Schema tag/version for :meth:`MappingResult.to_dict` payloads.
MAPPING_RESULT_SCHEMA = "repro-mapping-result"
MAPPING_RESULT_SCHEMA_VERSION = 1

#: Environment escape hatch: force the scalar oracle everywhere.
SCALAR_ENV = "REPRO_SCALAR_MAPPING"


def use_scalar_kernel(engine: str = "auto") -> bool:
    """Whether this run resolves to the scalar mapping oracle.

    ``engine`` is a :data:`repro.engines.MAPPING_ENGINES` name; the
    ``REPRO_SCALAR_MAPPING=1`` environment switch still overrides it
    (CI parity jobs pin whole processes that way).
    """
    from repro.engines import resolve_mapping_engine

    return resolve_mapping_engine(engine) == "scalar"


def mapping_engine_tag(escalate: bool = True, engine: str = "auto") -> str:
    """Cache-key tag naming the kernel a mapping was produced with.

    Scalar and fast-with-escalation results can differ (escalation only
    improves cost, but the placement differs), so persisted mappings
    must not be shared across engines.
    """
    if use_scalar_kernel(engine):
        return "scalar"
    return "fast-esc" if escalate else "fast"


@dataclass
class MappingResult:
    """A mapped topology: placement plus its routed edge loads.

    ``placement`` is owned by the result (optimizers hand over a
    defensive copy), so mutating it — e.g. ``swap_sites`` in a what-if
    sweep — cannot corrupt optimizer or cache state.
    """

    placement: Placement
    loads: EdgeLoads
    io_style: IOStyle
    sweeps: int
    swaps_accepted: int

    @property
    def max_edge_channels(self) -> int:
        return self.loads.max_edge_channels

    @property
    def total_channel_hops(self) -> int:
        return self.loads.total_channel_hops

    def cost(self) -> Cost:
        return (self.max_edge_channels, self.total_channel_hops)

    def copy(self) -> "MappingResult":
        """Deep-enough copy: shares nothing mutable with the original."""
        return MappingResult(
            placement=self.placement.copy(),
            loads=self.loads.copy(),
            io_style=self.io_style,
            sweeps=self.sweeps,
            swaps_accepted=self.swaps_accepted,
        )

    def to_dict(self) -> dict:
        """Versioned JSON-serializable form (see :meth:`from_dict`).

        One serialization path for mappings: the persistent store
        (:mod:`repro.mapping.store`) and server responses
        (:mod:`repro.api`) both emit exactly this payload. The
        topology itself is *not* embedded — a mapping is meaningless
        without one, so :meth:`from_dict` takes it as an argument
        (typically reconstructed via
        :meth:`repro.topology.base.LogicalTopology.from_dict`).
        """
        grid = self.placement.grid
        return {
            "schema": MAPPING_RESULT_SCHEMA,
            "version": MAPPING_RESULT_SCHEMA_VERSION,
            "grid": [grid.rows, grid.cols],
            "io_style": self.io_style.value,
            "site_of": [int(s) for s in self.placement.site_of],
            "h": [int(x) for x in self.loads.h.ravel()],
            "v": [int(x) for x in self.loads.v.ravel()],
            "total_channel_hops": int(self.loads.total_channel_hops),
            "sweeps": int(self.sweeps),
            "swaps_accepted": int(self.swaps_accepted),
        }

    @classmethod
    def from_dict(cls, payload: dict, topology: LogicalTopology) -> "MappingResult":
        """Inverse of :meth:`to_dict` for the given topology.

        The rebuilt result is freshly allocated — callers own it
        outright and may mutate it freely.
        """
        import numpy as np

        from repro.mapping.routing import EdgeLoads

        if payload.get("schema") != MAPPING_RESULT_SCHEMA:
            raise ValueError(f"not a {MAPPING_RESULT_SCHEMA} payload")
        if payload.get("version") != MAPPING_RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported {MAPPING_RESULT_SCHEMA} version "
                f"{payload.get('version')!r}"
            )
        rows, cols = (int(x) for x in payload["grid"])
        grid = WaferGrid(rows, cols)
        placement = Placement.from_assignment(
            grid, topology, [int(s) for s in payload["site_of"]]
        )
        loads = EdgeLoads(
            grid=grid,
            h=np.array(payload["h"], dtype=np.int64).reshape(
                rows, max(cols - 1, 0)
            ),
            v=np.array(payload["v"], dtype=np.int64).reshape(
                max(rows - 1, 0), cols
            ),
            total_channel_hops=int(payload["total_channel_hops"]),
        )
        return cls(
            placement=placement,
            loads=loads,
            io_style=IOStyle(payload["io_style"]),
            sweeps=int(payload["sweeps"]),
            swaps_accepted=int(payload["swaps_accepted"]),
        )


def _cost(loads: EdgeLoads) -> Cost:
    return (loads.max_edge_channels, loads.total_channel_hops)


def _apply_nodes(
    loads: EdgeLoads,
    placement: Placement,
    nodes: List[int],
    incident,
    io_style: IOStyle,
    sign: int,
) -> None:
    """Add/remove all load contributions touching the given nodes."""
    seen: Set[Tuple[int, int]] = set()
    for node in nodes:
        for link in incident[node]:
            key = (link.a, link.b)
            if key in seen:
                continue
            seen.add(key)
            apply_link(loads, placement, link, sign)
        apply_external(loads, placement, node, io_style, sign)


def pairwise_exchange(
    placement: Placement,
    io_style: IOStyle = IOStyle.PERIPHERY,
    max_sweeps: int = 30,
    record_swaps: Optional[list] = None,
) -> MappingResult:
    """Run Algorithm 1 to convergence (or ``max_sweeps``).

    Contract: ``placement`` is optimized **in place** (it ends up in the
    final optimized state), but the returned result holds a defensive
    copy — callers may keep mutating their placement, or the result's,
    without the two aliasing. ``record_swaps``, if given, collects every
    accepted ``(site_i, site_j)`` in order (used by the fast/scalar
    equivalence tests).
    """
    topology = placement.topology
    incident = incident_links(topology)
    loads = compute_edge_loads(placement, io_style)
    best_cost = _cost(loads)
    swaps_accepted = 0

    sites = list(range(placement.grid.sites))
    sweeps = 0
    improved = True
    while improved and sweeps < max_sweeps:
        improved = False
        sweeps += 1
        for i_idx, site_i in enumerate(sites):
            for site_j in sites[i_idx + 1:]:
                node_i = placement.node_at[site_i]
                node_j = placement.node_at[site_j]
                if node_i == EMPTY and node_j == EMPTY:
                    continue
                affected = [n for n in (node_i, node_j) if n != EMPTY]
                _apply_nodes(loads, placement, affected, incident, io_style, -1)
                placement.swap_sites(site_i, site_j)
                _apply_nodes(loads, placement, affected, incident, io_style, +1)
                new_cost = _cost(loads)
                if new_cost < best_cost:
                    best_cost = new_cost
                    swaps_accepted += 1
                    improved = True
                    if record_swaps is not None:
                        record_swaps.append((site_i, site_j))
                else:
                    _apply_nodes(loads, placement, affected, incident, io_style, -1)
                    placement.swap_sites(site_i, site_j)
                    _apply_nodes(loads, placement, affected, incident, io_style, +1)

    return MappingResult(
        placement=placement.copy(),
        loads=loads,
        io_style=io_style,
        sweeps=sweeps,
        swaps_accepted=swaps_accepted,
    )


def _run_restart(
    topology: LogicalTopology,
    grid: WaferGrid,
    io_style: IOStyle,
    strategy: str,
    seed: int,
    restart: int,
    max_sweeps: int,
    scalar: bool,
    escalate: bool,
) -> MappingResult:
    """One seeded restart: build the start, run the selected kernel.

    Module-level (not a closure) so parallel restarts can ship it to
    pool workers; everything it touches is deterministic in its
    arguments, so worker and in-process execution agree bit-for-bit.
    """
    if strategy == "mixed":
        start_strategy = "random" if restart % 2 == 0 else "leaves_out"
    else:
        start_strategy = strategy
    rng = random.Random(seed + restart)
    start = initial_placement(topology, grid, strategy=start_strategy, rng=rng)
    if scalar:
        return pairwise_exchange(start, io_style, max_sweeps=max_sweeps)
    from repro.mapping.fast_exchange import pairwise_exchange_fast

    return pairwise_exchange_fast(
        start, io_style, max_sweeps=max_sweeps, escalate=escalate
    )


def optimize_mapping(
    topology: LogicalTopology,
    grid: Optional[WaferGrid] = None,
    io_style: IOStyle = IOStyle.PERIPHERY,
    restarts: int = 4,
    seed: int = 0,
    strategy: str = "mixed",
    max_sweeps: int = 30,
    jobs: int = 1,
    escalate: bool = True,
    engine: str = "auto",
) -> MappingResult:
    """Multi-restart pairwise exchange; returns the best mapping found.

    The paper uses 1000 random restarts but reports <1 % spread between
    trials; we use a handful of seeded restarts, alternating random and
    leaves-out-heuristic starts by default (``strategy="mixed"``) —
    random starts escape the heuristic's local optima on mid-size Clos
    instances while the heuristic wins on boundary-constrained ones.

    ``jobs > 1`` fans the independent restarts over the shared warm
    worker pool (which may degrade the request to serial on small
    machines; see :func:`repro.parallel.effective_jobs`); selection is
    deterministic either way — lowest cost wins, ties broken by
    restart index — so serial and parallel runs return the same
    mapping. ``escalate`` enables the fast kernel's plateau pass
    (ignored on the scalar path). ``engine`` picks the kernel
    explicitly (``"auto"``, ``"fast"`` or ``"scalar"``, see
    :mod:`repro.engines`); the resolved choice rides into pool workers
    through the task tuples, so parallel restarts use the same kernel.
    """
    if grid is None:
        grid = grid_for(topology.chiplet_count)
    scalar = use_scalar_kernel(engine)
    n_restarts = max(1, restarts)
    tasks = [
        (topology, grid, io_style, strategy, seed, restart, max_sweeps, scalar, escalate)
        for restart in range(n_restarts)
    ]
    if jobs > 1 and n_restarts > 1:
        from repro.parallel import pool_map

        labels = [f"restart[{r}]" for r in range(n_restarts)]
        results = pool_map(_run_restart, tasks, jobs=jobs, labels=labels)
    else:
        results = [_run_restart(*task) for task in tasks]
    best = results[0]
    for result in results[1:]:
        if result.cost() < best.cost():
            best = result
    return best
