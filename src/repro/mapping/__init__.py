"""Mapping logical topologies onto the physical wafer mesh.

The physical substrate is a near-square grid of chiplet sites with
neighbor links along shared edges. Mapping assigns each logical SSC to a
site; every logical channel is then routed over mesh edges (XY routing,
intermediate chiplets acting as feedthrough repeaters), and external
port channels are routed from the substrate boundary (periphery I/O) or
dropped in place (area I/O). The figure of merit is ``C(M)``: the
maximum channel load on any inter-chiplet edge (Section IV.A), minimized
with the paper's pairwise-exchange heuristic (Algorithm 1).
"""

from repro.mapping.exchange import MappingResult, optimize_mapping, pairwise_exchange
from repro.mapping.grid import WaferGrid, grid_for
from repro.mapping.placement import Placement, initial_placement
from repro.mapping.routing import EdgeLoads, IOStyle, compute_edge_loads

__all__ = [
    "EdgeLoads",
    "IOStyle",
    "MappingResult",
    "Placement",
    "WaferGrid",
    "compute_edge_loads",
    "grid_for",
    "initial_placement",
    "optimize_mapping",
    "pairwise_exchange",
]
