"""Wafer grid geometry.

Sites are arranged in a ``rows x cols`` grid; adjacent sites share a
chiplet edge. Sites are identified by a flat index ``r * cols + c``.
Empty sites (when the topology has fewer chiplets than sites) are
assumed to hold dummy repeater chiplets, so feedthrough routing through
them is allowed — consistent with chiplet-based WSI flows that populate
spare sites for yield.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class WaferGrid:
    """A rows x cols grid of chiplet sites."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("grid dimensions must be >= 1")

    @property
    def sites(self) -> int:
        return self.rows * self.cols

    @property
    def horizontal_edges(self) -> int:
        """Count of east-west inter-site edges."""
        return self.rows * (self.cols - 1)

    @property
    def vertical_edges(self) -> int:
        """Count of north-south inter-site edges."""
        return (self.rows - 1) * self.cols

    @property
    def edge_count(self) -> int:
        return self.horizontal_edges + self.vertical_edges

    def position(self, site: int) -> Tuple[int, int]:
        """(row, col) of a flat site index."""
        if not 0 <= site < self.sites:
            raise ValueError(f"site {site} out of range for {self}")
        return divmod(site, self.cols)

    def site(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"({row}, {col}) out of range for {self}")
        return row * self.cols + col

    def manhattan(self, site_a: int, site_b: int) -> int:
        ra, ca = self.position(site_a)
        rb, cb = self.position(site_b)
        return abs(ra - rb) + abs(ca - cb)

    def boundary_distance(self, site: int) -> int:
        """Hops from this site to the nearest substrate edge (0 = on it)."""
        r, c = self.position(site)
        return min(r, self.rows - 1 - r, c, self.cols - 1 - c)

    def boundary_sites(self) -> List[int]:
        """All sites on the substrate perimeter."""
        return [s for s in range(self.sites) if self.boundary_distance(s) == 0]

    def neighbors(self, site: int) -> Iterator[int]:
        r, c = self.position(site)
        if r > 0:
            yield self.site(r - 1, c)
        if r + 1 < self.rows:
            yield self.site(r + 1, c)
        if c > 0:
            yield self.site(r, c - 1)
        if c + 1 < self.cols:
            yield self.site(r, c + 1)

    def sites_by_centrality(self) -> List[int]:
        """Sites ordered boundary-first (used to seed leaf placement)."""
        return sorted(range(self.sites), key=self.boundary_distance)


def grid_for(n_chiplets: int) -> WaferGrid:
    """Smallest near-square grid holding ``n_chiplets`` sites."""
    if n_chiplets < 1:
        raise ValueError("need at least one chiplet")
    cols = math.ceil(math.sqrt(n_chiplets))
    rows = math.ceil(n_chiplets / cols)
    return WaferGrid(rows=rows, cols=cols)
