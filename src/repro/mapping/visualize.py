"""ASCII rendering of placements and edge utilization (Figs 8, 14).

Terminal-friendly equivalents of the paper's heatmap/placement figures:
the placement map shows which role occupies each site (L = leaf,
S = spine, C = core/direct, i = I/O-adjacent empty site), and the
utilization map shades each site by the load of its most-loaded
incident edge.
"""

from __future__ import annotations

from typing import List

from repro.mapping.exchange import MappingResult
from repro.mapping.placement import EMPTY
from repro.topology.base import NodeRole

_ROLE_GLYPH = {
    NodeRole.LEAF: "L",
    NodeRole.SPINE: "S",
    NodeRole.CORE: "C",
}

#: Ten shading levels for utilization maps.
_SHADES = " .:-=+*#%@"


def placement_map(mapping: MappingResult) -> str:
    """Grid of role glyphs (the Fig 14-style placement view)."""
    placement = mapping.placement
    grid = placement.grid
    rows: List[str] = []
    for r in range(grid.rows):
        row = []
        for c in range(grid.cols):
            node = placement.node_at[grid.site(r, c)]
            if node == EMPTY:
                row.append(".")
            else:
                role = placement.topology.nodes[node].role
                row.append(_ROLE_GLYPH.get(role, "?"))
        rows.append(" ".join(row))
    return "\n".join(rows)


def _site_peak_load(mapping: MappingResult, row: int, col: int) -> int:
    loads = mapping.loads
    grid = mapping.placement.grid
    peak = 0
    if col > 0:
        peak = max(peak, int(loads.h[row, col - 1]))
    if col < grid.cols - 1:
        peak = max(peak, int(loads.h[row, col]))
    if row > 0:
        peak = max(peak, int(loads.v[row - 1, col]))
    if row < grid.rows - 1:
        peak = max(peak, int(loads.v[row, col]))
    return peak


def utilization_map(mapping: MappingResult) -> str:
    """Shaded grid of per-site worst incident edge load (Fig 8 view)."""
    grid = mapping.placement.grid
    worst = max(mapping.max_edge_channels, 1)
    rows: List[str] = []
    for r in range(grid.rows):
        row = []
        for c in range(grid.cols):
            load = _site_peak_load(mapping, r, c)
            level = min(len(_SHADES) - 1, int(load / worst * (len(_SHADES) - 1)))
            row.append(_SHADES[level])
        rows.append(" ".join(row))
    legend = f"(shade scale: ' '=0 .. '@'={worst} channels)"
    return "\n".join(rows) + "\n" + legend


def describe_mapping(mapping: MappingResult) -> str:
    """Placement + utilization + summary in one report block."""
    topology = mapping.placement.topology
    return "\n".join(
        [
            topology.describe(),
            f"worst edge: {mapping.max_edge_channels} channels, "
            f"total channel-hops: {mapping.total_channel_hops}",
            "",
            "placement (L leaf / S spine / C core / . empty):",
            placement_map(mapping),
            "",
            "edge utilization:",
            utilization_map(mapping),
        ]
    )
