"""Persistent content-addressed store for optimized wafer mappings.

The pairwise-exchange optimizer is the reproduction's dominant cost,
and many experiments (and every parallel worker) ask for mappings of
the *same* wafer. The in-process memo in :mod:`repro.core.design`
cannot cross a process boundary, so ``--jobs N`` used to re-optimize
identical wafers in every worker. This store promotes those memo
entries to JSON files under ``.repro_cache/mappings/`` (same root and
``REPRO_CACHE_DIR`` override as the experiment result cache), shared
by all processes and surviving across runs.

An entry is keyed by everything the optimized mapping depends on:

* a **structural digest** of the topology — links, channel counts and
  per-node external ports (not just the name, so two same-named but
  differently wired topologies can never collide);
* the grid dimensions and I/O style;
* the optimizer parameters (restarts, seed, strategy, max sweeps) and
  the kernel engine tag (scalar / fast / fast-esc);
* a **source fingerprint** of the mapping layer
  (:mod:`repro.fingerprint`), so editing any mapping module silently
  invalidates old entries instead of serving stale placements.

Like the result cache, the store is purely an accelerator: ``load``
returns None on any miss or unreadable entry, writes are atomic
(write-then-rename), and ``REPRO_MAPPING_STORE=0`` disables it
entirely. Hit/miss/optimize counters feed the ``--profile`` table of
``python -m repro experiments``.
"""

from __future__ import annotations

import hashlib
import json
import os
from functools import lru_cache
from pathlib import Path
from typing import Dict, Optional

from repro import paths
from repro.fingerprint import source_fingerprint, transitive_modules
from repro.mapping.exchange import MappingResult
from repro.mapping.grid import WaferGrid
from repro.mapping.routing import IOStyle
from repro.topology.base import LogicalTopology

#: Deprecation shim — the resolver lives in :mod:`repro.paths` now.
CACHE_DIR_ENV = paths.CACHE_DIR_ENV

#: Set to "0" to disable the persistent store (memo still applies).
STORE_ENV = "REPRO_MAPPING_STORE"

#: Bump to invalidate every existing entry (serialization changes).
#: v2: the mapping body moved to the shared MappingResult.to_dict form.
STORE_FORMAT_VERSION = 2

#: Process-wide mapping activity counters (reported by ``--profile``).
_STATS: Dict[str, float] = {}


def _zero_stats() -> Dict[str, float]:
    return {
        "memo_hits": 0,
        "store_hits": 0,
        "optimized": 0,
        "optimize_seconds": 0.0,
    }


_STATS = _zero_stats()


def record_stat(name: str, amount: float = 1) -> None:
    """Bump one mapping activity counter (unknown names are created)."""
    _STATS[name] = _STATS.get(name, 0) + amount


def stats_snapshot() -> Dict[str, float]:
    """Copy of the counters, e.g. to diff around a work unit."""
    return dict(_STATS)


def stats_delta(before: Dict[str, float]) -> Dict[str, float]:
    """Counter increments since ``before`` (a :func:`stats_snapshot`)."""
    return {
        key: _STATS.get(key, 0) - before.get(key, 0)
        for key in set(_STATS) | set(before)
    }


def reset_stats() -> None:
    _STATS.clear()
    _STATS.update(_zero_stats())


def store_enabled() -> bool:
    return os.environ.get(STORE_ENV, "1") != "0"


def default_store_dir() -> Path:
    """``$REPRO_CACHE_DIR/mappings`` if set, else ``.repro_cache/mappings``.

    Deprecated alias for :func:`repro.paths.mapping_store_dir`.
    """
    return paths.mapping_store_dir()


def topology_digest(topology: LogicalTopology) -> str:
    """Hash of everything about a topology that the mapping depends on.

    Covers the wiring (links and channel counts) and per-node external
    ports/roles — not chiplet power or area, which cannot change the
    optimized placement.
    """
    digest = hashlib.sha256()
    digest.update(topology.name.encode())
    digest.update(b"\0")
    for node in topology.nodes:
        digest.update(
            f"{node.index}:{node.role.value}:{node.external_ports}:"
            f"{node.chiplet.radix}\n".encode()
        )
    digest.update(b"\0")
    for link in topology.links:
        digest.update(f"{link.a}-{link.b}:{link.channels}\n".encode())
    return digest.hexdigest()


@lru_cache(maxsize=None)
def mapping_source_fingerprint() -> str:
    """Fingerprint of the mapping layer's own source (kernel + tables).

    Walked from the optimizer façade so both kernels, the routing
    tables and this store are covered; any edit to them invalidates
    every persisted mapping.
    """
    modules = set(transitive_modules("repro.mapping.exchange"))
    modules.update(transitive_modules("repro.mapping.store"))
    return source_fingerprint(modules)


def entry_key(
    topology: LogicalTopology,
    grid: WaferGrid,
    io_style: IOStyle,
    params: Dict,
) -> str:
    """Content-addressed key for one optimized mapping."""
    param_text = "|".join(f"{k}={params[k]}" for k in sorted(params))
    raw = (
        f"v{STORE_FORMAT_VERSION}|{topology_digest(topology)}|"
        f"{grid.rows}x{grid.cols}|{io_style.value}|{param_text}|"
        f"{mapping_source_fingerprint()}"
    )
    return hashlib.sha256(raw.encode()).hexdigest()[:16]


class MappingStore:
    """Stores :class:`MappingResult` placements as JSON files.

    File names embed the content key, so a source edit simply makes the
    old entry unreachable (``clear`` reclaims the space). Loaded
    results are freshly built objects — callers own them outright and
    may mutate them freely.
    """

    def __init__(self, directory: Optional[Path] = None):
        self.directory = (
            Path(directory) if directory is not None else default_store_dir()
        )

    def entry_path(
        self,
        topology: LogicalTopology,
        grid: WaferGrid,
        io_style: IOStyle,
        params: Dict,
    ) -> Path:
        key = entry_key(topology, grid, io_style, params)
        return self.directory / f"mapping-{key}.json"

    def load(
        self,
        topology: LogicalTopology,
        grid: WaferGrid,
        io_style: IOStyle,
        params: Dict,
    ) -> Optional[MappingResult]:
        path = self.entry_path(topology, grid, io_style, params)
        try:
            payload = json.loads(path.read_text())
            return MappingResult.from_dict(payload["result"], topology)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(
        self,
        result: MappingResult,
        topology: LogicalTopology,
        params: Dict,
    ) -> Path:
        grid = result.placement.grid
        path = self.entry_path(topology, grid, result.io_style, params)
        self.directory.mkdir(parents=True, exist_ok=True)
        # The mapping itself serializes through the shared
        # MappingResult.to_dict path; this envelope only adds the
        # store-level provenance.
        payload = {
            "format_version": STORE_FORMAT_VERSION,
            "topology": topology.name,
            "params": {k: params[k] for k in sorted(params)},
            "result": result.to_dict(),
        }
        # Write-then-rename so a concurrent reader never sees a torn file.
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(payload) + "\n")
        tmp.replace(path)
        return path

    def clear(self) -> int:
        """Delete every stored mapping; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for entry in self.directory.glob("mapping-*.json"):
                entry.unlink()
                removed += 1
        return removed


def default_store() -> Optional[MappingStore]:
    """The store at the default location, or None when disabled."""
    if not store_enabled():
        return None
    return MappingStore()
