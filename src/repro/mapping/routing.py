"""Routing logical channels over the physical wafer mesh.

Every logical channel between two placed SSCs is routed XY (horizontal
first, then vertical) through intermediate chiplets acting as
feedthrough repeaters. External port channels additionally traverse the
mesh from the substrate boundary to their terminating SSC under
periphery I/O schemes (SerDes, Optical I/O); under Area I/O they drop
through the wafer directly at the SSC's site and add no mesh load.

The resulting per-edge channel counts drive both feasibility (the worst
edge must fit within the WSI technology's bandwidth) and internal I/O
power (total channel-hops x line rate x pJ/bit).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

import numpy as np

from repro.mapping.grid import WaferGrid
from repro.mapping.placement import Placement
from repro.topology.base import LogicalLink, LogicalTopology


#: Fraction of an inter-chiplet edge's raw wire bandwidth available to
#: logical channel payload. The remainder covers in-layer signal/ground
#: shielding, forwarded clocks, channel framing/CRC, and lane sparing
#: for yield. Calibrated so the paper's feasibility milestones hold with
#: margin under the best mappings the optimizer finds (2048 feasible /
#: 4096 infeasible at 3200 Gbps/mm; 8192 feasible at 6400 Gbps/mm).
USABLE_EDGE_CAPACITY_FRACTION = 0.70


class IOStyle(enum.Enum):
    """How external port channels reach their SSC."""

    PERIPHERY = "periphery"  # enter at the nearest substrate edge
    AREA = "area"  # drop through the wafer at the SSC site
    NONE = "none"  # ignore external channels (ideal-case analysis)


#: An inter-chiplet edge: ('h', row, col) is the edge between (row, col)
#: and (row, col+1); ('v', row, col) between (row, col) and (row+1, col).
Edge = Tuple[str, int, int]


@dataclass
class EdgeLoads:
    """Channel counts on every inter-chiplet edge of the grid."""

    grid: WaferGrid
    h: np.ndarray = field(default=None)
    v: np.ndarray = field(default=None)
    total_channel_hops: int = 0

    def __post_init__(self) -> None:
        if self.h is None:
            self.h = np.zeros(
                (self.grid.rows, max(self.grid.cols - 1, 0)), dtype=np.int64
            )
        if self.v is None:
            self.v = np.zeros(
                (max(self.grid.rows - 1, 0), self.grid.cols), dtype=np.int64
            )

    def copy(self) -> "EdgeLoads":
        return EdgeLoads(
            grid=self.grid,
            h=self.h.copy(),
            v=self.v.copy(),
            total_channel_hops=self.total_channel_hops,
        )

    def add_edge(self, edge: Edge, channels: int) -> None:
        kind, row, col = edge
        if kind == "h":
            self.h[row, col] += channels
        else:
            self.v[row, col] += channels
        self.total_channel_hops += channels

    @property
    def max_edge_channels(self) -> int:
        best = 0
        if self.h.size:
            best = max(best, int(self.h.max()))
        if self.v.size:
            best = max(best, int(self.v.max()))
        return best

    def assert_non_negative(self) -> None:
        """Sanity check used by tests after incremental updates."""
        if (self.h.size and self.h.min() < 0) or (self.v.size and self.v.min() < 0):
            raise AssertionError("negative edge load after incremental update")


def xy_path_edges(grid: WaferGrid, site_a: int, site_b: int) -> Iterator[Edge]:
    """Edges of the XY (horizontal-then-vertical) path between two sites."""
    ra, ca = grid.position(site_a)
    rb, cb = grid.position(site_b)
    step = 1 if cb > ca else -1
    for c in range(ca, cb, step):
        yield ("h", ra, min(c, c + step))
    step = 1 if rb > ra else -1
    for r in range(ra, rb, step):
        yield ("v", min(r, r + step), cb)


def boundary_path_edges(grid: WaferGrid, site: int) -> Iterator[Edge]:
    """Edges from the nearest substrate boundary to the given site.

    External I/O chiplets sit just off the grid; the channel crosses the
    substrate edge (not an inter-chiplet edge) and then traverses
    interior edges straight to the site. Sites on the boundary add no
    load. Ties are broken top, bottom, left, right.
    """
    r, c = grid.position(site)
    distances = (r, grid.rows - 1 - r, c, grid.cols - 1 - c)
    side = distances.index(min(distances))
    if side == 0:  # from the top edge down to row r
        for row in range(0, r):
            yield ("v", row, c)
    elif side == 1:  # from the bottom edge up to row r
        for row in range(grid.rows - 1, r, -1):
            yield ("v", row - 1, c)
    elif side == 2:  # from the left edge right to col c
        for col in range(0, c):
            yield ("h", r, col)
    else:  # from the right edge left to col c
        for col in range(grid.cols - 1, c, -1):
            yield ("h", r, col - 1)


def apply_link(
    loads: EdgeLoads, placement: Placement, link: LogicalLink, sign: int
) -> None:
    """Add (or remove, sign=-1) one logical link's channels to the loads."""
    site_a = placement.site_of[link.a]
    site_b = placement.site_of[link.b]
    for edge in xy_path_edges(placement.grid, site_a, site_b):
        loads.add_edge(edge, sign * link.channels)


def apply_external(
    loads: EdgeLoads,
    placement: Placement,
    node_index: int,
    io_style: IOStyle,
    sign: int,
) -> None:
    """Add/remove a node's external-port channels under the I/O style."""
    if io_style is not IOStyle.PERIPHERY:
        return
    node = placement.topology.nodes[node_index]
    if node.external_ports == 0:
        return
    site = placement.site_of[node_index]
    for edge in boundary_path_edges(placement.grid, site):
        loads.add_edge(edge, sign * node.external_ports)


# ----------------------------------------------------------------------
# Vectorized route tables (used by mapping.fast_exchange)
# ----------------------------------------------------------------------
#
# Every XY route and every boundary route on the grid decomposes into at
# most two *arithmetic runs* of flat edge ids: horizontal edges within a
# row are consecutive ids (stride 1) and vertical edges within a column
# are ``cols`` apart (stride ``cols``). RouteTables precomputes the
# per-site geometry so a batch of routes becomes three numpy arrays
# (start, stride, length) — no per-edge Python iteration.

#: Flat edge-id layout: h edges first (row-major), then v edges.


@dataclass(frozen=True)
class RouteTables:
    """Per-grid numpy tables turning routes into arithmetic id runs.

    Flat edge ids: horizontal edge ``('h', r, c)`` is ``r*(cols-1)+c``;
    vertical edge ``('v', r, c)`` is ``EH + r*cols + c`` where ``EH`` is
    the horizontal edge count. :meth:`route_runs` and
    :meth:`boundary_runs` return ``(start, step, length)`` triples per
    run; expanding them (see ``fast_exchange._expand_runs``) yields the
    exact edge sets of :func:`xy_path_edges` / :func:`boundary_path_edges`.
    """

    grid: WaferGrid
    eh: int
    total_edges: int
    #: (sites,) row/col coordinate of each flat site index.
    site_row: np.ndarray
    site_col: np.ndarray
    #: (sites,) arithmetic-run description of each site's boundary path.
    bnd_start: np.ndarray
    bnd_step: np.ndarray
    bnd_len: np.ndarray
    #: (total_edges, 2) the two sites incident to each flat edge id.
    edge_sites: np.ndarray

    @classmethod
    def for_grid(cls, grid: WaferGrid) -> "RouteTables":
        rows, cols = grid.rows, grid.cols
        eh = rows * max(cols - 1, 0)
        ev = max(rows - 1, 0) * cols
        sites = np.arange(grid.sites, dtype=np.int64)
        r, c = np.divmod(sites, cols)

        # Boundary side per site, ties broken top, bottom, left, right —
        # identical to boundary_path_edges (argmin keeps the first min).
        dists = np.stack([r, rows - 1 - r, c, cols - 1 - c])
        side = np.argmin(dists, axis=0)
        bnd_start = np.select(
            [side == 0, side == 1, side == 2, side == 3],
            [eh + c, eh + r * cols + c, r * (cols - 1), r * (cols - 1) + c],
        )
        bnd_step = np.where(side < 2, cols, 1).astype(np.int64)
        bnd_len = np.select(
            [side == 0, side == 1, side == 2, side == 3],
            [r, rows - 1 - r, c, cols - 1 - c],
        )

        edge_sites = np.empty((eh + ev, 2), dtype=np.int64)
        if eh:
            hr, hc = np.divmod(np.arange(eh, dtype=np.int64), cols - 1)
            edge_sites[:eh, 0] = hr * cols + hc
            edge_sites[:eh, 1] = hr * cols + hc + 1
        if ev:
            vr, vc = np.divmod(np.arange(ev, dtype=np.int64), cols)
            edge_sites[eh:, 0] = vr * cols + vc
            edge_sites[eh:, 1] = (vr + 1) * cols + vc
        return cls(
            grid=grid,
            eh=eh,
            total_edges=eh + ev,
            site_row=r,
            site_col=c,
            bnd_start=bnd_start.astype(np.int64),
            bnd_step=bnd_step,
            bnd_len=bnd_len.astype(np.int64),
            edge_sites=edge_sites,
        )

    def route_runs(self, src, dst):
        """Arithmetic runs covering the XY routes ``src[i] -> dst[i]``.

        Returns ``(start, step, length)`` arrays of shape ``(2n,)`` —
        the horizontal run then the vertical run of every route (zero
        lengths where a route has no h/v component).
        """
        cols = self.grid.cols
        ra, ca = self.site_row[src], self.site_col[src]
        rb, cb = self.site_row[dst], self.site_col[dst]
        h_start = ra * (cols - 1) + np.minimum(ca, cb)
        h_len = np.abs(ca - cb)
        v_start = self.eh + np.minimum(ra, rb) * cols + cb
        v_len = np.abs(ra - rb)
        start = np.concatenate([h_start, v_start])
        step = np.empty_like(start)
        n = len(ra)
        step[:n] = 1
        step[n:] = cols
        length = np.concatenate([h_len, v_len])
        return start, step, length

    def boundary_runs(self, sites):
        """Arithmetic runs of the boundary routes of the given sites."""
        return self.bnd_start[sites], self.bnd_step[sites], self.bnd_len[sites]

    def flatten_loads(self, loads: EdgeLoads) -> np.ndarray:
        """Edge loads as one (total_edges,) int64 vector (h then v)."""
        return np.concatenate([loads.h.ravel(), loads.v.ravel()]).astype(np.int64)

    def unflatten_loads(self, flat: np.ndarray, total_channel_hops: int) -> EdgeLoads:
        """Inverse of :meth:`flatten_loads`."""
        grid = self.grid
        h = flat[: self.eh].reshape(grid.rows, max(grid.cols - 1, 0)).copy()
        v = flat[self.eh:].reshape(max(grid.rows - 1, 0), grid.cols).copy()
        return EdgeLoads(
            grid=grid, h=h, v=v, total_channel_hops=int(total_channel_hops)
        )


_ROUTE_TABLES: dict = {}


def route_tables(grid: WaferGrid) -> RouteTables:
    """Cached :class:`RouteTables` for a grid (keyed on dimensions)."""
    key = (grid.rows, grid.cols)
    tables = _ROUTE_TABLES.get(key)
    if tables is None:
        tables = _ROUTE_TABLES[key] = RouteTables.for_grid(grid)
    return tables


def incident_links(topology: LogicalTopology) -> List[List[LogicalLink]]:
    """Per-node list of incident logical links (for incremental updates)."""
    incident: List[List[LogicalLink]] = [[] for _ in topology.nodes]
    for link in topology.links:
        incident[link.a].append(link)
        incident[link.b].append(link)
    return incident


def compute_edge_loads(placement: Placement, io_style: IOStyle) -> EdgeLoads:
    """Full edge-load computation for a placement."""
    loads = EdgeLoads(grid=placement.grid)
    for link in placement.topology.links:
        apply_link(loads, placement, link, sign=1)
    for node in placement.topology.nodes:
        apply_external(loads, placement, node.index, io_style, sign=1)
    return loads


def available_bandwidth_per_port_gbps(
    loads: EdgeLoads,
    edge_capacity_gbps: float,
    port_bandwidth_gbps: float,
    capacity_fraction: float = USABLE_EDGE_CAPACITY_FRACTION,
) -> float:
    """Worst-case bandwidth each routed channel actually receives (Fig 19).

    The worst edge divides its usable capacity (a ``capacity_fraction``
    of raw capacity; the rest is reserved for shielding, clocking, and
    framing) among the channels crossing it. A design meets the paper's
    guarantee when this is >= the port bandwidth.
    """
    max_channels = loads.max_edge_channels
    if max_channels == 0:
        return float("inf")
    del port_bandwidth_gbps  # capacity is shared purely by channel count
    return capacity_fraction * edge_capacity_gbps / max_channels
