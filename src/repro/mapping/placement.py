"""Placement of logical nodes onto wafer grid sites."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.mapping.grid import WaferGrid
from repro.topology.base import LogicalTopology

EMPTY = -1


@dataclass
class Placement:
    """A (mutable) assignment of topology nodes to grid sites.

    ``site_of[node] = site`` and ``node_at[site] = node or EMPTY``.
    Mutability is deliberate: the pairwise-exchange optimizer performs
    millions of trial swaps; callers that need a snapshot use ``copy()``.
    """

    grid: WaferGrid
    topology: LogicalTopology
    site_of: List[int]
    node_at: List[int]

    @classmethod
    def from_assignment(
        cls, grid: WaferGrid, topology: LogicalTopology, site_of: List[int]
    ) -> "Placement":
        if len(site_of) != topology.chiplet_count:
            raise ValueError("need one site per topology node")
        if len(set(site_of)) != len(site_of):
            raise ValueError("two nodes assigned to the same site")
        node_at = [EMPTY] * grid.sites
        for node, site in enumerate(site_of):
            if not 0 <= site < grid.sites:
                raise ValueError(f"site {site} out of range")
            node_at[site] = node
        return cls(grid=grid, topology=topology, site_of=list(site_of), node_at=node_at)

    def copy(self) -> "Placement":
        return Placement(
            grid=self.grid,
            topology=self.topology,
            site_of=list(self.site_of),
            node_at=list(self.node_at),
        )

    def swap_sites(self, site_a: int, site_b: int) -> None:
        """Exchange the occupants (possibly EMPTY) of two sites."""
        node_a = self.node_at[site_a]
        node_b = self.node_at[site_b]
        self.node_at[site_a], self.node_at[site_b] = node_b, node_a
        if node_a != EMPTY:
            self.site_of[node_a] = site_b
        if node_b != EMPTY:
            self.site_of[node_b] = site_a

    def occupied_sites(self) -> List[int]:
        return [s for s, n in enumerate(self.node_at) if n != EMPTY]


def initial_placement(
    topology: LogicalTopology,
    grid: Optional[WaferGrid] = None,
    strategy: str = "leaves_out",
    rng: Optional[random.Random] = None,
) -> Placement:
    """Create a starting placement.

    Strategies:
        * ``"random"`` — uniform random assignment (the paper's
          unoptimized baseline in Fig 5).
        * ``"leaves_out"`` — external-port-bearing nodes on the most
          peripheral sites (near their I/O entry), spines in the middle.
    """
    from repro.mapping.grid import grid_for  # local import to avoid cycle

    if grid is None:
        grid = grid_for(topology.chiplet_count)
    if grid.sites < topology.chiplet_count:
        raise ValueError(
            f"grid has {grid.sites} sites but topology needs "
            f"{topology.chiplet_count}"
        )
    rng = rng if rng is not None else random.Random(0)

    if strategy == "random":
        sites = list(range(grid.sites))
        rng.shuffle(sites)
        chosen = sites[: topology.chiplet_count]
        return Placement.from_assignment(grid, topology, chosen)

    if strategy == "leaves_out":
        ordered_sites = grid.sites_by_centrality()
        leaves = [n.index for n in topology.nodes if n.external_ports > 0]
        interior = [n.index for n in topology.nodes if n.external_ports == 0]
        rng.shuffle(leaves)
        rng.shuffle(interior)
        site_of = [0] * topology.chiplet_count
        # Leaves take the outermost sites; spines/cores fill inward from
        # the centre (reverse order of the remaining sites).
        for node, site in zip(leaves, ordered_sites):
            site_of[node] = site
        remaining = ordered_sites[len(leaves):]
        for node, site in zip(interior, reversed(remaining)):
            site_of[node] = site
        return Placement.from_assignment(grid, topology, site_of)

    raise ValueError(f"unknown placement strategy {strategy!r}")
