"""Delta-vectorized pairwise-exchange kernel (the fast mapping engine).

Numerically identical to the scalar oracle in
:mod:`repro.mapping.exchange` — both optimize the paper's Algorithm 1
cost ``(max edge channels, total channel hops)`` with the same sweep
order and strict-improvement acceptance — but prices a whole row of
candidate swaps at once with numpy instead of re-routing channels one
edge at a time in Python.

How a trial swap is priced: every XY route and every boundary route on
the wafer grid is at most two *arithmetic runs* of flat edge ids
(:class:`repro.mapping.routing.RouteTables`). Swapping the occupants of
sites ``i`` and ``j`` only re-routes the links incident to the two
affected nodes plus their external-boundary paths, so the load delta of
a trial is a signed sum of a few dozen runs. The kernel assembles the
runs for *all candidate sites j at once* and turns them into a
``(candidates, edges)`` delta matrix with a single ``np.bincount`` over
run-expanded ids; acceptance is then a per-row max/sum reduction.

The fast path replays the scalar oracle exactly — same accepted-swap
sequence — because candidates are evaluated in ascending order under
the same state, with one provably-neutral shortcut: two occupants with
identical *connectivity signatures* (the same directed
neighbor/channel multiset and external-port count) produce a swap
delta of exactly zero, which the scalar oracle would evaluate and
reject, so such pairs are skipped without evaluation.

Escalation (``escalate=True``): once a full sweep stops improving, a
Kernighan–Lin-style pass proposes only swaps touching nodes incident
to max-load edges and additionally accepts cost-*neutral* moves that
strictly shrink the number of edges sitting at the maximum, then
resumes normal sweeps. Every escalation move strictly decreases the
extended cost ``(max load, total hops, #edges at max)``, so escalated
results are cost-equal-or-better than the scalar oracle, never worse.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.mapping.placement import EMPTY, Placement
from repro.mapping.routing import IOStyle, route_tables


def _expand_runs(start, step, length) -> Tuple[np.ndarray, np.ndarray]:
    """Expand arithmetic id runs ``start + k*step`` (k < length).

    Returns ``(ids, run_of)`` where ``ids`` concatenates every run's
    members and ``run_of`` maps each member back to its run's position
    in the *input* arrays (zero-length runs simply contribute nothing).
    The expansion is a cumulative sum over per-element strides with a
    correction at each run boundary — no Python-level loop.
    """
    keep = np.flatnonzero(length > 0)
    if keep.size == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    start = start[keep]
    step = step[keep]
    length = length[keep]
    firsts = np.zeros(keep.size, np.int64)
    np.cumsum(length[:-1], out=firsts[1:])
    deltas = np.repeat(step, length)
    prev_last = np.empty(keep.size, np.int64)
    prev_last[0] = 0
    prev_last[1:] = (start + (length - 1) * step)[:-1]
    deltas[firsts] = start - prev_last
    return np.cumsum(deltas), np.repeat(keep, length)


class _FastState:
    """Mutable optimizer state: flat loads plus per-node link tables."""

    def __init__(self, placement: Placement, io_style: IOStyle):
        topology = placement.topology
        grid = placement.grid
        self.io_style = io_style
        self.tables = route_tables(grid)
        self.n_sites = grid.sites
        self.n_edges = self.tables.total_edges
        self.site_of = np.asarray(placement.site_of, dtype=np.int64)
        self.node_at = np.asarray(placement.node_at, dtype=np.int64)

        n_nodes = topology.chiplet_count
        per_node: List[List[Tuple[int, int, bool]]] = [[] for _ in range(n_nodes)]
        for link in topology.links:
            per_node[link.a].append((link.b, link.channels, True))
            per_node[link.b].append((link.a, link.channels, False))
        self.deg = np.array([len(entries) for entries in per_node], dtype=np.int64)
        self.off = np.zeros(n_nodes + 1, dtype=np.int64)
        np.cumsum(self.deg, out=self.off[1:])
        flat = [entry for entries in per_node for entry in entries]
        self.all_other = np.array([e[0] for e in flat], dtype=np.int64)
        self.all_ch = np.array([e[1] for e in flat], dtype=np.int64)
        self.all_is_a = np.array([e[2] for e in flat], dtype=bool)
        if io_style is IOStyle.PERIPHERY:
            ext = [node.external_ports for node in topology.nodes]
        else:
            ext = [0] * n_nodes
        self.ext = np.array(ext, dtype=np.int64)

        # Connectivity signatures: equal signature (and the occupants
        # are never linked to each other then — a node cannot appear in
        # its own neighbor list) implies a swap delta of exactly zero.
        sig_ids = {(0, ()): 0}  # the signature of an EMPTY site
        node_sig = np.zeros(n_nodes, dtype=np.int64)
        for node in range(n_nodes):
            key = (int(self.ext[node]), tuple(sorted(per_node[node])))
            node_sig[node] = sig_ids.setdefault(key, len(sig_ids))
        self.site_sig = np.zeros(self.n_sites, dtype=np.int64)
        occupied = self.node_at >= 0
        self.site_sig[occupied] = node_sig[self.node_at[occupied]]

        self._init_loads(topology)

    def _init_loads(self, topology) -> None:
        links = topology.links
        la = np.array([link.a for link in links], dtype=np.int64)
        lb = np.array([link.b for link in links], dtype=np.int64)
        lch = np.array([link.channels for link in links], dtype=np.int64)
        starts, steps, lens, weights = [], [], [], []
        if la.size:
            s, t, l = self.tables.route_runs(self.site_of[la], self.site_of[lb])
            starts.append(s)
            steps.append(t)
            lens.append(l)
            weights.append(np.concatenate([lch, lch]))
        ext_nodes = np.flatnonzero(self.ext > 0)
        if ext_nodes.size:
            s, t, l = self.tables.boundary_runs(self.site_of[ext_nodes])
            starts.append(s)
            steps.append(t)
            lens.append(l)
            weights.append(self.ext[ext_nodes])
        self.loads = np.zeros(self.n_edges, dtype=np.int64)
        if starts and self.n_edges:
            ids, run_of = _expand_runs(
                np.concatenate(starts), np.concatenate(steps), np.concatenate(lens)
            )
            w = np.concatenate(weights).astype(np.float64)
            self.loads += np.bincount(
                ids, weights=w[run_of], minlength=self.n_edges
            ).astype(np.int64)
        self.hops = int(self.loads.sum())
        self.cur_max = int(self.loads.max()) if self.n_edges else 0

    # ------------------------------------------------------------------
    # Batched trial evaluation
    # ------------------------------------------------------------------

    def _candidate_deltas(self, i: int, J: np.ndarray):
        """Price swapping site ``i`` against every site in ``J`` at once.

        Returns ``(new_max, new_hops, new_loads)`` with one row per
        candidate, computed under the current state (no mutation).
        """
        n_edges = self.n_edges
        nJ = J.size
        site_of = self.site_of
        u = int(self.node_at[i])
        vj = self.node_at[J]

        starts, steps, lens, weights, rows = [], [], [], [], []

        def add_runs(s, t, l, w, r):
            starts.append(s)
            steps.append(t)
            lens.append(l)
            weights.append(w)
            rows.append(r)

        # Old contribution of u — candidate-independent, subtracted once.
        base: Optional[np.ndarray] = None
        base_hops = 0.0
        if u != EMPTY:
            o, d = int(self.off[u]), int(self.deg[u])
            if d:
                other = self.all_other[o:o + d]
                ch = self.all_ch[o:o + d]
                is_a = self.all_is_a[o:o + d]
                osite = site_of[other]
                src_old = np.where(is_a, i, osite)
                dst_old = np.where(is_a, osite, i)
                s0, t0, l0 = self.tables.route_runs(src_old, dst_old)
                w0 = np.concatenate([ch, ch]).astype(np.float64)
                if n_edges:
                    ids0, run0 = _expand_runs(s0, t0, l0)
                    base = np.bincount(ids0, weights=w0[run0], minlength=n_edges)
                base_hops += float(w0 @ l0)
                # New contribution of u at each candidate site. If the
                # candidate's occupant is one of u's neighbors, that
                # neighbor lands on site i after the swap.
                nsite = np.where(other[None, :] == vj[:, None], i, osite[None, :])
                src_new = np.where(is_a[None, :], J[:, None], nsite).ravel()
                dst_new = np.where(is_a[None, :], nsite, J[:, None]).ravel()
                s1, t1, l1 = self.tables.route_runs(src_new, dst_new)
                w1 = np.tile(ch, nJ)
                r1 = np.repeat(np.arange(nJ, dtype=np.int64), d)
                add_runs(s1, t1, l1, np.concatenate([w1, w1]), np.concatenate([r1, r1]))
            e = int(self.ext[u])
            if e:
                sb, tb, lb = self.tables.boundary_runs(np.array([i], dtype=np.int64))
                if n_edges:
                    ids0, run0 = _expand_runs(sb, tb, lb)
                    old = np.bincount(
                        ids0, weights=np.full(ids0.size, float(e)), minlength=n_edges
                    )
                    base = old if base is None else base + old
                base_hops += float(e * lb[0])
                sb2, tb2, lb2 = self.tables.boundary_runs(J)
                add_runs(sb2, tb2, lb2, np.full(nJ, e, np.int64),
                         np.arange(nJ, dtype=np.int64))

        # The candidates' occupants: links to every neighbor except u
        # (the shared link, if any, is fully accounted on u's side).
        vreal = vj >= 0
        vsafe = np.maximum(vj, 0)
        vdeg = np.where(vreal, self.deg[vsafe], 0)
        voff = np.where(vreal, self.off[vsafe], 0)
        pos, vrow = _expand_runs(voff, np.ones(nJ, dtype=np.int64), vdeg)
        if pos.size:
            fo = self.all_other[pos]
            fch = self.all_ch[pos]
            fia = self.all_is_a[pos]
            if u != EMPTY:
                keepm = fo != u
                if not keepm.all():
                    fo, fch, fia, vrow = fo[keepm], fch[keepm], fia[keepm], vrow[keepm]
        if pos.size and fo.size:
            fos = site_of[fo]
            s_j = J[vrow]
            src_o = np.where(fia, s_j, fos)
            dst_o = np.where(fia, fos, s_j)
            s2, t2, l2 = self.tables.route_runs(src_o, dst_o)
            add_runs(s2, t2, l2, np.concatenate([-fch, -fch]),
                     np.concatenate([vrow, vrow]))
            src_n = np.where(fia, i, fos)
            dst_n = np.where(fia, fos, i)
            s3, t3, l3 = self.tables.route_runs(src_n, dst_n)
            add_runs(s3, t3, l3, np.concatenate([fch, fch]),
                     np.concatenate([vrow, vrow]))
        evx = np.where(vreal, self.ext[vsafe], 0)
        erow = np.flatnonzero(evx > 0)
        if erow.size:
            ev = evx[erow]
            sb, tb, lb = self.tables.boundary_runs(J[erow])
            add_runs(sb, tb, lb, -ev, erow)
            sb2, tb2, lb2 = self.tables.boundary_runs(
                np.full(erow.size, i, dtype=np.int64)
            )
            add_runs(sb2, tb2, lb2, ev, erow)

        if starts:
            all_s = np.concatenate(starts)
            all_t = np.concatenate(steps)
            all_l = np.concatenate(lens)
            all_w = np.concatenate(weights).astype(np.float64)
            all_r = np.concatenate(rows)
            delta_hops = np.bincount(all_r, weights=all_w * all_l, minlength=nJ)
            if n_edges:
                ids, run_of = _expand_runs(all_s, all_t, all_l)
                flat = all_r[run_of] * n_edges + ids
                delta = np.bincount(
                    flat, weights=all_w[run_of], minlength=nJ * n_edges
                ).reshape(nJ, n_edges)
            else:
                delta = np.zeros((nJ, 0))
        else:
            delta = np.zeros((nJ, n_edges))
            delta_hops = np.zeros(nJ)
        if base is not None and n_edges:
            delta -= base[None, :]
        delta_hops -= base_hops

        new_loads = self.loads[None, :] + delta
        new_max = new_loads.max(axis=1) if n_edges else np.zeros(nJ)
        new_hops = self.hops + delta_hops
        return new_max, new_hops, new_loads

    def _apply(self, i: int, j: int, new_loads_row, new_max, new_hops) -> None:
        """Commit the swap of sites ``i`` and ``j`` (delta already priced)."""
        self.loads = np.rint(new_loads_row).astype(np.int64)
        self.cur_max = int(round(new_max))
        self.hops = int(round(new_hops))
        u, v = int(self.node_at[i]), int(self.node_at[j])
        self.node_at[i], self.node_at[j] = v, u
        if u != EMPTY:
            self.site_of[u] = j
        if v != EMPTY:
            self.site_of[v] = i
        sig_i = int(self.site_sig[i])
        self.site_sig[i] = self.site_sig[j]
        self.site_sig[j] = sig_i

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------

    def sweep_improve(self, record: Optional[list] = None) -> int:
        """One full sweep over ordered site pairs, scalar-identical."""
        accepted = 0
        n_sites = self.n_sites
        for i in range(n_sites):
            j = i + 1
            while j < n_sites:
                cand = np.arange(j, n_sites, dtype=np.int64)
                cand = cand[self.site_sig[cand] != self.site_sig[i]]
                if cand.size == 0:
                    break
                new_max, new_hops, new_loads = self._candidate_deltas(i, cand)
                acc = (new_max < self.cur_max) | (
                    (new_max == self.cur_max) & (new_hops < self.hops)
                )
                hits = np.flatnonzero(acc)
                if hits.size == 0:
                    break
                k = int(hits[0])
                jj = int(cand[k])
                self._apply(i, jj, new_loads[k], new_max[k], new_hops[k])
                if record is not None:
                    record.append((i, jj))
                accepted += 1
                j = jj + 1
        return accepted

    def critical_sites(self) -> List[int]:
        """Occupied sites incident to an edge carrying the max load."""
        if self.n_edges == 0:
            return []
        crit = np.flatnonzero(self.loads == self.cur_max)
        sites = np.unique(self.tables.edge_sites[crit].ravel())
        return [int(s) for s in sites if self.node_at[s] != EMPTY]

    def sweep_escalate(self, record: Optional[list] = None) -> int:
        """KL-style pass over max-load-edge nodes accepting plateau moves.

        Acceptance is a strict decrease of the extended cost
        ``(max load, total hops, #edges at max load)``, so the pass can
        walk along cost plateaus toward states where the normal sweep
        finds strict improvements again — but can never end up worse.
        """
        accepted = 0
        if self.n_edges == 0:
            return 0
        for i in self.critical_sites():
            j = 0
            while j < self.n_sites:
                cand = np.arange(j, self.n_sites, dtype=np.int64)
                cand = cand[cand != i]
                cand = cand[self.site_sig[cand] != self.site_sig[i]]
                if cand.size == 0:
                    break
                new_max, new_hops, new_loads = self._candidate_deltas(i, cand)
                cur_nmax = int((self.loads == self.cur_max).sum())
                new_nmax = (new_loads == new_max[:, None]).sum(axis=1)
                better = (new_max < self.cur_max) | (
                    (new_max == self.cur_max) & (new_hops < self.hops)
                )
                plateau = (
                    (new_max == self.cur_max)
                    & (new_hops == self.hops)
                    & (new_nmax < cur_nmax)
                )
                hits = np.flatnonzero(better | plateau)
                if hits.size == 0:
                    break
                k = int(hits[0])
                jj = int(cand[k])
                self._apply(i, jj, new_loads[k], new_max[k], new_hops[k])
                if record is not None:
                    record.append((i, jj))
                accepted += 1
                j = jj + 1
        return accepted


def pairwise_exchange_fast(
    placement: Placement,
    io_style: IOStyle = IOStyle.PERIPHERY,
    max_sweeps: int = 30,
    escalate: bool = True,
    record_swaps: Optional[list] = None,
):
    """Vectorized Algorithm 1; drop-in for scalar ``pairwise_exchange``.

    Mutates ``placement`` in place to the optimized assignment (same
    contract as the scalar oracle) and returns a
    :class:`~repro.mapping.exchange.MappingResult` holding a defensive
    copy of it. With ``escalate=False`` the accepted-swap sequence is
    identical to the scalar oracle's; with escalation the final cost is
    equal or strictly better.
    """
    from repro.mapping.exchange import MappingResult  # façade; no import cycle

    state = _FastState(placement, io_style)
    sweeps = 0
    swaps = 0
    improved = True
    while improved and sweeps < max_sweeps:
        improved = False
        sweeps += 1
        n = state.sweep_improve(record_swaps)
        swaps += n
        improved = n > 0
        if not improved and escalate:
            n = state.sweep_escalate(record_swaps)
            swaps += n
            improved = n > 0
    placement.site_of[:] = [int(s) for s in state.site_of]
    placement.node_at[:] = [int(n) for n in state.node_at]
    loads = state.tables.unflatten_loads(state.loads, state.hops)
    return MappingResult(
        placement=placement.copy(),
        loads=loads,
        io_style=io_style,
        sweeps=sweeps,
        swaps_accepted=swaps,
    )
