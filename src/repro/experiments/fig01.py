"""Fig 1: switch radix/bandwidth scaling and package pin-density scaling.

Paper claims: 2010-2022 total switching bandwidth grew far faster than
maximum radix (~8x radix growth), and BGA/LGA pin densities grew only
8x / 2.6x over 24 years — the motivation for growing the substrate
instead of the I/O density.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.tech.data import (
    PACKAGING_DENSITY,
    SWITCH_SCALING_2010_2022,
    bandwidth_growth_factor,
    packaging_growth_factor,
    radix_growth_factor,
)


def run(fast: bool = True) -> ExperimentResult:
    del fast  # dataset-driven; no heavy computation
    rows = []
    for gen in SWITCH_SCALING_2010_2022:
        rows.append(
            ("switch", gen.year, gen.name, gen.radix, gen.total_bandwidth_tbps)
        )
    for sample in PACKAGING_DENSITY:
        rows.append(
            ("package", sample.year, sample.technology, "", sample.pins_per_mm2)
        )
    return ExperimentResult(
        experiment_id="fig01",
        title="Radix/bandwidth scaling (a) and package pin density (b)",
        headers=("series", "year", "name", "radix", "Tbps or pins/mm2"),
        rows=rows,
        notes=[
            f"radix growth 2010-2022: {radix_growth_factor():.0f}x "
            "(paper: 8x)",
            f"bandwidth growth 2010-2022: {bandwidth_growth_factor():.0f}x",
            f"BGA pin-density growth: {packaging_growth_factor('BGA'):.1f}x "
            "(paper: 8x)",
            f"LGA pin-density growth: {packaging_growth_factor('LGA'):.1f}x "
            "(paper: 2.6x)",
        ],
    )
