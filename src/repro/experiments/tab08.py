"""Table VIII: singular GPU cluster vs a 2-layer NVSwitch network.

Paper claims: one 300 mm WS switch (2048 x 800G) supports 2048 GPUs at
a single hop with 819.2 Tbps bisection, vs DGX GH200's 132 NVSwitches
for 256 GPUs.
"""

from __future__ import annotations

from repro.core.use_cases import NVSWITCH_BASELINE, gpu_cluster_comparison
from repro.experiments.base import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    del fast
    rows = []
    for gpus, ws_ru in ((2048, 20), (1024, 11)):
        comparison = gpu_cluster_comparison(gpus=gpus, ws_rack_units=ws_ru)
        rows.append(
            (
                f"WS ({gpus} GPUs)",
                gpus,
                comparison.ws_switches,
                comparison.ws_cables,
                comparison.ws_hops,
                comparison.ws_rack_units,
                800,
                round(comparison.bisection_bandwidth_gbps / 1000, 1),
            )
        )
    rows.append(
        (
            "NVSwitch network",
            NVSWITCH_BASELINE["gpus"],
            NVSWITCH_BASELINE["switches"],
            NVSWITCH_BASELINE["cables"],
            NVSWITCH_BASELINE["hops"],
            NVSWITCH_BASELINE["rack_units"],
            int(NVSWITCH_BASELINE["port_bandwidth_gbps"]),
            NVSWITCH_BASELINE["bisection_tbps"],
        )
    )
    return ExperimentResult(
        experiment_id="tab08",
        title="Singular GPU cluster: WS switch vs NVSwitch network",
        headers=(
            "system",
            "GPUs",
            "switches",
            "cables",
            "hops",
            "RU",
            "port Gbps",
            "bisection Tbps",
        ),
        rows=rows,
        notes=[
            "paper: 2048 GPUs / 1 switch / 2048 cables / 1 hop / 20RU / "
            "819.2 Tbps vs 256 GPUs on 132 NVSwitches",
        ],
    )
