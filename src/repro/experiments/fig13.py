"""Fig 13: power breakdown with InFO-SoW internal interconnect.

Paper claim: the package draws ~92.5 kW at the 8192-port design point —
InFO-SoW's 1.5 pJ/bit makes internal I/O power dominate, which is why
the paper keeps Si-IF as its primary WSI technology.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.powerfig import power_breakdown_figure
from repro.tech.wsi import INFO_SOW


def run(fast: bool = True) -> ExperimentResult:
    return power_breakdown_figure(
        "fig13",
        INFO_SOW,
        fast,
        "paper: ~92.5 kW total; internal I/O share grows with InFO-SoW's "
        "1.5 pJ/bit links",
    )
