"""Fig 17: maximum ports vs SSC deradixing at 3200 Gbps/mm.

Paper claims: at 300 mm, halving SSC radix (256 -> 128) doubles the
achievable switch radix from 2048 to 4096; quartering over-deradixes
(area runs out first).
"""

from __future__ import annotations

from repro.core.deradix import deradix_sweep
from repro.experiments.base import ExperimentResult
from repro.experiments.common import mapping_restarts, substrates
from repro.tech.external_io import OPTICAL_IO
from repro.tech.wsi import SI_IF, WSITechnology

DERADIX_FACTORS = (1, 2, 4)


def units(fast: bool = True):
    """One unit per (substrate, deradix factor) point."""
    return [
        (side, factor)
        for side in substrates(fast)
        for factor in DERADIX_FACTORS
    ]


def unit_rows(unit, fast: bool = True, wsi: WSITechnology = SI_IF):
    """Rows for one unit; ``wsi`` parameterized so fig18 reuses this."""
    side, factor = unit
    point = deradix_sweep(
        side,
        wsi=wsi,
        external_io=OPTICAL_IO,
        factors=(factor,),
        mapping_restarts=mapping_restarts(fast),
    )[factor]
    return [(side, factor, point.ssc_radix, point.max_ports)]


def run_unit(unit, fast: bool = True):
    return unit_rows(unit, fast=fast, wsi=SI_IF)


def merge(unit_results, fast: bool = True) -> ExperimentResult:
    del fast
    return _result([row for rows in unit_results for row in rows], SI_IF)


def _result(rows, wsi: WSITechnology) -> ExperimentResult:
    return ExperimentResult(
        experiment_id="fig17",
        title=(
            "Max ports vs deradix factor "
            f"(Optical I/O, {wsi.bandwidth_density_gbps_per_mm:g} Gbps/mm)"
        ),
        headers=("substrate mm", "deradix factor", "SSC radix", "max ports"),
        rows=rows,
        notes=[
            "paper @3200/300mm: 256-port SSC -> 2048, 128-port SSC -> 4096 "
            "(2x), 64-port SSC regresses",
        ],
    )


def run(fast: bool = True, wsi: WSITechnology = SI_IF) -> ExperimentResult:
    rows = [
        row
        for unit in units(fast)
        for row in unit_rows(unit, fast=fast, wsi=wsi)
    ]
    return _result(rows, wsi)
