"""Fig 17: maximum ports vs SSC deradixing at 3200 Gbps/mm.

Paper claims: at 300 mm, halving SSC radix (256 -> 128) doubles the
achievable switch radix from 2048 to 4096; quartering over-deradixes
(area runs out first).
"""

from __future__ import annotations

from repro.core.deradix import deradix_sweep
from repro.experiments.base import ExperimentResult
from repro.experiments.common import mapping_restarts, substrates
from repro.tech.external_io import OPTICAL_IO
from repro.tech.wsi import SI_IF, WSITechnology


def run(fast: bool = True, wsi: WSITechnology = SI_IF) -> ExperimentResult:
    rows = []
    for side in substrates(fast):
        sweep = deradix_sweep(
            side,
            wsi=wsi,
            external_io=OPTICAL_IO,
            factors=(1, 2, 4),
            mapping_restarts=mapping_restarts(fast),
        )
        for factor in sorted(sweep):
            point = sweep[factor]
            rows.append((side, factor, point.ssc_radix, point.max_ports))
    return ExperimentResult(
        experiment_id="fig17",
        title=(
            "Max ports vs deradix factor "
            f"(Optical I/O, {wsi.bandwidth_density_gbps_per_mm:g} Gbps/mm)"
        ),
        headers=("substrate mm", "deradix factor", "SSC radix", "max ports"),
        rows=rows,
        notes=[
            "paper @3200/300mm: 256-port SSC -> 2048, 128-port SSC -> 4096 "
            "(2x), 64-port SSC regresses",
        ],
    )
