"""Fig 11: power breakdown at 6400 Gbps/mm internal bandwidth.

Paper claims: up to 62 kW for the 8192-port switch — up to 3.5x the
3200 Gbps/mm power — with internal + external I/O making up
33 %-43.8 % of the total.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.powerfig import power_breakdown_figure
from repro.tech.wsi import SI_IF_OVERDRIVEN


def run(fast: bool = True) -> ExperimentResult:
    return power_breakdown_figure(
        "fig11",
        SI_IF_OVERDRIVEN,
        fast,
        "paper: 62 kW at 8192 ports; I/O share 33-43.8% (we measure "
        "~61.6 kW, 37.6% at 300mm/Optical)",
    )
