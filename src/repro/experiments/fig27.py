"""Fig 27: sensitivity of maximum radix to internal bandwidth density.

Paper claim: beyond a few doublings of internal bandwidth density the
substrate area becomes the bottleneck and the curve flattens at the
ideal (area-only) radix.
"""

from __future__ import annotations

from repro.core.explorer import ideal_max_ports, max_feasible_design
from repro.experiments.base import ExperimentResult
from repro.experiments.common import mapping_restarts
from repro.tech.external_io import OPTICAL_IO
from repro.tech.wsi import SI_IF


def units(fast: bool = True):
    """One unit per internal bandwidth-density multiplier."""
    return list((0.5, 1.0, 2.0, 4.0) if fast else (0.5, 1.0, 2.0, 4.0, 8.0))


def run_unit(unit, fast: bool = True):
    multiplier = unit
    side = 200.0 if fast else 300.0
    ideal = ideal_max_ports(side)
    wsi = SI_IF if multiplier == 1.0 else SI_IF.overdriven(multiplier)
    design = max_feasible_design(
        side,
        wsi=wsi,
        external_io=OPTICAL_IO,
        mapping_restarts=mapping_restarts(fast),
    )
    ports = design.n_ports if design else 0
    return [
        (
            round(wsi.bandwidth_density_gbps_per_mm),
            ports,
            ideal,
            "area-limited" if ports == ideal else "bandwidth-limited",
        )
    ]


def merge(unit_results, fast: bool = True) -> ExperimentResult:
    side = 200.0 if fast else 300.0
    return ExperimentResult(
        experiment_id="fig27",
        title=f"Max ports vs internal bandwidth density ({side:g}mm, Optical I/O)",
        headers=("internal Gbps/mm", "max ports", "ideal ports", "binding"),
        rows=[row for rows in unit_results for row in rows],
        notes=[
            "paper: the curve saturates at the area-limited radix once "
            "internal bandwidth density is a few x higher",
        ],
    )


def run(fast: bool = True) -> ExperimentResult:
    return merge([run_unit(u, fast=fast) for u in units(fast)], fast=fast)
