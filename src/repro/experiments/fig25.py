"""Fig 25: non-Clos topologies — ideal, constrained, and optimized.

Paper claims: in the ideal case non-Clos topologies also gain orders of
magnitude (mesh/butterfly slightly above Clos); under area/bandwidth/
power constraints the benefits collapse; deradixing + heterogeneity
reclaim much of the gap. Dragonfly and flattened butterfly trail Clos
by 1.7x-3.2x (direct topologies need more external bandwidth).
"""

from __future__ import annotations

from repro.core.constraints import AREA_ONLY, ConstraintLimits
from repro.core.deradix import best_deradix_factor, deradix_sweep
from repro.core.explorer import max_feasible_design
from repro.experiments.base import ExperimentResult
from repro.experiments.common import mapping_restarts
from repro.tech.cooling import WATER_COOLING
from repro.tech.external_io import OPTICAL_IO
from repro.tech.wsi import SI_IF

FAMILIES = ("clos", "mesh", "butterfly", "dragonfly", "flattened-butterfly")


def units(fast: bool = True):
    """One unit per topology family (ideal + constrained + optimized)."""
    del fast
    return list(FAMILIES)


def run_unit(unit, fast: bool = True):
    family = unit
    side = 200.0 if fast else 300.0
    restarts = mapping_restarts(fast)
    constrained_limits = ConstraintLimits(cooling=WATER_COOLING)
    ideal = max_feasible_design(
        side, external_io=None, limits=AREA_ONLY, family=family
    )
    constrained = max_feasible_design(
        side,
        wsi=SI_IF,
        external_io=OPTICAL_IO,
        limits=constrained_limits,
        family=family,
        mapping_restarts=restarts,
    )
    if family == "clos":
        # Optimizations: deradixing sweep (heterogeneity affects
        # power, which water cooling already accommodates here).
        sweep = deradix_sweep(
            side,
            wsi=SI_IF,
            external_io=OPTICAL_IO,
            limits=constrained_limits,
            mapping_restarts=restarts,
        )
        optimized_ports = sweep[best_deradix_factor(sweep)].max_ports
    else:
        optimized_ports = constrained.n_ports if constrained else 0
    return [
        (
            family,
            ideal.n_ports if ideal else 0,
            constrained.n_ports if constrained else 0,
            optimized_ports,
        )
    ]


def merge(unit_results, fast: bool = True) -> ExperimentResult:
    side = 200.0 if fast else 300.0
    return ExperimentResult(
        experiment_id="fig25",
        title=f"Non-Clos topologies at {side:g}mm: ideal / constrained / optimized",
        headers=("topology", "ideal ports", "constrained ports", "optimized ports"),
        rows=[row for rows in unit_results for row in rows],
        notes=[
            "paper: mesh/butterfly ~10% above Clos ideal; dragonfly and "
            "flattened butterfly 1.7x-3.2x below Clos once constrained "
            "(direct topologies need more external bandwidth)",
            "optimized column applies subswitch deradixing (Clos family)",
        ],
    )


def run(fast: bool = True) -> ExperimentResult:
    return merge([run_unit(u, fast=fast) for u in units(fast)], fast=fast)
