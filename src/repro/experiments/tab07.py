"""Table VII: single-switch datacenter vs an equivalent TH-5 Clos.

Paper claims (300 mm): 1 switch vs 96, 8192 cables vs 16384, hop count
1 vs 3, 20RU vs 192RU, 800 Tbps bisection either way.
"""

from __future__ import annotations

from repro.core.use_cases import datacenter_comparison
from repro.experiments.base import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    del fast
    rows = []
    for servers, ws_ru in ((8192, 20), (4096, 11)):
        comparison = datacenter_comparison(servers=servers, ws_rack_units=ws_ru)
        rows.append(
            (
                servers,
                f"{comparison.ws_switches} / {comparison.baseline_switches}",
                f"{comparison.ws_cables} / {comparison.baseline_cables}",
                f"{comparison.ws_hops} / {comparison.baseline_hops}",
                f"{comparison.ws_rack_units} / {comparison.baseline_rack_units}",
                round(comparison.bisection_bandwidth_gbps / 1000, 1),
            )
        )
    return ExperimentResult(
        experiment_id="tab07",
        title="Single-switch datacenter vs TH-5 Clos (WS / baseline)",
        headers=(
            "servers",
            "switches",
            "cables",
            "worst hops",
            "rack units",
            "bisection Tbps",
        ),
        rows=rows,
        notes=[
            "paper (8192 servers): 1/96 switches, 8192/16384 cables, "
            "1/3 hops, 20/192 RU, 800 Tbps",
        ],
    )
