"""Content-addressed on-disk cache for experiment results.

A cached entry is keyed by the experiment id, the run mode (fast/full),
and a **source fingerprint**: a hash over the source text of every
``repro`` module the experiment (transitively) imports. Editing any
module an experiment depends on — and only those — changes its key, so
stale results can never be served while unrelated edits keep the cache
warm. Entries live as JSON files under ``.repro_cache/`` (override with
the ``REPRO_CACHE_DIR`` environment variable).

The dependency walk is static (AST import scan), so computing a key
never executes experiment code.
"""

from __future__ import annotations

import ast
import hashlib
import importlib.util
import json
import os
from functools import lru_cache
from pathlib import Path
from typing import Iterable, Optional, Tuple

from repro.experiments.base import ExperimentResult

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump to invalidate every existing cache entry (serialization changes).
CACHE_FORMAT_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro_cache`` in the cwd."""
    return Path(os.environ.get(CACHE_DIR_ENV, ".repro_cache"))


def _mode_tag(fast: bool) -> str:
    """Cache-key tag for the run mode.

    >>> _mode_tag(True), _mode_tag(False)
    ('fast', 'full')
    """
    return "fast" if fast else "full"


def module_source_path(module_name: str) -> Optional[Path]:
    """Filesystem path of a module's source, or None for non-file modules."""
    try:
        spec = importlib.util.find_spec(module_name)
    except (ImportError, AttributeError, ValueError):
        return None
    if spec is None or not spec.origin or not spec.origin.endswith(".py"):
        return None
    return Path(spec.origin)


def _direct_imports(source: str) -> Iterable[str]:
    """Names of ``repro.*`` modules a source text imports directly.

    ``from repro.a import b`` yields both ``repro.a`` and ``repro.a.b``
    as candidates; non-module candidates are discarded by the resolver.
    """
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "repro":
                    yield alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module and node.module.split(".")[0] == "repro":
                yield node.module
                for alias in node.names:
                    yield f"{node.module}.{alias.name}"


@lru_cache(maxsize=None)
def transitive_modules(module_name: str) -> Tuple[str, ...]:
    """All ``repro`` modules reachable from ``module_name`` via imports,
    including itself, sorted. Static AST walk — no code is executed."""
    seen = set()
    frontier = [module_name]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        path = module_source_path(name)
        if path is None:
            continue
        seen.add(name)
        for candidate in _direct_imports(path.read_text()):
            if candidate not in seen:
                frontier.append(candidate)
    return tuple(sorted(seen))


def source_fingerprint(module_names: Iterable[str]) -> str:
    """SHA-256 over the named modules' source bytes (order-independent)."""
    digest = hashlib.sha256()
    for name in sorted(set(module_names)):
        path = module_source_path(name)
        if path is None or not path.exists():
            continue
        digest.update(name.encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def cache_key(experiment_id: str, fast: bool, module_name: Optional[str] = None) -> str:
    """Content-addressed key: experiment id + mode + source fingerprint."""
    module_name = module_name or f"repro.experiments.{experiment_id}"
    fingerprint = source_fingerprint(transitive_modules(module_name))
    raw = f"v{CACHE_FORMAT_VERSION}|{experiment_id}|{_mode_tag(fast)}|{fingerprint}"
    return hashlib.sha256(raw.encode()).hexdigest()[:16]


class ResultCache:
    """Stores :class:`ExperimentResult` tables as JSON files.

    File names embed the content key, so a source edit simply makes the
    old entry unreachable (``clear`` reclaims the space). ``load``
    returns None on any miss or unreadable entry — the cache is purely
    an accelerator and never a source of errors.
    """

    def __init__(self, directory: Optional[Path] = None):
        self.directory = Path(directory) if directory is not None else default_cache_dir()

    def entry_path(self, experiment_id: str, fast: bool) -> Path:
        key = cache_key(experiment_id, fast)
        return self.directory / f"{experiment_id}-{_mode_tag(fast)}-{key}.json"

    def load(self, experiment_id: str, fast: bool) -> Optional[ExperimentResult]:
        path = self.entry_path(experiment_id, fast)
        try:
            payload = json.loads(path.read_text())
            return ExperimentResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(self, experiment_id: str, fast: bool, result: ExperimentResult) -> Path:
        path = self.entry_path(experiment_id, fast)
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "experiment_id": experiment_id,
            "mode": _mode_tag(fast),
            "format_version": CACHE_FORMAT_VERSION,
            "result": result.to_dict(),
        }
        # Write-then-rename so a concurrent reader never sees a torn file.
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=1) + "\n")
        tmp.replace(path)
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for entry in self.directory.glob("*.json"):
                entry.unlink()
                removed += 1
        return removed
