"""Content-addressed on-disk cache for experiment results.

A cached entry is keyed by the experiment id, the run mode (fast/full),
and a **source fingerprint**: a hash over the source text of every
``repro`` module the experiment (transitively) imports. Editing any
module an experiment depends on — and only those — changes its key, so
stale results can never be served while unrelated edits keep the cache
warm. Entries live as JSON files under ``.repro_cache/`` (override with
the ``REPRO_CACHE_DIR`` environment variable).

The dependency walk is static (AST import scan, shared with the
mapping store via :mod:`repro.fingerprint`), so computing a key never
executes experiment code.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from repro import paths
from repro.experiments.base import ExperimentResult
from repro.fingerprint import (  # noqa: F401 — re-exported; fingerprinting lives below the layer stack now
    _direct_imports,
    module_source_path,
    source_fingerprint,
    transitive_modules,
)

#: Deprecation shim — the resolver lives in :mod:`repro.paths` now.
CACHE_DIR_ENV = paths.CACHE_DIR_ENV

#: Bump to invalidate every existing cache entry (serialization changes).
CACHE_FORMAT_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro_cache`` in the cwd.

    Deprecated alias for :func:`repro.paths.experiment_cache_dir`.
    """
    return paths.experiment_cache_dir()


def _mode_tag(fast: bool) -> str:
    """Cache-key tag for the run mode.

    >>> _mode_tag(True), _mode_tag(False)
    ('fast', 'full')
    """
    return "fast" if fast else "full"


def cache_key(experiment_id: str, fast: bool, module_name: Optional[str] = None) -> str:
    """Content-addressed key: experiment id + mode + source fingerprint."""
    module_name = module_name or f"repro.experiments.{experiment_id}"
    fingerprint = source_fingerprint(transitive_modules(module_name))
    raw = f"v{CACHE_FORMAT_VERSION}|{experiment_id}|{_mode_tag(fast)}|{fingerprint}"
    return hashlib.sha256(raw.encode()).hexdigest()[:16]


class ResultCache:
    """Stores :class:`ExperimentResult` tables as JSON files.

    File names embed the content key, so a source edit simply makes the
    old entry unreachable (``clear`` reclaims the space). ``load``
    returns None on any miss or unreadable entry — the cache is purely
    an accelerator and never a source of errors.
    """

    def __init__(self, directory: Optional[Path] = None):
        self.directory = Path(directory) if directory is not None else default_cache_dir()

    def entry_path(self, experiment_id: str, fast: bool) -> Path:
        key = cache_key(experiment_id, fast)
        return self.directory / f"{experiment_id}-{_mode_tag(fast)}-{key}.json"

    def load(self, experiment_id: str, fast: bool) -> Optional[ExperimentResult]:
        path = self.entry_path(experiment_id, fast)
        try:
            payload = json.loads(path.read_text())
            return ExperimentResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(self, experiment_id: str, fast: bool, result: ExperimentResult) -> Path:
        path = self.entry_path(experiment_id, fast)
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "experiment_id": experiment_id,
            "mode": _mode_tag(fast),
            "format_version": CACHE_FORMAT_VERSION,
            "result": result.to_dict(),
        }
        # Write-then-rename so a concurrent reader never sees a torn file.
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=1) + "\n")
        tmp.replace(path)
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for entry in self.directory.glob("*.json"):
                entry.unlink()
                removed += 1
        return removed
