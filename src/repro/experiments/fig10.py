"""Fig 10: power breakdown at 3200 Gbps/mm internal bandwidth.

Paper claim: power exceeds 14 kW for 200/300 mm substrates with
Optical / Area I/O.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.powerfig import power_breakdown_figure
from repro.tech.wsi import SI_IF


def run(fast: bool = True) -> ExperimentResult:
    return power_breakdown_figure(
        "fig10",
        SI_IF,
        fast,
        "paper: >14 kW at 200/300mm with Optical/Area I/O (we measure the "
        "same designs at ~12-14 kW)",
    )
