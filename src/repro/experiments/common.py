"""Shared knobs for experiments: fast (test) vs full (benchmark) scale.

The analytical experiments are exact but the pairwise-exchange mapping
of the largest (8192-port, 96-chiplet) designs takes ~1 minute; fast
mode restricts substrate sweeps to 100/200 mm and single-restart
mappings. Simulation experiments likewise scale the network down in
fast mode; the paper's qualitative comparisons are preserved at both
scales.
"""

from __future__ import annotations

from typing import Sequence, Tuple

#: Substrate sides (mm) swept by the paper's figures.
FULL_SUBSTRATES: Tuple[float, ...] = (100.0, 200.0, 300.0)
FAST_SUBSTRATES: Tuple[float, ...] = (100.0, 200.0)


def substrates(fast: bool) -> Sequence[float]:
    return FAST_SUBSTRATES if fast else FULL_SUBSTRATES


def mapping_restarts(fast: bool) -> int:
    """Seeded restarts per mapping; the paper uses 1000 random restarts
    but reports <1 % spread between trials. Full mode affords 8 with
    the vectorized exchange kernel (it used to afford 2 with the scalar
    one); fast mode stays at 1 so test tables remain cheap and stable."""
    return 1 if fast else 8


def sim_scale(fast: bool) -> dict:
    """Simulator sizing: terminals, SSC radix, run lengths."""
    if fast:
        return {
            "n_terminals": 64,
            "ssc_radix": 16,
            "num_vcs": 4,
            "buffer_flits_per_port": 16,
            "warmup_cycles": 300,
            "measure_cycles": 700,
            "loads": (0.1, 0.3, 0.5, 0.7, 0.9),
        }
    return {
        "n_terminals": 256,
        "ssc_radix": 32,
        "num_vcs": 8,
        "buffer_flits_per_port": 32,
        "warmup_cycles": 500,
        "measure_cycles": 1500,
        "loads": (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    }
