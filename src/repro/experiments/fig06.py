"""Fig 6: ideal (area-only) maximum ports vs substrate size.

Paper claims: 32x more ports than one TH-5 at 300 mm, 16x at 200 mm,
4x at 100 mm for the 256x200G configuration; 2-8x benefits remain at
the higher-bandwidth port configurations.
"""

from __future__ import annotations

from repro.core.explorer import ideal_max_ports
from repro.experiments.base import ExperimentResult
from repro.experiments.common import substrates
from repro.tech.chiplet import TH5_CONFIGURATIONS


def run(fast: bool = True) -> ExperimentResult:
    rows = []
    for ports, ssc in sorted(TH5_CONFIGURATIONS.items(), reverse=True):
        for side in substrates(fast):
            max_ports = ideal_max_ports(side, ssc=ssc)
            rows.append(
                (
                    f"{ssc.radix}x{ssc.port_bandwidth_gbps:g}G",
                    side,
                    max_ports,
                    round(max_ports / ssc.radix, 1),
                )
            )
    return ExperimentResult(
        experiment_id="fig06",
        title="Maximum ports with WSI, area constraints only",
        headers=("TH-5 config", "substrate mm", "max ports", "x single TH-5"),
        rows=rows,
        notes=[
            "paper: 32x at 300mm, 16x at 200mm, 4x at 100mm (256x200G)",
        ],
    )
