"""Per-point telemetry artifacts for the simulation figures.

Lives apart from :mod:`repro.experiments.common` on purpose: these
helpers import :mod:`repro.netsim.telemetry`, and keeping them out of
``common`` keeps netsim out of the analytical experiments' cache
fingerprints (editing the simulator must not invalidate fig07's
cached table). Only the simulation figures (fig21–fig24) import this
module.
"""

from __future__ import annotations

import os
import pathlib
from typing import Optional

#: Environment variable enabling per-point telemetry artifacts. Set it
#: to a directory (the runner's ``--telemetry`` flag does this) and the
#: simulation figures attach a Telemetry sink per simulated point and
#: write ``$REPRO_TELEMETRY_DIR/<experiment>/<slug>.json``. The env var
#: propagates to pool workers because it is set before the pool forks.
TELEMETRY_DIR_ENV = "REPRO_TELEMETRY_DIR"


def telemetry_dir() -> Optional[pathlib.Path]:
    """The telemetry artifact directory, or None when disabled."""
    value = os.environ.get(TELEMETRY_DIR_ENV, "").strip()
    return pathlib.Path(value) if value else None


def telemetry_sink(sample_interval: int = 16):
    """A fresh Telemetry sink when artifacts are enabled, else None.

    Simulation figures call this once per simulated point; the None
    return in the common (disabled) case keeps telemetry entirely out
    of the cached/benchmarked paths.
    """
    if telemetry_dir() is None:
        return None
    from repro.netsim.telemetry import Telemetry

    return Telemetry(sample_interval=sample_interval)


def write_point_telemetry(
    telemetry, experiment_id: str, slug: str
) -> Optional[pathlib.Path]:
    """Write one point's telemetry report; returns the path (or None).

    Unattached sinks (e.g. a sweep point that was skipped) and the
    disabled case are both no-ops, so callers can write
    unconditionally.
    """
    root = telemetry_dir()
    if telemetry is None or root is None or not telemetry.attached:
        return None
    path = root / experiment_id / f"{slug}.json"
    telemetry.write_json(path)
    return path
