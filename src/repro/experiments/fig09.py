"""Fig 9: maximum 200G ports at 6400 Gbps/mm internal bandwidth.

Paper claims: doubling internal bandwidth lifts Optical I/O to 8192
ports at 300 mm (4x the 3200 case) and 4096 at 200 mm (2x); 100 mm
stays at the ideal 1024; Area I/O does not improve (externally bound).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.fig07 import run as run_fig07
from repro.tech.wsi import SI_IF_OVERDRIVEN


def run(fast: bool = True) -> ExperimentResult:
    result = run_fig07(fast=fast, wsi=SI_IF_OVERDRIVEN)
    return ExperimentResult(
        experiment_id="fig09",
        title=result.title,
        headers=result.headers,
        rows=result.rows,
        notes=[
            "paper @6400: Optical reaches 8192 at 300mm (matches ideal), "
            "4096 at 200mm; Area I/O unchanged (external bottleneck)",
        ],
    )
