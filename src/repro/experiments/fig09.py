"""Fig 9: maximum 200G ports at 6400 Gbps/mm internal bandwidth.

Paper claims: doubling internal bandwidth lifts Optical I/O to 8192
ports at 300 mm (4x the 3200 case) and 4096 at 200 mm (2x); 100 mm
stays at the ideal 1024; Area I/O does not improve (externally bound).
"""

from __future__ import annotations

from repro.experiments import fig07
from repro.experiments.base import ExperimentResult
from repro.tech.wsi import SI_IF_OVERDRIVEN


def units(fast: bool = True):
    """Same (substrate, external I/O) grid as fig07, at 6400 Gbps/mm."""
    return fig07.units(fast)


def run_unit(unit, fast: bool = True):
    return fig07.unit_rows(unit, fast=fast, wsi=SI_IF_OVERDRIVEN)


def merge(unit_results, fast: bool = True) -> ExperimentResult:
    del fast
    base = fig07._result(
        [row for rows in unit_results for row in rows], SI_IF_OVERDRIVEN
    )
    return ExperimentResult(
        experiment_id="fig09",
        title=base.title,
        headers=base.headers,
        rows=base.rows,
        notes=[
            "paper @6400: Optical reaches 8192 at 300mm (matches ideal), "
            "4096 at 200mm; Area I/O unchanged (external bottleneck)",
        ],
    )


def run(fast: bool = True) -> ExperimentResult:
    return merge([run_unit(u, fast=fast) for u in units(fast)], fast=fast)
