"""Table III: modular switches vs waferscale switches.

Paper claims: WS switches offer 7.1x-14.2x more ports (300 mm) than
modular routers, ~6.1 W/port, and 7.5x-11.4x higher capacity density.
"""

from __future__ import annotations

from repro.core.system_arch import (
    reference_200mm_architecture,
    reference_300mm_architecture,
)
from repro.core.use_cases import modular_switch_comparison, waferscale_router_row
from repro.experiments.base import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    del fast
    arch_300 = reference_300mm_architecture()
    arch_200 = reference_200mm_architecture()
    ws_rows = [
        waferscale_router_row(
            300, arch_300.n_ports, arch_300.total_power_w, arch_300.total_ru
        ),
        waferscale_router_row(
            200, arch_200.n_ports, arch_200.total_power_w, arch_200.total_ru
        ),
    ]
    rows = []
    for row in modular_switch_comparison(ws_rows):
        rows.append(
            (
                row.name,
                row.space_ru,
                row.total_bandwidth_tbps,
                row.port_count_200g,
                row.total_power_kw,
                round(row.power_per_port_w, 1),
                round(row.capacity_density_tbps_per_ru, 1),
            )
        )
    return ExperimentResult(
        experiment_id="tab03",
        title="Modular switches vs waferscale switches",
        headers=(
            "router",
            "space RU",
            "total Tbps",
            "ports @200G",
            "power kW",
            "W/port",
            "Tbps/RU",
        ),
        rows=rows,
        notes=[
            "paper: WS 300mm = 20RU, 1638.4 Tbps, 8192 ports, 50 kW, "
            "6.1 W/port, 81.9 Tbps/RU",
        ],
    )
