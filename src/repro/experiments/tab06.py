"""Table VI: chiplet counts — Clos vs hierarchical/modular crossbars.

Paper claim: a Clos needs 3(N/k) chiplets (24 at N=2048, 96 at N=8192)
while hierarchical and modular crossbars need (N/k)^2 (64 and 1024).
"""

from __future__ import annotations

from repro.core.use_cases import microarchitecture_chiplet_counts
from repro.experiments.base import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    del fast
    rows = []
    for n_ports in (2048, 8192):
        counts = microarchitecture_chiplet_counts(n_ports, 256)
        rows.append(
            (
                n_ports,
                counts["clos"],
                counts["hierarchical-crossbar"],
                counts["modular-crossbar"],
            )
        )
    return ExperimentResult(
        experiment_id="tab06",
        title="Chiplets required: Clos vs HC vs MC (k=256)",
        headers=("N", "Clos 3(N/k)", "HC (N/k)^2", "MC (N/k)^2"),
        rows=rows,
        notes=["paper: 24 vs 64 at N=2048; 96 vs 1024 at N=8192"],
    )
