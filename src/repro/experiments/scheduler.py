"""Process-pool scheduler fanning experiment work units across cores.

:func:`execute` takes :class:`~repro.experiments.base.ExperimentSpec`
handles, expands each into its independent work units, and runs every
unit of every selected experiment through one shared process pool. The
pool mechanics — retry-once on worker failure, serial fallback for
twice-failed or stranded units, stall watchdog — live in
:func:`repro.parallel.pool_map`, shared with the mapping optimizer's
parallel restarts.

Workers receive only ``(module name, experiment id, unit index)``, so
nothing un-picklable ever crosses the process boundary; each worker
re-derives the unit list from the module's deterministic ``units()``.
Merged results are bit-identical to a serial run because units share no
mutable state (all simulator/mapping RNG is locally seeded).

Every unit also reports a small stats dict — wall time plus the
mapping-store activity it caused (:mod:`repro.mapping.store` counters
diffed around the unit) — which :func:`execute` collects into
``profile_out`` rows for the runner's ``--profile`` table.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.base import ExperimentResult, ExperimentSpec
from repro.parallel import pool_map


def _execute_unit(
    module_name: str, experiment_id: str, unit_index: int, fast: bool
) -> Tuple[Any, Dict[str, float]]:
    """Worker entry point: run one unit, measuring its mapping activity."""
    from repro.mapping import store as mapping_store

    spec = ExperimentSpec(experiment_id=experiment_id, module_name=module_name)
    units = spec.units(fast=fast)
    before = mapping_store.stats_snapshot()
    started = time.perf_counter()
    result = spec.run_unit(units[unit_index], fast=fast)
    stats = {"seconds": time.perf_counter() - started}
    stats.update(mapping_store.stats_delta(before))
    return result, stats


def execute(
    specs: Sequence[ExperimentSpec],
    fast: bool = True,
    jobs: int = 1,
    unit_timeout: Optional[float] = None,
    profile_out: Optional[List[Dict[str, Any]]] = None,
) -> List[ExperimentResult]:
    """Run the experiments, fanning work units over ``jobs`` processes.

    ``jobs <= 1`` runs everything serially in-process (no pool at all).
    ``unit_timeout`` is a stall watchdog: if no unit completes for that
    many seconds, outstanding units are abandoned to serial fallback.
    ``profile_out``, if given, receives one row per unit:
    ``{"experiment_id", "unit", "seconds", <mapping-store counters>}``.
    """
    specs = list(specs)
    if not specs:
        return []
    unit_lists = [spec.units(fast=fast) for spec in specs]
    tasks = []
    labels = []
    owners = []
    for spec, units in zip(specs, unit_lists):
        for unit_index in range(len(units)):
            tasks.append((spec.module_name, spec.experiment_id, unit_index, fast))
            labels.append(f"{spec.experiment_id}[{unit_index}]")
            owners.append((spec.experiment_id, unit_index))

    outcomes = pool_map(
        _execute_unit, tasks, jobs=jobs, timeout=unit_timeout, labels=labels
    )

    unit_results: List[List[Any]] = [[None] * len(units) for units in unit_lists]
    cursor = 0
    for spec_index, units in enumerate(unit_lists):
        for unit_index in range(len(units)):
            result, stats = outcomes[cursor]
            unit_results[spec_index][unit_index] = result
            if profile_out is not None:
                row = {"experiment_id": owners[cursor][0], "unit": unit_index}
                row.update(stats)
                profile_out.append(row)
            cursor += 1

    return [
        spec.merge(row, fast=fast)
        for spec, row in zip(specs, unit_results)
    ]
