"""Warm-pool scheduler fanning experiment work units across cores.

:func:`execute` takes :class:`~repro.experiments.base.ExperimentSpec`
handles, expands each into its independent work units, and runs every
unit of every selected experiment through the shared warm worker pool.
The pool mechanics — persistent preloaded workers, retry-once on
worker failure, serial fallback for twice-failed or stranded units,
stall watchdog, degraded-to-serial fast path on small machines — live
in :func:`repro.parallel.pool_map`, shared with the mapping
optimizer's parallel restarts and the serve dispatcher.

Dispatch is **cost-aware**: units are submitted most-expensive-first
using per-unit wall times recorded by previous runs (persisted via
:class:`~repro.experiments.unit_costs.CostBook` under the cache root;
never-measured units get a coarse simulation-vs-analytical prior), so
a big netsim unit never starts last and strands the pool behind it.
Every run records the times it observed back into the book.

Workers receive only ``(module name, experiment id, unit index)``, so
nothing un-picklable ever crosses the process boundary; each worker
re-derives the unit list from the module's deterministic ``units()``.
Merged results are bit-identical to a serial run because units share no
mutable state (all simulator/mapping RNG is locally seeded).

Every unit also reports a small stats dict — wall time plus the
mapping-store activity it caused (:mod:`repro.mapping.store` counters
diffed around the unit) — which :func:`execute` collects into
``profile_out`` rows for the runner's ``--profile`` table, alongside
the pool's measured per-unit dispatch overhead (``dispatch_s``: time a
result spent crossing process boundaries, zero for serial execution).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.base import ExperimentResult, ExperimentSpec
from repro.experiments.unit_costs import CostBook
from repro.parallel import pool_map


def _execute_unit(
    module_name: str, experiment_id: str, unit_index: int, fast: bool
) -> Tuple[Any, Dict[str, float]]:
    """Worker entry point: run one unit, measuring its mapping activity."""
    from repro.mapping import store as mapping_store

    spec = ExperimentSpec(experiment_id=experiment_id, module_name=module_name)
    units = spec.units(fast=fast)
    before = mapping_store.stats_snapshot()
    started = time.perf_counter()
    result = spec.run_unit(units[unit_index], fast=fast)
    stats = {"seconds": time.perf_counter() - started}
    stats.update(mapping_store.stats_delta(before))
    return result, stats


def execute(
    specs: Sequence[ExperimentSpec],
    fast: bool = True,
    jobs: Optional[int] = 1,
    unit_timeout: Optional[float] = None,
    profile_out: Optional[List[Dict[str, Any]]] = None,
) -> List[ExperimentResult]:
    """Run the experiments, fanning work units over ``jobs`` processes.

    ``jobs <= 1`` runs everything serially in-process (no pool at all);
    ``jobs=None`` auto-detects the effective core count. Either way
    :func:`repro.parallel.effective_jobs` may degrade the request to
    the serial fast path when cores or units are too few to pay for
    dispatch. ``unit_timeout`` is a stall watchdog: if no unit
    completes for that many seconds, outstanding units are abandoned to
    serial fallback. ``profile_out``, if given, receives one row per
    unit: ``{"experiment_id", "unit", "seconds", "dispatch_s",
    <mapping-store counters>}``.
    """
    specs = list(specs)
    if not specs:
        return []
    unit_lists = [spec.units(fast=fast) for spec in specs]
    book = CostBook()
    tasks = []
    labels = []
    owners = []
    for spec, units in zip(specs, unit_lists):
        for unit_index in range(len(units)):
            tasks.append((spec.module_name, spec.experiment_id, unit_index, fast))
            labels.append(f"{spec.experiment_id}[{unit_index}]")
            owners.append((spec.experiment_id, unit_index))

    dispatch_stats: List[Optional[Dict[str, Any]]] = []
    outcomes = pool_map(
        _execute_unit,
        tasks,
        jobs=jobs,
        timeout=unit_timeout,
        labels=labels,
        costs=[book.get(label) for label in labels],
        dispatch_stats=dispatch_stats,
    )

    unit_results: List[List[Any]] = [[None] * len(units) for units in unit_lists]
    cursor = 0
    for spec_index, units in enumerate(unit_lists):
        for unit_index in range(len(units)):
            result, stats = outcomes[cursor]
            unit_results[spec_index][unit_index] = result
            book.record(labels[cursor], stats.get("seconds", 0.0))
            if profile_out is not None:
                row = {"experiment_id": owners[cursor][0], "unit": unit_index}
                row.update(stats)
                pool_stats = (
                    dispatch_stats[cursor]
                    if cursor < len(dispatch_stats)
                    else None
                )
                row["dispatch_s"] = (
                    pool_stats.get("dispatch_s", 0.0) if pool_stats else 0.0
                )
                profile_out.append(row)
            cursor += 1
    book.save()

    return [
        spec.merge(row, fast=fast)
        for spec, row in zip(specs, unit_results)
    ]
