"""Process-pool scheduler fanning experiment work units across cores.

:func:`execute` takes :class:`~repro.experiments.base.ExperimentSpec`
handles, expands each into its independent work units, and runs every
unit of every selected experiment through one shared
``ProcessPoolExecutor``. Failure policy, in order:

1. a unit that raises in a worker is **retried once** in the pool;
2. a unit that fails twice, and every unit stranded by a broken pool or
   a stall (no completion within ``unit_timeout`` seconds), **falls
   back to serial execution** in the parent process;
3. an error that also reproduces serially propagates — the experiment
   is genuinely broken, not a scheduling casualty.

Workers receive only ``(module name, experiment id, unit index)``, so
nothing un-picklable ever crosses the process boundary; each worker
re-derives the unit list from the module's deterministic ``units()``.
Merged results are bit-identical to a serial run because units share no
mutable state (all simulator/mapping RNG is locally seeded).
"""

from __future__ import annotations

import sys
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from repro.experiments.base import ExperimentResult, ExperimentSpec

#: Placeholder for a unit result not yet produced.
_UNSET = object()

#: Total attempts per unit in the pool before serial fallback.
MAX_POOL_ATTEMPTS = 2


def _warn(message: str) -> None:
    print(f"[scheduler] {message}", file=sys.stderr)


def _execute_unit(module_name: str, experiment_id: str, unit_index: int, fast: bool):
    """Worker entry point: re-resolve the spec and run one unit."""
    spec = ExperimentSpec(experiment_id=experiment_id, module_name=module_name)
    units = spec.units(fast=fast)
    return spec.run_unit(units[unit_index], fast=fast)


@dataclass
class _Task:
    spec_index: int
    unit_index: int
    attempts: int = 0


def execute(
    specs: Sequence[ExperimentSpec],
    fast: bool = True,
    jobs: int = 1,
    unit_timeout: Optional[float] = None,
) -> List[ExperimentResult]:
    """Run the experiments, fanning work units over ``jobs`` processes.

    ``jobs <= 1`` runs everything serially in-process (no pool at all).
    ``unit_timeout`` is a stall watchdog: if no unit completes for that
    many seconds, outstanding units are abandoned to serial fallback
    (their worker processes are left to die with the pool).
    """
    specs = list(specs)
    if not specs:
        return []
    unit_lists = [spec.units(fast=fast) for spec in specs]
    unit_results: List[List[Any]] = [[_UNSET] * len(units) for units in unit_lists]

    if jobs > 1:
        _run_pool(specs, unit_lists, unit_results, fast, jobs, unit_timeout)

    # Serial completion: everything the pool did not produce (all of it
    # when jobs <= 1) runs in the parent, where errors propagate.
    for spec, units, row in zip(specs, unit_lists, unit_results):
        for index, unit in enumerate(units):
            if row[index] is _UNSET:
                row[index] = spec.run_unit(unit, fast=fast)

    return [
        spec.merge(row, fast=fast)
        for spec, row in zip(specs, unit_results)
    ]


def _run_pool(specs, unit_lists, unit_results, fast, jobs, unit_timeout) -> None:
    """Best-effort parallel pass; leaves failed cells as ``_UNSET``."""
    pool = ProcessPoolExecutor(max_workers=jobs)
    futures = {}
    broken = False

    def submit(task: _Task) -> None:
        task.attempts += 1
        spec = specs[task.spec_index]
        future = pool.submit(
            _execute_unit,
            spec.module_name,
            spec.experiment_id,
            task.unit_index,
            fast,
        )
        futures[future] = task

    try:
        for spec_index, units in enumerate(unit_lists):
            for unit_index in range(len(units)):
                submit(_Task(spec_index, unit_index))
        while futures and not broken:
            done, _ = wait(
                set(futures), timeout=unit_timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                _warn(
                    f"no work unit completed within {unit_timeout}s; "
                    f"abandoning {len(futures)} outstanding unit(s) to "
                    "serial execution"
                )
                break
            for future in done:
                task = futures.pop(future)
                spec = specs[task.spec_index]
                label = f"{spec.experiment_id}[{task.unit_index}]"
                try:
                    unit_results[task.spec_index][task.unit_index] = future.result()
                except BrokenProcessPool:
                    broken = True
                except Exception as exc:  # noqa: BLE001 — worker errors are policy here
                    if task.attempts < MAX_POOL_ATTEMPTS:
                        _warn(f"{label} failed in worker ({exc!r}); retrying")
                        try:
                            submit(task)
                        except BrokenProcessPool:
                            broken = True
                    else:
                        _warn(
                            f"{label} failed {task.attempts}x in workers "
                            f"({exc!r}); falling back to serial"
                        )
        if broken:
            remaining = sum(
                1 for row in unit_results for cell in row if cell is _UNSET
            )
            _warn(
                f"process pool broke; running {remaining} unfinished "
                "unit(s) serially"
            )
    except BrokenProcessPool:
        _warn("process pool broke during submission; degrading to serial")
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
