"""Fig 7: maximum 200G ports at 3200 Gbps/mm internal bandwidth for the
three external I/O technologies.

Paper claims: SerDes only doubles ports (512) even at 300 mm; Optical
and Area I/O reach up to 4x more than SerDes but still 50-75 % below
the ideal at 200/300 mm (internal bandwidth binds at 2048).
"""

from __future__ import annotations

from repro.core.constraints import ConstraintLimits
from repro.core.explorer import ideal_max_ports, max_feasible_design
from repro.experiments.base import ExperimentResult
from repro.experiments.common import mapping_restarts, substrates
from repro.tech.external_io import AREA_IO, OPTICAL_IO, SERDES_IO
from repro.tech.wsi import SI_IF

EXTERNAL_IOS = (SERDES_IO, OPTICAL_IO, AREA_IO)
_IO_BY_NAME = {ext.name: ext for ext in EXTERNAL_IOS}


def units(fast: bool = True):
    """One unit per (substrate, external I/O) design-space point."""
    return [
        (side, ext.name) for side in substrates(fast) for ext in EXTERNAL_IOS
    ]


def unit_rows(unit, fast: bool = True, wsi=SI_IF):
    """Rows for one unit; ``wsi`` parameterized so fig09 reuses this."""
    side, ext_name = unit
    ideal = ideal_max_ports(side)
    design = max_feasible_design(
        side,
        wsi=wsi,
        external_io=_IO_BY_NAME[ext_name],
        limits=ConstraintLimits(),
        mapping_restarts=mapping_restarts(fast),
    )
    ports = design.n_ports if design else 0
    binding = "none" if ports == ideal else "internal-bw/external-bw"
    return [(side, ext_name, ports, ideal, binding)]


def run_unit(unit, fast: bool = True):
    return unit_rows(unit, fast=fast, wsi=SI_IF)


def merge(unit_results, fast: bool = True) -> ExperimentResult:
    del fast
    return _result([row for rows in unit_results for row in rows], SI_IF)


def _result(rows, wsi) -> ExperimentResult:
    return ExperimentResult(
        experiment_id="fig07",
        title=f"Max 200G ports @ {wsi.bandwidth_density_gbps_per_mm:g} Gbps/mm",
        headers=("substrate mm", "external I/O", "max ports", "ideal", "gap cause"),
        rows=rows,
        notes=[
            "paper @3200: SerDes caps at 512; Optical/Area reach 2048 at "
            "300mm (75% below ideal 8192)",
        ],
    )


def run(fast: bool = True, wsi=SI_IF) -> ExperimentResult:
    rows = [
        row
        for unit in units(fast)
        for row in unit_rows(unit, fast=fast, wsi=wsi)
    ]
    return _result(rows, wsi)
