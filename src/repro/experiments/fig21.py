"""Fig 21: saturation throughput vs buffer size and link latency.

Paper claim: low-latency on-wafer links need far smaller buffers to
sustain saturation throughput (``B = RTT x BW / sqrt(n)``); at an
equivalent delay of 200 ns (10 cycles) large buffers are required,
while 1-cycle on-wafer links saturate with small ones.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.common import sim_scale
from repro.experiments.telemetry_io import telemetry_sink, write_point_telemetry
from repro.netsim.fast_core import netsim_engine_tag
from repro.netsim.network import clos_network
from repro.netsim.packet import reset_packet_ids
from repro.netsim.config import RouterConfig
from repro.netsim.sim import saturation_throughput
from repro.netsim.traffic import make_pattern


def _grid(fast: bool):
    scale = sim_scale(fast)
    link_latencies = (1, 10) if fast else (1, 5, 10)
    buffer_sizes = (
        (scale["num_vcs"], 2 * scale["num_vcs"], 8 * scale["num_vcs"])
        if fast
        else (
            scale["num_vcs"],
            2 * scale["num_vcs"],
            4 * scale["num_vcs"],
            8 * scale["num_vcs"],
            16 * scale["num_vcs"],
        )
    )
    return scale, link_latencies, buffer_sizes


def units(fast: bool = True):
    """One unit per (link latency, buffer size) simulation point."""
    _, link_latencies, buffer_sizes = _grid(fast)
    return [
        (latency, buffer_size)
        for latency in link_latencies
        for buffer_size in buffer_sizes
    ]


def run_unit(unit, fast: bool = True):
    latency, buffer_size = unit
    # Packet ids feed the Clos spine selection, so each unit must start
    # from a fresh counter or serial and parallel runs would diverge.
    reset_packet_ids()
    scale = sim_scale(fast)

    def factory():
        config = RouterConfig(
            num_vcs=scale["num_vcs"],
            buffer_flits_per_port=buffer_size,
            routing_delay=1,
            pipeline_delay=1,
        )
        return clos_network(
            f"fig21-l{latency}-b{buffer_size}",
            scale["n_terminals"],
            scale["ssc_radix"],
            config,
            inter_switch_latency=latency,
            io_latency=1,
        )

    telemetry = telemetry_sink()
    throughput = saturation_throughput(
        factory,
        lambda n: make_pattern("uniform", n),
        warmup_cycles=scale["warmup_cycles"],
        measure_cycles=scale["measure_cycles"],
        telemetry=telemetry,
    )
    write_point_telemetry(telemetry, "fig21", f"l{latency}_b{buffer_size}")
    return [(latency, latency * 20, buffer_size, round(throughput, 3))]


def merge(unit_results, fast: bool = True) -> ExperimentResult:
    del fast
    return ExperimentResult(
        experiment_id="fig21",
        title="Saturation throughput vs buffer size and link latency",
        headers=(
            "link latency cycles",
            "link latency ns",
            "buffer flits/port",
            "saturation throughput (flits/cycle/terminal)",
        ),
        rows=[row for rows in unit_results for row in rows],
        notes=[
            "paper: higher link delay requires larger buffers for the "
            "same saturation throughput; on-wafer latency allows small "
            "SRAM buffers",
            f"netsim engine: {netsim_engine_tag()}",
        ],
    )


def run(fast: bool = True) -> ExperimentResult:
    return merge([run_unit(u, fast=fast) for u in units(fast)], fast=fast)
