"""Fig 8: internal/external bandwidth utilization at max feasible radix.

The paper visualizes per-edge utilization heatmaps for SerDes @3200 and
Optical I/O @6400 at their respective maximum radixes; the SerDes design
is externally bottlenecked (internal mesh mostly idle) while the
Optical design saturates interior edges. We report utilization
percentiles of the mapped edge loads.
"""

from __future__ import annotations

import numpy as np

from repro.core.design import cached_mapping, io_style_for
from repro.core.explorer import max_feasible_design
from repro.experiments.base import ExperimentResult
from repro.experiments.common import mapping_restarts
from repro.mapping.routing import USABLE_EDGE_CAPACITY_FRACTION
from repro.tech.external_io import OPTICAL_IO, SERDES_IO
from repro.tech.wsi import SI_IF, SI_IF_OVERDRIVEN


def _edge_utilizations(
    design, capacity_fraction: float = USABLE_EDGE_CAPACITY_FRACTION
) -> np.ndarray:
    mapping = design.mapping
    edge_mm = max(n.chiplet.side_mm for n in design.topology.nodes)
    capacity_channels = (
        capacity_fraction
        * design.wsi.edge_capacity_gbps(edge_mm)
        / design.topology.port_bandwidth_gbps
    )
    loads = np.concatenate(
        [mapping.loads.h.ravel(), mapping.loads.v.ravel()]
    ).astype(float)
    return loads / capacity_channels


def run(fast: bool = True) -> ExperimentResult:
    side = 200.0 if fast else 300.0
    configs = (
        ("SerDes @3200", SI_IF, SERDES_IO),
        ("Optical @6400", SI_IF_OVERDRIVEN, OPTICAL_IO),
    )
    rows = []
    for label, wsi, ext in configs:
        design = max_feasible_design(
            side,
            wsi=wsi,
            external_io=ext,
            mapping_restarts=mapping_restarts(fast),
        )
        if design.mapping is None:
            design_mapping = cached_mapping(design.topology, io_style_for(ext))
            del design_mapping
        util = _edge_utilizations(design)
        ext_util = (
            ext.required_gbps(design.n_ports, design.topology.port_bandwidth_gbps)
            / ext.capacity_gbps(side)
        )
        rows.append(
            (
                label,
                design.n_ports,
                round(float(util.mean()) * 100, 1),
                round(float(np.percentile(util, 95)) * 100, 1),
                round(float(util.max()) * 100, 1),
                round(ext_util * 100, 1),
            )
        )
    return ExperimentResult(
        experiment_id="fig08",
        title=f"Bandwidth utilization at max feasible radix ({side:g}mm)",
        headers=(
            "configuration",
            "ports",
            "internal util mean %",
            "internal util p95 %",
            "internal util max %",
            "external util %",
        ),
        rows=rows,
        notes=[
            "paper: SerDes design leaves the internal mesh under-utilized "
            "(external bottleneck); Optical @6400 saturates interior edges",
        ],
    )
