"""Shared implementation of the power-breakdown figures (10, 11, 13)."""

from __future__ import annotations

from repro.core.explorer import max_feasible_design
from repro.experiments.base import ExperimentResult
from repro.experiments.common import mapping_restarts, substrates
from repro.tech.external_io import AREA_IO, OPTICAL_IO, SERDES_IO
from repro.tech.wsi import WSITechnology


def power_breakdown_figure(
    experiment_id: str, wsi: WSITechnology, fast: bool, paper_note: str
) -> ExperimentResult:
    """Power breakdown at each technology's maximum feasible radix."""
    rows = []
    for side in substrates(fast):
        for ext in (SERDES_IO, OPTICAL_IO, AREA_IO):
            design = max_feasible_design(
                side,
                wsi=wsi,
                external_io=ext,
                mapping_restarts=mapping_restarts(fast),
            )
            if design is None:
                rows.append((side, ext.name, 0, 0.0, 0.0, 0.0, 0.0, 0.0))
                continue
            power = design.power
            rows.append(
                (
                    side,
                    ext.name,
                    design.n_ports,
                    round(power.ssc_core_w / 1000, 2),
                    round(power.internal_io_w / 1000, 2),
                    round(power.external_io_w / 1000, 2),
                    round(power.total_w / 1000, 2),
                    round(power.io_fraction * 100, 1),
                )
            )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=(
            "Power breakdown at max feasible radix "
            f"({wsi.name}, {wsi.bandwidth_density_gbps_per_mm:g} Gbps/mm)"
        ),
        headers=(
            "substrate mm",
            "external I/O",
            "ports",
            "SSC core kW",
            "internal I/O kW",
            "external I/O kW",
            "total kW",
            "I/O share %",
        ),
        rows=rows,
        notes=[paper_note],
    )
