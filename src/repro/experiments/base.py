"""Shared experiment-result structure and registry."""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

#: Experiment ids in paper order.
EXPERIMENT_IDS = (
    "fig01",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig21",
    "fig22",
    "fig23",
    "fig24",
    "fig25",
    "fig26",
    "fig27",
    "fig28",
    "tab03",
    "tab06",
    "tab07",
    "tab08",
    "tab09",
)


@dataclass
class ExperimentResult:
    """Rows/series reproducing one paper artifact."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Tuple]
    notes: List[str] = field(default_factory=list)

    def format_table(self) -> str:
        """Plain-text table in the style of the paper's artifacts."""
        columns = [str(h) for h in self.headers]
        str_rows = [[_fmt(cell) for cell in row] for row in self.rows]
        widths = [
            max(len(columns[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(columns[i])
            for i in range(len(columns))
        ]
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            "  ".join(c.ljust(w) for c, w in zip(columns, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in str_rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3g}" if abs(cell) < 1000 else f"{cell:,.0f}"
    return str(cell)


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """The ``run`` callable of an experiment module, by id."""
    if experiment_id not in EXPERIMENT_IDS:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; known: {EXPERIMENT_IDS}"
        )
    module = importlib.import_module(f"repro.experiments.{experiment_id}")
    return module.run


def available_experiments() -> Tuple[str, ...]:
    return EXPERIMENT_IDS
