"""Shared experiment-result structure, work-unit protocol, and registry.

Every experiment module exposes ``run(fast: bool = True) ->
ExperimentResult``. Modules whose work decomposes into independent
sweep points additionally implement the **work-unit protocol** used by
the parallel scheduler (:mod:`repro.experiments.scheduler`):

* ``units(fast) -> list`` — picklable descriptors of independent work,
  in the exact order their rows appear in the final table;
* ``run_unit(unit, fast) -> partial`` — compute one unit in isolation
  (no shared mutable state with other units);
* ``merge(unit_results, fast) -> ExperimentResult`` — assemble the
  final table from per-unit partials, preserving unit order.

``run`` must equal ``merge([run_unit(u) for u in units()])`` so serial
and parallel execution produce identical tables. Hermeticity is the
unit author's job: reset any process-global state the computation
reads (the simulation figures call
:func:`repro.netsim.packet.reset_packet_ids`, because packet ids feed
spine selection) so a unit's result cannot depend on which units ran
before it in the same process. Modules without the protocol are
scheduled as a single opaque unit.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

#: Experiment ids in paper order.
EXPERIMENT_IDS = (
    "fig01",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig21",
    "fig22",
    "fig23",
    "fig24",
    "fig25",
    "fig26",
    "fig27",
    "fig28",
    "tab03",
    "tab06",
    "tab07",
    "tab08",
    "tab09",
)


@dataclass
class ExperimentResult:
    """Rows/series reproducing one paper artifact."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Tuple]
    notes: List[str] = field(default_factory=list)

    def format_table(self) -> str:
        """Plain-text table in the style of the paper's artifacts."""
        columns = [str(h) for h in self.headers]
        str_rows = [[_fmt(cell) for cell in row] for row in self.rows]
        widths = [
            max(len(columns[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(columns[i])
            for i in range(len(columns))
        ]
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            "  ".join(c.ljust(w) for c, w in zip(columns, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in str_rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (see :meth:`from_dict`)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentResult":
        """Inverse of :meth:`to_dict`; restores tuple rows/headers so a
        round-tripped result compares equal to the original."""
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            headers=tuple(payload["headers"]),
            rows=[tuple(row) for row in payload["rows"]],
            notes=list(payload["notes"]),
        )


def _fmt(cell) -> str:
    """Format one table cell.

    >>> _fmt(0.123456)
    '0.123'
    >>> _fmt(1234567.0)
    '1,234,567'
    >>> _fmt("SerDes")
    'SerDes'
    """
    if isinstance(cell, float):
        return f"{cell:.3g}" if abs(cell) < 1000 else f"{cell:,.0f}"
    return str(cell)


@dataclass(frozen=True)
class ExperimentSpec:
    """Schedulable handle on one experiment module.

    Carries only strings so it can cross process boundaries; the module
    is re-imported (and its unit list re-derived) wherever a unit runs.
    """

    experiment_id: str
    module_name: str

    @property
    def module(self):
        return importlib.import_module(self.module_name)

    @property
    def is_partitioned(self) -> bool:
        """Whether the module declares independent work units."""
        module = self.module
        return all(
            hasattr(module, attr) for attr in ("units", "run_unit", "merge")
        )

    def units(self, fast: bool = True) -> List[Any]:
        """Independent work units (a single opaque one if undeclared)."""
        if self.is_partitioned:
            return list(self.module.units(fast=fast))
        return [None]

    def run_unit(self, unit: Any, fast: bool = True) -> Any:
        """One unit's partial result (the full result if unpartitioned)."""
        if self.is_partitioned:
            return self.module.run_unit(unit, fast=fast)
        return self.module.run(fast=fast)

    def merge(self, unit_results: Sequence[Any], fast: bool = True) -> ExperimentResult:
        """Assemble the final table from unit partials, in unit order."""
        if self.is_partitioned:
            return self.module.merge(unit_results, fast=fast)
        return unit_results[0]

    def run(self, fast: bool = True) -> ExperimentResult:
        return self.module.run(fast=fast)


def get_spec(experiment_id: str) -> ExperimentSpec:
    """Registry lookup: the schedulable spec for a known experiment id."""
    if experiment_id not in EXPERIMENT_IDS:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; known: {EXPERIMENT_IDS}"
        )
    return ExperimentSpec(
        experiment_id=experiment_id,
        module_name=f"repro.experiments.{experiment_id}",
    )


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """The ``run`` callable of an experiment module, by id."""
    return get_spec(experiment_id).module.run


def available_experiments() -> Tuple[str, ...]:
    return EXPERIMENT_IDS
