"""Fig 28: maximum ports per cooling solution (after heterogeneity).

Paper claims: even air cooling supports ~8x a single TH-5's radix and
water cooling ~32x; multi-phase cooling is needed for the full benefit
at every wafer size.
"""

from __future__ import annotations

from repro.core.constraints import ConstraintLimits
from repro.core.explorer import clos_radix_candidates, max_chiplets_for
from repro.core.design import evaluate_design
from repro.core.hetero import apply_heterogeneity
from repro.experiments.base import ExperimentResult
from repro.experiments.common import mapping_restarts, substrates
from repro.tech.chiplet import tomahawk5
from repro.tech.cooling import AIR_COOLING, MULTIPHASE_COOLING, WATER_COOLING
from repro.tech.external_io import OPTICAL_IO
from repro.tech.wsi import SI_IF_OVERDRIVEN
from repro.topology.clos import folded_clos

COOLINGS = (AIR_COOLING, WATER_COOLING, MULTIPHASE_COOLING)
_COOLING_BY_NAME = {cooling.name: cooling for cooling in COOLINGS}


def units(fast: bool = True):
    """One unit per (substrate, cooling envelope) feasibility search."""
    return [
        (side, cooling.name)
        for side in substrates(fast)
        for cooling in COOLINGS
    ]


def run_unit(unit, fast: bool = True):
    side, cooling_name = unit
    cooling = _COOLING_BY_NAME[cooling_name]
    ssc = tomahawk5()
    best = 0
    for n_ports in clos_radix_candidates(ssc, max_chiplets_for(side, ssc)):
        design = evaluate_design(
            side,
            folded_clos(n_ports, ssc),
            SI_IF_OVERDRIVEN,
            OPTICAL_IO,
            limits=ConstraintLimits(),
            mapping_restarts=mapping_restarts(fast),
        )
        if not design.feasible:
            break
        hetero = apply_heterogeneity(design, leaf_split=4)
        if hetero.power_density_w_per_mm2 <= cooling.max_power_density_w_per_mm2:
            best = n_ports
    return [(side, cooling_name, best, round(best / ssc.radix, 1))]


def merge(unit_results, fast: bool = True) -> ExperimentResult:
    del fast
    return ExperimentResult(
        experiment_id="fig28",
        title="Max ports per cooling solution (heterogeneous design, @6400)",
        headers=("substrate mm", "cooling", "max ports", "x single TH-5"),
        rows=[row for rows in unit_results for row in rows],
        notes=[
            "paper: air ~8x, water ~32x a single TH-5 at 300mm; "
            "multi-phase recommended for full benefits",
        ],
    )


def run(fast: bool = True) -> ExperimentResult:
    return merge([run_unit(u, fast=fast) for u in units(fast)], fast=fast)
