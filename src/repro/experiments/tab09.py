"""Table IX: hyperscale DCN with WS spine switches vs TH-5 boxes.

Paper claims (16384 racks): 48 WS switches vs thousands of TH-5 boxes,
66 % fewer optical links, ~94 % less spine rack space, hop count 3 vs
5, worth millions of dollars.
"""

from __future__ import annotations

from repro.core.costs import compare_costs
from repro.core.use_cases import dcn_comparison
from repro.experiments.base import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    del fast
    rows = []
    notes = []
    for racks in (16384, 8192):
        comparison = dcn_comparison(racks=racks)
        rows.append(
            (
                racks,
                f"{comparison.ws_switches} / {comparison.baseline_switches}",
                f"{comparison.ws_cables} / {comparison.baseline_cables}",
                f"{comparison.ws_hops} / {comparison.baseline_hops}",
                f"{comparison.ws_rack_units} / {comparison.baseline_rack_units}",
                round(comparison.cable_reduction * 100, 1),
                round(comparison.bisection_bandwidth_gbps / 1000, 1),
            )
        )
        if racks == 16384:
            costs = compare_costs(comparison)
            low, high = costs.total_first_year_savings_usd
            notes.append(
                f"first-year savings at {racks} racks: "
                f"${low / 1e6:.0f}M-${high / 1e6:.0f}M "
                "(optics + colocation; paper: millions to hundreds of millions)"
            )
    notes.append(
        "paper: 48/4608 switches, 65536/163840 cables, 3/5 hops, "
        "960/18432 RU at 16384 racks (baseline switch count depends on "
        "the assumed TH-5 box configuration; our minimal full-bisection "
        "3-level Clos of 64x800G boxes needs 2560)"
    )
    return ExperimentResult(
        experiment_id="tab09",
        title="DCN spine: 48 WS switches vs TH-5 Clos (WS / baseline)",
        headers=(
            "racks",
            "switches",
            "cables",
            "hops",
            "RU",
            "cable reduction %",
            "bisection Tbps",
        ),
        rows=rows,
        notes=notes,
    )
