"""Fig 5: random mapping vs pairwise-exchange-optimized mapping.

Paper claim: the heuristic improves worst-case internal I/O bandwidth
per port by ~147.6 % over an unoptimized random mapping.
"""

from __future__ import annotations

import random

from repro.experiments.base import ExperimentResult
from repro.mapping.exchange import optimize_mapping
from repro.mapping.grid import grid_for
from repro.mapping.placement import initial_placement
from repro.mapping.routing import IOStyle, compute_edge_loads
from repro.topology.clos import folded_clos


def run(fast: bool = True) -> ExperimentResult:
    port_counts = (1024, 2048) if fast else (1024, 2048, 4096)
    rows = []
    improvements = []
    for n_ports in port_counts:
        topology = folded_clos(n_ports)
        grid = grid_for(topology.chiplet_count)
        random_loads = []
        for seed in range(3):
            placement = initial_placement(
                topology, grid, strategy="random", rng=random.Random(seed)
            )
            loads = compute_edge_loads(placement, IOStyle.PERIPHERY)
            random_loads.append(loads.max_edge_channels)
        random_worst = sum(random_loads) / len(random_loads)
        optimized = optimize_mapping(
            topology, grid, io_style=IOStyle.PERIPHERY, restarts=1
        )
        # Bandwidth per port is inversely proportional to the worst edge
        # load, so the improvement is the load ratio minus one.
        improvement = (random_worst / optimized.max_edge_channels - 1.0) * 100.0
        improvements.append(improvement)
        rows.append(
            (
                n_ports,
                round(random_worst, 1),
                optimized.max_edge_channels,
                round(improvement, 1),
            )
        )
    return ExperimentResult(
        experiment_id="fig05",
        title="Random vs optimized mapping (worst-edge channel load)",
        headers=(
            "switch radix",
            "random max-load (avg of 3 seeds)",
            "optimized max-load",
            "per-port BW improvement %",
        ),
        rows=rows,
        notes=[
            "paper: optimization improves worst-case internal I/O "
            "bandwidth per port by 147.6%",
            f"measured improvement range: "
            f"{min(improvements):.0f}%-{max(improvements):.0f}%",
        ],
    )
