"""Fig 12: maximum ports with InFO-SoW (12.8 Tbps/mm internal).

Paper claim: InFO-SoW achieves the same port counts as 6400 Gbps/mm
Si-IF (internal bandwidth is no longer the binding constraint).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.fig07 import run as run_fig07
from repro.tech.wsi import INFO_SOW


def run(fast: bool = True) -> ExperimentResult:
    result = run_fig07(fast=fast, wsi=INFO_SOW)
    return ExperimentResult(
        experiment_id="fig12",
        title=result.title,
        headers=result.headers,
        rows=result.rows,
        notes=[
            "paper: same max ports as 6400 Gbps/mm Si-IF "
            "(area/external-bandwidth limited)",
        ],
    )
