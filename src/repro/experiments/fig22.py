"""Fig 22: latency vs load with proprietary (destination-tag) routing.

Paper claim: removing the Layer-3 IP-table lookup at non-ingress SSCs
(RC 4 cycles -> 2 at ingress / 1 in transit) reduces zero-load latency
and raises saturation throughput by 11-14.5 %.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.common import sim_scale
from repro.netsim.config import RouterConfig
from repro.netsim.network import clos_network
from repro.netsim.sim import load_latency_sweep, saturation_throughput
from repro.netsim.traffic import make_pattern


def _factory(scale, routing_delay, ingress_delay):
    def build():
        config = RouterConfig(
            num_vcs=scale["num_vcs"],
            buffer_flits_per_port=scale["buffer_flits_per_port"],
            routing_delay=routing_delay,
            pipeline_delay=4,
        )
        return clos_network(
            f"fig22-rc{routing_delay}",
            scale["n_terminals"],
            scale["ssc_radix"],
            config,
            inter_switch_latency=1,
            io_latency=8,
            ingress_routing_delay=ingress_delay,
        )

    return build


def run(fast: bool = True) -> ExperimentResult:
    scale = sim_scale(fast)
    configs = (
        ("baseline L3 lookup (RC=4)", _factory(scale, 4, None)),
        ("proprietary routing (RC=1, ingress 2)", _factory(scale, 1, 2)),
    )
    rows = []
    saturations = {}
    for label, factory in configs:
        points = load_latency_sweep(
            factory,
            lambda n: make_pattern("uniform", n),
            loads=scale["loads"],
            warmup_cycles=scale["warmup_cycles"],
            measure_cycles=scale["measure_cycles"],
        )
        for point in points:
            rows.append(
                (
                    label,
                    point.offered_load,
                    round(point.avg_latency_cycles, 1),
                    round(point.accepted_load, 3),
                    point.saturated,
                )
            )
        saturations[label] = saturation_throughput(
            factory,
            lambda n: make_pattern("uniform", n),
            warmup_cycles=scale["warmup_cycles"],
            measure_cycles=scale["measure_cycles"],
        )
    labels = list(saturations)
    gain = (saturations[labels[1]] / saturations[labels[0]] - 1.0) * 100.0
    return ExperimentResult(
        experiment_id="fig22",
        title="Latency vs load: proprietary routing vs L3 lookup",
        headers=("config", "offered load", "avg latency cycles", "accepted", "saturated"),
        rows=rows,
        notes=[
            f"saturation throughput gain from proprietary routing: "
            f"{gain:+.1f}% (paper: +11% to +14.5%)",
        ],
    )
