"""Fig 22: latency vs load with proprietary (destination-tag) routing.

Paper claim: removing the Layer-3 IP-table lookup at non-ingress SSCs
(RC 4 cycles -> 2 at ingress / 1 in transit) reduces zero-load latency
and raises saturation throughput by 11-14.5 %.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.common import sim_scale
from repro.experiments.telemetry_io import telemetry_sink, write_point_telemetry
from repro.netsim.config import RouterConfig
from repro.netsim.fast_core import netsim_engine_tag
from repro.netsim.network import clos_network
from repro.netsim.packet import reset_packet_ids
from repro.netsim.sim import load_latency_sweep, saturation_throughput
from repro.netsim.traffic import make_pattern

#: (label, routing delay, ingress routing delay) — baseline first.
CONFIGS = (
    ("baseline L3 lookup (RC=4)", 4, None),
    ("proprietary routing (RC=1, ingress 2)", 1, 2),
)


def _factory(scale, routing_delay, ingress_delay):
    def build():
        config = RouterConfig(
            num_vcs=scale["num_vcs"],
            buffer_flits_per_port=scale["buffer_flits_per_port"],
            routing_delay=routing_delay,
            pipeline_delay=4,
        )
        return clos_network(
            f"fig22-rc{routing_delay}",
            scale["n_terminals"],
            scale["ssc_radix"],
            config,
            inter_switch_latency=1,
            io_latency=8,
            ingress_routing_delay=ingress_delay,
        )

    return build


def units(fast: bool = True):
    """One unit per routing configuration (sweep + saturation each)."""
    del fast
    return [label for label, _, _ in CONFIGS]


def run_unit(unit, fast: bool = True):
    label, routing_delay, ingress_delay = next(
        config for config in CONFIGS if config[0] == unit
    )
    # Packet ids feed the Clos spine selection, so each unit must start
    # from a fresh counter or serial and parallel runs would diverge.
    reset_packet_ids()
    scale = sim_scale(fast)
    factory = _factory(scale, routing_delay, ingress_delay)

    def point_telemetry(load):
        telemetry = telemetry_sink()
        if telemetry is not None:
            sweep_sinks.append((load, telemetry))
        return telemetry

    sweep_sinks = []
    points = load_latency_sweep(
        factory,
        lambda n: make_pattern("uniform", n),
        loads=scale["loads"],
        warmup_cycles=scale["warmup_cycles"],
        measure_cycles=scale["measure_cycles"],
        telemetry_factory=point_telemetry,
    )
    for load, telemetry in sweep_sinks:
        write_point_telemetry(
            telemetry, "fig22", f"rc{routing_delay}_load{load:.2f}"
        )
    rows = [
        (
            label,
            point.offered_load,
            round(point.avg_latency_cycles, 1),
            round(point.accepted_load, 3),
            point.saturated,
        )
        for point in points
    ]
    telemetry = telemetry_sink()
    saturation = saturation_throughput(
        factory,
        lambda n: make_pattern("uniform", n),
        warmup_cycles=scale["warmup_cycles"],
        measure_cycles=scale["measure_cycles"],
        telemetry=telemetry,
    )
    write_point_telemetry(telemetry, "fig22", f"rc{routing_delay}_saturation")
    return {"rows": rows, "saturation": saturation}


def merge(unit_results, fast: bool = True) -> ExperimentResult:
    del fast
    baseline, proprietary = unit_results
    gain = (proprietary["saturation"] / baseline["saturation"] - 1.0) * 100.0
    return ExperimentResult(
        experiment_id="fig22",
        title="Latency vs load: proprietary routing vs L3 lookup",
        headers=("config", "offered load", "avg latency cycles", "accepted", "saturated"),
        rows=baseline["rows"] + proprietary["rows"],
        notes=[
            f"saturation throughput gain from proprietary routing: "
            f"{gain:+.1f}% (paper: +11% to +14.5%)",
            f"netsim engine: {netsim_engine_tag()}",
        ],
    )


def run(fast: bool = True) -> ExperimentResult:
    return merge([run_unit(u, fast=fast) for u in units(fast)], fast=fast)
