"""Fig 23: waferscale switch vs equivalent switch network, synthetic
traffic.

Paper claims: the waferscale switch's zero-load latency is ~38 % lower
(37 vs 60 cycles) with equal or higher saturation throughput on every
pattern except asymmetric (whose saturation is destination-limited).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.common import sim_scale
from repro.netsim.network import baseline_switch_network, waferscale_clos_network
from repro.netsim.sim import load_latency_sweep, saturation_throughput
from repro.netsim.traffic import make_pattern

PATTERNS_FAST = ("uniform", "transpose")
PATTERNS_FULL = ("uniform", "transpose", "bit-complement", "shuffle", "asymmetric")


def _factories(scale):
    common = dict(
        n_terminals=scale["n_terminals"],
        ssc_radix=scale["ssc_radix"],
        num_vcs=scale["num_vcs"],
        buffer_flits_per_port=scale["buffer_flits_per_port"],
    )
    return (
        ("waferscale", lambda: waferscale_clos_network(**common)),
        ("switch-network", lambda: baseline_switch_network(**common)),
    )


def run(fast: bool = True) -> ExperimentResult:
    scale = sim_scale(fast)
    patterns = PATTERNS_FAST if fast else PATTERNS_FULL
    rows = []
    zero_load = {}
    for pattern_name in patterns:
        for label, factory in _factories(scale):
            points = load_latency_sweep(
                factory,
                lambda n: make_pattern(pattern_name, n),
                loads=scale["loads"][:3],
                warmup_cycles=scale["warmup_cycles"],
                measure_cycles=scale["measure_cycles"],
            )
            throughput = saturation_throughput(
                factory,
                lambda n: make_pattern(pattern_name, n),
                warmup_cycles=scale["warmup_cycles"],
                measure_cycles=scale["measure_cycles"],
            )
            low_load_latency = points[0].avg_latency_cycles
            if pattern_name == "uniform":
                zero_load[label] = low_load_latency
            rows.append(
                (
                    pattern_name,
                    label,
                    round(low_load_latency, 1),
                    round(throughput, 3),
                )
            )
    notes = [
        "paper: zero-load latency 37 (WS) vs 60 (network) cycles; equal "
        "or higher WS saturation on all patterns but asymmetric",
    ]
    if "waferscale" in zero_load and "switch-network" in zero_load:
        reduction = (
            1.0 - zero_load["waferscale"] / zero_load["switch-network"]
        ) * 100.0
        notes.append(
            f"measured low-load latency reduction (uniform): {reduction:.0f}% "
            "(paper: 38%)"
        )
    return ExperimentResult(
        experiment_id="fig23",
        title="WS switch vs equivalent switch network (synthetic traffic)",
        headers=(
            "pattern",
            "network",
            "low-load latency cycles",
            "saturation throughput",
        ),
        rows=rows,
        notes=notes,
    )
