"""Fig 23: waferscale switch vs equivalent switch network, synthetic
traffic.

Paper claims: the waferscale switch's zero-load latency is ~38 % lower
(37 vs 60 cycles) with equal or higher saturation throughput on every
pattern except asymmetric (whose saturation is destination-limited).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.common import sim_scale
from repro.experiments.telemetry_io import telemetry_sink, write_point_telemetry
from repro.netsim.fast_core import netsim_engine_tag
from repro.netsim.network import baseline_switch_network, waferscale_clos_network
from repro.netsim.packet import reset_packet_ids
from repro.netsim.sim import load_latency_sweep, saturation_throughput
from repro.netsim.traffic import make_pattern

PATTERNS_FAST = ("uniform", "transpose")
PATTERNS_FULL = ("uniform", "transpose", "bit-complement", "shuffle", "asymmetric")

NETWORK_LABELS = ("waferscale", "switch-network")


def _factory(scale, label):
    common = dict(
        n_terminals=scale["n_terminals"],
        ssc_radix=scale["ssc_radix"],
        num_vcs=scale["num_vcs"],
        buffer_flits_per_port=scale["buffer_flits_per_port"],
    )
    if label == "waferscale":
        return lambda: waferscale_clos_network(**common)
    return lambda: baseline_switch_network(**common)


def units(fast: bool = True):
    """One unit per (traffic pattern, network) simulation pair."""
    patterns = PATTERNS_FAST if fast else PATTERNS_FULL
    return [
        (pattern_name, label)
        for pattern_name in patterns
        for label in NETWORK_LABELS
    ]


def run_unit(unit, fast: bool = True):
    pattern_name, label = unit
    # Packet ids feed the Clos spine selection, so each unit must start
    # from a fresh counter or serial and parallel runs would diverge.
    reset_packet_ids()
    scale = sim_scale(fast)
    factory = _factory(scale, label)
    points = load_latency_sweep(
        factory,
        lambda n: make_pattern(pattern_name, n),
        loads=scale["loads"][:3],
        warmup_cycles=scale["warmup_cycles"],
        measure_cycles=scale["measure_cycles"],
    )
    telemetry = telemetry_sink()
    throughput = saturation_throughput(
        factory,
        lambda n: make_pattern(pattern_name, n),
        warmup_cycles=scale["warmup_cycles"],
        measure_cycles=scale["measure_cycles"],
        telemetry=telemetry,
    )
    write_point_telemetry(
        telemetry, "fig23", f"{pattern_name}_{label}_saturation"
    )
    low_load_latency = points[0].avg_latency_cycles
    return {
        "row": (
            pattern_name,
            label,
            round(low_load_latency, 1),
            round(throughput, 3),
        ),
        "pattern": pattern_name,
        "label": label,
        "low_load_latency": low_load_latency,
    }


def merge(unit_results, fast: bool = True) -> ExperimentResult:
    del fast
    zero_load = {
        partial["label"]: partial["low_load_latency"]
        for partial in unit_results
        if partial["pattern"] == "uniform"
    }
    notes = [
        "paper: zero-load latency 37 (WS) vs 60 (network) cycles; equal "
        "or higher WS saturation on all patterns but asymmetric",
        f"netsim engine: {netsim_engine_tag()}",
    ]
    if "waferscale" in zero_load and "switch-network" in zero_load:
        reduction = (
            1.0 - zero_load["waferscale"] / zero_load["switch-network"]
        ) * 100.0
        notes.append(
            f"measured low-load latency reduction (uniform): {reduction:.0f}% "
            "(paper: 38%)"
        )
    return ExperimentResult(
        experiment_id="fig23",
        title="WS switch vs equivalent switch network (synthetic traffic)",
        headers=(
            "pattern",
            "network",
            "low-load latency cycles",
            "saturation throughput",
        ),
        rows=[partial["row"] for partial in unit_results],
        notes=notes,
    )


def run(fast: bool = True) -> ExperimentResult:
    return merge([run_unit(u, fast=fast) for u in units(fast)], fast=fast)
