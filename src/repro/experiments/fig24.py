"""Fig 24: waferscale switch vs switch network on NERSC-like traces.

Paper claims: saturation throughput of the WS switch is +116.7 %
(LULESH), +16.7 % (MOCFE), +21.4 % (MultiGrid), +15.2 % (Nekbone) over
the TH-5 network baseline. We replay synthetic traces with each
mini-app's communication signature (see `repro.netsim.trace`) at
increasing time compression and report the highest sustained
throughput.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.common import sim_scale
from repro.experiments.telemetry_io import telemetry_sink, write_point_telemetry
from repro.netsim.fast_core import netsim_engine_tag
from repro.netsim.network import baseline_switch_network, waferscale_clos_network
from repro.netsim.packet import reset_packet_ids
from repro.netsim.trace import (
    SyntheticTraceSpec,
    duplicate_trace,
    synthetic_nersc_trace,
    replay_trace,
)

TRACES_FAST = ("lulesh", "nekbone")
TRACES_FULL = ("lulesh", "mocfe", "multigrid", "nekbone")

NETWORK_LABELS = ("waferscale", "switch-network")


def _sustained_throughput(
    network_factory, events, n_terminals, compressions, point_slug=None
):
    """Highest delivered flit rate across compression levels."""
    best = 0.0
    for compression in compressions:
        network = network_factory()
        telemetry = telemetry_sink()
        stats = replay_trace(
            network, events, compression=compression, telemetry=telemetry
        )
        if point_slug is not None:
            write_point_telemetry(
                telemetry, "fig24", f"{point_slug}_c{compression:g}"
            )
        cycles = max(stats.measure_end, 1)
        throughput = stats.flits_delivered / cycles / n_terminals
        best = max(best, throughput)
    return best


def units(fast: bool = True):
    """One unit per (trace, network) replay; merge pairs them up."""
    traces = TRACES_FAST if fast else TRACES_FULL
    return [(trace_name, label) for trace_name in traces for label in NETWORK_LABELS]


def run_unit(unit, fast: bool = True):
    trace_name, label = unit
    # Packet ids feed the Clos spine selection, so each unit must start
    # from a fresh counter or serial and parallel runs would diverge.
    reset_packet_ids()
    scale = sim_scale(fast)
    n = scale["n_terminals"]
    trace_nodes = n // 2  # traces are generated at half scale then duplicated
    compressions = (4.0,) if fast else (2.0, 8.0, 32.0)
    # Trace generation is seeded, so regenerating per unit is exact.
    spec = SyntheticTraceSpec(n_nodes=trace_nodes, iterations=2 if fast else 4)
    events = duplicate_trace(
        synthetic_nersc_trace(trace_name, spec), copies=2,
        nodes_per_copy=trace_nodes,
    )
    common = dict(
        n_terminals=n,
        ssc_radix=scale["ssc_radix"],
        num_vcs=scale["num_vcs"],
        buffer_flits_per_port=scale["buffer_flits_per_port"],
    )
    if label == "waferscale":
        factory = lambda: waferscale_clos_network(**common)  # noqa: E731
    else:
        factory = lambda: baseline_switch_network(**common)  # noqa: E731
    throughput = _sustained_throughput(
        factory, events, n, compressions, point_slug=f"{trace_name}_{label}"
    )
    return {"trace": trace_name, "label": label, "throughput": throughput}


def merge(unit_results, fast: bool = True) -> ExperimentResult:
    traces = TRACES_FAST if fast else TRACES_FULL
    by_trace = {trace_name: {} for trace_name in traces}
    for partial in unit_results:
        by_trace[partial["trace"]][partial["label"]] = partial["throughput"]
    rows = []
    for trace_name in traces:
        results = by_trace[trace_name]
        gain = (
            results["waferscale"] / max(results["switch-network"], 1e-9) - 1.0
        ) * 100.0
        rows.append(
            (
                trace_name,
                round(results["waferscale"], 4),
                round(results["switch-network"], 4),
                round(gain, 1),
            )
        )
    return ExperimentResult(
        experiment_id="fig24",
        title="NERSC-like traces: sustained throughput, WS vs network",
        headers=(
            "trace",
            "WS throughput",
            "network throughput",
            "WS gain %",
        ),
        rows=rows,
        notes=[
            "paper gains: LULESH +116.7%, MOCFE +16.7%, MultiGrid +21.4%, "
            "Nekbone +15.2%",
            "traces are synthetic equivalents with each mini-app's "
            "communication signature (originals not redistributable)",
            f"netsim engine: {netsim_engine_tag()}",
        ],
    )


def run(fast: bool = True) -> ExperimentResult:
    return merge([run_unit(u, fast=fast) for u in units(fast)], fast=fast)
