"""Experiment reproductions: one module per paper table/figure.

Every module exposes ``run(fast: bool = True) -> ExperimentResult``;
``fast`` shrinks simulation sizes for test suites while the benchmark
harness runs the full configurations. ``repro.experiments.runner`` can
execute any subset and print the paper-style tables.
"""

from repro.experiments.base import ExperimentResult, available_experiments, get_experiment

__all__ = ["ExperimentResult", "available_experiments", "get_experiment"]
