"""Fig 19: available internal bandwidth per port, 256 vs 128-port SSCs.

Paper claim (300 mm @3200): with 256-port SSCs only the 2048-port
system meets the 200 Gbps/port requirement (4096/8192 violate it); with
deradixed 128-port SSCs the 4096-port system meets it.
"""

from __future__ import annotations

from repro.core.design import cached_mapping, io_style_for
from repro.experiments.base import ExperimentResult
from repro.experiments.common import mapping_restarts
from repro.mapping.routing import available_bandwidth_per_port_gbps
from repro.tech.chiplet import tomahawk5
from repro.tech.external_io import OPTICAL_IO
from repro.tech.wsi import SI_IF
from repro.topology.clos import folded_clos


def run(fast: bool = True) -> ExperimentResult:
    side = 300.0
    max_chiplets = int(side * side // tomahawk5().area_mm2)
    system_radixes = (1024, 2048) if fast else (2048, 4096, 8192)
    rows = []
    for factor in (1, 2):
        ssc = tomahawk5().deradixed(factor)
        for n_ports in system_radixes:
            chiplets = 3 * n_ports // ssc.radix
            if chiplets > max_chiplets:
                rows.append(
                    (ssc.radix, n_ports, chiplets, "-", "exceeds area")
                )
                continue
            topology = folded_clos(n_ports, ssc)
            mapping = cached_mapping(
                topology,
                io_style_for(OPTICAL_IO),
                restarts=mapping_restarts(fast),
            )
            available = available_bandwidth_per_port_gbps(
                mapping.loads,
                SI_IF.edge_capacity_gbps(ssc.side_mm),
                topology.port_bandwidth_gbps,
            )
            verdict = "meets 200G" if available >= 200.0 else "VIOLATES 200G"
            rows.append(
                (ssc.radix, n_ports, chiplets, round(available, 1), verdict)
            )
    return ExperimentResult(
        experiment_id="fig19",
        title="Available internal I/O bandwidth per port (300mm @3200)",
        headers=(
            "SSC radix",
            "system radix",
            "chiplets",
            "available Gbps/port",
            "verdict",
        ),
        rows=rows,
        notes=[
            "paper: 256-port SSCs meet 200G only at 2048; 128-port SSCs "
            "meet it at 4096",
        ],
    )
