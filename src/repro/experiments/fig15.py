"""Fig 15: commodity switch power vs radix, normalized to 5 nm.

Paper claim: Tomahawk and TeraLynx non-I/O powers, normalized with
Stillmaker-Baas process scaling, track a quadratic model in radix.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.tech.data import TERALYNX_SERIES, TOMAHAWK_SERIES
from repro.tech.power import quadratic_power_fit
from repro.tech.process import normalize_power_to_node
from repro.units import io_power_watts


def _non_io_power_w(gen) -> float:
    """Reported power minus I/O power at 2 pJ/bit (the paper's method)."""
    io_power = io_power_watts(gen.total_bandwidth_tbps * 1000.0, 2.0)
    return max(gen.reported_power_w - io_power, 1.0)


def run(fast: bool = True) -> ExperimentResult:
    del fast
    rows = []
    fits = []
    for series_name, series in (
        ("Tomahawk", TOMAHAWK_SERIES),
        ("TeraLynx", TERALYNX_SERIES),
    ):
        radixes = []
        normalized = []
        for gen in series:
            power = normalize_power_to_node(
                _non_io_power_w(gen), gen.process_node_nm, 5
            )
            radixes.append(gen.radix)
            normalized.append(power)
            rows.append(
                (
                    series_name,
                    gen.name,
                    gen.radix,
                    gen.process_node_nm,
                    round(_non_io_power_w(gen), 1),
                    round(power, 1),
                )
            )
        coefficient, rms = quadratic_power_fit(radixes, normalized)
        fits.append((series_name, coefficient, rms))
        for gen in series:
            rows.append(
                (
                    f"{series_name}-fit",
                    f"a*k^2 (a={coefficient:.4f})",
                    gen.radix,
                    5,
                    "",
                    round(coefficient * gen.radix**2, 1),
                )
            )
    return ExperimentResult(
        experiment_id="fig15",
        title="Normalized non-I/O switch power vs radix + quadratic fits",
        headers=(
            "series",
            "part",
            "radix",
            "node nm",
            "non-I/O W (reported)",
            "normalized to 5nm W",
        ),
        rows=rows,
        notes=[
            f"{name}: quadratic fit rms relative error {rms * 100:.0f}% "
            "(paper: power tracks quadratic scaling)"
            for name, _, rms in fits
        ],
    )
