"""Fig 18: deradixing at 6400 Gbps/mm — counterproductive where the
internal bandwidth is already sufficient.

Paper claim: at 6400 Gbps/mm the baseline 256-port SSC already achieves
the area-limited maximum, so deradixing only reduces achievable ports.
"""

from __future__ import annotations

from repro.experiments import fig17
from repro.experiments.base import ExperimentResult
from repro.tech.wsi import SI_IF_OVERDRIVEN


def units(fast: bool = True):
    """Same (substrate, deradix factor) grid as fig17, at 6400 Gbps/mm."""
    return fig17.units(fast)


def run_unit(unit, fast: bool = True):
    return fig17.unit_rows(unit, fast=fast, wsi=SI_IF_OVERDRIVEN)


def merge(unit_results, fast: bool = True) -> ExperimentResult:
    del fast
    base = fig17._result(
        [row for rows in unit_results for row in rows], SI_IF_OVERDRIVEN
    )
    return ExperimentResult(
        experiment_id="fig18",
        title=base.title,
        headers=base.headers,
        rows=base.rows,
        notes=[
            "paper @6400: internal bandwidth already sufficient; "
            "deradixing reduces max ports (area bound)",
        ],
    )


def run(fast: bool = True) -> ExperimentResult:
    return merge([run_unit(u, fast=fast) for u in units(fast)], fast=fast)
