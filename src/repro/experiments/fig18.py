"""Fig 18: deradixing at 6400 Gbps/mm — counterproductive where the
internal bandwidth is already sufficient.

Paper claim: at 6400 Gbps/mm the baseline 256-port SSC already achieves
the area-limited maximum, so deradixing only reduces achievable ports.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.fig17 import run as run_fig17
from repro.tech.wsi import SI_IF_OVERDRIVEN


def run(fast: bool = True) -> ExperimentResult:
    result = run_fig17(fast=fast, wsi=SI_IF_OVERDRIVEN)
    return ExperimentResult(
        experiment_id="fig18",
        title=result.title,
        headers=result.headers,
        rows=result.rows,
        notes=[
            "paper @6400: internal bandwidth already sufficient; "
            "deradixing reduces max ports (area bound)",
        ],
    )
