"""Recorded per-unit wall times driving cost-aware dispatch.

The scheduler dispatches expensive work units first so a big netsim
unit never starts last and strands the pool behind it (longest-
processing-time-first is within 4/3 of optimal makespan for identical
machines; dispatch order is the whole scheduling knob we have). The
cost of a unit is whatever the last run measured: every ``--profile``
pass and every scheduled run records per-unit wall seconds here, keyed
by the unit label (``"fig21[0]"``), persisted as one JSON book under
the cache root so costs survive across runs and are shared with the
shard coordinator.

Units never seen before fall back to a coarse prior: the simulation
figures (fig21–fig24) run the cycle-accurate netsim and dominate every
sweep, everything else is analytical-model work orders of magnitude
cheaper. The exact numbers do not matter — only the ordering does, and
a wrong prior costs at most one badly-ordered first run.

>>> book = CostBook(path=None)
>>> book.get("fig21[0]") > book.get("fig08[0]")
True
>>> book.record("fig08[0]", 12.5)
>>> book.get("fig08[0]")
12.5
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

from repro.paths import cache_root

#: File name of the cost book inside the cache root.
COST_BOOK_NAME = "unit_costs.json"

#: Prior for a never-measured simulation unit (fig21–fig24 drive the
#: cycle-accurate netsim; tens of seconds each in full mode).
SIM_UNIT_PRIOR_S = 5.0

#: Prior for a never-measured analytical unit (sub-second typically).
ANALYTICAL_UNIT_PRIOR_S = 0.5

#: Experiment-id prefixes whose units run the cycle-accurate simulator.
_SIM_PREFIXES = ("fig21", "fig22", "fig23", "fig24")


def _default_cost(label: str) -> float:
    if label.startswith(_SIM_PREFIXES):
        return SIM_UNIT_PRIOR_S
    return ANALYTICAL_UNIT_PRIOR_S


class CostBook:
    """Load/record/persist per-unit wall seconds.

    ``path=None`` keeps the book in memory only (doctests, callers that
    must not touch the cache root). Otherwise the book lives at
    ``<cache root>/unit_costs.json`` and :meth:`save` writes it
    atomically (write-to-temp + rename), so concurrent runs can race on
    the file without corrupting it — last writer wins, which is fine
    for a hint.
    """

    def __init__(self, path: Optional[Path] = ...):  # type: ignore[assignment]
        if path is ...:
            path = cache_root() / COST_BOOK_NAME
        self.path = path
        self._costs: Dict[str, float] = {}
        self._dirty = False
        if path is not None and path.is_file():
            try:
                raw = json.loads(path.read_text())
                self._costs = {
                    str(k): float(v)
                    for k, v in raw.get("costs", {}).items()
                }
            except (OSError, ValueError):
                self._costs = {}

    def get(self, label: str) -> float:
        """Estimated wall seconds for the unit with this label."""
        cost = self._costs.get(label)
        if cost is not None:
            return cost
        return _default_cost(label)

    def record(self, label: str, seconds: float) -> None:
        """Record an observed wall time (overwrites the prior estimate)."""
        self._costs[label] = round(float(seconds), 6)
        self._dirty = True

    def save(self) -> None:
        """Persist atomically; a failed write never corrupts the book."""
        if self.path is None or not self._dirty:
            return
        payload = json.dumps({"costs": self._costs}, sort_keys=True)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.path.parent), suffix=".tmp"
            )
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, self.path)
            self._dirty = False
        except OSError:
            pass
