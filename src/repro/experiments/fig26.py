"""Fig 26: mapped Clos vs physical Clos (ports and iso-radix power).

Paper claims: a physically wired Clos always reaches a lower radix than
the mapped Clos (dedicated links consume placement area), and burns
~10 % more power at iso-radix.
"""

from __future__ import annotations

from repro.core.design import evaluate_design
from repro.core.explorer import max_feasible_design
from repro.core.physical_clos import evaluate_physical_clos, max_physical_clos_ports
from repro.topology.clos import folded_clos
from repro.experiments.base import ExperimentResult
from repro.experiments.common import mapping_restarts
from repro.tech.external_io import OPTICAL_IO
from repro.tech.wsi import SI_IF, WSITechnology
from repro.tech.wsi import INFO_SOW


def _high_density_wsi() -> WSITechnology:
    """The paper's 12.8 Tbps/mm comparison point (InFO-SoW-class)."""
    return INFO_SOW


_WSI_BY_NAME = {SI_IF.name: SI_IF, INFO_SOW.name: INFO_SOW}


def units(fast: bool = True):
    """One unit per WSI technology comparison point."""
    del fast
    return [SI_IF.name, _high_density_wsi().name]


def run_unit(unit, fast: bool = True):
    wsi = _WSI_BY_NAME[unit]
    side = 200.0 if fast else 300.0
    restarts = mapping_restarts(fast)
    mapped = max_feasible_design(
        side,
        wsi=wsi,
        external_io=OPTICAL_IO,
        mapping_restarts=restarts,
    )
    physical_ports = max_physical_clos_ports(side, wsi, OPTICAL_IO)
    row = (
        f"{wsi.bandwidth_density_gbps_per_mm:g} Gbps/mm",
        mapped.n_ports if mapped else 0,
        physical_ports,
    )
    power_notes = []
    # Iso-radix power comparison at the physical Clos's radix.
    if physical_ports and mapped:
        iso = min(physical_ports, mapped.n_ports)
        physical = evaluate_physical_clos(side, iso, wsi, OPTICAL_IO)
        mapped_iso = evaluate_design(
            side,
            folded_clos(iso),
            wsi,
            OPTICAL_IO,
            mapping_restarts=restarts,
        )
        overhead = physical.power.total_w / mapped_iso.power.total_w - 1.0
        power_notes.append(
            f"{wsi.bandwidth_density_gbps_per_mm:g} Gbps/mm iso-radix "
            f"(N={iso}) power overhead of physical Clos: "
            f"{overhead * 100:+.0f}% (paper: ~+10%)"
        )
    return {"row": row, "power_notes": power_notes}


def merge(unit_results, fast: bool = True) -> ExperimentResult:
    side = 200.0 if fast else 300.0
    return ExperimentResult(
        experiment_id="fig26",
        title=f"Mapped Clos vs physical Clos at {side:g}mm (Optical I/O)",
        headers=("internal BW", "mapped Clos ports", "physical Clos ports"),
        rows=[partial["row"] for partial in unit_results],
        notes=[
            "paper: physical Clos always reaches a lower radix than "
            "mapped Clos",
            *(
                note
                for partial in unit_results
                for note in partial["power_notes"]
            ),
        ],
    )


def run(fast: bool = True) -> ExperimentResult:
    return merge([run_unit(u, fast=fast) for u in units(fast)], fast=fast)
