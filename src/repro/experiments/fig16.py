"""Fig 16: power reduction from the heterogeneous switch design.

Paper claims: 30.8 % total power reduction at 300 mm (33.5 % at smaller
substrates); the optimized 300 mm design's power density drops from
0.69 to 0.48 W/mm2, inside the water-cooling envelope.
"""

from __future__ import annotations

from repro.core.explorer import max_feasible_design
from repro.core.hetero import apply_heterogeneity
from repro.experiments.base import ExperimentResult
from repro.experiments.common import mapping_restarts, substrates
from repro.tech.cooling import COOLING_SOLUTIONS
from repro.tech.external_io import OPTICAL_IO
from repro.tech.wsi import SI_IF_OVERDRIVEN


def run(fast: bool = True) -> ExperimentResult:
    rows = []
    for side in substrates(fast):
        design = max_feasible_design(
            side,
            wsi=SI_IF_OVERDRIVEN,
            external_io=OPTICAL_IO,
            mapping_restarts=mapping_restarts(fast),
        )
        if design is None:
            continue
        hetero = apply_heterogeneity(design, leaf_split=4)
        rows.append(
            (
                side,
                design.n_ports,
                round(design.power.total_w / 1000, 1),
                round(hetero.power.total_w / 1000, 1),
                round(hetero.power_reduction_fraction * 100, 1),
                round(design.power_density_w_per_mm2, 3),
                round(hetero.power_density_w_per_mm2, 3),
                hetero.cooling.name,
            )
        )
    envelopes = ", ".join(
        f"{name}={sol.max_power_density_w_per_mm2:g} W/mm2"
        for name, sol in sorted(COOLING_SOLUTIONS.items())
    )
    return ExperimentResult(
        experiment_id="fig16",
        title="Heterogeneous switch power reduction (quarter-radix leaves)",
        headers=(
            "substrate mm",
            "ports",
            "baseline kW",
            "hetero kW",
            "reduction %",
            "baseline W/mm2",
            "hetero W/mm2",
            "cooling",
        ),
        rows=rows,
        notes=[
            "paper: 30.8% reduction at 300mm (up to 33.5% at smaller "
            "substrates); density 0.69 -> 0.48 W/mm2",
            f"cooling envelopes: {envelopes}",
        ],
    )
