"""Run experiments from the command line.

Usage::

    python -m repro.experiments.runner                  # all, fast mode
    python -m repro.experiments.runner fig07            # one experiment
    python -m repro.experiments.runner --full           # full-scale runs
    python -m repro.experiments.runner --jobs 4         # parallel units
    python -m repro.experiments.runner --jobs auto      # effective cores
    python -m repro.experiments.runner --no-cache       # always recompute
    python -m repro.experiments.runner --cache-clear    # wipe the cache
    python -m repro.experiments.runner --profile        # per-unit timings
    python -m repro.experiments.runner fig21 --telemetry[=DIR]
                                        # per-point telemetry artifacts

Results are cached under ``.repro_cache/`` keyed by experiment id, run
mode, and a source hash of every module the experiment imports, so an
unchanged experiment returns instantly; editing any of its modules
recomputes it (see :mod:`repro.experiments.cache`). ``--jobs N`` fans
the experiments' independent work units across N warm pool workers;
the default (``--jobs auto``) detects the *effective* core count —
CPU affinity and cgroup quotas respected — and small runs degrade to
plain serial execution automatically (see
:mod:`repro.experiments.scheduler` and :mod:`repro.parallel`).

``--telemetry`` makes the simulation figures (fig21-fig24) write one
structured-JSON telemetry report per simulated point under ``DIR``
(default ``telemetry/``), e.g. ``telemetry/fig21/l1_b4.json`` — see
``docs/netsim.md`` for the schema. It implies ``--no-cache`` for the
selected run: a cached result would skip the simulations that emit the
artifacts.
"""

from __future__ import annotations

import os
import sys
import time
from typing import List, Optional, Sequence, Tuple

from repro.experiments.base import (
    EXPERIMENT_IDS,
    ExperimentResult,
    get_spec,
)
from repro.experiments.cache import ResultCache
from repro.experiments.scheduler import execute


def run_experiments(
    ids: Optional[Sequence[str]] = None,
    fast: bool = True,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    unit_timeout: Optional[float] = None,
    profile_out: Optional[List[dict]] = None,
) -> List[ExperimentResult]:
    """Run the given experiments (all when ids is None).

    ``jobs`` > 1 schedules independent work units across the warm
    worker pool (``None`` auto-detects the effective core count);
    passing a :class:`~repro.experiments.cache.ResultCache` serves
    up-to-date cached results and stores fresh ones. Output is
    identical for every (jobs, cache) combination. ``profile_out``
    collects one stats row per executed work unit (result-cache hits
    appear as a single ``unit="cached"`` row).
    """
    selected = list(ids) if ids else list(EXPERIMENT_IDS)
    specs = [get_spec(experiment_id) for experiment_id in selected]

    results = {}
    to_run = []
    for spec in specs:
        load_start = time.perf_counter()
        cached = cache.load(spec.experiment_id, fast) if cache else None
        if cached is not None:
            results[spec.experiment_id] = cached
            if profile_out is not None:
                profile_out.append(
                    {
                        "experiment_id": spec.experiment_id,
                        "unit": "cached",
                        "seconds": time.perf_counter() - load_start,
                    }
                )
        elif spec.experiment_id not in results and not any(
            s.experiment_id == spec.experiment_id for s in to_run
        ):
            to_run.append(spec)

    for spec, result in zip(
        to_run,
        execute(
            to_run,
            fast=fast,
            jobs=jobs,
            unit_timeout=unit_timeout,
            profile_out=profile_out,
        ),
    ):
        if cache is not None:
            cache.store(spec.experiment_id, fast, result)
        results[spec.experiment_id] = result

    return [results[experiment_id] for experiment_id in selected]


def format_profile(rows: Sequence[dict]) -> str:
    """Render the ``--profile`` table: wall time and mapping activity.

    One line per work unit plus a per-experiment total; the trailing
    summary is the quickest read on whether the mapping store is doing
    its job (hits) or being missed (optimized from scratch).
    ``dispatch`` is the pool's per-unit dispatch overhead — the time
    the unit's task and result spent crossing process boundaries
    (0.00 for units the serial fast path ran in-process).
    """
    headers = (
        "experiment", "unit", "seconds", "dispatch",
        "memo", "store", "optimized", "opt_s",
    )
    table: List[Tuple[str, ...]] = []

    def fmt(row: dict, label_id: str, label_unit: str) -> Tuple[str, ...]:
        return (
            label_id,
            label_unit,
            f"{row.get('seconds', 0.0):.2f}",
            f"{row.get('dispatch_s', 0.0):.3f}",
            f"{int(row.get('memo_hits', 0))}",
            f"{int(row.get('store_hits', 0))}",
            f"{int(row.get('optimized', 0))}",
            f"{row.get('optimize_seconds', 0.0):.2f}",
        )

    by_experiment: dict = {}
    for row in rows:
        by_experiment.setdefault(row["experiment_id"], []).append(row)
    totals = {"seconds": 0.0, "dispatch_s": 0.0, "memo_hits": 0,
              "store_hits": 0, "optimized": 0, "optimize_seconds": 0.0}
    for experiment_id, unit_rows in by_experiment.items():
        subtotal = dict.fromkeys(totals, 0.0)
        for row in unit_rows:
            if len(unit_rows) > 1:
                table.append(fmt(row, experiment_id, str(row["unit"])))
            for key in subtotal:
                subtotal[key] += row.get(key, 0)
        label_unit = "total" if len(unit_rows) > 1 else str(unit_rows[0]["unit"])
        table.append(fmt(subtotal, experiment_id, label_unit))
        for key in totals:
            totals[key] += subtotal[key]
    table.append(fmt(totals, "all", "total"))

    widths = [
        max(len(headers[i]), *(len(r[i]) for r in table)) for i in range(len(headers))
    ]
    lines = ["== profile: wall time and mapping-store activity per unit =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend("  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in table)
    return "\n".join(lines)


def _usage_error(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    print(__doc__, file=sys.stderr)
    return 2


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    fast = True
    jobs: Optional[int] = None  # auto-detect effective cores
    use_cache = True
    cache_clear = False
    profile = False
    telemetry_out: Optional[str] = None
    unit_timeout: Optional[float] = None
    ids: List[str] = []

    iterator = iter(args)
    for arg in iterator:
        if arg == "--full":
            fast = False
        elif arg == "--no-cache":
            use_cache = False
        elif arg == "--telemetry" or arg.startswith("--telemetry="):
            value = arg.split("=", 1)[1] if "=" in arg else ""
            telemetry_out = value or "telemetry"
        elif arg == "--cache-clear":
            cache_clear = True
        elif arg == "--profile":
            profile = True
        elif arg == "--jobs" or arg.startswith("--jobs="):
            value = arg.split("=", 1)[1] if "=" in arg else next(iterator, None)
            if value == "auto":
                jobs = None
            elif value is None or not value.lstrip("-").isdigit():
                return _usage_error("--jobs needs an integer or 'auto'")
            else:
                jobs = int(value)
        elif arg == "--timeout" or arg.startswith("--timeout="):
            value = arg.split("=", 1)[1] if "=" in arg else next(iterator, None)
            try:
                unit_timeout = float(value)
            except (TypeError, ValueError):
                return _usage_error("--timeout needs a number of seconds")
        elif arg.startswith("-"):
            return _usage_error(f"unknown option {arg!r}")
        else:
            ids.append(arg)

    if telemetry_out is not None:
        # A cached result would skip the simulations that write the
        # artifacts, so telemetry runs bypass the result cache. The env
        # var is inherited by pool workers (set before the pool forks).
        from repro.experiments.telemetry_io import TELEMETRY_DIR_ENV

        os.environ[TELEMETRY_DIR_ENV] = telemetry_out
        use_cache = False

    cache = ResultCache() if use_cache else None
    if cache_clear:
        removed = ResultCache().clear()
        print(f"cleared {removed} cache entr{'y' if removed == 1 else 'ies'}")
        if not ids:
            return 0

    unknown = [i for i in ids if i not in EXPERIMENT_IDS]
    if unknown:
        print(
            f"error: unknown experiment id(s): {', '.join(sorted(unknown))}\n"
            f"known ids: {' '.join(EXPERIMENT_IDS)}",
            file=sys.stderr,
        )
        return 2

    start = time.time()
    profile_rows: Optional[List[dict]] = [] if profile else None
    for result in run_experiments(
        ids or None,
        fast=fast,
        jobs=jobs,
        cache=cache,
        unit_timeout=unit_timeout,
        profile_out=profile_rows,
    ):
        print(result.format_table())
        print()
    if profile_rows is not None:
        print(format_profile(profile_rows))
        print()
    if telemetry_out is not None:
        print(f"[telemetry artifacts under {telemetry_out}/]")
    if jobs is None:
        from repro.parallel import effective_cpu_count

        jobs_label = f"auto({effective_cpu_count()})"
    else:
        jobs_label = str(jobs)
    print(f"[{time.time() - start:.1f}s total, fast={fast}, jobs={jobs_label}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
