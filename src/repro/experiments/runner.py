"""Run experiments from the command line.

Usage::

    python -m repro.experiments.runner                  # all, fast mode
    python -m repro.experiments.runner fig07            # one experiment
    python -m repro.experiments.runner --full           # full-scale runs
    python -m repro.experiments.runner --jobs 4         # parallel units
    python -m repro.experiments.runner --no-cache       # always recompute
    python -m repro.experiments.runner --cache-clear    # wipe the cache

Results are cached under ``.repro_cache/`` keyed by experiment id, run
mode, and a source hash of every module the experiment imports, so an
unchanged experiment returns instantly; editing any of its modules
recomputes it (see :mod:`repro.experiments.cache`). ``--jobs N`` fans
the experiments' independent work units across N processes (see
:mod:`repro.experiments.scheduler`).
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional, Sequence

from repro.experiments.base import (
    EXPERIMENT_IDS,
    ExperimentResult,
    get_spec,
)
from repro.experiments.cache import ResultCache
from repro.experiments.scheduler import execute


def run_experiments(
    ids: Optional[Sequence[str]] = None,
    fast: bool = True,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    unit_timeout: Optional[float] = None,
) -> List[ExperimentResult]:
    """Run the given experiments (all when ids is None).

    ``jobs`` > 1 schedules independent work units across processes;
    passing a :class:`~repro.experiments.cache.ResultCache` serves
    up-to-date cached results and stores fresh ones. Output is
    identical for every (jobs, cache) combination.
    """
    selected = list(ids) if ids else list(EXPERIMENT_IDS)
    specs = [get_spec(experiment_id) for experiment_id in selected]

    results = {}
    to_run = []
    for spec in specs:
        cached = cache.load(spec.experiment_id, fast) if cache else None
        if cached is not None:
            results[spec.experiment_id] = cached
        elif spec.experiment_id not in results and not any(
            s.experiment_id == spec.experiment_id for s in to_run
        ):
            to_run.append(spec)

    for spec, result in zip(
        to_run, execute(to_run, fast=fast, jobs=jobs, unit_timeout=unit_timeout)
    ):
        if cache is not None:
            cache.store(spec.experiment_id, fast, result)
        results[spec.experiment_id] = result

    return [results[experiment_id] for experiment_id in selected]


def _usage_error(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    print(__doc__, file=sys.stderr)
    return 2


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    fast = True
    jobs = 1
    use_cache = True
    cache_clear = False
    unit_timeout: Optional[float] = None
    ids: List[str] = []

    iterator = iter(args)
    for arg in iterator:
        if arg == "--full":
            fast = False
        elif arg == "--no-cache":
            use_cache = False
        elif arg == "--cache-clear":
            cache_clear = True
        elif arg == "--jobs" or arg.startswith("--jobs="):
            value = arg.split("=", 1)[1] if "=" in arg else next(iterator, None)
            if value is None or not value.lstrip("-").isdigit():
                return _usage_error("--jobs needs an integer argument")
            jobs = int(value)
        elif arg == "--timeout" or arg.startswith("--timeout="):
            value = arg.split("=", 1)[1] if "=" in arg else next(iterator, None)
            try:
                unit_timeout = float(value)
            except (TypeError, ValueError):
                return _usage_error("--timeout needs a number of seconds")
        elif arg.startswith("-"):
            return _usage_error(f"unknown option {arg!r}")
        else:
            ids.append(arg)

    cache = ResultCache() if use_cache else None
    if cache_clear:
        removed = ResultCache().clear()
        print(f"cleared {removed} cache entr{'y' if removed == 1 else 'ies'}")
        if not ids:
            return 0

    unknown = [i for i in ids if i not in EXPERIMENT_IDS]
    if unknown:
        print(
            f"error: unknown experiment id(s): {', '.join(sorted(unknown))}\n"
            f"known ids: {' '.join(EXPERIMENT_IDS)}",
            file=sys.stderr,
        )
        return 2

    start = time.time()
    for result in run_experiments(
        ids or None, fast=fast, jobs=jobs, cache=cache, unit_timeout=unit_timeout
    ):
        print(result.format_table())
        print()
    print(f"[{time.time() - start:.1f}s total, fast={fast}, jobs={jobs}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
