"""Run experiments from the command line.

Usage::

    python -m repro.experiments.runner            # all, fast mode
    python -m repro.experiments.runner fig07      # one experiment
    python -m repro.experiments.runner --full     # full-scale runs
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional, Sequence

from repro.experiments.base import (
    EXPERIMENT_IDS,
    ExperimentResult,
    get_experiment,
)


def run_experiments(
    ids: Optional[Sequence[str]] = None, fast: bool = True
) -> List[ExperimentResult]:
    """Run the given experiments (all when ids is None)."""
    selected = list(ids) if ids else list(EXPERIMENT_IDS)
    results = []
    for experiment_id in selected:
        results.append(get_experiment(experiment_id)(fast=fast))
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    fast = True
    if "--full" in args:
        fast = False
        args.remove("--full")
    ids = args or None
    start = time.time()
    for result in run_experiments(ids, fast=fast):
        print(result.format_table())
        print()
    print(f"[{time.time() - start:.1f}s total, fast={fast}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
