"""Core logical-topology data structures.

The logical topology abstracts away physical placement: it only records
which SSC connects to which, with how many channels, and how many
external (switch-facing) ports each SSC terminates. A *channel* is one
bidirectional lane at the topology's port bandwidth (200 Gbps unless
stated otherwise); the paper's guarantee that "every logical link has at
least a bandwidth of 200Gbps" is expressed by integer channel counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.tech.chiplet import SubSwitchChiplet
from repro.units import require_positive

#: Schema tag/version for :meth:`LogicalTopology.to_dict` payloads.
TOPOLOGY_SCHEMA = "repro-topology"
TOPOLOGY_SCHEMA_VERSION = 1


class NodeRole(enum.Enum):
    """Role of an SSC within the logical topology."""

    LEAF = "leaf"  # terminates external ports (ingress/egress)
    SPINE = "spine"  # switches between leaves, no external ports
    CORE = "core"  # direct-topology node: both terminates and routes


@dataclass(frozen=True)
class SwitchNode:
    """A sub-switch chiplet instance within a logical topology."""

    index: int
    role: NodeRole
    chiplet: SubSwitchChiplet
    external_ports: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("node index must be non-negative")
        if self.external_ports < 0:
            raise ValueError("external_ports must be non-negative")
        if self.external_ports > self.chiplet.radix:
            raise ValueError(
                f"node {self.index}: external_ports ({self.external_ports}) "
                f"exceeds chiplet radix ({self.chiplet.radix})"
            )


@dataclass(frozen=True)
class LogicalLink:
    """A bundle of bidirectional channels between two SSCs."""

    a: int
    b: int
    channels: int

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError("self-links are not allowed")
        if self.channels < 1:
            raise ValueError("a logical link must carry at least one channel")

    @property
    def endpoints(self) -> Tuple[int, int]:
        return (self.a, self.b)


@dataclass(frozen=True)
class LogicalTopology:
    """An immutable logical switch topology.

    Attributes:
        name: Topology family plus parameters, for reports.
        nodes: All SSC instances, indexed 0..len-1.
        links: Channel bundles between node pairs (each unordered pair
            appears at most once).
        port_bandwidth_gbps: Line rate of one channel / external port.
    """

    name: str
    nodes: Tuple[SwitchNode, ...]
    links: Tuple[LogicalLink, ...]
    port_bandwidth_gbps: float
    #: Channels of path diversity between a representative leaf pair
    #: (Clos: number of spines; single-path topologies: 1).
    path_diversity: int = 1
    _degree_cache: Dict[int, int] = field(
        default_factory=dict, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        require_positive("port_bandwidth_gbps", self.port_bandwidth_gbps)
        if not self.nodes:
            raise ValueError("topology must contain at least one node")
        indices = [node.index for node in self.nodes]
        if indices != list(range(len(self.nodes))):
            raise ValueError("nodes must be indexed contiguously from 0")
        seen_pairs = set()
        for link in self.links:
            if link.a >= len(self.nodes) or link.b >= len(self.nodes):
                raise ValueError(f"link {link} references unknown node")
            pair = frozenset(link.endpoints)
            if pair in seen_pairs:
                raise ValueError(f"duplicate link between {link.a} and {link.b}")
            seen_pairs.add(pair)
        self._validate_port_budgets()

    def _validate_port_budgets(self) -> None:
        """Every node's external ports + link channels must fit its radix."""
        used = self.channel_degrees()
        for node in self.nodes:
            total = node.external_ports + used.get(node.index, 0)
            if total > node.chiplet.radix:
                raise ValueError(
                    f"node {node.index} ({node.role.value}) oversubscribed: "
                    f"{node.external_ports} external + {used.get(node.index, 0)} "
                    f"link channels > radix {node.chiplet.radix}"
                )

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------

    @property
    def chiplet_count(self) -> int:
        return len(self.nodes)

    @property
    def radix(self) -> int:
        """Total external (switch-level) bidirectional port count."""
        return sum(node.external_ports for node in self.nodes)

    @property
    def total_external_bandwidth_gbps(self) -> float:
        return self.radix * self.port_bandwidth_gbps

    @property
    def total_chiplet_area_mm2(self) -> float:
        return sum(node.chiplet.area_mm2 for node in self.nodes)

    @property
    def total_channels(self) -> int:
        return sum(link.channels for link in self.links)

    def channel_degrees(self) -> Dict[int, int]:
        """Channels incident to each node (both links and feedthrough excluded)."""
        degrees: Dict[int, int] = {}
        for link in self.links:
            degrees[link.a] = degrees.get(link.a, 0) + link.channels
            degrees[link.b] = degrees.get(link.b, 0) + link.channels
        return degrees

    def leaves(self) -> List[SwitchNode]:
        return [n for n in self.nodes if n.role is NodeRole.LEAF]

    def spines(self) -> List[SwitchNode]:
        return [n for n in self.nodes if n.role is NodeRole.SPINE]

    def nodes_with_external_ports(self) -> List[SwitchNode]:
        return [n for n in self.nodes if n.external_ports > 0]

    def to_dict(self) -> Dict:
        """Versioned JSON-serializable form (see :meth:`from_dict`).

        Chiplets are deduplicated into a table (a big Clos repeats one
        SSC model hundreds of times) and each node references its row;
        the payload reconstructs without any registry lookup, so custom
        chiplets survive the round trip.
        """
        chiplets: List[SubSwitchChiplet] = []
        chiplet_row: Dict[SubSwitchChiplet, int] = {}
        node_rows = []
        for node in self.nodes:
            row = chiplet_row.get(node.chiplet)
            if row is None:
                row = chiplet_row[node.chiplet] = len(chiplets)
                chiplets.append(node.chiplet)
            node_rows.append([node.index, node.role.value, row, node.external_ports])
        return {
            "schema": TOPOLOGY_SCHEMA,
            "version": TOPOLOGY_SCHEMA_VERSION,
            "name": self.name,
            "port_bandwidth_gbps": self.port_bandwidth_gbps,
            "path_diversity": self.path_diversity,
            "chiplets": [
                {
                    "name": c.name,
                    "radix": c.radix,
                    "port_bandwidth_gbps": c.port_bandwidth_gbps,
                    "area_mm2": c.area_mm2,
                    "core_power_w": c.core_power_w,
                    "io_energy_pj_per_bit": c.io_energy_pj_per_bit,
                }
                for c in chiplets
            ],
            "nodes": node_rows,
            "links": [[l.a, l.b, l.channels] for l in self.links],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "LogicalTopology":
        """Inverse of :meth:`to_dict`; revalidates every invariant."""
        if payload.get("schema") != TOPOLOGY_SCHEMA:
            raise ValueError(f"not a {TOPOLOGY_SCHEMA} payload")
        if payload.get("version") != TOPOLOGY_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported {TOPOLOGY_SCHEMA} version "
                f"{payload.get('version')!r}"
            )
        chiplets = [SubSwitchChiplet(**row) for row in payload["chiplets"]]
        nodes = tuple(
            SwitchNode(
                index=int(index),
                role=NodeRole(role),
                chiplet=chiplets[int(row)],
                external_ports=int(external),
            )
            for index, role, row, external in payload["nodes"]
        )
        links = tuple(
            LogicalLink(int(a), int(b), int(channels))
            for a, b, channels in payload["links"]
        )
        return cls(
            name=payload["name"],
            nodes=nodes,
            links=links,
            port_bandwidth_gbps=float(payload["port_bandwidth_gbps"]),
            path_diversity=int(payload["path_diversity"]),
        )

    def adjacency(self) -> Dict[int, Dict[int, int]]:
        """Adjacency map ``{node: {neighbor: channels}}``."""
        adj: Dict[int, Dict[int, int]] = {n.index: {} for n in self.nodes}
        for link in self.links:
            adj[link.a][link.b] = link.channels
            adj[link.b][link.a] = link.channels
        return adj

    def is_connected(self) -> bool:
        """Whether the logical graph is a single connected component."""
        if len(self.nodes) == 1:
            return True
        adj = self.adjacency()
        seen = {0}
        stack = [0]
        while stack:
            current = stack.pop()
            for neighbor in adj[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == len(self.nodes)

    def bisection_channels(self) -> int:
        """Channels crossing an index-halving cut of the nodes.

        For the generated topologies (which lay out symmetric halves in
        index order) this equals or closely lower-bounds the true
        bisection; it is used for reporting, not feasibility.
        """
        half = len(self.nodes) // 2
        return sum(
            link.channels
            for link in self.links
            if (link.a < half) != (link.b < half)
        )

    def describe(self) -> str:
        """One-line summary used by experiment reports."""
        return (
            f"{self.name}: {self.radix} x {self.port_bandwidth_gbps:g}G ports, "
            f"{self.chiplet_count} chiplets, {self.total_channels} channels"
        )


def distribute_evenly(total: int, bins: int) -> List[int]:
    """Split ``total`` integer channels across ``bins`` as evenly as possible.

    The first ``total % bins`` bins receive one extra channel. Used when a
    leaf's uplinks do not divide exactly across the spines.
    """
    if bins < 1:
        raise ValueError("bins must be >= 1")
    if total < 0:
        raise ValueError("total must be non-negative")
    base, extra = divmod(total, bins)
    return [base + (1 if i < extra else 0) for i in range(bins)]


def merge_links(raw_links: Iterable[Tuple[int, int, int]]) -> List[LogicalLink]:
    """Combine duplicate (a, b) channel contributions into single links."""
    combined: Dict[Tuple[int, int], int] = {}
    for a, b, channels in raw_links:
        if channels == 0:
            continue
        key = (min(a, b), max(a, b))
        combined[key] = combined.get(key, 0) + channels
    return [
        LogicalLink(a=a, b=b, channels=c) for (a, b), c in sorted(combined.items())
    ]


def roles_summary(topology: LogicalTopology) -> Mapping[str, int]:
    """Count of nodes per role, for reports and tests."""
    counts: Dict[str, int] = {}
    for node in topology.nodes:
        counts[node.role.value] = counts.get(node.role.value, 0) + 1
    return counts
