"""Dragonfly topology of SSCs (Section VII, Fig 25).

A canonical dragonfly (Kim et al., ISCA'08) with ``a`` routers per
group, ``p`` terminal port bundles, ``h`` global link bundles per
router, and all-to-all local links within a group. Because the SSC radix
(256) far exceeds the structural degree of a wafer-sized dragonfly, each
structural connection is a *bundle* of ``c`` channels where
``c = k // (p + (a - 1) + h)``; terminals likewise expose ``p * c``
external ports per router (slack channels stay idle: a balanced
dragonfly cannot absorb extra terminals without unbalancing its global
links).

Global wiring: every pair of groups is joined by
``w = (a*h) // (groups - 1)`` bundles (a balanced complete graph over
groups), with each group's bundle endpoints assigned to its routers
round-robin so no router exceeds its ``h`` global-bundle budget.

As a *direct* topology, every SSC terminates external ports, which is
what inflates its external-bandwidth demand relative to Clos in the
constrained analysis (the paper's 1.7x-3.2x radix disadvantage).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.tech.chiplet import SubSwitchChiplet, tomahawk5
from repro.topology.base import (
    LogicalTopology,
    NodeRole,
    SwitchNode,
    merge_links,
)


def dragonfly(
    groups: int,
    routers_per_group: int = 8,
    ssc: Optional[SubSwitchChiplet] = None,
) -> LogicalTopology:
    """Build a dragonfly with the given group count.

    Args:
        groups: Number of groups ``g``; must satisfy
            ``2 <= g <= a*h + 1`` so each group pair gets a bundle.
        routers_per_group: Routers per group ``a`` (balanced split:
            ``p = h = a/2`` terminal/global bundles per router).
        ssc: Sub-switch chiplet (TH-5 256x200G by default).
    """
    chiplet = ssc if ssc is not None else tomahawk5()
    a = routers_per_group
    if a < 2 or a % 2 != 0:
        raise ValueError("routers_per_group must be an even number >= 2")
    p = a // 2
    h = a // 2
    if groups < 2:
        raise ValueError("dragonfly needs at least two groups")
    max_groups = a * h + 1
    if groups > max_groups:
        raise ValueError(
            f"groups ({groups}) exceeds reachable group count ({max_groups}) "
            f"for a={a}, h={h}"
        )

    k = chiplet.radix
    structural_degree = p + (a - 1) + h
    bundle = k // structural_degree
    if bundle < 1:
        raise ValueError(
            f"SSC radix {k} too small for structural degree {structural_degree}"
        )

    def node_index(group: int, router: int) -> int:
        return group * a + router

    raw_links = []
    for g in range(groups):
        # Local all-to-all within the group.
        for r1 in range(a):
            for r2 in range(r1 + 1, a):
                raw_links.append((node_index(g, r1), node_index(g, r2), bundle))

    # Balanced global wiring: w bundles between every pair of groups.
    pair_bundles = (a * h) // (groups - 1)
    # Each group's global endpoints, assigned to routers round-robin.
    next_slot: Dict[int, int] = {g: 0 for g in range(groups)}

    def take_router(group: int) -> int:
        slot = next_slot[group]
        next_slot[group] = slot + 1
        return slot % a

    for g1 in range(groups):
        for g2 in range(g1 + 1, groups):
            for _ in range(pair_bundles):
                r1 = take_router(g1)
                r2 = take_router(g2)
                raw_links.append(
                    (node_index(g1, r1), node_index(g2, r2), bundle)
                )

    links = merge_links(raw_links)
    channels_used: Dict[int, int] = {}
    for link in links:
        channels_used[link.a] = channels_used.get(link.a, 0) + link.channels
        channels_used[link.b] = channels_used.get(link.b, 0) + link.channels

    nodes = []
    for g in range(groups):
        for r in range(a):
            idx = node_index(g, r)
            # Exactly p terminal bundles: a balanced dragonfly cannot
            # absorb extra terminals without unbalancing global links.
            external = p * bundle
            nodes.append(
                SwitchNode(
                    index=idx,
                    role=NodeRole.CORE,
                    chiplet=chiplet,
                    external_ports=external,
                )
            )

    topo = LogicalTopology(
        name=f"dragonfly g={groups} a={a} k={k}",
        nodes=tuple(nodes),
        links=tuple(links),
        port_bandwidth_gbps=chiplet.port_bandwidth_gbps,
        path_diversity=a,  # one minimal + (a-1) Valiant-style local detours
    )
    if not topo.is_connected():
        raise AssertionError("dragonfly construction produced a disconnected graph")
    return topo
