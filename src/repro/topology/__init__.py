"""Logical switch topologies built from sub-switch chiplets.

A :class:`~repro.topology.base.LogicalTopology` is a graph whose nodes
are SSCs and whose edges are bundles of bidirectional 200 Gbps-class
channels. The folded 2-level Clos is the paper's primary topology
(Section IV); mesh, butterfly, flattened butterfly and dragonfly cover
the Section VII discussion (Fig 25).
"""

from repro.topology.base import LogicalLink, LogicalTopology, NodeRole, SwitchNode
from repro.topology.butterfly import tapered_butterfly
from repro.topology.clos import folded_clos, heterogeneous_clos
from repro.topology.dragonfly import dragonfly
from repro.topology.flattened_butterfly import flattened_butterfly
from repro.topology.mesh import direct_mesh

__all__ = [
    "LogicalLink",
    "LogicalTopology",
    "NodeRole",
    "SwitchNode",
    "dragonfly",
    "direct_mesh",
    "flattened_butterfly",
    "folded_clos",
    "heterogeneous_clos",
    "tapered_butterfly",
]
