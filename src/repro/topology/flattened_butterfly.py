"""2-D flattened butterfly of SSCs (Section VII, Fig 25).

Routers form an ``rows x cols`` array; each router connects to every
other router in its row and in its column (Kim et al., ISCA'07). With
``d = (rows - 1) + (cols - 1)`` structural connections per router, each
carries a bundle of ``w`` channels and the router exposes ``c``
terminal ports, with ``c + d*w <= k``.

The balanced sizing follows the flattened-butterfly rule of thumb that
inter-router bandwidth should be ~half the terminal bandwidth per
dimension hop (DOR traverses up to 2 hops), i.e. ``w = ceil(c / 2)``;
we pick the largest ``c`` satisfying the radix budget. As a direct
topology every router terminates ports, inflating the external
bandwidth demand, which is why it trails Clos in the constrained
analysis.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.tech.chiplet import SubSwitchChiplet, tomahawk5
from repro.topology.base import (
    LogicalTopology,
    NodeRole,
    SwitchNode,
    merge_links,
)


def _balanced_sizing(radix: int, degree: int) -> Tuple[int, int]:
    """Largest terminal count ``c`` with ``c + degree*ceil(c/2) <= radix``."""
    best = (1, 1)
    for c in range(1, radix + 1):
        w = -(-c // 2)
        if c + degree * w <= radix:
            best = (c, w)
        else:
            break
    return best


def flattened_butterfly(
    rows: int,
    cols: int,
    ssc: Optional[SubSwitchChiplet] = None,
) -> LogicalTopology:
    """Build an ``rows x cols`` 2-D flattened butterfly."""
    chiplet = ssc if ssc is not None else tomahawk5()
    if rows < 2 or cols < 2:
        raise ValueError("flattened butterfly needs rows, cols >= 2")

    k = chiplet.radix
    degree = (rows - 1) + (cols - 1)
    terminals, bundle = _balanced_sizing(k, degree)

    def node_index(r: int, c: int) -> int:
        return r * cols + c

    raw_links = []
    for r in range(rows):
        for c1 in range(cols):
            for c2 in range(c1 + 1, cols):
                raw_links.append((node_index(r, c1), node_index(r, c2), bundle))
    for c in range(cols):
        for r1 in range(rows):
            for r2 in range(r1 + 1, rows):
                raw_links.append((node_index(r1, c), node_index(r2, c), bundle))

    nodes = []
    for r in range(rows):
        for c in range(cols):
            nodes.append(
                SwitchNode(
                    index=node_index(r, c),
                    role=NodeRole.CORE,
                    chiplet=chiplet,
                    external_ports=terminals,
                )
            )

    return LogicalTopology(
        name=f"flattened-butterfly {rows}x{cols} k={k}",
        nodes=tuple(nodes),
        links=tuple(merge_links(raw_links)),
        port_bandwidth_gbps=chiplet.port_bandwidth_gbps,
        path_diversity=2,  # XY vs YX dimension orders
    )
