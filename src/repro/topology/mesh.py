"""Direct 2-D mesh switch topology (Section VII, Fig 25).

Every SSC both terminates external ports and routes neighbor traffic.
Mesh maps trivially onto the physical substrate (every logical link is a
physical neighbor link), which is why the paper credits it with ~10 %
higher radix than mapped Clos — but it is highly blocking with poor
bisection bandwidth, which the topology object reports.

``internal_fraction`` controls how much of each SSC's radix is devoted
to neighbor links (split across its 2-4 mesh neighbors); the remainder
terminates external ports. The default 0.6 reflects the paper's
ideal-case mesh sizing, where roughly 40 % of aggregate SSC radix is
exposed externally.
"""

from __future__ import annotations

from typing import Optional

from repro.tech.chiplet import SubSwitchChiplet, tomahawk5
from repro.topology.base import (
    LogicalTopology,
    NodeRole,
    SwitchNode,
    merge_links,
)


def direct_mesh(
    rows: int,
    cols: int,
    ssc: Optional[SubSwitchChiplet] = None,
    internal_fraction: float = 0.6,
) -> LogicalTopology:
    """Build an ``rows x cols`` direct mesh of SSCs.

    Each SSC dedicates ``internal_fraction`` of its radix to mesh links,
    sized per-direction as if it had 4 neighbors; edge and corner SSCs
    recover the unused channels as additional external ports.
    """
    chiplet = ssc if ssc is not None else tomahawk5()
    if rows < 1 or cols < 1:
        raise ValueError("mesh dimensions must be >= 1")
    if rows * cols < 2:
        raise ValueError("mesh must contain at least two SSCs")
    if not 0.0 < internal_fraction < 1.0:
        raise ValueError("internal_fraction must be in (0, 1)")

    k = chiplet.radix
    per_direction = max(1, int(internal_fraction * k / 4))

    def node_index(r: int, c: int) -> int:
        return r * cols + c

    raw_links = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                raw_links.append(
                    (node_index(r, c), node_index(r, c + 1), per_direction)
                )
            if r + 1 < rows:
                raw_links.append(
                    (node_index(r, c), node_index(r + 1, c), per_direction)
                )

    links = merge_links(raw_links)
    channels_used = {}
    for link in links:
        channels_used[link.a] = channels_used.get(link.a, 0) + link.channels
        channels_used[link.b] = channels_used.get(link.b, 0) + link.channels

    nodes = []
    for r in range(rows):
        for c in range(cols):
            idx = node_index(r, c)
            nodes.append(
                SwitchNode(
                    index=idx,
                    role=NodeRole.CORE,
                    chiplet=chiplet,
                    external_ports=k - channels_used.get(idx, 0),
                )
            )

    return LogicalTopology(
        name=f"mesh {rows}x{cols} k={k}",
        nodes=tuple(nodes),
        links=tuple(links),
        port_bandwidth_gbps=chiplet.port_bandwidth_gbps,
        path_diversity=1,
    )
