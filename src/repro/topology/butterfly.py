"""Tapered (oversubscribed) two-level butterfly (Section VII, Fig 25).

The paper's butterfly achieves ~10 % higher radix than Clos in the
optimized cases at the cost of bisection bandwidth and path diversity.
We model it as a folded two-stage butterfly whose leaves are tapered:
each leaf exposes ``taper`` times as many external ports as it has
uplink channels, so the fabric trades bisection for ports. ``taper=1``
degenerates to the folded Clos.
"""

from __future__ import annotations

from typing import Optional

from repro.tech.chiplet import SubSwitchChiplet, tomahawk5
from repro.topology.base import (
    LogicalTopology,
    NodeRole,
    SwitchNode,
    distribute_evenly,
    merge_links,
)


def tapered_butterfly(
    n_ports: int,
    ssc: Optional[SubSwitchChiplet] = None,
    taper: int = 2,
) -> LogicalTopology:
    """Build a tapered two-level butterfly with the given external radix.

    Args:
        n_ports: Total external port count ``N``.
        ssc: Sub-switch chiplet (TH-5 256x200G by default).
        taper: Oversubscription ratio down:up at each leaf (>= 1).
    """
    chiplet = ssc if ssc is not None else tomahawk5()
    k = chiplet.radix
    if taper < 1:
        raise ValueError("taper must be >= 1")
    if k % (taper + 1) != 0:
        # Round the leaf split to integers, wasting the remainder ports —
        # the paper notes butterfly's "ease of layout" tolerates this.
        usable = k - k % (taper + 1)
    else:
        usable = k
    up_per_leaf = usable // (taper + 1)
    down_per_leaf = usable - up_per_leaf
    if n_ports % down_per_leaf != 0:
        raise ValueError(
            f"n_ports ({n_ports}) must be a multiple of the per-leaf "
            f"external port count ({down_per_leaf})"
        )
    leaf_count = n_ports // down_per_leaf
    total_uplinks = leaf_count * up_per_leaf
    spine_count = -(-total_uplinks // k)  # ceil: spines absorb all uplinks

    nodes = []
    for i in range(leaf_count):
        nodes.append(
            SwitchNode(
                index=i,
                role=NodeRole.LEAF,
                chiplet=chiplet,
                external_ports=down_per_leaf,
            )
        )
    for j in range(spine_count):
        nodes.append(
            SwitchNode(
                index=leaf_count + j,
                role=NodeRole.SPINE,
                chiplet=chiplet,
                external_ports=0,
            )
        )

    raw_links = []
    for i in range(leaf_count):
        shares = distribute_evenly(up_per_leaf, spine_count)
        rotation = i % spine_count
        for j in range(spine_count):
            channels = shares[(j - rotation) % spine_count]
            raw_links.append((i, leaf_count + j, channels))

    return LogicalTopology(
        name=f"butterfly N={n_ports} k={k} taper={taper}",
        nodes=tuple(nodes),
        links=tuple(merge_links(raw_links)),
        port_bandwidth_gbps=chiplet.port_bandwidth_gbps,
        path_diversity=spine_count,
    )
