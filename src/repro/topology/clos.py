"""Folded two-level Clos topologies (paper Sections IV, V.B).

With SSC radix ``k`` and switch radix ``N`` (both at the same port
bandwidth), the folded Clos uses:

* ``2N/k`` **leaf** SSCs, each terminating ``k/2`` external ports and
  spreading ``k/2`` uplink channels across the spines, and
* ``N/k`` **spine** SSCs, each exactly filled by the leaves' uplinks,

for ``3N/k`` chiplets total (Table VI). The construction is rearrangeably
non-blocking: aggregate uplink bandwidth equals external bandwidth at
every leaf.

The **heterogeneous** variant (Section V.B) disaggregates each leaf into
``split`` smaller leaf dies of radix ``k/split`` (scaled TH-4-like for
``split=2``, scaled TH-3-like for ``split=4``) while keeping the spine
connections, trading a tiny average-hop increase for a superlinear SSC
power reduction.
"""

from __future__ import annotations

from typing import Optional

from repro.tech.chiplet import SubSwitchChiplet, scaled_leaf_die, tomahawk5
from repro.topology.base import (
    LogicalTopology,
    NodeRole,
    SwitchNode,
    distribute_evenly,
    merge_links,
)


def _validate_clos_parameters(n_ports: int, ssc_radix: int) -> None:
    if n_ports < ssc_radix:
        raise ValueError(
            f"switch radix ({n_ports}) must be at least the SSC radix "
            f"({ssc_radix}); a single SSC already provides that"
        )
    if ssc_radix % 2 != 0:
        raise ValueError("SSC radix must be even (half down / half up)")
    if (2 * n_ports) % ssc_radix != 0:
        raise ValueError(
            f"switch radix {n_ports} must be a multiple of half the SSC "
            f"radix ({ssc_radix // 2}) for an integral leaf count"
        )
    if n_ports % ssc_radix != 0:
        raise ValueError(
            f"switch radix {n_ports} must be a multiple of the SSC radix "
            f"({ssc_radix}) for an integral spine count"
        )


def folded_clos(
    n_ports: int,
    ssc: Optional[SubSwitchChiplet] = None,
) -> LogicalTopology:
    """Build a folded 2-level Clos of the given switch radix.

    Args:
        n_ports: Total external bidirectional port count ``N``.
        ssc: Sub-switch chiplet used for both leaves and spines
            (TH-5 256x200G by default).
    """
    chiplet = ssc if ssc is not None else tomahawk5()
    k = chiplet.radix
    _validate_clos_parameters(n_ports, k)

    leaf_count = 2 * n_ports // k
    spine_count = n_ports // k
    down_per_leaf = k // 2

    nodes = []
    for i in range(leaf_count):
        nodes.append(
            SwitchNode(
                index=i,
                role=NodeRole.LEAF,
                chiplet=chiplet,
                external_ports=down_per_leaf,
            )
        )
    for j in range(spine_count):
        nodes.append(
            SwitchNode(
                index=leaf_count + j,
                role=NodeRole.SPINE,
                chiplet=chiplet,
                external_ports=0,
            )
        )

    raw_links = []
    for i in range(leaf_count):
        shares = distribute_evenly(down_per_leaf, spine_count)
        # Rotate the remainder so spines are loaded evenly across leaves.
        rotation = i % spine_count
        for j in range(spine_count):
            channels = shares[(j - rotation) % spine_count]
            raw_links.append((i, leaf_count + j, channels))

    return LogicalTopology(
        name=f"folded-clos N={n_ports} k={k}",
        nodes=tuple(nodes),
        links=tuple(merge_links(raw_links)),
        port_bandwidth_gbps=chiplet.port_bandwidth_gbps,
        path_diversity=spine_count,
    )


def heterogeneous_clos(
    n_ports: int,
    ssc: Optional[SubSwitchChiplet] = None,
    leaf_split: int = 4,
) -> LogicalTopology:
    """Folded Clos with each leaf disaggregated into smaller leaf dies.

    Args:
        n_ports: Total external port count ``N``.
        ssc: Spine chiplet and the reference for scaled leaf dies.
        leaf_split: How many smaller dies replace one full-radix leaf;
            ``2`` gives half-radix (TH-4-like) leaves, ``4`` gives
            quarter-radix (TH-3-like) leaves — the configuration behind
            the paper's 30.8 %-33.5 % power reduction.
    """
    chiplet = ssc if ssc is not None else tomahawk5()
    k = chiplet.radix
    _validate_clos_parameters(n_ports, k)
    if leaf_split < 1:
        raise ValueError("leaf_split must be >= 1")
    if leaf_split == 1:
        return folded_clos(n_ports, chiplet)
    if k % (2 * leaf_split) != 0:
        raise ValueError(
            f"leaf_split {leaf_split} must divide half the SSC radix ({k // 2})"
        )

    small_leaf = scaled_leaf_die(
        k // leaf_split, chiplet.port_bandwidth_gbps, reference=chiplet
    )
    leaf_count = (2 * n_ports // k) * leaf_split
    spine_count = n_ports // k
    down_per_leaf = small_leaf.radix // 2

    nodes = []
    for i in range(leaf_count):
        nodes.append(
            SwitchNode(
                index=i,
                role=NodeRole.LEAF,
                chiplet=small_leaf,
                external_ports=down_per_leaf,
            )
        )
    for j in range(spine_count):
        nodes.append(
            SwitchNode(
                index=leaf_count + j,
                role=NodeRole.SPINE,
                chiplet=chiplet,
                external_ports=0,
            )
        )

    raw_links = []
    for i in range(leaf_count):
        shares = distribute_evenly(down_per_leaf, spine_count)
        rotation = i % spine_count
        for j in range(spine_count):
            channels = shares[(j - rotation) % spine_count]
            raw_links.append((i, leaf_count + j, channels))

    return LogicalTopology(
        name=f"hetero-clos N={n_ports} k={k} split={leaf_split}",
        nodes=tuple(nodes),
        links=tuple(merge_links(raw_links)),
        port_bandwidth_gbps=chiplet.port_bandwidth_gbps,
        path_diversity=spine_count,
    )
