"""Feasibility constraints for a waferscale switch design (Section IV).

Four constraints can bind a design:

* **Area** — all chiplets must fit on the substrate.
* **External bandwidth** — the I/O technology must carry
  ``2 x N x port_bw`` across the wafer boundary.
* **Internal bandwidth** — after mapping, the worst inter-chiplet edge
  must give every routed channel at least the port bandwidth.
* **Power density** — total power divided by substrate area must fit the
  chosen cooling solution's envelope (optional; Figs 16, 28).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mapping.routing import USABLE_EDGE_CAPACITY_FRACTION
from repro.tech.cooling import CoolingSolution


@dataclass(frozen=True)
class ConstraintLimits:
    """Which constraints to evaluate, and with what margins.

    ``capacity_fraction`` reserves a fraction of the raw inter-chiplet
    edge bandwidth for shielding, forwarded clocks, framing, and lane
    sparing (see ``USABLE_EDGE_CAPACITY_FRACTION``), so channels may
    use at most that fraction of an edge.
    """

    consider_area: bool = True
    consider_external: bool = True
    consider_internal: bool = True
    cooling: Optional[CoolingSolution] = None
    capacity_fraction: float = USABLE_EDGE_CAPACITY_FRACTION
    substrate_utilization: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.capacity_fraction <= 1.0:
            raise ValueError("capacity_fraction must be in (0, 1]")
        if not 0.0 < self.substrate_utilization <= 1.0:
            raise ValueError("substrate_utilization must be in (0, 1]")


#: The ideal-case analysis of Fig 6: only the substrate area binds.
AREA_ONLY = ConstraintLimits(
    consider_area=True, consider_external=False, consider_internal=False
)

#: The realistic analysis of Figs 7 and 9 (no cooling limit yet).
AREA_BANDWIDTH = ConstraintLimits()


@dataclass(frozen=True)
class ConstraintReport:
    """Outcome of evaluating one design against the limits."""

    # Area
    area_considered: bool
    area_ok: bool
    chiplet_area_mm2: float
    usable_area_mm2: float
    # External bandwidth
    external_considered: bool
    external_ok: bool
    external_required_gbps: float
    external_capacity_gbps: float
    # Internal bandwidth
    internal_considered: bool
    internal_ok: bool
    max_edge_channels: int
    available_per_port_gbps: float
    required_per_port_gbps: float
    # Power density / cooling
    cooling_considered: bool
    cooling_ok: bool
    power_density_w_per_mm2: float
    cooling_limit_w_per_mm2: float

    @property
    def feasible(self) -> bool:
        return (
            (self.area_ok or not self.area_considered)
            and (self.external_ok or not self.external_considered)
            and (self.internal_ok or not self.internal_considered)
            and (self.cooling_ok or not self.cooling_considered)
        )

    def binding_constraints(self) -> list:
        """Names of the constraints that fail (empty if feasible)."""
        failing = []
        if self.area_considered and not self.area_ok:
            failing.append("area")
        if self.external_considered and not self.external_ok:
            failing.append("external-bandwidth")
        if self.internal_considered and not self.internal_ok:
            failing.append("internal-bandwidth")
        if self.cooling_considered and not self.cooling_ok:
            failing.append("power-density")
        return failing
