"""Evaluation of a single waferscale switch design point."""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.constraints import ConstraintLimits, ConstraintReport
from repro.core.power_breakdown import PowerBreakdown, power_breakdown
from repro.mapping.exchange import (
    MappingResult,
    mapping_engine_tag,
    optimize_mapping,
)
from repro.mapping.grid import grid_for
from repro.mapping.routing import IOStyle, available_bandwidth_per_port_gbps
from repro.mapping.store import default_store, record_stat
from repro.tech.external_io import ExternalIOTechnology, IOPlacement
from repro.tech.wsi import WSITechnology

#: Schema tag/version for :meth:`DesignPoint.to_dict` payloads.
DESIGN_SCHEMA = "repro-design-point"
DESIGN_SCHEMA_VERSION = 1
from repro.topology.base import LogicalTopology
from repro.units import require_positive

#: In-process memo over the persistent mapping store: the explorer and
#: the experiment suite repeatedly evaluate the same (topology, I/O
#: style) combinations; pairwise exchange on the big Clos instances is
#: the only expensive computation in the analytical model. Misses fall
#: through to the on-disk store (:mod:`repro.mapping.store`), which
#: parallel workers and separate runs share, before optimizing afresh.
_MAPPING_CACHE: Dict[Tuple[str, int, str, int, int, str], MappingResult] = {}


def io_style_for(external_io: Optional[ExternalIOTechnology]) -> IOStyle:
    """Mesh-routing style implied by the external I/O technology."""
    if external_io is None:
        return IOStyle.NONE
    if external_io.placement is IOPlacement.PERIPHERY:
        return IOStyle.PERIPHERY
    return IOStyle.AREA


def cached_mapping(
    topology: LogicalTopology,
    io_style: IOStyle,
    restarts: int = 2,
    seed: int = 0,
    mapping_engine: str = "auto",
) -> MappingResult:
    """Optimize (or fetch a cached) mapping for the topology.

    Returns a defensive copy — callers may mutate the result (e.g.
    ``swap_sites`` in a what-if sweep) without corrupting the memo or
    the persistent store. ``mapping_engine`` picks the optimizer
    kernel explicitly (see :mod:`repro.engines`); it is part of the
    memo/store key, so engines never share cached placements.
    """
    engine = mapping_engine_tag(engine=mapping_engine)
    key = (
        topology.name, topology.chiplet_count, io_style.value,
        restarts, seed, engine,
    )
    result = _MAPPING_CACHE.get(key)
    if result is not None:
        record_stat("memo_hits")
        return result.copy()
    grid = grid_for(topology.chiplet_count)
    params = {
        "restarts": restarts,
        "seed": seed,
        "strategy": "mixed",
        "max_sweeps": 30,
        "engine": engine,
    }
    store = default_store()
    result = (
        store.load(topology, grid, io_style, params) if store is not None else None
    )
    if result is not None:
        record_stat("store_hits")
    else:
        started = time.perf_counter()
        result = optimize_mapping(
            topology,
            grid=grid,
            io_style=io_style,
            restarts=restarts,
            seed=seed,
            engine=mapping_engine,
        )
        record_stat("optimized")
        record_stat("optimize_seconds", time.perf_counter() - started)
        if store is not None:
            store.store(result, topology, params)
    _MAPPING_CACHE[key] = result
    return result.copy()


def clear_mapping_cache() -> None:
    """Drop the in-process memo (the persistent store is unaffected)."""
    _MAPPING_CACHE.clear()


def _encode_float(value):
    """Strict-JSON encoding: non-finite floats become strings."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)  # 'inf' / '-inf' / 'nan'
    return value


def _decode_float(value):
    """Inverse of :func:`_encode_float`."""
    if isinstance(value, str):
        return float(value)
    return value


@dataclass(frozen=True)
class DesignPoint:
    """A fully evaluated waferscale switch design."""

    substrate_side_mm: float
    topology: LogicalTopology
    wsi: WSITechnology
    external_io: Optional[ExternalIOTechnology]
    mapping: Optional[MappingResult]
    constraints: ConstraintReport
    power: PowerBreakdown

    @property
    def n_ports(self) -> int:
        return self.topology.radix

    @property
    def feasible(self) -> bool:
        return self.constraints.feasible

    @property
    def substrate_area_mm2(self) -> float:
        return self.substrate_side_mm * self.substrate_side_mm

    @property
    def power_density_w_per_mm2(self) -> float:
        return self.power.total_w / self.substrate_area_mm2

    def describe(self) -> str:
        status = "feasible" if self.feasible else (
            "infeasible: " + ", ".join(self.constraints.binding_constraints())
        )
        return (
            f"{self.topology.describe()} on {self.substrate_side_mm:g}mm "
            f"[{self.wsi.name}"
            + (f" + {self.external_io.name}" if self.external_io else "")
            + f"] -> {status}, {self.power.total_w / 1000:.1f} kW"
        )

    def to_dict(self) -> Dict:
        """Versioned JSON-serializable form (see :meth:`from_dict`).

        The full design round-trips — topology (every chiplet
        parameter, not just a registry name), technologies, mapping,
        constraint report, power breakdown — so a served response can
        be rehydrated into a working :class:`DesignPoint` on the other
        side of a process or network boundary. Non-finite floats
        (unconstrained capacities) are encoded as strings to keep the
        payload strict JSON.
        """
        return {
            "schema": DESIGN_SCHEMA,
            "version": DESIGN_SCHEMA_VERSION,
            "substrate_side_mm": self.substrate_side_mm,
            "topology": self.topology.to_dict(),
            "wsi": dataclasses.asdict(self.wsi),
            "external_io": (
                None
                if self.external_io is None
                else {
                    **dataclasses.asdict(self.external_io),
                    "placement": self.external_io.placement.value,
                }
            ),
            "mapping": None if self.mapping is None else self.mapping.to_dict(),
            "constraints": {
                key: _encode_float(value)
                for key, value in dataclasses.asdict(self.constraints).items()
            },
            "power": dataclasses.asdict(self.power),
            "derived": {
                "feasible": self.feasible,
                "n_ports": self.n_ports,
                "total_power_w": self.power.total_w,
                "io_fraction": self.power.io_fraction,
                "power_density_w_per_mm2": self.power_density_w_per_mm2,
                "describe": self.describe(),
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "DesignPoint":
        """Inverse of :meth:`to_dict`; rebuilds every component."""
        if payload.get("schema") != DESIGN_SCHEMA:
            raise ValueError(f"not a {DESIGN_SCHEMA} payload")
        if payload.get("version") != DESIGN_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported {DESIGN_SCHEMA} version "
                f"{payload.get('version')!r}"
            )
        topology = LogicalTopology.from_dict(payload["topology"])
        external = payload["external_io"]
        mapping = payload["mapping"]
        return cls(
            substrate_side_mm=float(payload["substrate_side_mm"]),
            topology=topology,
            wsi=WSITechnology(**payload["wsi"]),
            external_io=(
                None
                if external is None
                else ExternalIOTechnology(
                    **{
                        **external,
                        "placement": IOPlacement(external["placement"]),
                    }
                )
            ),
            mapping=(
                None
                if mapping is None
                else MappingResult.from_dict(mapping, topology)
            ),
            constraints=ConstraintReport(
                **{
                    key: _decode_float(value)
                    for key, value in payload["constraints"].items()
                }
            ),
            power=PowerBreakdown(**payload["power"]),
        )


def evaluate_design(
    substrate_side_mm: float,
    topology: LogicalTopology,
    wsi: WSITechnology,
    external_io: Optional[ExternalIOTechnology],
    limits: ConstraintLimits = ConstraintLimits(),
    mapping_restarts: int = 2,
    seed: int = 0,
) -> DesignPoint:
    """Evaluate one design against the given constraint limits.

    The mapping (the expensive step) is only computed when the internal
    bandwidth constraint is under consideration and the design passes
    the cheap area and external-bandwidth checks — failing designs short
    circuit, which the explorer relies on.
    """
    require_positive("substrate_side_mm", substrate_side_mm)
    usable_area = (
        substrate_side_mm * substrate_side_mm * limits.substrate_utilization
    )
    chip_area = topology.total_chiplet_area_mm2
    area_ok = chip_area <= usable_area

    if external_io is not None:
        ext_required = external_io.required_gbps(
            topology.radix, topology.port_bandwidth_gbps
        )
        ext_capacity = external_io.capacity_gbps(substrate_side_mm)
    else:
        ext_required = 2.0 * topology.radix * topology.port_bandwidth_gbps
        ext_capacity = float("inf")
    external_ok = ext_required <= ext_capacity

    mapping: Optional[MappingResult] = None
    max_edge_channels = 0
    available_per_port = float("inf")
    internal_ok = True
    cheap_checks_pass = (area_ok or not limits.consider_area) and (
        external_ok or not limits.consider_external
    )
    if limits.consider_internal and cheap_checks_pass:
        # The grid must physically fit in the substrate row/col budget in
        # the ideal packing sense; the area check above covers capacity.
        mapping = cached_mapping(
            topology, io_style_for(external_io), restarts=mapping_restarts, seed=seed
        )
        max_edge_channels = mapping.max_edge_channels
        # All chiplets on the wafer share edges at the pitch of the
        # *largest* chiplet side present (mixed-size chiplets abut the
        # grid at the full site pitch).
        edge_mm = max(node.chiplet.side_mm for node in topology.nodes)
        available_per_port = available_bandwidth_per_port_gbps(
            mapping.loads,
            wsi.edge_capacity_gbps(edge_mm),
            topology.port_bandwidth_gbps,
            capacity_fraction=limits.capacity_fraction,
        )
        internal_ok = available_per_port >= topology.port_bandwidth_gbps

    power = power_breakdown(topology, mapping, wsi, external_io)
    density = power.total_w / (substrate_side_mm * substrate_side_mm)
    if limits.cooling is not None:
        cooling_ok = density <= limits.cooling.max_power_density_w_per_mm2
        cooling_limit = limits.cooling.max_power_density_w_per_mm2
    else:
        cooling_ok = True
        cooling_limit = float("inf")

    report = ConstraintReport(
        area_considered=limits.consider_area,
        area_ok=area_ok,
        chiplet_area_mm2=chip_area,
        usable_area_mm2=usable_area,
        external_considered=limits.consider_external,
        external_ok=external_ok,
        external_required_gbps=ext_required,
        external_capacity_gbps=ext_capacity,
        internal_considered=limits.consider_internal,
        internal_ok=internal_ok,
        max_edge_channels=max_edge_channels,
        available_per_port_gbps=available_per_port,
        required_per_port_gbps=topology.port_bandwidth_gbps,
        cooling_considered=limits.cooling is not None,
        cooling_ok=cooling_ok,
        power_density_w_per_mm2=density,
        cooling_limit_w_per_mm2=cooling_limit,
    )
    return DesignPoint(
        substrate_side_mm=substrate_side_mm,
        topology=topology,
        wsi=wsi,
        external_io=external_io,
        mapping=mapping,
        constraints=report,
        power=power,
    )
