"""Subswitch deradixing (Section V.C, Figs 17, 18, 19).

Deradixing reduces each SSC's port count while keeping its die area —
and therefore its inter-chiplet I/O and feedthrough budget — unchanged.
A deradixed Clos needs proportionally more chiplets for the same switch
radix, but each chiplet injects fewer channels, relaxing the worst-edge
load. Where internal bandwidth binds (3200 Gbps/mm) this doubles the
achievable radix; where it does not (6400 Gbps/mm) the extra chiplets
only waste area and the achievable radix drops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.constraints import ConstraintLimits
from repro.core.design import DesignPoint
from repro.core.explorer import max_feasible_design
from repro.tech.chiplet import SubSwitchChiplet, tomahawk5
from repro.tech.external_io import ExternalIOTechnology
from repro.tech.wsi import WSITechnology


@dataclass(frozen=True)
class DeradixPoint:
    """Best design achievable with one deradix factor."""

    factor: int
    ssc_radix: int
    design: Optional[DesignPoint]

    @property
    def max_ports(self) -> int:
        return self.design.n_ports if self.design is not None else 0


def deradix_sweep(
    substrate_side_mm: float,
    wsi: WSITechnology,
    external_io: Optional[ExternalIOTechnology],
    factors: Sequence[int] = (1, 2, 4),
    ssc: Optional[SubSwitchChiplet] = None,
    limits: ConstraintLimits = ConstraintLimits(),
    mapping_restarts: int = 2,
) -> Dict[int, DeradixPoint]:
    """Max feasible radix for each deradix factor (Figs 17, 18)."""
    base = ssc if ssc is not None else tomahawk5()
    results: Dict[int, DeradixPoint] = {}
    for factor in factors:
        chiplet = base.deradixed(factor)
        design = max_feasible_design(
            substrate_side_mm,
            ssc=chiplet,
            wsi=wsi,
            external_io=external_io,
            limits=limits,
            family="clos",
            mapping_restarts=mapping_restarts,
        )
        results[factor] = DeradixPoint(
            factor=factor, ssc_radix=chiplet.radix, design=design
        )
    return results


def best_deradix_factor(sweep: Dict[int, DeradixPoint]) -> int:
    """Factor achieving the most ports (ties go to the least deradixed)."""
    return max(sorted(sweep), key=lambda f: sweep[f].max_ports)
