"""Power accounting for a waferscale switch design (Figs 10, 11, 13).

Three components:

* **SSC core** — sum of chiplet non-I/O powers (quadratic in radix).
* **Internal I/O** — every channel-hop over the wafer mesh moves the
  line rate in both directions, each paying the WSI technology's
  energy per bit: ``2 x channel_hops x port_bw x pJ/bit``.
* **External I/O** — every external port pays the external technology's
  energy per bit at line rate: ``N x port_bw x pJ/bit``.

Periphery-I/O designs route external channels over the mesh to reach
their SSC; those hops are part of the mapping's channel-hop total and
are therefore charged at internal-I/O energy, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mapping.exchange import MappingResult
from repro.tech.external_io import ExternalIOTechnology
from repro.tech.wsi import WSITechnology
from repro.topology.base import LogicalTopology
from repro.units import io_power_watts


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-component power of one design, in watts."""

    ssc_core_w: float
    internal_io_w: float
    external_io_w: float

    @property
    def total_w(self) -> float:
        return self.ssc_core_w + self.internal_io_w + self.external_io_w

    @property
    def io_fraction(self) -> float:
        """Share of total power spent on (internal + external) I/O."""
        total = self.total_w
        if total == 0:
            return 0.0
        return (self.internal_io_w + self.external_io_w) / total

    def density_w_per_mm2(self, substrate_area_mm2: float) -> float:
        return self.total_w / substrate_area_mm2

    def scaled_core(self, new_core_w: float) -> "PowerBreakdown":
        """Same I/O power with a different core power (heterogeneity)."""
        return PowerBreakdown(
            ssc_core_w=new_core_w,
            internal_io_w=self.internal_io_w,
            external_io_w=self.external_io_w,
        )


def internal_io_power_w(
    total_channel_hops: int, port_bandwidth_gbps: float, wsi: WSITechnology
) -> float:
    """Power of all on-wafer channel-hops (both directions active)."""
    return io_power_watts(
        2.0 * total_channel_hops * port_bandwidth_gbps, wsi.energy_pj_per_bit
    )


def external_io_power_w(
    n_ports: int,
    port_bandwidth_gbps: float,
    external_io: Optional[ExternalIOTechnology],
) -> float:
    """Power of the wafer-boundary transceivers."""
    if external_io is None:
        return 0.0
    return io_power_watts(
        n_ports * port_bandwidth_gbps, external_io.energy_pj_per_bit
    )


def power_breakdown(
    topology: LogicalTopology,
    mapping: Optional[MappingResult],
    wsi: WSITechnology,
    external_io: Optional[ExternalIOTechnology],
) -> PowerBreakdown:
    """Full power breakdown for a mapped design.

    ``mapping`` may be None for un-mapped (ideal-case) estimates, in
    which case internal I/O power is approximated from the topology's
    total channels at the average hop distance of 1.
    """
    core = sum(node.chiplet.core_power_w for node in topology.nodes)
    if mapping is not None:
        hops = mapping.total_channel_hops
    else:
        hops = topology.total_channels
    internal = internal_io_power_w(hops, topology.port_bandwidth_gbps, wsi)
    external = external_io_power_w(
        topology.radix, topology.port_bandwidth_gbps, external_io
    )
    return PowerBreakdown(
        ssc_core_w=core, internal_io_w=internal, external_io_w=external
    )
