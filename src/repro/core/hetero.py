"""Heterogeneous network switch optimization (Section V.B, Figs 14, 16).

Clos leaves can be disaggregated into several smaller leaf dies without
changing the switch radix, as long as the spine connections are kept.
Because SSC core power scales near-quadratically with radix, ``s`` dies
of radix ``k/s`` burn only ``1/s`` of the original leaf's core power.
With scaled quarter-capacity (TH-3-like) leaves this cuts total switch
power by the paper's 30.8 %-33.5 % and drops the 300 mm power density
from ~0.69 to ~0.48 W/mm2 — into the water-cooling envelope.

The disaggregated leaf dies of one original leaf together occupy one
grid site (their combined area equals the original leaf's), and their
combined uplink bundle to the spines is unchanged, so the physical
mapping — and hence internal/external I/O power — is identical to the
homogeneous design's. Only the core power changes, which is how this
module computes the optimized breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.design import DesignPoint
from repro.core.power_breakdown import PowerBreakdown
from repro.tech.cooling import CoolingSolution, best_cooling_for
from repro.topology.base import NodeRole
from repro.topology.clos import heterogeneous_clos


@dataclass(frozen=True)
class HeterogeneousResult:
    """Outcome of applying leaf disaggregation to a Clos design."""

    base: DesignPoint
    leaf_split: int
    power: PowerBreakdown
    #: Average hop count increase from disaggregation (the paper: ~1 %).
    hop_latency_overhead: float = 0.01

    @property
    def power_reduction_fraction(self) -> float:
        base_total = self.base.power.total_w
        if base_total == 0:
            return 0.0
        return 1.0 - self.power.total_w / base_total

    @property
    def power_density_w_per_mm2(self) -> float:
        return self.power.total_w / self.base.substrate_area_mm2

    @property
    def cooling(self) -> CoolingSolution:
        solution = best_cooling_for(
            self.power.total_w, self.base.substrate_area_mm2
        )
        if solution is None:
            raise ValueError("design exceeds every cooling envelope")
        return solution


def apply_heterogeneity(
    design: DesignPoint, leaf_split: int = 4
) -> HeterogeneousResult:
    """Replace the design's Clos leaves with disaggregated scaled dies.

    Args:
        design: A feasible homogeneous Clos design point.
        leaf_split: Dies per original leaf (2 = TH-4-like halves,
            4 = TH-3-like quarters, the paper's headline configuration).
    """
    leaves = design.topology.leaves()
    spines = design.topology.spines()
    if not leaves or not spines:
        raise ValueError(
            "heterogeneity applies to Clos topologies with leaf and spine roles"
        )
    ssc = spines[0].chiplet
    hetero_topology = heterogeneous_clos(
        design.topology.radix, ssc, leaf_split=leaf_split
    )
    new_core = sum(
        node.chiplet.core_power_w for node in hetero_topology.nodes
    )
    return HeterogeneousResult(
        base=design,
        leaf_split=leaf_split,
        power=design.power.scaled_core(new_core),
    )


def leaf_core_power_w(design: DesignPoint) -> float:
    """Core power of the leaf tier only (for reports)."""
    return sum(
        node.chiplet.core_power_w
        for node in design.topology.nodes
        if node.role is NodeRole.LEAF
    )
