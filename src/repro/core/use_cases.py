"""End-to-end use cases of a waferscale switch (Section VIII.B).

Provides the comparison math behind Tables III, VI, VII, VIII, and IX:
folded-Clos switch-network accounting (switch/cable/hop/RU counts for a
given endpoint count and box radix), and the three deployment scenarios
— single-switch datacenter, singular GPU cluster, and a DCN whose spine
is built from waferscale switches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class SwitchNetwork:
    """A folded multi-level Clos network built from discrete switch boxes."""

    endpoints: int
    box_radix: int
    levels: int
    switch_count: int
    cable_count: int
    worst_case_hops: int
    rack_units: int
    port_bandwidth_gbps: float

    @property
    def bisection_bandwidth_gbps(self) -> float:
        return self.endpoints / 2.0 * self.port_bandwidth_gbps


def clos_network_of_boxes(
    endpoints: int,
    box_radix: int,
    port_bandwidth_gbps: float,
    rack_units_per_box: int = 2,
) -> SwitchNetwork:
    """Size the minimal full-bisection folded Clos for the endpoints.

    A folded Clos of ``L`` levels built from radix-``k`` boxes supports
    up to ``k * (k/2)^(L-1)`` endpoints with ``(2L - 1) * N / k``
    switches (Table VI's ``3(N/k)`` at L=2), ``N * L`` cables (one per
    endpoint plus one per level boundary), and ``2L - 1`` worst-case
    switch hops.
    """
    if endpoints < 1 or box_radix < 2:
        raise ValueError("need endpoints >= 1 and box_radix >= 2")
    if endpoints <= box_radix:
        levels = 1
    else:
        levels = 1 + math.ceil(
            math.log(endpoints / box_radix) / math.log(box_radix / 2)
        )
    if levels == 1:
        switch_count = 1
        cable_count = endpoints
        hops = 1
    else:
        switch_count = (2 * levels - 1) * math.ceil(endpoints / box_radix)
        cable_count = endpoints * levels
        hops = 2 * levels - 1
    return SwitchNetwork(
        endpoints=endpoints,
        box_radix=box_radix,
        levels=levels,
        switch_count=switch_count,
        cable_count=cable_count,
        worst_case_hops=hops,
        rack_units=switch_count * rack_units_per_box,
        port_bandwidth_gbps=port_bandwidth_gbps,
    )


def microarchitecture_chiplet_counts(
    n_ports: int, ssc_radix: int
) -> Dict[str, int]:
    """Chiplets needed by Clos vs hierarchical/modular crossbar (Table VI).

    A Clos needs ``3(N/k)`` chiplets; hierarchical and modular crossbars
    both need a full ``(N/k)^2`` array.
    """
    if n_ports % ssc_radix != 0:
        raise ValueError("n_ports must be a multiple of the SSC radix")
    blocks = n_ports // ssc_radix
    return {
        "clos": 3 * blocks,
        "hierarchical-crossbar": blocks * blocks,
        "modular-crossbar": blocks * blocks,
    }


# ----------------------------------------------------------------------
# Table III: modular routers vs waferscale switches
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RouterComparisonRow:
    """One column of Table III."""

    name: str
    space_ru: float
    total_bandwidth_tbps: float
    port_count_200g: int
    total_power_kw: float

    @property
    def power_per_port_w(self) -> float:
        return self.total_power_kw * 1000.0 / self.port_count_200g

    @property
    def capacity_density_tbps_per_ru(self) -> float:
        return self.total_bandwidth_tbps / self.space_ru


#: Commercial modular router datapoints the paper compares against.
MODULAR_ROUTERS = (
    RouterComparisonRow("Cisco Nexus 9800", 16, 115.2, 576, 11.2),
    RouterComparisonRow("Juniper PTX10000", 21, 230.4, 1152, 25.9),
    RouterComparisonRow("Huawei NE8000", 15.8, 115.2, 576, 11.0),
)


def waferscale_router_row(
    substrate_side_mm: float, n_ports: int, total_power_w: float, rack_units: int
) -> RouterComparisonRow:
    """Build the WS column of Table III from a sized design."""
    return RouterComparisonRow(
        name=f"WS ({substrate_side_mm:g}mm)",
        space_ru=rack_units,
        total_bandwidth_tbps=n_ports * 200.0 / 1000.0,
        port_count_200g=n_ports,
        total_power_kw=total_power_w / 1000.0,
    )


def modular_switch_comparison(
    ws_rows: List[RouterComparisonRow],
) -> List[RouterComparisonRow]:
    """Table III: the three commercial routers plus the WS designs."""
    return list(MODULAR_ROUTERS) + list(ws_rows)


# ----------------------------------------------------------------------
# Table VII: single-switch datacenter
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DeploymentComparison:
    """A waferscale deployment vs its conventional switch-network twin."""

    label: str
    endpoints: int
    ws_switches: int
    ws_cables: int
    ws_hops: int
    ws_rack_units: int
    baseline_switches: int
    baseline_cables: int
    baseline_hops: int
    baseline_rack_units: int
    port_bandwidth_gbps: float

    @property
    def bisection_bandwidth_gbps(self) -> float:
        return self.endpoints / 2.0 * self.port_bandwidth_gbps

    @property
    def cable_reduction(self) -> float:
        return 1.0 - self.ws_cables / self.baseline_cables

    @property
    def rack_space_reduction(self) -> float:
        return 1.0 - self.ws_rack_units / self.baseline_rack_units


def datacenter_comparison(
    servers: int = 8192,
    ws_rack_units: int = 20,
    th5_radix: int = 256,
) -> DeploymentComparison:
    """Table VII: single-switch datacenter vs an equivalent TH-5 Clos."""
    baseline = clos_network_of_boxes(servers, th5_radix, 200.0)
    return DeploymentComparison(
        label=f"single-switch datacenter ({servers} servers)",
        endpoints=servers,
        ws_switches=1,
        ws_cables=servers,
        ws_hops=1,
        ws_rack_units=ws_rack_units,
        baseline_switches=baseline.switch_count,
        baseline_cables=baseline.cable_count,
        baseline_hops=baseline.worst_case_hops,
        baseline_rack_units=baseline.rack_units,
        port_bandwidth_gbps=200.0,
    )


# ----------------------------------------------------------------------
# Table VIII: singular GPU cluster
# ----------------------------------------------------------------------

#: DGX GH200 NVSwitch-network reference values (the paper's baseline).
NVSWITCH_BASELINE = {
    "gpus": 256,
    "switches": 132,
    "cables": 2304,
    "hops": 3,
    "rack_units": 195,
    "port_bandwidth_gbps": 900.0,
    "bisection_tbps": 115.2,
}


def gpu_cluster_comparison(
    gpus: int = 2048,
    ws_rack_units: int = 20,
    port_bandwidth_gbps: float = 800.0,
) -> DeploymentComparison:
    """Table VIII: singular GPU on a WS switch vs an NVSwitch network."""
    return DeploymentComparison(
        label=f"singular GPU ({gpus} GPUs @ {port_bandwidth_gbps:g}G)",
        endpoints=gpus,
        ws_switches=1,
        ws_cables=gpus,
        ws_hops=1,
        ws_rack_units=ws_rack_units,
        baseline_switches=NVSWITCH_BASELINE["switches"],
        baseline_cables=NVSWITCH_BASELINE["cables"],
        baseline_hops=NVSWITCH_BASELINE["hops"],
        baseline_rack_units=NVSWITCH_BASELINE["rack_units"],
        port_bandwidth_gbps=port_bandwidth_gbps,
    )


# ----------------------------------------------------------------------
# Table IX: hyperscale DCN spine
# ----------------------------------------------------------------------

def dcn_comparison(
    racks: int = 16384,
    links_per_rack: int = 2,
    link_bandwidth_gbps: float = 800.0,
    ws_box_radix: int = 2048,
    ws_rack_units_per_box: int = 20,
    baseline_box_radix: int = 64,
    baseline_rack_units_per_box: int = 2,
) -> DeploymentComparison:
    """Table IX: DCN spine built from WS switches vs TH-5 boxes.

    Each rack's TOR connects upward with ``links_per_rack`` links; the
    spine is the minimal full-bisection folded Clos over those uplinks,
    built either from 2048 x 800G waferscale switches or from TH-5
    boxes in their 64 x 800G configuration.
    """
    uplinks = racks * links_per_rack
    ws = clos_network_of_boxes(
        uplinks, ws_box_radix, link_bandwidth_gbps, ws_rack_units_per_box
    )
    baseline = clos_network_of_boxes(
        uplinks,
        baseline_box_radix,
        link_bandwidth_gbps,
        baseline_rack_units_per_box,
    )
    return DeploymentComparison(
        label=f"DCN spine ({racks} racks x {links_per_rack} uplinks)",
        endpoints=uplinks,
        ws_switches=ws.switch_count,
        ws_cables=ws.cable_count,
        ws_hops=ws.worst_case_hops,
        ws_rack_units=ws.rack_units,
        baseline_switches=baseline.switch_count,
        baseline_cables=baseline.cable_count,
        baseline_hops=baseline.worst_case_hops,
        baseline_rack_units=baseline.rack_units,
        port_bandwidth_gbps=link_bandwidth_gbps,
    )
