"""Physical Clos vs mapped Clos (Section VII "Constructing a physical
Clos", Fig 26).

Instead of mapping the Clos onto a mesh with feedthrough repeaters, one
can wire every logical link as a dedicated interposer trace bundle with
standalone repeaters. The wiring then competes with the SSCs for
substrate area: each channel occupies ``port_bw / (layer density)`` of
trace width per signal layer across its routed length. The paper finds
that physical Clos always reaches a lower radix than mapped Clos, and
burns ~10 % more power at iso-radix (dedicated repeaters are less
efficient than the SSC-integrated feedthrough lanes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.design import cached_mapping
from repro.core.power_breakdown import PowerBreakdown, external_io_power_w
from repro.mapping.routing import IOStyle
from repro.tech.chiplet import SubSwitchChiplet, tomahawk5
from repro.tech.external_io import ExternalIOTechnology
from repro.tech.wsi import WSITechnology
from repro.topology.clos import folded_clos
from repro.units import io_power_watts

#: Dedicated traces detour around chiplets (power-delivery regions under
#: the dies are unavailable), lengthening them vs the Manhattan path.
TRACE_DETOUR_FACTOR = 1.3

#: Dedicated wiring regions need keep-outs, shielding, via fields and
#: repeater placement sites, and cannot use the area under the dies
#: (reserved for power delivery) — so trace bundles crowd into the
#: inter-die channels, and the effective substrate area a bundle
#: consumes is several times its raw copper area. With this factor the
#: model reproduces Fig 26's finding that a physical Clos always
#: supports a lower radix than the mapped Clos, at every internal
#: bandwidth density and substrate size.
ROUTING_OVERHEAD_FACTOR = 5.0

#: Standalone repeater lanes cost ~10 % more energy per bit than the
#: SSC-integrated feedthrough lanes of the mapped design, and the
#: repeater macros burn static (clocking/bias) power that integrated
#: feedthroughs amortize into the SSC (Fig 26c's ~10 % total overhead).
REPEATER_ENERGY_OVERHEAD = 1.10
REPEATER_STATIC_W_PER_CHANNEL_HOP = 0.25


@dataclass(frozen=True)
class PhysicalClosResult:
    """Feasibility and power of a physical (dedicated-wire) Clos."""

    substrate_side_mm: float
    n_ports: int
    chiplet_area_mm2: float
    wiring_area_mm2: float
    feasible: bool
    power: PowerBreakdown


def wiring_area_mm2(
    total_channel_hops: int,
    port_bandwidth_gbps: float,
    wsi: WSITechnology,
    chiplet_side_mm: float,
) -> float:
    """Substrate area consumed by dedicated trace bundles.

    ``total_channel_hops`` counts channel x hop products where one hop
    spans one chiplet pitch; each channel-hop is a trace of length
    ``chiplet_side x detour`` and width ``port_bw / density-per-layer``
    divided across the available signal layers.
    """
    width_mm = port_bandwidth_gbps / (
        wsi.bandwidth_density_gbps_per_mm_per_layer * wsi.signal_layers
    )
    length_mm = chiplet_side_mm * TRACE_DETOUR_FACTOR
    return total_channel_hops * length_mm * width_mm * ROUTING_OVERHEAD_FACTOR


def evaluate_physical_clos(
    substrate_side_mm: float,
    n_ports: int,
    wsi: WSITechnology,
    external_io: Optional[ExternalIOTechnology],
    ssc: Optional[SubSwitchChiplet] = None,
    mapping_restarts: int = 2,
) -> PhysicalClosResult:
    """Evaluate a physical Clos of the given radix on the substrate."""
    chiplet = ssc if ssc is not None else tomahawk5()
    topology = folded_clos(n_ports, chiplet)
    # Dedicated wires have no shared-edge bottleneck; the relevant
    # placement objective is total wire length, which the exchange
    # optimizer's tie-breaker minimizes once max-load is tied (we reuse
    # the optimizer — and its cache — since dedicated wires still follow
    # the same Manhattan routes between sites).
    mapping = cached_mapping(
        topology,
        IOStyle.PERIPHERY if external_io is not None else IOStyle.NONE,
        restarts=mapping_restarts,
    )
    wiring = wiring_area_mm2(
        mapping.total_channel_hops,
        topology.port_bandwidth_gbps,
        wsi,
        chiplet.side_mm,
    )
    chip_area = topology.total_chiplet_area_mm2
    usable = substrate_side_mm * substrate_side_mm
    ext_ok = (
        external_io is None
        or 2.0 * n_ports * topology.port_bandwidth_gbps
        <= external_io.capacity_gbps(substrate_side_mm)
    )
    feasible = (chip_area + wiring) <= usable and ext_ok

    core = sum(node.chiplet.core_power_w for node in topology.nodes)
    internal = (
        io_power_watts(
            2.0 * mapping.total_channel_hops * topology.port_bandwidth_gbps,
            wsi.energy_pj_per_bit * REPEATER_ENERGY_OVERHEAD * TRACE_DETOUR_FACTOR,
        )
        + mapping.total_channel_hops * REPEATER_STATIC_W_PER_CHANNEL_HOP
    )
    external = external_io_power_w(
        n_ports, topology.port_bandwidth_gbps, external_io
    )
    return PhysicalClosResult(
        substrate_side_mm=substrate_side_mm,
        n_ports=n_ports,
        chiplet_area_mm2=chip_area,
        wiring_area_mm2=wiring,
        feasible=feasible,
        power=PowerBreakdown(
            ssc_core_w=core, internal_io_w=internal, external_io_w=external
        ),
    )


def max_physical_clos_ports(
    substrate_side_mm: float,
    wsi: WSITechnology,
    external_io: Optional[ExternalIOTechnology],
    ssc: Optional[SubSwitchChiplet] = None,
) -> int:
    """Largest power-of-two-multiple radix a physical Clos supports."""
    chiplet = ssc if ssc is not None else tomahawk5()
    best = 0
    n_ports = chiplet.radix
    while True:
        result = evaluate_physical_clos(
            substrate_side_mm, n_ports, wsi, external_io, ssc=chiplet
        )
        if not result.feasible:
            return best
        best = n_ports
        n_ports *= 2
