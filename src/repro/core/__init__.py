"""Waferscale network switch design-space core (the paper's contribution).

This package ties together the technology, topology, and mapping layers
into the paper's analyses:

* :mod:`repro.core.design` / :mod:`repro.core.constraints` — evaluate a
  candidate switch design against area, internal-bandwidth,
  external-bandwidth and cooling constraints.
* :mod:`repro.core.explorer` — find the maximum feasible radix for a
  substrate / technology combination (Figs 6, 7, 9, 12, 17, 18, 25, 27, 28).
* :mod:`repro.core.power_breakdown` — SSC core / internal I/O /
  external I/O power accounting (Figs 10, 11, 13, 26c).
* :mod:`repro.core.hetero` — the heterogeneous switch optimization
  (Section V.B, Figs 14, 16).
* :mod:`repro.core.deradix` — subswitch deradixing (Section V.C,
  Figs 17, 18, 19).
* :mod:`repro.core.physical_clos` — physical-Clos alternative (Fig 26).
* :mod:`repro.core.system_arch` — enclosure, power delivery, cooling
  loop and front-panel sizing (Section VIII.A, Figs 29, 30).
* :mod:`repro.core.use_cases` / :mod:`repro.core.costs` — single-switch
  datacenter, singular GPU, and DCN comparisons (Tables III, VI-IX).
"""

from repro.core.buffering import (
    buffer_requirements_by_connection,
    required_buffer_bits,
    required_buffer_flits,
)
from repro.core.constraints import ConstraintLimits, ConstraintReport
from repro.core.deradix import deradix_sweep
from repro.core.latency import latency_report
from repro.core.design import DesignPoint, evaluate_design
from repro.core.explorer import (
    clos_radix_candidates,
    ideal_max_ports,
    max_feasible_design,
)
from repro.core.hetero import HeterogeneousResult, apply_heterogeneity
from repro.core.physical_clos import PhysicalClosResult, evaluate_physical_clos
from repro.core.power_breakdown import PowerBreakdown, power_breakdown
from repro.core.system_arch import SystemArchitecture, design_system_architecture
from repro.core.use_cases import (
    datacenter_comparison,
    dcn_comparison,
    gpu_cluster_comparison,
    microarchitecture_chiplet_counts,
    modular_switch_comparison,
)

__all__ = [
    "ConstraintLimits",
    "ConstraintReport",
    "DesignPoint",
    "HeterogeneousResult",
    "PhysicalClosResult",
    "PowerBreakdown",
    "SystemArchitecture",
    "apply_heterogeneity",
    "buffer_requirements_by_connection",
    "clos_radix_candidates",
    "datacenter_comparison",
    "dcn_comparison",
    "deradix_sweep",
    "design_system_architecture",
    "evaluate_design",
    "evaluate_physical_clos",
    "gpu_cluster_comparison",
    "ideal_max_ports",
    "latency_report",
    "max_feasible_design",
    "required_buffer_bits",
    "required_buffer_flits",
    "microarchitecture_chiplet_counts",
    "modular_switch_comparison",
    "power_breakdown",
]
