"""Design-space exploration: maximum feasible radix per configuration.

Walks a topology family's discrete candidate designs in ascending port
count and returns the largest feasible one. Within a family the binding
constraints grow monotonically with port count (more chiplets, more
edge load, more external bandwidth), so the walk stops at the first
infeasible candidate.

Clos candidates follow the paper's power-of-two radix steps
(k, 2k, 4k, ...); direct topologies enumerate their natural grid /
group sizes.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, List, Optional

from repro.core.constraints import AREA_ONLY, ConstraintLimits
from repro.core.design import DesignPoint, evaluate_design
from repro.tech.chiplet import SubSwitchChiplet, tomahawk5
from repro.tech.external_io import ExternalIOTechnology
from repro.tech.wsi import SI_IF, WSITechnology
from repro.topology.base import LogicalTopology
from repro.topology.butterfly import tapered_butterfly
from repro.topology.clos import folded_clos
from repro.topology.dragonfly import dragonfly
from repro.topology.flattened_butterfly import flattened_butterfly
from repro.topology.mesh import direct_mesh

TopologyCandidates = Callable[[SubSwitchChiplet, int], Iterator[LogicalTopology]]


def max_chiplets_for(substrate_side_mm: float, ssc: SubSwitchChiplet) -> int:
    """Area-capacity chiplet budget for a square substrate."""
    return int(substrate_side_mm * substrate_side_mm // ssc.area_mm2)


def clos_radix_candidates(ssc: SubSwitchChiplet, max_chiplets: int) -> List[int]:
    """Power-of-two multiples of the SSC radix that fit the area budget."""
    candidates = []
    multiplier = 1
    while 3 * multiplier <= max_chiplets:
        candidates.append(multiplier * ssc.radix)
        multiplier *= 2
    return candidates


def _clos_candidates(
    ssc: SubSwitchChiplet, max_chiplets: int
) -> Iterator[LogicalTopology]:
    for n_ports in clos_radix_candidates(ssc, max_chiplets):
        yield folded_clos(n_ports, ssc)


def _mesh_candidates(
    ssc: SubSwitchChiplet, max_chiplets: int
) -> Iterator[LogicalTopology]:
    for side in range(2, int(math.isqrt(max_chiplets)) + 1):
        yield direct_mesh(side, side, ssc)


def _butterfly_candidates(
    ssc: SubSwitchChiplet, max_chiplets: int
) -> Iterator[LogicalTopology]:
    leaf_count = 2
    while True:
        usable = ssc.radix - ssc.radix % 3
        down = usable - usable // 3
        topo_chiplets = leaf_count + math.ceil(leaf_count * (usable // 3) / ssc.radix)
        if topo_chiplets > max_chiplets:
            return
        yield tapered_butterfly(leaf_count * down, ssc, taper=2)
        leaf_count *= 2


def _dragonfly_candidates(
    ssc: SubSwitchChiplet, max_chiplets: int
) -> Iterator[LogicalTopology]:
    routers_per_group = 8
    max_groups = (routers_per_group // 2) ** 2 * 4 + 1  # a*h + 1
    for groups in range(2, max_chiplets // routers_per_group + 1):
        if groups > max_groups:
            return
        yield dragonfly(groups, routers_per_group, ssc)


def _flattened_butterfly_candidates(
    ssc: SubSwitchChiplet, max_chiplets: int
) -> Iterator[LogicalTopology]:
    for side in range(2, int(math.isqrt(max_chiplets)) + 1):
        yield flattened_butterfly(side, side, ssc)


TOPOLOGY_FAMILIES = {
    "clos": _clos_candidates,
    "mesh": _mesh_candidates,
    "butterfly": _butterfly_candidates,
    "dragonfly": _dragonfly_candidates,
    "flattened-butterfly": _flattened_butterfly_candidates,
}


def max_feasible_design(
    substrate_side_mm: float,
    ssc: Optional[SubSwitchChiplet] = None,
    wsi: WSITechnology = SI_IF,
    external_io: Optional[ExternalIOTechnology] = None,
    limits: ConstraintLimits = ConstraintLimits(),
    family: str = "clos",
    mapping_restarts: int = 2,
) -> Optional[DesignPoint]:
    """Largest feasible design of the family on this substrate.

    Returns None when even the smallest candidate is infeasible (for a
    Clos that means a waferscale switch cannot beat a single SSC).
    """
    chiplet = ssc if ssc is not None else tomahawk5()
    try:
        candidates = TOPOLOGY_FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown topology family {family!r}; "
            f"choose from {sorted(TOPOLOGY_FAMILIES)}"
        ) from None

    budget = max_chiplets_for(substrate_side_mm, chiplet)
    best: Optional[DesignPoint] = None
    for topology in candidates(chiplet, budget):
        point = evaluate_design(
            substrate_side_mm,
            topology,
            wsi,
            external_io,
            limits=limits,
            mapping_restarts=mapping_restarts,
        )
        if not point.feasible:
            break
        best = point
    return best


def ideal_max_ports(
    substrate_side_mm: float,
    ssc: Optional[SubSwitchChiplet] = None,
    family: str = "clos",
) -> int:
    """Area-only maximum port count (the Fig 6 ideal case)."""
    point = max_feasible_design(
        substrate_side_mm,
        ssc=ssc,
        external_io=None,
        limits=AREA_ONLY,
        family=family,
    )
    return point.n_ports if point is not None else 0
