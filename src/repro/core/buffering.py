"""Analytic buffer sizing (Section VI's ``B = RTT x BW / sqrt(n)``).

The paper's low-latency-buffering argument: on-wafer links cut RTT by
an order of magnitude versus in-rack PCB or optical links (Table V), so
the Appenzeller/Keslassy/McKeown rule sizes SSC buffers small enough
for fast SRAM rather than DRAM. This module computes those sizes and
the resulting reduction factors, and is validated against the
simulator's fig21 sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tech.data import CONNECTION_LATENCIES_NS
from repro.units import require_positive

#: Buffers below this size comfortably fit on-die SRAM; larger buffers
#: historically push switch designs to off-chip DRAM/HBM (Section VI's
#: "fast SRAM instead of slower DRAM" point).
SRAM_BUFFER_LIMIT_BITS = 256e6


def required_buffer_bits(
    rtt_ns: float, bandwidth_gbps: float, n_flows: int = 1
) -> float:
    """Buffer-sizing rule ``B = RTT x BW / sqrt(n)`` in bits."""
    require_positive("rtt_ns", rtt_ns)
    require_positive("bandwidth_gbps", bandwidth_gbps)
    if n_flows < 1:
        raise ValueError("n_flows must be >= 1")
    return rtt_ns * bandwidth_gbps / math.sqrt(n_flows)


def required_buffer_flits(
    rtt_ns: float,
    bandwidth_gbps: float,
    n_flows: int = 1,
    flit_bits: int = 4096,
) -> int:
    """The same rule, rounded up to whole flits."""
    bits = required_buffer_bits(rtt_ns, bandwidth_gbps, n_flows)
    return max(1, math.ceil(bits / flit_bits))


@dataclass(frozen=True)
class BufferRequirement:
    """Sizing for one connection type."""

    connection: str
    rtt_ns: float
    buffer_bits: float

    @property
    def fits_sram(self) -> bool:
        return self.buffer_bits <= SRAM_BUFFER_LIMIT_BITS

    @property
    def buffer_mbit(self) -> float:
        return self.buffer_bits / 1e6


def buffer_requirements_by_connection(
    bandwidth_gbps: float = 51200.0, n_flows: int = 256
) -> dict:
    """Buffer requirement per Table V connection type.

    Defaults model a full TH-5-class SSC (51.2 Tbps aggregate) carrying
    one flow per port. RTT is twice the one-way latency.
    """
    requirements = {}
    for connection, (low_ns, high_ns) in CONNECTION_LATENCIES_NS.items():
        rtt = 2.0 * high_ns
        requirements[connection] = BufferRequirement(
            connection=connection,
            rtt_ns=rtt,
            buffer_bits=required_buffer_bits(rtt, bandwidth_gbps, n_flows),
        )
    return requirements


def on_wafer_buffer_reduction(n_flows: int = 256) -> float:
    """How much smaller on-wafer buffers are vs 100 m optical links."""
    requirements = buffer_requirements_by_connection(n_flows=n_flows)
    return (
        requirements["100m optical"].buffer_bits
        / requirements["on-wafer"].buffer_bits
    )
