"""On-wafer latency statistics for a mapped design (Section III.C).

The paper bounds the worst-case SSC-to-SSC latency at ``2N`` ns for an
``N x N`` chiplet array (1 ns per hop) and claims leaf disaggregation
adds only ~1 % average hop latency. This module derives those numbers
from an actual mapping: per-logical-link hop distances, the switch's
ingress-to-egress path latency through a spine, and the comparison
against a discrete switch network built from Table V link latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.mapping.exchange import MappingResult
from repro.tech.data import CONNECTION_LATENCIES_NS
from repro.topology.base import NodeRole


@dataclass(frozen=True)
class LatencyReport:
    """Hop/latency statistics of one mapped topology."""

    hop_latency_ns: float
    max_link_hops: int
    mean_link_hops: float
    worst_case_bound_hops: int
    #: Average leaf -> spine -> leaf traversal in hops (channel-weighted).
    mean_switch_traversal_hops: float

    @property
    def max_link_latency_ns(self) -> float:
        return self.max_link_hops * self.hop_latency_ns

    @property
    def mean_switch_traversal_ns(self) -> float:
        return self.mean_switch_traversal_hops * self.hop_latency_ns


def _link_hops(mapping: MappingResult) -> List[int]:
    placement = mapping.placement
    return [
        placement.grid.manhattan(
            placement.site_of[link.a], placement.site_of[link.b]
        )
        for link in placement.topology.links
    ]


def latency_report(
    mapping: MappingResult, hop_latency_ns: float = 1.0
) -> LatencyReport:
    """Latency statistics of a mapped topology."""
    topology = mapping.placement.topology
    hops = _link_hops(mapping)
    weights = [link.channels for link in topology.links]
    total_channels = sum(weights)
    mean_hops = (
        sum(h * w for h, w in zip(hops, weights)) / total_channels
        if total_channels
        else 0.0
    )
    grid = mapping.placement.grid
    # Section III.C: worst case is one full traversal each way.
    bound = 2 * max(grid.rows, grid.cols)

    # Channel-weighted average up-hop; a traversal is up + down.
    up_hops: Dict[int, float] = {}
    up_weight = 0.0
    up_total = 0.0
    for link, h in zip(topology.links, hops):
        a_role = topology.nodes[link.a].role
        b_role = topology.nodes[link.b].role
        if NodeRole.SPINE in (a_role, b_role) and NodeRole.LEAF in (a_role, b_role):
            up_total += h * link.channels
            up_weight += link.channels
    mean_up = up_total / up_weight if up_weight else mean_hops
    return LatencyReport(
        hop_latency_ns=hop_latency_ns,
        max_link_hops=max(hops) if hops else 0,
        mean_link_hops=mean_hops,
        worst_case_bound_hops=bound,
        mean_switch_traversal_hops=2.0 * mean_up,
    )


def disaggregation_hop_overhead(
    base: MappingResult, hop_latency_ns: float = 1.0
) -> float:
    """Fractional hop-latency increase from leaf disaggregation.

    Disaggregated leaf dies within one site add a sub-hop (half the
    site pitch on average) between the die and the site's edge; against
    the mean switch traversal this is the paper's ~1 % overhead.
    """
    report = latency_report(base, hop_latency_ns)
    if report.mean_switch_traversal_hops == 0:
        return 0.0
    intra_site_hops = 0.5 * 0.5  # half-pitch, both endpoints leaf-side once
    return intra_site_hops / report.mean_switch_traversal_hops


def switch_network_traversal_ns(levels: int = 2) -> float:
    """Ingress-to-egress wire latency of a discrete Clos (Table V).

    A 2-level discrete Clos crosses 2 x (levels) in-rack/optical links;
    we charge the in-rack PCB midpoint per inter-switch link.
    """
    low, high = CONNECTION_LATENCIES_NS["in-rack PCB"]
    per_link = (low + high) / 2.0
    return 2.0 * levels * per_link
