"""System-level architecture of a waferscale switch (Section VIII.A).

Sizes the enclosure around a given switch design: power-supply chain
(PSUs -> 48V/12V DC-DC converters -> VRMs on the wafer back side),
cold-plate cooling loops, front-panel optical adapters, and the
resulting rack-unit budget. Reproduces the paper's 300 mm reference
point (25 PSUs, 50 DC-DC converters, ~420 VRMs, 36 passive cold-plate
loops fed by 12 supply channels, 2052 CS adapters in 19RU + 1RU
management = 20RU) and the derived 200 mm variant (11RU).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import require_positive

#: Component capabilities from the paper's cited parts.
PSU_POWER_W = 4000.0  # high-density server PSU
DCDC_POWER_W = 1000.0  # 48V -> 12V converter module (27 x 18 mm)
DCDC_AREA_MM2 = 27.0 * 18.0
VRM_CURRENT_A = 130.0  # 12V -> <2V VRM (10 x 9 mm)
VRM_AREA_MM2 = 10.0 * 9.0
VRM_REDUNDANCY = 1.10  # 10 % spare VRMs
SSC_SUPPLY_VOLTAGE = 0.80  # V (0.75-1.2 V rails; worst case current)
NON_ASIC_OVERHEAD_W = 5000.0  # fans, management, misc (the paper's 5 kW)

#: Cooling-loop geometry: one passive cold plate (PCL) covers a 2x2
#: chiplet tile and dissipates up to 1.6 kW; three consecutive PCLs
#: share one supply channel pair.
PCL_TILE = 2
PCL_POWER_W = 1600.0
PCLS_PER_SUPPLY_CHANNEL = 3
PCL_FLOW_LFM = (10.0, 12.0)  # deionized water linear feet per minute
PCL_PRESSURE_PSI = 10.0
COOLANT_INLET_C = 20.0
JUNCTION_TEMPERATURE_C = (70.0, 80.0)

#: Front panel: CS optical adapters per rack unit, and the management
#: server at the top of the chassis.
ADAPTERS_PER_RU = 108
MANAGEMENT_RU = 1
#: Front-panel adapters carry 800G each; higher-radix configurations
#: bifurcate one adapter into multiple ports with splitter cables.
ADAPTER_BANDWIDTH_GBPS = 800.0


@dataclass(frozen=True)
class SystemArchitecture:
    """Sized enclosure for one waferscale switch."""

    substrate_side_mm: float
    n_ports: int
    port_bandwidth_gbps: float
    asic_power_w: float
    # Power delivery
    total_power_w: float
    psu_count: int
    dcdc_count: int
    vrm_count: int
    backside_component_area_mm2: float
    # Cooling
    pcl_count: int
    supply_channel_count: int
    # Front panel
    adapter_count: int
    front_panel_ru: int
    total_ru: int

    @property
    def total_bandwidth_gbps(self) -> float:
        return self.n_ports * self.port_bandwidth_gbps

    @property
    def power_per_port_w(self) -> float:
        return self.total_power_w / self.n_ports

    @property
    def capacity_density_tbps_per_ru(self) -> float:
        return self.total_bandwidth_gbps / 1000.0 / self.total_ru


def design_system_architecture(
    substrate_side_mm: float,
    n_ports: int,
    port_bandwidth_gbps: float,
    asic_power_w: float,
    chiplet_array_side: int = 12,
) -> SystemArchitecture:
    """Size the full enclosure for a switch design.

    Args:
        substrate_side_mm: Substrate size (300 or 200 in the paper).
        n_ports: Switch radix.
        port_bandwidth_gbps: Line rate per port.
        asic_power_w: Power of the wafer (SSCs + on-wafer I/O).
        chiplet_array_side: Switching + I/O chiplet array dimension
            (12x12 for the paper's largest 300 mm system).
    """
    require_positive("asic_power_w", asic_power_w)
    if n_ports < 1:
        raise ValueError("n_ports must be >= 1")

    total_power = asic_power_w + NON_ASIC_OVERHEAD_W
    # N+N redundant PSUs: provision twice the total budget.
    psu_count = math.ceil(2.0 * total_power / PSU_POWER_W)
    dcdc_count = math.ceil(total_power / DCDC_POWER_W)
    supply_current_a = asic_power_w / SSC_SUPPLY_VOLTAGE
    vrm_count = math.ceil(supply_current_a / VRM_CURRENT_A * VRM_REDUNDANCY)
    backside_area = dcdc_count * DCDC_AREA_MM2 + vrm_count * VRM_AREA_MM2
    wafer_area = substrate_side_mm * substrate_side_mm
    if backside_area > wafer_area:
        raise ValueError(
            "power delivery components do not fit under the wafer "
            f"({backside_area:.0f} of {wafer_area:.0f} mm2)"
        )

    pcl_count = math.ceil(chiplet_array_side / PCL_TILE) ** 2
    if asic_power_w > pcl_count * PCL_POWER_W:
        raise ValueError(
            f"cooling loops ({pcl_count} x {PCL_POWER_W:.0f} W) cannot "
            f"dissipate {asic_power_w:.0f} W"
        )
    supply_channels = math.ceil(pcl_count / PCLS_PER_SUPPLY_CHANNEL)

    total_bandwidth = n_ports * port_bandwidth_gbps
    adapter_count = math.ceil(total_bandwidth / ADAPTER_BANDWIDTH_GBPS)
    front_panel_ru = math.ceil(adapter_count / ADAPTERS_PER_RU)
    total_ru = front_panel_ru + MANAGEMENT_RU

    return SystemArchitecture(
        substrate_side_mm=substrate_side_mm,
        n_ports=n_ports,
        port_bandwidth_gbps=port_bandwidth_gbps,
        asic_power_w=asic_power_w,
        total_power_w=total_power,
        psu_count=psu_count,
        dcdc_count=dcdc_count,
        vrm_count=vrm_count,
        backside_component_area_mm2=backside_area,
        pcl_count=pcl_count,
        supply_channel_count=supply_channels,
        adapter_count=adapter_count,
        front_panel_ru=front_panel_ru,
        total_ru=total_ru,
    )


def reference_300mm_architecture(asic_power_w: float = 45000.0) -> SystemArchitecture:
    """The paper's 300 mm reference system (8192 x 200G, ~45 kW wafer)."""
    return design_system_architecture(
        substrate_side_mm=300.0,
        n_ports=8192,
        port_bandwidth_gbps=200.0,
        asic_power_w=asic_power_w,
        chiplet_array_side=12,
    )


def reference_200mm_architecture(asic_power_w: float = 20000.0) -> SystemArchitecture:
    """The derived 200 mm system (4096 x 200G)."""
    return design_system_architecture(
        substrate_side_mm=200.0,
        n_ports=4096,
        port_bandwidth_gbps=200.0,
        asic_power_w=asic_power_w,
        chiplet_array_side=8,
    )
