"""Datacenter network cost model (Section VIII.B, Table IX discussion).

The paper's headline: consolidating a DCN spine into waferscale
switches removes ~66 % of optical links and ~94 % of spine rack space,
worth millions of dollars at hyperscale. Cost constants come from the
paper's citations: $5000 per 800G QSFP-DD transceiver module, $400 per
km of optical fiber, and $75-$300 per RU-month of colocation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.use_cases import DeploymentComparison

TRANSCEIVER_COST_USD = 5000.0  # one 800G QSFP-DD module
TRANSCEIVERS_PER_CABLE = 2  # one at each end
FIBER_COST_USD_PER_KM = 400.0
AVERAGE_FIBER_RUN_KM = 0.1  # intra-datacenter average run
COLOCATION_USD_PER_RU_MONTH = (75.0, 300.0)
MONTHS_PER_YEAR = 12


@dataclass(frozen=True)
class CostComparison:
    """Capital + yearly space cost of a deployment vs its baseline."""

    comparison: DeploymentComparison
    ws_optics_usd: float
    baseline_optics_usd: float
    ws_space_usd_per_year_low: float
    ws_space_usd_per_year_high: float
    baseline_space_usd_per_year_low: float
    baseline_space_usd_per_year_high: float

    @property
    def optics_savings_usd(self) -> float:
        return self.baseline_optics_usd - self.ws_optics_usd

    @property
    def space_savings_usd_per_year(self) -> tuple:
        return (
            self.baseline_space_usd_per_year_low - self.ws_space_usd_per_year_low,
            self.baseline_space_usd_per_year_high
            - self.ws_space_usd_per_year_high,
        )

    @property
    def total_first_year_savings_usd(self) -> tuple:
        low, high = self.space_savings_usd_per_year
        return (self.optics_savings_usd + low, self.optics_savings_usd + high)


def optics_cost_usd(cable_count: int) -> float:
    """Transceivers plus fiber for the given optical cable count."""
    transceivers = cable_count * TRANSCEIVERS_PER_CABLE * TRANSCEIVER_COST_USD
    fiber = cable_count * AVERAGE_FIBER_RUN_KM * FIBER_COST_USD_PER_KM
    return transceivers + fiber


def space_cost_usd_per_year(rack_units: int) -> tuple:
    """(low, high) yearly colocation cost for the rack units."""
    low, high = COLOCATION_USD_PER_RU_MONTH
    return (
        rack_units * low * MONTHS_PER_YEAR,
        rack_units * high * MONTHS_PER_YEAR,
    )


def compare_costs(comparison: DeploymentComparison) -> CostComparison:
    """Cost the WS deployment against its conventional baseline."""
    ws_low, ws_high = space_cost_usd_per_year(comparison.ws_rack_units)
    base_low, base_high = space_cost_usd_per_year(comparison.baseline_rack_units)
    return CostComparison(
        comparison=comparison,
        ws_optics_usd=optics_cost_usd(comparison.ws_cables),
        baseline_optics_usd=optics_cost_usd(comparison.baseline_cables),
        ws_space_usd_per_year_low=ws_low,
        ws_space_usd_per_year_high=ws_high,
        baseline_space_usd_per_year_low=base_low,
        baseline_space_usd_per_year_high=base_high,
    )
