"""Static source fingerprinting shared by every on-disk cache.

A **source fingerprint** is a hash over the source text of every
``repro`` module a given module (transitively) imports — computed from
a static AST import scan, so no code is ever executed to derive a
cache key. Both the experiment result cache
(:mod:`repro.experiments.cache`) and the persistent mapping store
(:mod:`repro.mapping.store`) key their entries on these fingerprints;
the helpers live here, below both, because imports in this codebase
only point downward (see ``docs/architecture.md``).

The scan is deliberately conservative: lazy imports inside function
bodies are still found (``ast.walk`` visits them), so a module cannot
hide a dependency from its fingerprint by deferring the import.
"""

from __future__ import annotations

import ast
import hashlib
import importlib.util
from functools import lru_cache
from pathlib import Path
from typing import Iterable, Optional, Tuple


def module_source_path(module_name: str) -> Optional[Path]:
    """Filesystem path of a module's source, or None for non-file modules."""
    try:
        spec = importlib.util.find_spec(module_name)
    except (ImportError, AttributeError, ValueError):
        return None
    if spec is None or not spec.origin or not spec.origin.endswith(".py"):
        return None
    return Path(spec.origin)


def _direct_imports(source: str) -> Iterable[str]:
    """Names of ``repro.*`` modules a source text imports directly.

    ``from repro.a import b`` yields both ``repro.a`` and ``repro.a.b``
    as candidates; non-module candidates are discarded by the resolver.
    """
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "repro":
                    yield alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module and node.module.split(".")[0] == "repro":
                yield node.module
                for alias in node.names:
                    yield f"{node.module}.{alias.name}"


@lru_cache(maxsize=None)
def transitive_modules(module_name: str) -> Tuple[str, ...]:
    """All ``repro`` modules reachable from ``module_name`` via imports,
    including itself, sorted. Static AST walk — no code is executed."""
    seen = set()
    frontier = [module_name]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        path = module_source_path(name)
        if path is None:
            continue
        seen.add(name)
        for candidate in _direct_imports(path.read_text()):
            if candidate not in seen:
                frontier.append(candidate)
    return tuple(sorted(seen))


def source_fingerprint(module_names: Iterable[str]) -> str:
    """SHA-256 over the named modules' source bytes (order-independent)."""
    digest = hashlib.sha256()
    for name in sorted(set(module_names)):
        path = module_source_path(name)
        if path is None or not path.exists():
            continue
        digest.update(name.encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()
