"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``design``      — find and describe the max feasible switch for a
                    substrate / technology combination.
* ``experiments`` — run paper-artifact reproductions (same as
                    ``python -m repro.experiments.runner``).
* ``simulate``    — run the cycle-accurate WS-vs-network comparison.
* ``usecases``    — print the deployment comparison tables.
* ``serve``       — answer design/sweep/simulate queries over HTTP
                    (coalescing + response cache; see docs/serve.md).
* ``shard``       — run experiments through the queue-backed shard
                    coordinator + runner processes (see
                    docs/parallel.md, "Shard runner").
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.tech.external_io import EXTERNAL_IO_TECHNOLOGIES
from repro.tech.wsi import SI_IF_OVERDRIVEN, WSI_TECHNOLOGIES


def _cmd_design(args: argparse.Namespace) -> int:
    from repro.core.explorer import max_feasible_design
    from repro.core.hetero import apply_heterogeneity
    from repro.mapping.visualize import describe_mapping

    wsi = WSI_TECHNOLOGIES[args.wsi]
    external = EXTERNAL_IO_TECHNOLOGIES[args.external_io]
    design = max_feasible_design(args.substrate, wsi=wsi, external_io=external)
    if design is None:
        print("no feasible waferscale design for this configuration")
        return 1
    print(design.describe())
    print(
        f"power density {design.power_density_w_per_mm2:.2f} W/mm2; "
        f"I/O share {design.power.io_fraction * 100:.0f}%"
    )
    if args.hetero:
        hetero = apply_heterogeneity(design, leaf_split=4)
        print(
            f"heterogeneous: {hetero.power.total_w / 1000:.1f} kW "
            f"(-{hetero.power_reduction_fraction * 100:.1f}%), "
            f"{hetero.cooling.name} cooling"
        )
    if args.show_mapping and design.mapping is not None:
        print()
        print(describe_mapping(design.mapping))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as runner_main

    forwarded = list(args.ids)
    if args.full:
        forwarded.append("--full")
    if args.jobs != "auto":
        forwarded.append(f"--jobs={args.jobs}")
    if args.no_cache:
        forwarded.append("--no-cache")
    if args.cache_clear:
        forwarded.append("--cache-clear")
    if args.profile:
        forwarded.append("--profile")
    if args.timeout is not None:
        forwarded.append(f"--timeout={args.timeout}")
    if args.telemetry is not None:
        forwarded.append(
            f"--telemetry={args.telemetry}" if args.telemetry else "--telemetry"
        )
    return runner_main(forwarded)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.netsim.network import (
        baseline_switch_network,
        waferscale_clos_network,
    )
    from repro.netsim.sim import load_latency_sweep
    from repro.netsim.telemetry import Telemetry
    from repro.netsim.traffic import make_pattern

    common = dict(
        n_terminals=args.terminals,
        ssc_radix=args.radix,
        num_vcs=args.vcs,
        buffer_flits_per_port=args.buffer,
    )
    loads = [float(x) for x in args.loads.split(",")]
    reports = {}
    for label, factory in (
        ("waferscale", lambda: waferscale_clos_network(**common)),
        ("switch-network", lambda: baseline_switch_network(**common)),
    ):
        sinks = []

        def point_telemetry(load, _sinks=sinks):
            telemetry = Telemetry()
            _sinks.append((load, telemetry))
            return telemetry

        points = load_latency_sweep(
            factory,
            lambda n: make_pattern(args.pattern, n),
            loads,
            telemetry_factory=point_telemetry if args.telemetry else None,
            engine=args.engine,
        )
        for load, telemetry in sinks:
            reports[f"{label}/load={load:g}"] = telemetry.to_dict()
        print(f"\n{label} ({args.pattern}):")
        for point in points:
            print(
                f"  load {point.offered_load:.2f}: "
                f"{point.avg_latency_cycles:7.1f} cycles "
                f"({point.avg_latency_ns:7.0f} ns), accepted "
                f"{point.accepted_load:.3f}"
                + ("  [saturated]" if point.saturated else "")
            )
    if args.telemetry:
        # One bundle file: a report per (network, load) sweep point.
        import json
        import pathlib

        target = pathlib.Path(args.telemetry)
        if target.parent != pathlib.Path("."):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(
                {"schema": "repro-netsim-telemetry-bundle", "reports": reports},
                indent=1,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"\ntelemetry bundle written to {target}")
    return 0


def _cmd_dcn(args: argparse.Namespace) -> int:
    from repro.api import DCNQuery, execute

    query = DCNQuery(
        hosts=args.hosts,
        wafer_radix=args.wafer_radix,
        ssc_radix=args.radix,
        back_to_back=args.back_to_back,
        pattern=args.pattern,
        duration_cycles=args.duration,
        load=args.load,
        seed=args.seed,
        lookahead=args.lookahead,
        inter_wafer_latency=args.inter_wafer_latency,
        failure_seed=args.failure_seed,
        link_failure_prob=args.link_failure_prob,
        executor=args.executor,
        fidelity=args.fidelity,
        cycle_wafers=tuple(
            int(w) for w in args.cycle_wafers.split(",") if w.strip()
        ),
    )
    response = execute(query, engine=args.engine)
    result = response["result"]
    fidelity = result["fidelity"]
    if fidelity == "cycle":
        fidelity_note = ""
    else:
        fidelity_note = (
            f", fidelity={fidelity} "
            f"({result['cycle_accurate_wafers']}/{result['n_wafers']} "
            "wafers cycle-accurate)"
        )
    print(
        f"dcn: {result['n_wafers']} wafers, executor={result['executor']}, "
        f"engine={result['engine']}{fidelity_note}"
    )
    print(
        f"  packets {result['packets_delivered']}/{result['packets_created']}"
        f" delivered ({result['packets_dropped_unroutable']} unroutable), "
        f"flits {result['flits_delivered']}/{result['flits_offered']}"
    )
    if result["dead_sscs"] or result["dead_links"]:
        print(
            f"  failures: {result['dead_sscs']} dead SSCs, "
            f"{result['dead_links']} dead links"
        )
    latency = result["latency"]
    if latency.get("count"):
        print(
            f"  latency avg {latency['avg']} p50 {latency['p50']} "
            f"p99 {latency['p99']} max {latency['max']} cycles"
        )
    print(
        f"  {result['epochs']} epochs x {result['epoch_cycles']} cycles in "
        f"{result['wall_seconds']:.3f}s"
    )
    if args.json:
        import json
        import pathlib

        target = pathlib.Path(args.json)
        if target.parent != pathlib.Path("."):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(response, indent=1, sort_keys=True) + "\n")
        print(f"  response written to {target}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import main as serve_main

    forwarded = [f"--host={args.host}", f"--port={args.port}"]
    if args.engine != "auto":
        forwarded.append(f"--engine={args.engine}")
    if args.mapping_engine != "auto":
        forwarded.append(f"--mapping-engine={args.mapping_engine}")
    if args.no_cache:
        forwarded.append("--no-cache")
    return serve_main(forwarded)


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro import shard

    if args.connect:
        host, _, port = args.connect.rpartition(":")
        if not host or not port.isdigit():
            print("error: --connect needs HOST:PORT", file=sys.stderr)
            return 2
        if not args.authkey:
            print("error: --connect requires --authkey", file=sys.stderr)
            return 2
        executed = shard.run_runner(
            (host, int(port)), bytes.fromhex(args.authkey)
        )
        print(f"[runner executed {executed} unit(s)]")
        return 0

    stats: dict = {}
    results = shard.coordinate(
        args.ids,
        fast=not args.full,
        local_runners=args.runners,
        result_timeout=args.timeout,
        stats_out=stats,
    )
    for result in results:
        print(result.format_table())
        print()
    print(
        f"[{stats['units']} unit(s): {stats['sharded']} sharded over "
        f"{args.runners} runner(s), {stats['local']} completed locally]"
    )
    return 0


def _cmd_usecases(args: argparse.Namespace) -> int:
    del args
    from repro.experiments.runner import run_experiments

    for result in run_experiments(["tab03", "tab07", "tab08", "tab09"]):
        print(result.format_table())
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    design = sub.add_parser("design", help="max feasible switch design")
    design.add_argument("--substrate", type=float, default=300.0)
    design.add_argument(
        "--wsi",
        choices=sorted(WSI_TECHNOLOGIES),
        default=SI_IF_OVERDRIVEN.name,
    )
    design.add_argument(
        "--external-io",
        choices=sorted(EXTERNAL_IO_TECHNOLOGIES),
        default="Optical I/O",
    )
    design.add_argument("--hetero", action="store_true")
    design.add_argument("--show-mapping", action="store_true")
    design.set_defaults(func=_cmd_design)

    experiments = sub.add_parser("experiments", help="reproduce paper artifacts")
    experiments.add_argument("ids", nargs="*")
    experiments.add_argument("--full", action="store_true")
    experiments.add_argument(
        "--jobs",
        default="auto",
        help="warm-pool workers to fan work units across; an integer, "
        "or 'auto' (default) for the effective core count",
    )
    experiments.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk result cache (always recompute)",
    )
    experiments.add_argument(
        "--cache-clear",
        action="store_true",
        help="wipe .repro_cache/ (then exit unless ids are given)",
    )
    experiments.add_argument(
        "--profile",
        action="store_true",
        help="print per-unit wall time and mapping-store hit/miss table",
    )
    experiments.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-unit stall watchdog in seconds (falls back to serial)",
    )
    experiments.add_argument(
        "--telemetry",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help="write per-point simulator telemetry JSON under DIR "
        "(default telemetry/); implies --no-cache",
    )
    experiments.set_defaults(func=_cmd_experiments)

    simulate = sub.add_parser("simulate", help="cycle-accurate comparison")
    simulate.add_argument("--terminals", type=int, default=64)
    simulate.add_argument("--radix", type=int, default=16)
    simulate.add_argument("--vcs", type=int, default=4)
    simulate.add_argument("--buffer", type=int, default=16)
    simulate.add_argument("--pattern", default="uniform")
    simulate.add_argument("--loads", default="0.1,0.3,0.5,0.7")
    simulate.add_argument(
        "--telemetry",
        default=None,
        metavar="OUT.json",
        help="write a telemetry bundle (one report per network x load) "
        "to this JSON file",
    )
    simulate.add_argument(
        "--engine",
        choices=("auto", "c", "numpy", "scalar"),
        default="auto",
        help="netsim kernel (default auto; see repro.engines)",
    )
    simulate.set_defaults(func=_cmd_simulate)

    dcn = sub.add_parser(
        "dcn", help="partitioned multi-wafer DCN simulation"
    )
    dcn.add_argument("--hosts", type=int, default=16)
    dcn.add_argument("--wafer-radix", type=int, default=16)
    dcn.add_argument("--radix", type=int, default=8, help="intra-wafer SSC radix")
    dcn.add_argument(
        "--back-to-back",
        action="store_true",
        help="two leaf wafers trunked directly (needs hosts == wafer radix)",
    )
    dcn.add_argument(
        "--pattern",
        choices=(
            "uniform", "alltoall", "incast", "elephant_mouse",
            "dp_allreduce", "pp_stages", "tp_burst",
        ),
        default="uniform",
    )
    dcn.add_argument("--duration", type=int, default=128)
    dcn.add_argument("--load", type=float, default=0.05)
    dcn.add_argument("--seed", type=int, default=1)
    dcn.add_argument(
        "--lookahead",
        type=int,
        default=0,
        help="epoch length in cycles (0 = inter-wafer latency, the max)",
    )
    dcn.add_argument("--inter-wafer-latency", type=int, default=40)
    dcn.add_argument(
        "--failure-seed",
        type=int,
        default=-1,
        help="yield-model failure injection seed (negative disables)",
    )
    dcn.add_argument("--link-failure-prob", type=float, default=0.0)
    dcn.add_argument(
        "--executor",
        choices=("auto", "serial", "pool"),
        default="auto",
        help="serial = monolithic reference; pool = one warm worker "
        "per wafer partition",
    )
    dcn.add_argument(
        "--engine", choices=("auto", "c", "numpy", "scalar"), default="auto"
    )
    dcn.add_argument(
        "--fidelity",
        choices=("cycle", "flow", "hybrid"),
        default="cycle",
        help="cycle = every wafer cycle-accurate; flow = calibrated "
        "queueing nodes (paper-scale fabrics); hybrid = --cycle-wafers "
        "stay cycle-accurate, the rest flow-level",
    )
    dcn.add_argument(
        "--cycle-wafers",
        default="",
        metavar="W0,W1,...",
        help="comma-separated wafer indices kept cycle-accurate under "
        "--fidelity hybrid (default: wafer 0)",
    )
    dcn.add_argument(
        "--json", default=None, metavar="OUT.json",
        help="also write the full API response to this file",
    )
    dcn.set_defaults(func=_cmd_dcn)

    serve = sub.add_parser("serve", help="query the model over HTTP")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8177, help="0 picks a free port")
    serve.add_argument(
        "--engine", choices=("auto", "c", "numpy", "scalar"), default="auto"
    )
    serve.add_argument(
        "--mapping-engine", choices=("auto", "fast", "scalar"), default="auto"
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the serve response cache (coalescing still applies)",
    )
    serve.set_defaults(func=_cmd_serve)

    shard = sub.add_parser(
        "shard", help="queue-backed shard coordinator / runner"
    )
    shard.add_argument("ids", nargs="*", help="experiment ids to coordinate")
    shard.add_argument("--full", action="store_true")
    shard.add_argument(
        "--runners",
        type=int,
        default=2,
        help="host-local runner processes to spawn (default 2)",
    )
    shard.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="seconds to wait between result arrivals before finishing "
        "stragglers locally (default 300)",
    )
    shard.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="run as a runner against an existing coordinator instead",
    )
    shard.add_argument(
        "--authkey",
        default=None,
        metavar="HEX",
        help="shared authkey (hex) for --connect",
    )
    shard.set_defaults(func=_cmd_shard)

    usecases = sub.add_parser("usecases", help="deployment tables")
    usecases.set_defaults(func=_cmd_usecases)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
