"""External I/O technology models (paper Table IV, Section III.B).

A waferscale switch must move ``N x port_bandwidth`` of traffic in each
direction between the wafer and the outside world. Three schemes:

* **SerDes** (periphery): conventional transceiver chiplets on the wafer
  perimeter — 512 Gbps/mm of perimeter, one layer. This is what existing
  waferscale systems use and is the paper's baseline.
* **Optical I/O** (periphery): on-substrate electrical/optical conversion
  chiplets — 800 Gbps/mm/layer over 4 layers (3200 Gbps/mm of perimeter).
* **Area I/O**: transceivers interspersed across the substrate; signals
  escape through through-wafer vias into a mezzanine PCB — 16 Gbps/mm^2
  of substrate area.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.units import require_positive


class IOPlacement(enum.Enum):
    """Where an external I/O technology's capacity comes from."""

    PERIPHERY = "periphery"
    AREA = "area"


@dataclass(frozen=True)
class ExternalIOTechnology:
    """External connectivity technology for a waferscale substrate.

    For periphery technologies ``bandwidth_density`` is Gbps per mm of
    substrate perimeter per layer (per direction); for area technologies
    it is Gbps per mm^2 of substrate area (per direction) and ``layers``
    must be 1.
    """

    name: str
    placement: IOPlacement
    bandwidth_density: float
    layers: int
    energy_pj_per_bit: float
    #: Extra provisioning each bidirectional port needs on top of the
    #: nominal 2 x port_bw. Conventional SerDes quotes unidirectional
    #: transmit density and needs separate TX and RX edge allocations
    #: (plus MAC/FEC overhead), so it provisions 2x; optical I/O and
    #: area I/O quote full-duplex densities.
    required_multiplier: float = 1.0

    def __post_init__(self) -> None:
        require_positive("bandwidth_density", self.bandwidth_density)
        if self.layers < 1:
            raise ValueError("layers must be >= 1")
        if self.placement is IOPlacement.AREA and self.layers != 1:
            raise ValueError("area I/O is single-layer by construction")
        require_positive("energy_pj_per_bit", self.energy_pj_per_bit)
        require_positive("required_multiplier", self.required_multiplier)

    def required_gbps(self, n_ports: int, port_bandwidth_gbps: float) -> float:
        """External capacity the given port count consumes."""
        return 2.0 * n_ports * port_bandwidth_gbps * self.required_multiplier

    def capacity_gbps(self, substrate_side_mm: float) -> float:
        """Total per-direction external bandwidth for a square substrate."""
        require_positive("substrate_side_mm", substrate_side_mm)
        if self.placement is IOPlacement.PERIPHERY:
            perimeter_mm = 4.0 * substrate_side_mm
            return perimeter_mm * self.bandwidth_density * self.layers
        return substrate_side_mm * substrate_side_mm * self.bandwidth_density

    def max_bidirectional_ports(
        self, substrate_side_mm: float, port_bandwidth_gbps: float
    ) -> int:
        """External-bandwidth-limited port count.

        Each bidirectional port consumes ``port_bandwidth`` of ingress
        *and* egress capacity; periphery/area budgets above are per
        direction shared across both, i.e. a port costs
        ``2 x port_bandwidth`` of the technology's capacity. This
        reproduces the paper's SerDes ceiling of 512 ports at 200 Gbps on
        a 200-300 mm substrate.
        """
        require_positive("port_bandwidth_gbps", port_bandwidth_gbps)
        capacity = self.capacity_gbps(substrate_side_mm)
        return int(
            capacity // (2.0 * port_bandwidth_gbps * self.required_multiplier)
        )


SERDES_IO = ExternalIOTechnology(
    name="SerDes",
    placement=IOPlacement.PERIPHERY,
    bandwidth_density=512.0,
    layers=1,
    energy_pj_per_bit=8.0,
    required_multiplier=2.0,
)

OPTICAL_IO = ExternalIOTechnology(
    name="Optical I/O",
    placement=IOPlacement.PERIPHERY,
    bandwidth_density=800.0,
    layers=4,
    energy_pj_per_bit=5.0,
)

AREA_IO = ExternalIOTechnology(
    name="Area I/O",
    placement=IOPlacement.AREA,
    bandwidth_density=16.0,
    layers=1,
    energy_pj_per_bit=8.0,
)

EXTERNAL_IO_TECHNOLOGIES = {
    tech.name: tech for tech in (SERDES_IO, OPTICAL_IO, AREA_IO)
}
