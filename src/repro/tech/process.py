"""Process-node power normalization (Stillmaker & Baas style).

The paper (Fig 15) normalizes reported powers of commodity switch ASICs
built in different process nodes to the 5 nm node, citing the scaling
equations of Stillmaker & Baas, "Scaling equations for the accurate
prediction of CMOS device performance from 180nm to 7nm" (Integration'17).

We implement the commonly used reduced form of that methodology: a
per-node table of relative switching energy (CV^2) normalized to 7 nm,
extended to 5 nm with the same fitted trend. Power at iso-throughput
scales with the energy factor, which is what matters for comparing
switch ASICs that are each run at their design throughput.
"""

from __future__ import annotations

#: Relative dynamic energy per operation by node, normalized so that the
#: 5 nm entry is 1.0. Values follow the Stillmaker-Baas general-purpose
#: scaling fit (energy ratio ~ proportional to CV^2 trend across nodes).
_ENERGY_FACTOR_VS_5NM = {
    180: 85.0,
    130: 46.0,
    90: 26.0,
    65: 14.0,
    45: 8.6,
    40: 7.6,
    32: 5.4,
    28: 4.6,
    22: 3.4,
    16: 2.2,
    14: 2.0,
    12: 1.8,
    10: 1.5,
    7: 1.25,
    5: 1.0,
    3: 0.8,
}

SUPPORTED_NODES_NM = tuple(sorted(_ENERGY_FACTOR_VS_5NM))


def energy_factor(node_nm: int) -> float:
    """Relative dynamic energy of ``node_nm`` vs the 5 nm node."""
    try:
        return _ENERGY_FACTOR_VS_5NM[node_nm]
    except KeyError:
        raise ValueError(
            f"unsupported process node {node_nm} nm; "
            f"supported: {SUPPORTED_NODES_NM}"
        ) from None


def normalize_power_to_node(
    power_w: float, from_node_nm: int, to_node_nm: int = 5
) -> float:
    """Scale a reported power from one process node to another.

    At iso-throughput, power follows the per-bit switching energy, so the
    normalized power is ``power * E(to) / E(from)``.
    """
    if power_w < 0:
        raise ValueError(f"power must be non-negative, got {power_w}")
    return power_w * energy_factor(to_node_nm) / energy_factor(from_node_nm)
