"""Cooling solution envelopes (paper Figs 16, 28, Section VIII.A).

A cooling solution bounds the substrate's sustainable power density.
The paper's anchors:

* Water (cold-plate) cooling sustains ~0.5 W/mm^2 — the Cerebras WSE-2
  operating point is 0.4976 W/mm^2 and the heterogeneous 300 mm design
  at 0.48 W/mm^2 is explicitly "handled by water cooling".
* The unoptimized 300 mm design at 0.69 W/mm^2 exceeds water cooling but
  is within reach of multi-phase cooling.
* Air cooling supports roughly an 8x-radix switch (Fig 28), i.e. around
  a tenth of the water-cooled power density.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.units import require_positive


@dataclass(frozen=True)
class CoolingSolution:
    """A cooling technology and its sustainable power density."""

    name: str
    max_power_density_w_per_mm2: float

    def __post_init__(self) -> None:
        require_positive(
            "max_power_density_w_per_mm2", self.max_power_density_w_per_mm2
        )

    def max_power_w(self, substrate_area_mm2: float) -> float:
        """Total power this solution can remove from the given substrate."""
        require_positive("substrate_area_mm2", substrate_area_mm2)
        return self.max_power_density_w_per_mm2 * substrate_area_mm2

    def supports(self, power_w: float, substrate_area_mm2: float) -> bool:
        """Whether a design's power fits this solution's envelope."""
        return power_w <= self.max_power_w(substrate_area_mm2)


AIR_COOLING = CoolingSolution("Air", 0.10)
WATER_COOLING = CoolingSolution("Water", 0.50)
MULTIPHASE_COOLING = CoolingSolution("Multi-phase", 1.50)

COOLING_SOLUTIONS = {
    sol.name: sol for sol in (AIR_COOLING, WATER_COOLING, MULTIPHASE_COOLING)
}


def best_cooling_for(
    power_w: float, substrate_area_mm2: float
) -> Optional[CoolingSolution]:
    """Cheapest (lowest-capability) cooling solution that fits, if any."""
    for solution in (AIR_COOLING, WATER_COOLING, MULTIPHASE_COOLING):
        if solution.supports(power_w, substrate_area_mm2):
            return solution
    return None
