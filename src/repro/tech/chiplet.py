"""Sub-switch chiplet (SSC) models (paper Table II, Sections III.C, V).

The paper's SSC is a Tomahawk-5-like die: 51.2 Tbps of switching
capacity, 500 W total (400 W excluding I/O at 2 pJ/bit), 800 mm^2,
configurable as 256x200G, 128x400G, or 64x800G. Two derived forms:

* **Deradixed SSCs** (Section V.C): same die area (hence the same
  inter-chiplet I/O and feedthrough budget) but intentionally reduced
  radix, trading ports for per-port internal bandwidth headroom.
* **Scaled leaf dies** (Section V.B): smaller, lower-radix dies (scaled
  Tomahawk-3/4-like) used as disaggregated Clos leaves in the
  heterogeneous design. Their non-I/O power follows the quadratic law,
  and their area scales linearly with radix (port logic and buffering
  dominate a switch die's floorplan).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict

from repro.tech.power import switch_core_power
from repro.units import require_positive


@dataclass(frozen=True)
class SubSwitchChiplet:
    """A single sub-switch die placed on the waferscale substrate.

    Attributes:
        name: Model name.
        radix: Number of bidirectional ports the die exposes.
        port_bandwidth_gbps: Line rate per port.
        area_mm2: Die area; also determines the chiplet's footprint on
            the wafer grid and the shared-edge length with neighbors.
        core_power_w: Power excluding all I/O (switching fabric, buffers,
            lookup pipelines).
        io_energy_pj_per_bit: Energy per bit of the die's (replaced)
            off-chip I/O; kept for deriving core power from datasheet
            totals.
    """

    name: str
    radix: int
    port_bandwidth_gbps: float
    area_mm2: float
    core_power_w: float
    io_energy_pj_per_bit: float = 2.0

    def __post_init__(self) -> None:
        if self.radix < 2:
            raise ValueError(f"radix must be >= 2, got {self.radix}")
        require_positive("port_bandwidth_gbps", self.port_bandwidth_gbps)
        require_positive("area_mm2", self.area_mm2)
        require_positive("core_power_w", self.core_power_w)

    @property
    def switching_capacity_gbps(self) -> float:
        """Aggregate line-side capacity of the die."""
        return self.radix * self.port_bandwidth_gbps

    @property
    def side_mm(self) -> float:
        """Side of the (square) die; the shared edge with a neighbor."""
        return math.sqrt(self.area_mm2)

    def deradixed(self, factor: int) -> "SubSwitchChiplet":
        """Reduce radix by ``factor`` keeping area (feedthrough I/O) fixed.

        The die is deliberately under-populated with ports; core power
        follows the quadratic law at the reduced radix.
        """
        if factor < 1 or self.radix % factor != 0:
            raise ValueError(
                f"deradix factor {factor} must divide radix {self.radix}"
            )
        if factor == 1:
            return self
        new_radix = self.radix // factor
        return replace(
            self,
            name=f"{self.name} (deradixed /{factor})",
            radix=new_radix,
            core_power_w=switch_core_power(
                new_radix,
                reference_power_w=self.core_power_w,
                reference_radix=self.radix,
            ),
        )


def tomahawk5(ports: int = 256, port_bandwidth_gbps: float = 200.0) -> SubSwitchChiplet:
    """TH-5-like SSC in one of its Table II configurations.

    All configurations expose the same 51.2 Tbps and the same die; only
    the port slicing differs.
    """
    valid: Dict[int, float] = {256: 200.0, 128: 400.0, 64: 800.0}
    if ports not in valid or valid[ports] != port_bandwidth_gbps:
        raise ValueError(
            "TH-5 supports 256x200G, 128x400G, or 64x800G; "
            f"got {ports}x{port_bandwidth_gbps:g}G"
        )
    return SubSwitchChiplet(
        name=f"TH-5 {ports}x{port_bandwidth_gbps:g}G",
        radix=ports,
        port_bandwidth_gbps=port_bandwidth_gbps,
        area_mm2=800.0,
        core_power_w=400.0,
    )


#: The three Table II configurations, keyed by port count.
TH5_CONFIGURATIONS = {
    256: tomahawk5(256, 200.0),
    128: tomahawk5(128, 400.0),
    64: tomahawk5(64, 800.0),
}


def scaled_leaf_die(
    radix: int,
    port_bandwidth_gbps: float = 200.0,
    reference: SubSwitchChiplet = None,
) -> SubSwitchChiplet:
    """A scaled, lower-radix die used as a heterogeneous Clos leaf.

    Power follows the quadratic law anchored on the reference die
    (TH-5 by default); area scales linearly with radix so that a set of
    disaggregated leaves occupies roughly the same substrate area as the
    leaf it replaces. A quarter-radix die at 200 G per port is a "scaled
    Tomahawk-3"-like part (12.8 Tbps); a half-radix die is a "scaled
    Tomahawk-4"-like part (25.6 Tbps).
    """
    ref = reference if reference is not None else tomahawk5()
    if radix < 2 or radix > ref.radix:
        raise ValueError(
            f"scaled leaf radix must be in [2, {ref.radix}], got {radix}"
        )
    capacity_tbps = radix * port_bandwidth_gbps / 1000.0
    return SubSwitchChiplet(
        name=f"scaled leaf {radix}x{port_bandwidth_gbps:g}G ({capacity_tbps:g}T)",
        radix=radix,
        port_bandwidth_gbps=port_bandwidth_gbps,
        area_mm2=ref.area_mm2 * radix / ref.radix,
        core_power_w=switch_core_power(
            radix, reference_power_w=ref.core_power_w, reference_radix=ref.radix
        ),
    )
