"""Technology models: WSI substrates, I/O schemes, chiplets, power, cooling.

These are the input-parameter layers of the design-space study
(Tables I, II, IV, V of the paper) plus the scaling laws used throughout
(quadratic switch power, link Vdd/frequency scaling, process normalization).
"""

from repro.tech.chiplet import (
    TH5_CONFIGURATIONS,
    SubSwitchChiplet,
    scaled_leaf_die,
    tomahawk5,
)
from repro.tech.cooling import (
    AIR_COOLING,
    COOLING_SOLUTIONS,
    MULTIPHASE_COOLING,
    WATER_COOLING,
    CoolingSolution,
)
from repro.tech.external_io import (
    AREA_IO,
    EXTERNAL_IO_TECHNOLOGIES,
    OPTICAL_IO,
    SERDES_IO,
    ExternalIOTechnology,
)
from repro.tech.power import (
    link_energy_scaling,
    quadratic_power_fit,
    switch_core_power,
)
from repro.tech.process import normalize_power_to_node
from repro.tech.wsi import (
    INFO_SOW,
    SI_IF,
    SI_IF_OVERDRIVEN,
    SILICON_INTERPOSER,
    WSI_TECHNOLOGIES,
    WSITechnology,
)
from repro.tech.yield_model import (
    chiplet_system_yield,
    compare_integration_yield,
    die_yield,
    monolithic_wafer_yield,
)

__all__ = [
    "AIR_COOLING",
    "AREA_IO",
    "COOLING_SOLUTIONS",
    "EXTERNAL_IO_TECHNOLOGIES",
    "INFO_SOW",
    "MULTIPHASE_COOLING",
    "OPTICAL_IO",
    "SERDES_IO",
    "SI_IF",
    "SI_IF_OVERDRIVEN",
    "SILICON_INTERPOSER",
    "TH5_CONFIGURATIONS",
    "WATER_COOLING",
    "WSI_TECHNOLOGIES",
    "CoolingSolution",
    "ExternalIOTechnology",
    "SubSwitchChiplet",
    "WSITechnology",
    "chiplet_system_yield",
    "compare_integration_yield",
    "die_yield",
    "link_energy_scaling",
    "monolithic_wafer_yield",
    "normalize_power_to_node",
    "quadratic_power_fit",
    "scaled_leaf_die",
    "switch_core_power",
    "tomahawk5",
]
