"""Waferscale integration (WSI) technology models (paper Table I, Section V.A).

A :class:`WSITechnology` describes the on-substrate interconnect between
adjacent chiplets: how many Gbps of bandwidth each millimetre of shared
chiplet edge supplies, at what energy per bit, and at what per-hop latency.

The paper's primary technology is a Si-IF-like substrate with a 4 um wire
pitch and four signal metal layers at 800 Gbps/mm/layer (3200 Gbps/mm
total), and an "overdriven" variant at double the link frequency
(6400 Gbps/mm) obtained by raising Vdd, with the energy-per-bit penalty
derived from the alpha-power relationships of Section V.A
(``P ∝ Vdd^2``, ``B ∝ (Vdd - Vth)^2 / Vdd``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.tech.power import link_energy_scaling
from repro.units import require_positive


@dataclass(frozen=True)
class WSITechnology:
    """On-wafer inter-chiplet interconnect technology.

    Attributes:
        name: Human-readable technology name.
        bandwidth_density_gbps_per_mm_per_layer: Bandwidth each mm of
            chiplet edge supplies per signal metal layer, per direction.
        signal_layers: Number of signal metal layers available for
            inter-chiplet communication (the paper alternates signal and
            power/ground layers, so 4 signal layers = 8 total).
        energy_pj_per_bit: Energy per transferred bit per hop.
        hop_latency_ns: Latency of a single inter-chiplet hop.
        io_pitch_um: Chiplet-to-substrate I/O pitch (documentation only).
        max_substrate_mm: Largest supported (square) substrate side.
    """

    name: str
    bandwidth_density_gbps_per_mm_per_layer: float
    signal_layers: int
    energy_pj_per_bit: float
    hop_latency_ns: float
    io_pitch_um: float
    max_substrate_mm: float

    def __post_init__(self) -> None:
        require_positive(
            "bandwidth_density_gbps_per_mm_per_layer",
            self.bandwidth_density_gbps_per_mm_per_layer,
        )
        if self.signal_layers < 1:
            raise ValueError("signal_layers must be >= 1")
        require_positive("energy_pj_per_bit", self.energy_pj_per_bit)
        require_positive("hop_latency_ns", self.hop_latency_ns)
        require_positive("max_substrate_mm", self.max_substrate_mm)

    @property
    def bandwidth_density_gbps_per_mm(self) -> float:
        """Total per-direction bandwidth density across all signal layers."""
        return self.bandwidth_density_gbps_per_mm_per_layer * self.signal_layers

    def edge_capacity_gbps(self, shared_edge_mm: float) -> float:
        """Per-direction bandwidth between two chiplets sharing an edge."""
        require_positive("shared_edge_mm", shared_edge_mm)
        return self.bandwidth_density_gbps_per_mm * shared_edge_mm

    def overdriven(self, bandwidth_multiplier: float, vth_over_vdd: float = 0.3125) -> "WSITechnology":
        """Derive a higher-bandwidth variant by scaling link Vdd/frequency.

        Uses the Section V.A relationships to compute the energy-per-bit
        penalty for running each wire ``bandwidth_multiplier`` times
        faster. The default ``vth_over_vdd`` corresponds to
        Vth = 0.25 V at Vdd = 0.8 V, a typical near-threshold-ratio for
        short-reach on-substrate links.
        """
        energy_mult = link_energy_scaling(bandwidth_multiplier, vth_over_vdd)
        return replace(
            self,
            name=f"{self.name} (x{bandwidth_multiplier:g} overdrive)",
            bandwidth_density_gbps_per_mm_per_layer=(
                self.bandwidth_density_gbps_per_mm_per_layer * bandwidth_multiplier
            ),
            energy_pj_per_bit=self.energy_pj_per_bit * energy_mult,
        )


#: Si-IF-like substrate: 4 um pitch, 800 Gbps/mm/layer, 4 signal layers,
#: for 3200 Gbps/mm total (the paper's baseline internal bandwidth).
SI_IF = WSITechnology(
    name="Si-IF",
    bandwidth_density_gbps_per_mm_per_layer=800.0,
    signal_layers=4,
    energy_pj_per_bit=0.3,
    hop_latency_ns=1.0,
    io_pitch_um=4.0,
    max_substrate_mm=300.0,
)

#: The paper's 6400 Gbps/mm point: Si-IF links run at double frequency
#: with Vdd scaled up accordingly (1600 Gbps/mm/layer x 4 layers).
SI_IF_OVERDRIVEN = SI_IF.overdriven(2.0)

#: TSMC InFO-SoW-like substrate: much higher bandwidth density
#: (12.8 Tbps/mm as used in Fig 12) at 1.5 pJ/bit.
INFO_SOW = WSITechnology(
    name="InFO-SoW",
    bandwidth_density_gbps_per_mm_per_layer=3200.0,
    signal_layers=4,
    energy_pj_per_bit=1.5,
    hop_latency_ns=1.0,
    io_pitch_um=80.0,
    max_substrate_mm=300.0,
)

#: Conventional 2.5D silicon interposer, for context (Table I): limited
#: to ~8.5 cm^2, i.e. roughly a 29 mm square — a single-SSC substrate.
SILICON_INTERPOSER = WSITechnology(
    name="Silicon interposer",
    bandwidth_density_gbps_per_mm_per_layer=1000.0,
    signal_layers=1,
    energy_pj_per_bit=0.25,
    hop_latency_ns=0.1,
    io_pitch_um=6.0,
    max_substrate_mm=29.0,
)

WSI_TECHNOLOGIES = {
    tech.name: tech
    for tech in (SI_IF, SI_IF_OVERDRIVEN, INFO_SOW, SILICON_INTERPOSER)
}
