"""Manufacturing yield models (Section III.A's chiplet-vs-monolithic case).

The paper picks chiplet-based WSI because known-good-die (KGD) testing
plus high-yield bonding (>99.9 % per chiplet [48]) gives high system
yield, whereas monolithic waferscale integration must tolerate every
defect on the wafer through built-in redundancy. This module quantifies
that argument:

* Die yield follows the negative-binomial (Murphy-style) model
  ``Y = (1 + A * D0 / alpha) ** -alpha`` with defect density ``D0`` in
  defects/mm^2 and clustering parameter ``alpha``.
* A monolithic waferscale part works only if enough of its reticle
  sites yield (given a redundancy budget).
* A chiplet-based waferscale system bonds pre-tested KGDs, so its yield
  is the bonding yield compounded over the chiplet count (optionally
  with spare sites for rework).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import require_positive

#: Typical advanced-node defect density (defects per mm^2).
DEFAULT_DEFECT_DENSITY = 0.001
#: Negative-binomial clustering parameter.
DEFAULT_CLUSTERING_ALPHA = 2.0
#: Chiplet-to-substrate bonding yield reported for Si-IF-class flows.
DEFAULT_BOND_YIELD = 0.999


def die_yield(
    area_mm2: float,
    defect_density_per_mm2: float = DEFAULT_DEFECT_DENSITY,
    clustering_alpha: float = DEFAULT_CLUSTERING_ALPHA,
) -> float:
    """Negative-binomial yield of a die of the given area."""
    require_positive("area_mm2", area_mm2)
    require_positive("clustering_alpha", clustering_alpha)
    if defect_density_per_mm2 < 0:
        raise ValueError("defect density must be non-negative")
    term = area_mm2 * defect_density_per_mm2 / clustering_alpha
    return (1.0 + term) ** (-clustering_alpha)


def _binomial_at_least(n: int, k: int, p: float) -> float:
    """P[X >= k] for X ~ Binomial(n, p)."""
    total = 0.0
    for successes in range(k, n + 1):
        total += (
            math.comb(n, successes)
            * p**successes
            * (1.0 - p) ** (n - successes)
        )
    return min(total, 1.0)


def monolithic_wafer_yield(
    n_sites: int,
    site_area_mm2: float,
    required_sites: int = None,
    defect_density_per_mm2: float = DEFAULT_DEFECT_DENSITY,
    clustering_alpha: float = DEFAULT_CLUSTERING_ALPHA,
) -> float:
    """Yield of a monolithic waferscale part.

    ``required_sites`` working reticle sites out of ``n_sites`` must
    yield (the difference is the architecture's redundancy budget, as
    in Cerebras' spare-row approach). Without redundancy the yield
    collapses exponentially with wafer area.
    """
    if n_sites < 1:
        raise ValueError("n_sites must be >= 1")
    needed = n_sites if required_sites is None else required_sites
    if not 1 <= needed <= n_sites:
        raise ValueError("required_sites must be in [1, n_sites]")
    per_site = die_yield(site_area_mm2, defect_density_per_mm2, clustering_alpha)
    return _binomial_at_least(n_sites, needed, per_site)


def chiplet_system_yield(
    n_chiplets: int,
    bond_yield: float = DEFAULT_BOND_YIELD,
    spare_sites: int = 0,
) -> float:
    """Yield of a chiplet-based waferscale assembly.

    Chiplets are KGD-tested before bonding, so only the bonding step
    can fail. With ``spare_sites`` the assembly tolerates that many
    failed bonds (spare chiplets are bonded alongside and swapped in by
    the mapping layer).
    """
    if n_chiplets < 1:
        raise ValueError("n_chiplets must be >= 1")
    if not 0.0 < bond_yield <= 1.0:
        raise ValueError("bond_yield must be in (0, 1]")
    if spare_sites < 0:
        raise ValueError("spare_sites must be non-negative")
    total = n_chiplets + spare_sites
    return _binomial_at_least(total, n_chiplets, bond_yield)


@dataclass(frozen=True)
class YieldComparison:
    """Monolithic vs chiplet-based yield for one waferscale system."""

    n_chiplets: int
    chiplet_area_mm2: float
    monolithic_no_redundancy: float
    monolithic_with_redundancy: float
    chiplet_based: float

    @property
    def chiplet_advantage(self) -> float:
        """Yield ratio of chiplet assembly over redundant monolithic."""
        if self.monolithic_with_redundancy == 0:
            return float("inf")
        return self.chiplet_based / self.monolithic_with_redundancy


def compare_integration_yield(
    n_chiplets: int,
    chiplet_area_mm2: float = 800.0,
    redundancy_fraction: float = 0.05,
    defect_density_per_mm2: float = DEFAULT_DEFECT_DENSITY,
    bond_yield: float = DEFAULT_BOND_YIELD,
) -> YieldComparison:
    """The Section III.A comparison for an ``n_chiplets`` system."""
    if not 0.0 <= redundancy_fraction < 1.0:
        raise ValueError("redundancy_fraction must be in [0, 1)")
    spare = int(n_chiplets * redundancy_fraction)
    total_sites = n_chiplets + spare
    return YieldComparison(
        n_chiplets=n_chiplets,
        chiplet_area_mm2=chiplet_area_mm2,
        monolithic_no_redundancy=monolithic_wafer_yield(
            n_chiplets,
            chiplet_area_mm2,
            defect_density_per_mm2=defect_density_per_mm2,
        ),
        monolithic_with_redundancy=monolithic_wafer_yield(
            total_sites,
            chiplet_area_mm2,
            required_sites=n_chiplets,
            defect_density_per_mm2=defect_density_per_mm2,
        ),
        chiplet_based=chiplet_system_yield(
            n_chiplets, bond_yield=bond_yield, spare_sites=spare
        ),
    )
