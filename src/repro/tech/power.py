"""Power scaling laws used by the design-space model.

Two laws from the paper:

1. **Quadratic switch-core power** (Section V.B, Fig 15): commodity
   high-radix switch ASICs show near-quadratic scaling of (process-
   normalized, non-I/O) power with radix. We expose both the fit over a
   dataset and a direct ``P = P_ref * (k / k_ref)^2`` model anchored on
   the TH-5 point (400 W non-I/O at radix 256).

2. **Link Vdd/frequency scaling** (Section V.A): for an on-substrate
   wire, ``P ∝ Vdd^2`` and ``B ∝ (Vdd - Vth)^2 / Vdd``. Given a desired
   bandwidth multiplier we solve for the required Vdd and return the
   energy-per-bit multiplier.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.units import require_positive


def switch_core_power(
    radix: int,
    reference_power_w: float = 400.0,
    reference_radix: int = 256,
    exponent: float = 2.0,
) -> float:
    """Non-I/O power of a sub-switch of the given radix.

    Anchored on the TH-5 point by default: 400 W of non-I/O power at
    radix 256 (500 W total minus I/O power at 2 pJ/bit, Table II).
    """
    if radix < 1:
        raise ValueError(f"radix must be >= 1, got {radix}")
    require_positive("reference_power_w", reference_power_w)
    return reference_power_w * (radix / reference_radix) ** exponent


def quadratic_power_fit(
    radixes: Sequence[float], powers_w: Sequence[float]
) -> Tuple[float, float]:
    """Least-squares fit of ``P = a * k^2`` to (radix, power) samples.

    Returns ``(a, rms_relative_error)``. Used to validate the quadratic
    model against the normalized Tomahawk / TeraLynx datapoints (Fig 15).
    """
    if len(radixes) != len(powers_w) or not radixes:
        raise ValueError("radixes and powers_w must be equal-length, non-empty")
    num = sum(p * k * k for k, p in zip(radixes, powers_w))
    den = sum((k * k) ** 2 for k in radixes)
    a = num / den
    rel_errors = [
        (a * k * k - p) / p for k, p in zip(radixes, powers_w) if p > 0
    ]
    rms = math.sqrt(sum(e * e for e in rel_errors) / len(rel_errors))
    return a, rms


def _bandwidth_at(vdd: float, vth: float) -> float:
    """Unnormalized wire bandwidth at the given supply, ``(Vdd-Vth)^2/Vdd``."""
    return (vdd - vth) ** 2 / vdd


def solve_vdd_for_bandwidth(
    bandwidth_multiplier: float, vdd0: float = 1.0, vth: float = 0.3125
) -> float:
    """Solve for the Vdd that multiplies wire bandwidth by the given factor.

    ``B(Vdd) = (Vdd - Vth)^2 / Vdd`` is monotonically increasing for
    ``Vdd > Vth``; the quadratic in Vdd solves in closed form:

    ``(Vdd - Vth)^2 = m * B0 * Vdd``  with  ``B0 = B(vdd0)`` gives
    ``Vdd^2 - (2*Vth + m*B0) * Vdd + Vth^2 = 0``.
    """
    require_positive("bandwidth_multiplier", bandwidth_multiplier)
    if vdd0 <= vth:
        raise ValueError(f"vdd0 ({vdd0}) must exceed vth ({vth})")
    target = bandwidth_multiplier * _bandwidth_at(vdd0, vth)
    b_coeff = 2.0 * vth + target
    disc = b_coeff * b_coeff - 4.0 * vth * vth
    vdd = (b_coeff + math.sqrt(disc)) / 2.0
    return vdd


def link_energy_scaling(
    bandwidth_multiplier: float, vth_over_vdd: float = 0.3125
) -> float:
    """Energy-per-bit multiplier for scaling a wire's bandwidth.

    Power scales with Vdd^2 and with frequency; energy *per bit* scales
    with Vdd^2 only (each bit is one switching event), so the multiplier
    is ``(Vdd_new / Vdd_old)^2``.

    For the paper's doubling (3200 -> 6400 Gbps/mm) with the default
    threshold ratio this yields ~2.3x energy per bit, i.e. ~4.5x internal
    I/O power at the doubled bandwidth — consistent with the paper's
    "up to 3.5x larger total power" once the non-scaled components are
    included.
    """
    if not 0.0 < vth_over_vdd < 1.0:
        raise ValueError("vth_over_vdd must be in (0, 1)")
    vdd0 = 1.0
    vth = vth_over_vdd
    vdd = solve_vdd_for_bandwidth(bandwidth_multiplier, vdd0, vth)
    return (vdd / vdd0) ** 2
