"""Historical datasets embedded for Figures 1 and 15 and Table V.

The paper's motivational figures rely on public datasheet values. We
embed those values here (with the paper's own normalization conventions)
so that `experiments.fig01` and `experiments.fig15` can regenerate the
series without network access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class SwitchGeneration:
    """One commodity switch ASIC generation (public datasheet values)."""

    name: str
    year: int
    radix: int
    total_bandwidth_tbps: float
    process_node_nm: int
    reported_power_w: float


#: Broadcom Tomahawk series (Fig 1a and Fig 15). Reported powers are the
#: commonly cited typical ASIC powers; radix counted at the smallest
#: supported port granularity, as the paper does.
TOMAHAWK_SERIES: Tuple[SwitchGeneration, ...] = (
    # TH-1 uses the system-level typical power (BCM56960-based boxes);
    # the bare-ASIC figure (~135 W) sits far below the quadratic trend
    # the paper normalizes to.
    SwitchGeneration("Tomahawk-1", 2014, 128, 3.2, 28, 290.0),
    SwitchGeneration("Tomahawk-3", 2018, 128, 12.8, 16, 235.0),
    SwitchGeneration("Tomahawk-4", 2020, 256, 25.6, 7, 350.0),
    SwitchGeneration("Tomahawk-5", 2022, 256, 51.2, 5, 500.0),
)

#: Marvell (Innovium) TeraLynx series (Fig 15).
TERALYNX_SERIES: Tuple[SwitchGeneration, ...] = (
    SwitchGeneration("TeraLynx-7", 2019, 128, 12.8, 16, 215.0),
    SwitchGeneration("TeraLynx-8", 2021, 256, 25.6, 7, 340.0),
    SwitchGeneration("TeraLynx-10", 2023, 256, 51.2, 5, 480.0),
)

#: Radix / total-bandwidth scaling of merchant switch silicon, 2010-2022
#: (Fig 1a): bandwidth grew ~32x while maximum radix grew only ~8x.
SWITCH_SCALING_2010_2022: Tuple[SwitchGeneration, ...] = (
    SwitchGeneration("Trident+", 2010, 64, 0.64, 40, 80.0),
    SwitchGeneration("Trident-2", 2012, 104, 1.28, 28, 100.0),
    SwitchGeneration("Tomahawk-1", 2014, 128, 3.2, 28, 135.0),
    SwitchGeneration("Tomahawk-2", 2016, 128, 6.4, 16, 180.0),
    SwitchGeneration("Tomahawk-3", 2018, 128, 12.8, 16, 235.0),
    SwitchGeneration("Tomahawk-4", 2020, 256, 25.6, 7, 350.0),
    SwitchGeneration("Tomahawk-5", 2022, 512, 51.2, 5, 500.0),
)


@dataclass(frozen=True)
class PackagingDensitySample:
    """I/O pins per mm^2 for a packaging technology in a given year (Fig 1b)."""

    technology: str
    year: int
    pins_per_mm2: float


#: BGA and LGA pin-density samples, 1999-2023 (Fig 1b): ~8x for BGA and
#: ~2.6x for LGA over 24 years.
PACKAGING_DENSITY: Tuple[PackagingDensitySample, ...] = (
    PackagingDensitySample("BGA", 1999, 0.25),
    PackagingDensitySample("BGA", 2005, 0.55),
    PackagingDensitySample("BGA", 2011, 0.95),
    PackagingDensitySample("BGA", 2017, 1.50),
    PackagingDensitySample("BGA", 2023, 2.00),
    PackagingDensitySample("LGA", 1999, 1.00),
    PackagingDensitySample("LGA", 2005, 1.30),
    PackagingDensitySample("LGA", 2011, 1.70),
    PackagingDensitySample("LGA", 2017, 2.20),
    PackagingDensitySample("LGA", 2023, 2.60),
)


#: Table V: latencies of different switch-to-switch connection types.
CONNECTION_LATENCIES_NS = {
    "on-wafer": (10.0, 20.0),
    "in-rack PCB": (100.0, 200.0),
    "100m optical": (350.0, 350.0),
}


def radix_growth_factor() -> float:
    """Radix growth across SWITCH_SCALING_2010_2022 (paper: 8x)."""
    series = SWITCH_SCALING_2010_2022
    return series[-1].radix / series[0].radix


def bandwidth_growth_factor() -> float:
    """Total-bandwidth growth across the same period (paper: far larger)."""
    series = SWITCH_SCALING_2010_2022
    return series[-1].total_bandwidth_tbps / series[0].total_bandwidth_tbps


def packaging_growth_factor(technology: str) -> float:
    """Pin-density growth for BGA (~8x) or LGA (~2.6x), Fig 1b."""
    samples = [s for s in PACKAGING_DENSITY if s.technology == technology]
    if not samples:
        raise ValueError(f"unknown packaging technology {technology!r}")
    samples.sort(key=lambda s: s.year)
    return samples[-1].pins_per_mm2 / samples[0].pins_per_mm2
