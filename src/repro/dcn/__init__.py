"""Multi-wafer datacenter network simulation.

Composes N waferscale switches (each a cycle-accurate
:mod:`repro.netsim` instance) into a leaf/spine folded-Clos DCN and
simulates them as partitions synchronized by a conservative epoch
barrier — see :mod:`repro.dcn.sim` and docs/dcn.md.
"""

from repro.dcn.fabric import DCNFabric, DCNRouteError, DCNShape
from repro.dcn.failures import DCNFailures, FailureConfig, sample_failures
from repro.dcn.flow import FlowWaferNode, ServiceCurve, calibrate_wafer
from repro.dcn.sim import DCNConfig, DCNResult, run_dcn

__all__ = [
    "DCNConfig",
    "DCNFabric",
    "DCNFailures",
    "DCNResult",
    "DCNRouteError",
    "DCNShape",
    "FailureConfig",
    "FlowWaferNode",
    "ServiceCurve",
    "calibrate_wafer",
    "run_dcn",
    "sample_failures",
]
