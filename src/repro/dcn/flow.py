"""Flow-level inter-wafer fidelity: wafers as calibrated queueing nodes.

The cycle-accurate partitioned simulator (:mod:`repro.dcn.sim`) holds
every wafer's full router state live — exact, but bounded to tens of
wafers.  The paper's Tables VII–IX fabrics are *hundreds* of
radix-600+ wafers, so this module adds the next rung of the fidelity
ladder: model each wafer as a **calibrated queueing node** and each
inter-wafer link as a fluid flow, and simulate only the inter-wafer
dynamics.

The contract that makes the ladder stitch together:
:class:`FlowWaferNode` implements the *same epoch-driver interface*
as :class:`repro.netsim.partition.WaferPartition` — ``enqueue()``,
``advance(to_cycle)`` returning a lexsorted delivery bundle plus a
counters dict.  The epoch-barrier coordinator in
:mod:`repro.dcn.sim` therefore runs unmodified over any mix of
cycle-accurate partitions and flow nodes; *hybrid* fidelity is just a
per-wafer choice of node class.

**Calibration.**  A :class:`ServiceCurve` is fitted from short
cycle-accurate probe runs on one pristine wafer
(:func:`repro.netsim.partition.calibration_probe`): mean traversal
latency at several offered loads, plus the delivered-throughput
capacity at a saturating load.  Curves are cached as JSON under the
shared content-addressed cache root
(``.repro_cache/dcn/curve-<key>.json``), keyed on the wafer's
geometry, the probe parameters, *and* the transitive source
fingerprint of this module — edit the simulator and every curve
recalibrates, exactly like the experiment result cache.

**The flow model.**  For a packet entering a flow node at cycle ``c``
with ``size`` flits toward exit terminal ``x``:

* fabric traversal takes ``latency(u)`` cycles — the service curve
  interpolated at the node's offered utilization ``u`` this epoch;
* the exit link serializes at 1 flit/cycle: consecutive packets to
  the same exit queue FIFO behind each other (per-exit virtual
  finish times — this is max-min sharing of each egress link, since
  every competing packet's share degrades equally as the queue
  grows);
* the wafer as a whole serves at most ``capacity`` flits/cycle (the
  calibrated saturation throughput): a wafer-wide virtual time
  advances ``size/capacity`` per packet, delaying everything behind
  it once the aggregate is oversubscribed.

All arithmetic is evaluated in deterministic event order, so a flow
run is a pure function of ``(shape, traffic, seed, fidelity)`` — the
determinism tests in ``tests/dcn/test_flow.py`` pin this.
"""

from __future__ import annotations

import hashlib
import json
import math
from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import paths
from repro.fingerprint import source_fingerprint, transitive_modules
from repro.netsim.network import waferscale_clos_network
from repro.netsim.partition import Event, calibration_probe

#: Offered loads (flits/terminal/cycle) probed for the latency curve.
PROBE_LOADS: Tuple[float, ...] = (0.02, 0.1, 0.2, 0.35)

#: Saturating load probed for the capacity estimate.
SATURATION_LOAD: float = 0.9

#: Injection window of each probe run, in cycles.
PROBE_CYCLES: int = 384

#: RNG seed of the probe traffic (part of the cache key).
PROBE_SEED: int = 7


@dataclass(frozen=True)
class ServiceCurve:
    """One wafer class's fitted service behaviour.

    ``loads``/``latencies`` are the probe samples (offered flits per
    terminal per cycle → mean traversal latency in cycles);
    ``capacity_flits_per_cycle`` is the wafer-wide delivered
    throughput at the saturating probe load.
    """

    wafer_terminals: int
    ssc_radix: int
    loads: Tuple[float, ...]
    latencies: Tuple[float, ...]
    capacity_flits_per_cycle: float

    def latency_at(self, utilization: float) -> float:
        """Piecewise-linear interpolation of the probed latency curve.

        Clamped at both ends: below the lightest probe the zero-load
        latency applies, beyond the heaviest the curve stays flat and
        the capacity clamp in :class:`FlowWaferNode` models the
        queueing growth instead.
        """
        loads, lats = self.loads, self.latencies
        if utilization <= loads[0]:
            return lats[0]
        for i in range(1, len(loads)):
            if utilization <= loads[i]:
                span = loads[i] - loads[i - 1]
                frac = (utilization - loads[i - 1]) / span
                return lats[i - 1] + frac * (lats[i] - lats[i - 1])
        return lats[-1]

    def to_dict(self) -> Dict[str, object]:
        return {
            "wafer_terminals": self.wafer_terminals,
            "ssc_radix": self.ssc_radix,
            "loads": list(self.loads),
            "latencies": list(self.latencies),
            "capacity_flits_per_cycle": self.capacity_flits_per_cycle,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ServiceCurve":
        return cls(
            wafer_terminals=int(payload["wafer_terminals"]),
            ssc_radix=int(payload["ssc_radix"]),
            loads=tuple(float(x) for x in payload["loads"]),
            latencies=tuple(float(x) for x in payload["latencies"]),
            capacity_flits_per_cycle=float(
                payload["capacity_flits_per_cycle"]
            ),
        )


# ----------------------------------------------------------------------
# Calibration (content-addressed cache)
# ----------------------------------------------------------------------

def _curve_cache_key(
    wafer_terminals: int,
    ssc_radix: int,
    num_vcs: int,
    buffer_flits: int,
    size_flits: int,
) -> str:
    payload = {
        "wafer_terminals": wafer_terminals,
        "ssc_radix": ssc_radix,
        "num_vcs": num_vcs,
        "buffer_flits": buffer_flits,
        "size_flits": size_flits,
        "probe_loads": list(PROBE_LOADS),
        "saturation_load": SATURATION_LOAD,
        "probe_cycles": PROBE_CYCLES,
        "probe_seed": PROBE_SEED,
        "sources": source_fingerprint(transitive_modules("repro.dcn.flow")),
    }
    canonical = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(canonical).hexdigest()[:24]


def curve_cache_path(key: str, root=None):
    """On-disk location of one calibrated curve entry."""
    return paths.cache_root(root) / "dcn" / f"curve-{key}.json"


def calibrate_wafer(
    wafer_terminals: int,
    ssc_radix: int,
    num_vcs: int = 4,
    buffer_flits: int = 16,
    size_flits: int = 4,
    engine: str = "auto",
    cache: bool = True,
    cache_root=None,
) -> ServiceCurve:
    """Fit (or fetch) the service curve of one wafer class.

    Runs ``len(PROBE_LOADS) + 1`` short cycle-accurate probe runs on a
    pristine wafer of this geometry and caches the fitted curve under
    the content-addressed cache root.  A warm call is a single JSON
    read; the cache invalidates automatically when any transitively
    imported ``repro`` source changes.
    """
    key = _curve_cache_key(
        wafer_terminals, ssc_radix, num_vcs, buffer_flits, size_flits
    )
    path = curve_cache_path(key, cache_root)
    if cache and path.exists():
        try:
            return ServiceCurve.from_dict(json.loads(path.read_text()))
        except (ValueError, KeyError, TypeError):
            pass  # corrupt entry: fall through and recalibrate

    def build():
        return waferscale_clos_network(
            wafer_terminals,
            ssc_radix,
            num_vcs=num_vcs,
            buffer_flits_per_port=buffer_flits,
        )

    latencies = []
    for load in PROBE_LOADS:
        probe = calibration_probe(
            build(),
            load,
            PROBE_CYCLES,
            seed=PROBE_SEED,
            size_flits=size_flits,
            engine=engine,
        )
        latencies.append(max(1.0, probe["mean_latency"]))
    saturation = calibration_probe(
        build(),
        SATURATION_LOAD,
        PROBE_CYCLES,
        seed=PROBE_SEED,
        size_flits=size_flits,
        engine=engine,
    )
    curve = ServiceCurve(
        wafer_terminals=wafer_terminals,
        ssc_radix=ssc_radix,
        loads=PROBE_LOADS,
        latencies=tuple(latencies),
        capacity_flits_per_cycle=max(
            1.0, saturation["delivered_flits_per_cycle"]
        ),
    )
    if cache:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(curve.to_dict(), sort_keys=True) + "\n")
        tmp.replace(path)
    return curve


def curves_for_shape(
    shape, engine: str = "auto", cache: bool = True, cache_root=None
) -> Dict[str, ServiceCurve]:
    """Leaf and (if distinct) spine service curves for a DCN shape."""
    curves = {
        "leaf": calibrate_wafer(
            shape.wafer_terminals,
            shape.ssc_radix,
            num_vcs=shape.num_vcs,
            buffer_flits=shape.buffer_flits,
            engine=engine,
            cache=cache,
            cache_root=cache_root,
        )
    }
    spine_radix = shape.spine_ssc_radix or shape.ssc_radix
    if spine_radix == shape.ssc_radix:
        curves["spine"] = curves["leaf"]
    else:
        curves["spine"] = calibrate_wafer(
            shape.wafer_terminals,
            spine_radix,
            num_vcs=shape.num_vcs,
            buffer_flits=shape.buffer_flits,
            engine=engine,
            cache=cache,
            cache_root=cache_root,
        )
    return curves


# ----------------------------------------------------------------------
# The flow node
# ----------------------------------------------------------------------

class FlowWaferNode:
    """One wafer as a calibrated queueing node.

    Same epoch-driver surface as
    :class:`~repro.netsim.partition.WaferPartition`: ``enqueue()``
    sorted future events, ``advance(to_cycle)`` a lexsorted delivery
    bundle + counters.  No router state exists — deliveries are
    computed from the service curve, per-exit egress queues, and the
    wafer-wide capacity clamp, all in deterministic event order.
    """

    engine_name = "flow"

    def __init__(self, curve: ServiceCurve, n_terminals: int):
        self.curve = curve
        self.n_terminals = n_terminals
        self.cycle = 0
        self._sched: deque = deque()
        #: min-heap of (arrive, exit_terminal, tag, size_flits)
        self._inflight: List[Tuple[int, int, int, int]] = []
        self._inflight_flits = 0
        #: per-exit virtual finish time of the egress link (1 flit/cy)
        self._exit_free: Dict[int, float] = {}
        #: wafer-wide virtual time of the aggregate service capacity
        self._agg_time = 0.0
        self.offered_flits = 0
        self.offered_packets = 0
        self.delivered_flits = 0
        self.delivered_packets = 0

    @property
    def inflight_flits(self) -> int:
        return self._inflight_flits

    def enqueue(self, events: List[Event]) -> None:
        """Same contract as ``WaferPartition.enqueue``."""
        if not events:
            return
        if events[0][0] < self.cycle:
            raise ValueError(
                f"event {events[0]} scheduled before cycle {self.cycle}"
            )
        for earlier, later in zip(events, events[1:]):
            if later < earlier:
                raise ValueError(f"events not sorted at {later}")
        if self._sched and events[0] < self._sched[-1]:
            raise ValueError("events overlap previously enqueued schedule")
        self._sched.extend(events)

    def advance(self, to_cycle: int):
        """Model every event scheduled before ``to_cycle``; harvest.

        Mirrors ``WaferPartition.advance``: consumes events with
        ``cycle < to_cycle``, returns deliveries whose arrival is
        strictly before ``to_cycle`` as int64 arrays lexsorted by
        (arrival, terminal, tag), plus the counters dict.
        """
        span = max(1, to_cycle - self.cycle)
        sched = self._sched
        batch: List[Event] = []
        while sched and sched[0][0] < to_cycle:
            batch.append(sched.popleft())
        if batch:
            offered = sum(event[3] for event in batch)
            utilization = offered / (self.n_terminals * span)
            base = max(1.0, self.curve.latency_at(utilization))
            capacity = self.curve.capacity_flits_per_cycle
            for cycle, _entry, exit_term, size, tag in batch:
                self.offered_flits += size
                self.offered_packets += 1
                # Wafer-wide capacity clamp (fluid service).
                self._agg_time = (
                    max(self._agg_time, float(cycle)) + size / capacity
                )
                # Fabric traversal, then FIFO egress serialization.
                ready = cycle + base
                start = max(ready, self._exit_free.get(exit_term, 0.0))
                arrive = max(
                    int(math.ceil(start)), int(math.ceil(self._agg_time))
                )
                if arrive <= cycle:
                    arrive = cycle + 1
                self._exit_free[exit_term] = max(
                    start + size, float(arrive)
                )
                heappush(
                    self._inflight, (arrive, exit_term, tag, size)
                )
                self._inflight_flits += size
        self.cycle = to_cycle
        return (*self._harvest(to_cycle), self.counters())

    def _harvest(self, to_cycle: int):
        terms: List[int] = []
        tags: List[int] = []
        arrives: List[int] = []
        inflight = self._inflight
        while inflight and inflight[0][0] < to_cycle:
            arrive, term, tag, size = heappop(inflight)
            arrives.append(arrive)
            terms.append(term)
            tags.append(tag)
            self._inflight_flits -= size
            self.delivered_flits += size
            self.delivered_packets += 1
        return (
            np.asarray(terms, dtype=np.int64),
            np.asarray(tags, dtype=np.int64),
            np.asarray(arrives, dtype=np.int64),
        )

    def counters(self) -> Dict[str, int]:
        return {
            "inflight": self._inflight_flits,
            "offered_flits": self.offered_flits,
            "offered_packets": self.offered_packets,
            "delivered_flits": self.delivered_flits,
            "delivered_packets": self.delivered_packets,
        }
