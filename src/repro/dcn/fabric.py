"""DCN fabric: a folded Clos whose switches are whole wafers.

The paper's Tables VII-IX size datacenter deployments of the
waferscale switch analytically; this module builds the same leaf/spine
folded Clos *as a simulable object*.  The construction literally
reuses :func:`repro.topology.clos.folded_clos` — each wafer plays the
role the sub-switch chiplet plays inside one wafer, one level up:

* ``wafer_radix`` external ports per wafer switch,
* ``2 * n_hosts / wafer_radix`` **leaf wafers**, each terminating
  ``wafer_radix / 2`` hosts and spreading as many uplink channels
  across the spine tier (remainders rotated per leaf, exactly as the
  intra-wafer builder does),
* ``n_hosts / wafer_radix`` **spine wafers**, each exactly filled.

Every wafer — leaf or spine — is therefore a radix-``wafer_radix``
switch, simulated cycle-accurately by
:func:`repro.netsim.network.waferscale_clos_network`.  A leaf wafer's
terminals ``[0, hosts_per_leaf)`` are hosts; the rest are *gateway*
terminals, one per inter-wafer uplink channel.  Spine wafer terminals
are all gateways, grouped by source leaf.

A degenerate **back-to-back** shape (two leaf wafers trunked directly,
no spine tier) is the smallest partitionable DCN and the golden parity
configuration.

Routing picks the spine and the up/down channels per DCN packet with a
splitmix64 hash of the packet id — deterministic, seed-free, and
independent of partition layout, which is what lets a partitioned run
reproduce a monolithic one bit-for-bit.  Failed hosts, gateways, and
channels (:mod:`repro.dcn.failures`) are excluded from the option set;
a packet with no surviving option raises :class:`DCNRouteError` and is
dropped (and counted) by the coordinator rather than silently lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Tuple

from repro.netsim.network import ClosShape, NetworkModel, waferscale_clos_network
from repro.tech.chiplet import scaled_leaf_die, tomahawk5
from repro.topology.clos import folded_clos

_M64 = (1 << 64) - 1


def _mix(value: int) -> int:
    """splitmix64 finalizer: one deterministic 64-bit hash per id."""
    value = (value + 0x9E3779B97F4A7C15) & _M64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _M64
    return value ^ (value >> 31)


class DCNRouteError(Exception):
    """No surviving path between two hosts (failures ate them all)."""


class Segment(NamedTuple):
    """One wafer traversal: inject at ``entry``, deliver at ``exit``."""

    wafer: int
    entry: int
    exit: int


@dataclass(frozen=True)
class DCNShape:
    """Geometry and per-wafer simulator knobs of a multi-wafer DCN.

    ``n_hosts`` external host ports spread over leaf wafers of radix
    ``wafer_radix``; intra-wafer Clos built from ``ssc_radix`` SSCs
    (``spine_ssc_radix`` overrides it for the spine tier).  When
    ``back_to_back`` is true the shape is the two-leaf trunked
    degenerate (requires ``n_hosts == wafer_radix``).  The smaller
    ``num_vcs``/``buffer_flits`` defaults (vs the single-wafer
    experiments) keep N-wafer sweeps tractable; both stay overridable.
    """

    n_hosts: int
    wafer_radix: int
    ssc_radix: int
    spine_ssc_radix: int = 0
    back_to_back: bool = False
    inter_wafer_latency: int = 40
    num_vcs: int = 4
    buffer_flits: int = 16

    def __post_init__(self) -> None:
        ClosShape(self.wafer_radix, self.ssc_radix)
        if self.spine_ssc_radix:
            ClosShape(self.wafer_radix, self.spine_ssc_radix)
        if self.back_to_back:
            if self.n_hosts != self.wafer_radix:
                raise ValueError(
                    "back-to-back shape needs n_hosts == wafer_radix "
                    f"({self.n_hosts} != {self.wafer_radix})"
                )
        else:
            # Same integral constraints as the intra-wafer Clos, one
            # level up (folded_clos re-validates at build time).
            ClosShape(self.n_hosts, self.wafer_radix)
        if self.inter_wafer_latency < 1:
            raise ValueError("inter_wafer_latency must be >= 1")

    @property
    def hosts_per_leaf(self) -> int:
        return self.wafer_radix // 2

    @property
    def n_leaves(self) -> int:
        return 2 * self.n_hosts // self.wafer_radix

    @property
    def n_spines(self) -> int:
        return 0 if self.back_to_back else self.n_hosts // self.wafer_radix

    @property
    def n_wafers(self) -> int:
        return self.n_leaves + self.n_spines

    @property
    def wafer_terminals(self) -> int:
        return self.wafer_radix

    def leaf_of_host(self, host: int) -> int:
        return host // self.hosts_per_leaf

    def local_of_host(self, host: int) -> int:
        return host % self.hosts_per_leaf


class DCNFabric:
    """Precomputed wiring + routing tables for one (shape, failures).

    ``failures`` is an optional :class:`repro.dcn.failures.DCNFailures`
    sample; ``None`` means a fault-free fabric.
    """

    def __init__(self, shape: DCNShape, failures=None):
        self.shape = shape
        self.failures = failures
        H = shape.hosts_per_leaf
        L = shape.n_leaves
        S = shape.n_spines

        # channels[l][s]: inter-wafer channel count between leaf l and
        # spine s (back-to-back: one trunk of H channels, peer implied).
        if shape.back_to_back:
            self.channels = [[H], [H]]
        else:
            topology = folded_clos(
                shape.n_hosts,
                ssc=scaled_leaf_die(
                    shape.wafer_radix,
                    tomahawk5().port_bandwidth_gbps,
                    reference=tomahawk5(),
                ),
            )
            self.topology = topology
            self.channels = [[0] * S for _ in range(L)]
            for link in topology.links:
                self.channels[link.a][link.b - L] = link.channels

        # Gateway terminal offsets.  Leaf l, spine s, channel c sits at
        # leaf terminal H + leaf_gw_base[l][s] + c, and at spine
        # terminal spine_entry_base[s][l] + c.
        self.leaf_gw_base: List[List[int]] = []
        for l in range(L):
            bases, total = [], 0
            for count in self.channels[l]:
                bases.append(total)
                total += count
            self.leaf_gw_base.append(bases)
            if H + total != shape.wafer_terminals:
                raise AssertionError("leaf uplinks must fill the wafer")
        self.spine_entry_base: List[List[int]] = []
        for s in range(S):
            bases, total = [], 0
            for l in range(L):
                bases.append(total)
                total += self.channels[l][s]
            self.spine_entry_base.append(bases)
            if total != shape.wafer_terminals:
                raise AssertionError("spine entries must fill the wafer")

        dead_terms = frozenset(failures.dead_terminals) if failures else frozenset()
        dead_links = frozenset(failures.dead_links) if failures else frozenset()
        self._dead_terminals = dead_terms
        self._dead_links = dead_links
        self.alive_hosts = tuple(
            host
            for host in range(shape.n_hosts)
            if (shape.leaf_of_host(host), shape.local_of_host(host))
            not in dead_terms
        )
        self._options: Dict[Tuple[int, int], tuple] = {}

    # -- wafer construction --------------------------------------------

    def build_wafer(self, wafer: int) -> NetworkModel:
        shape = self.shape
        is_spine = wafer >= shape.n_leaves
        radix = (
            shape.spine_ssc_radix or shape.ssc_radix
            if is_spine
            else shape.ssc_radix
        )
        return waferscale_clos_network(
            shape.wafer_terminals,
            radix,
            num_vcs=shape.num_vcs,
            buffer_flits_per_port=shape.buffer_flits,
        )

    # -- failure-aware channel liveness --------------------------------

    def _channel_alive(self, leaf: int, spine: int, channel: int) -> bool:
        # Back-to-back trunk channels are one shared link; failures.py
        # keys them from leaf 0's side.
        link_key = (
            (0, spine, channel)
            if self.shape.back_to_back
            else (leaf, spine, channel)
        )
        if link_key in self._dead_links:
            return False
        H = self.shape.hosts_per_leaf
        gateway = H + self.leaf_gw_base[leaf][spine] + channel
        if (leaf, gateway) in self._dead_terminals:
            return False
        if self.shape.back_to_back:
            peer = 1 - leaf
            return (
                peer,
                H + self.leaf_gw_base[peer][spine] + channel,
            ) not in self._dead_terminals
        spine_wafer = self.shape.n_leaves + spine
        entry = self.spine_entry_base[spine][leaf] + channel
        return (spine_wafer, entry) not in self._dead_terminals

    def _pair_options(self, src_leaf: int, dst_leaf: int) -> tuple:
        """Alive ``(spine, up_channel, down_channel)`` triples, cached."""
        key = (src_leaf, dst_leaf)
        cached = self._options.get(key)
        if cached is None:
            options = []
            for spine in range(len(self.channels[src_leaf])):
                ups = [
                    c
                    for c in range(self.channels[src_leaf][spine])
                    if self._channel_alive(src_leaf, spine, c)
                ]
                if self.shape.back_to_back:
                    options.extend((spine, c, c) for c in ups)
                    continue
                downs = [
                    c
                    for c in range(self.channels[dst_leaf][spine])
                    if self._channel_alive(dst_leaf, spine, c)
                ]
                options.extend(
                    (spine, up, down) for up in ups for down in downs
                )
            cached = self._options[key] = tuple(options)
        return cached

    # -- routing --------------------------------------------------------

    def route(self, dcn_id: int, src_host: int, dst_host: int) -> List[Segment]:
        """Wafer-hop segments for one packet, or :class:`DCNRouteError`."""
        shape = self.shape
        src_leaf, src_local = (
            shape.leaf_of_host(src_host), shape.local_of_host(src_host)
        )
        dst_leaf, dst_local = (
            shape.leaf_of_host(dst_host), shape.local_of_host(dst_host)
        )
        dead = self._dead_terminals
        if (src_leaf, src_local) in dead or (dst_leaf, dst_local) in dead:
            raise DCNRouteError(f"host endpoint dead: {src_host}->{dst_host}")
        if src_leaf == dst_leaf:
            return [Segment(src_leaf, src_local, dst_local)]
        options = self._pair_options(src_leaf, dst_leaf)
        if not options:
            raise DCNRouteError(
                f"no surviving channel between leaves {src_leaf} and {dst_leaf}"
            )
        spine, up, down = options[_mix(dcn_id) % len(options)]
        H = shape.hosts_per_leaf
        src_gateway = H + self.leaf_gw_base[src_leaf][spine] + up
        dst_gateway = H + self.leaf_gw_base[dst_leaf][spine] + down
        if shape.back_to_back:
            return [
                Segment(src_leaf, src_local, src_gateway),
                Segment(dst_leaf, dst_gateway, dst_local),
            ]
        spine_wafer = shape.n_leaves + spine
        return [
            Segment(src_leaf, src_local, src_gateway),
            Segment(
                spine_wafer,
                self.spine_entry_base[spine][src_leaf] + up,
                self.spine_entry_base[spine][dst_leaf] + down,
            ),
            Segment(dst_leaf, dst_gateway, dst_local),
        ]
