"""Yield-driven failure injection for the multi-wafer DCN.

Failure probabilities come straight from :mod:`repro.tech.yield_model`
— the same compound-Poisson die yield and bond yield the paper's
Section VI uses to size sparing — so a DCN run degrades the way the
manufacturing model says a deployed wafer population would:

* Each terminal-bearing SSC on each wafer (the intra-wafer *leaf*
  SSCs, which own ``ssc_radix / 2`` terminals apiece) fails with
  probability ``1 - die_yield(area) * bond_yield``.  A dead SSC takes
  all of its terminals with it — host ports and inter-wafer gateways
  alike, whichever its slice covers.
* Each inter-wafer channel independently fails with
  ``link_failure_prob`` (cable/connector faults; zero by default since
  the yield model only speaks to on-wafer integration).

Sampling is a pure function of ``(shape, config)``: one
``random.Random(seed)`` stream consumed in a fixed documented order
(wafers ascending, SSC slices ascending within each wafer, then
channels in ``(leaf, spine, channel)`` order).  Identical inputs give
identical failure sets across processes, platforms, and partition
layouts — the property tests pin this, and the partitioned/monolithic
parity guarantee depends on it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.dcn.fabric import DCNFabric
from repro.tech.yield_model import DEFAULT_BOND_YIELD, die_yield


@dataclass(frozen=True)
class FailureConfig:
    """Knobs for one failure sample; defaults mirror the yield model."""

    seed: int = 0
    ssc_area_mm2: float = 25.0
    defect_density_per_mm2: float = 0.001
    bond_yield: float = DEFAULT_BOND_YIELD
    link_failure_prob: float = 0.0

    @property
    def ssc_failure_prob(self) -> float:
        alive = (
            die_yield(self.ssc_area_mm2, self.defect_density_per_mm2)
            * self.bond_yield
        )
        return 1.0 - alive


@dataclass(frozen=True)
class DCNFailures:
    """One sampled failure set (all-tuples: hashable, picklable).

    ``dead_sscs`` are ``(wafer, ssc_slice)`` pairs; ``dead_terminals``
    the ``(wafer, terminal)`` pairs they imply; ``dead_links`` the
    ``(leaf, spine, channel)`` triples (back-to-back trunks keyed from
    leaf 0's side).
    """

    dead_sscs: Tuple[Tuple[int, int], ...]
    dead_terminals: Tuple[Tuple[int, int], ...]
    dead_links: Tuple[Tuple[int, int, int], ...]

    @property
    def empty(self) -> bool:
        return not (self.dead_sscs or self.dead_links)


def sample_failures(shape, config: FailureConfig) -> DCNFailures:
    """Draw one deterministic failure set for ``shape`` under ``config``.

    ``shape`` is a :class:`repro.dcn.fabric.DCNShape`.  The RNG stream
    is consumed in a fixed order regardless of outcomes, so any two
    samples with the same inputs are identical element-for-element.
    """
    rng = random.Random(config.seed)
    ssc_fail = config.ssc_failure_prob
    dead_sscs: List[Tuple[int, int]] = []
    dead_terminals: List[Tuple[int, int]] = []
    for wafer in range(shape.n_wafers):
        is_spine = wafer >= shape.n_leaves
        radix = (
            (shape.spine_ssc_radix or shape.ssc_radix)
            if is_spine
            else shape.ssc_radix
        )
        per_ssc = radix // 2
        for ssc in range(shape.wafer_terminals // per_ssc):
            if rng.random() < ssc_fail:
                dead_sscs.append((wafer, ssc))
                dead_terminals.extend(
                    (wafer, ssc * per_ssc + slot) for slot in range(per_ssc)
                )
    dead_links: List[Tuple[int, int, int]] = []
    link_fail = config.link_failure_prob
    if shape.back_to_back:
        trunks = [(0, 0, shape.hosts_per_leaf)]
    else:
        # Use the fault-free fabric's own channel table so sampled
        # channel indices always match what routing will look up.
        channels = DCNFabric(shape).channels
        trunks = [
            (leaf, spine, channels[leaf][spine])
            for leaf in range(shape.n_leaves)
            for spine in range(shape.n_spines)
        ]
    for leaf, spine, count in trunks:
        for channel in range(count):
            if rng.random() < link_fail:
                dead_links.append((leaf, spine, channel))

    return DCNFailures(
        dead_sscs=tuple(dead_sscs),
        dead_terminals=tuple(dead_terminals),
        dead_links=tuple(dead_links),
    )
