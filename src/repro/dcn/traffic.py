"""DCN-level traffic generators.

Each generator returns a list of ``(cycle, src_host, dst_host,
size_flits)`` tuples over *global* host ids, sorted, deterministic in
``(pattern args, seed)``, with ``src != dst`` and both endpoints drawn
only from the ``hosts`` survivor list the caller passes (so failed
ports neither send nor sink).  The coordinator routes and tags them;
generators know nothing about wafers.

Patterns are the heavy-traffic scenarios the roadmap names:

* ``uniform`` — independent Bernoulli arrivals per host per cycle,
  uniform destinations (the classic baseline).
* ``alltoall`` — synchronized collective rounds: in round ``r`` every
  host ``i`` sends one packet to the host ``r + 1`` positions ahead,
  the ring-shifted exchange an HBM-fed NPU pod performs (the fm16
  scenario); rounds start every ``interval`` cycles.
* ``incast`` — many-to-one fan-in: every ``interval`` cycles all other
  hosts send to one victim (rotating per round), the straggler-making
  pattern that stresses egress buffering.
* ``elephant_mouse`` — a few long-lived heavy flows (elephants) under
  a background of one-packet mice, the canonical DCN mix.

The LLM-training patterns model the three parallelism axes of a
distributed training job, à la Theseus (PAPERS.md) — the traffic the
paper's Table VIII GPU-cluster fabric must serve:

* ``dp_allreduce`` — data-parallel gradient synchronization: a ring
  all-reduce over all hosts, each step every host sending one gradient
  chunk to its ring successor; steps are staggered and paced by
  ``load``.
* ``pp_stages`` — pipeline parallelism: hosts split into contiguous
  stages, rank ``r`` of stage ``k`` streaming activations
  point-to-point to rank ``r`` of stage ``k+1``, one microbatch per
  interval, skewed by stage depth exactly like a 1F1B schedule's
  steady state.
* ``tp_burst`` — tensor parallelism: small groups of neighbouring
  hosts (TP degree 8) exchanging dense all-to-all bursts every
  interval — mostly intra-leaf traffic that stresses a single wafer's
  ingress rather than the spine tier.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

Event = Tuple[int, int, int, int]

PATTERNS = (
    "uniform",
    "alltoall",
    "incast",
    "elephant_mouse",
    "dp_allreduce",
    "pp_stages",
    "tp_burst",
)

#: Tensor-parallel group width for ``tp_burst`` (a typical TP degree).
TP_DEGREE = 8


def generate(
    pattern: str,
    hosts: Sequence[int],
    duration: int,
    seed: int,
    load: float = 0.1,
    size_flits: int = 4,
) -> List[Event]:
    """Dispatch to a named pattern; see module docstring for the menu."""
    if pattern not in PATTERNS:
        raise ValueError(
            f"unknown DCN traffic pattern {pattern!r}; choose from {PATTERNS}"
        )
    if len(hosts) < 2:
        raise ValueError("need at least two alive hosts to generate traffic")
    if duration < 1:
        raise ValueError("duration must be >= 1")
    events = globals()[f"_{pattern}"](
        list(hosts), duration, random.Random(seed), load, size_flits
    )
    events.sort()
    return events


def _uniform(hosts, duration, rng, load, size_flits):
    events = []
    n = len(hosts)
    for cycle in range(duration):
        for i, src in enumerate(hosts):
            if rng.random() < load:
                j = rng.randrange(n - 1)
                if j >= i:
                    j += 1
                events.append((cycle, src, hosts[j], size_flits))
    return events


def _alltoall(hosts, duration, rng, load, size_flits):
    # One full exchange is n-1 rounds; `load` sets the duty cycle via
    # the inter-round interval (a round per 1/load cycles, min 1).
    events = []
    n = len(hosts)
    interval = max(1, int(round(1.0 / max(load, 1e-9))))
    round_index = 0
    for start in range(0, duration, interval):
        shift = 1 + round_index % (n - 1)
        for i, src in enumerate(hosts):
            # Stagger intra-round starts to avoid a single-cycle burst
            # wall, as the fm16 system scenario does.
            cycle = start + i % interval
            if cycle >= duration:
                continue
            events.append((cycle, src, hosts[(i + shift) % n], size_flits))
        round_index += 1
    return events


def _incast(hosts, duration, rng, load, size_flits):
    events = []
    n = len(hosts)
    interval = max(1, int(round(n / max(load * n, 1e-9))))
    round_index = 0
    for start in range(0, duration, interval):
        victim = round_index % n
        for i, src in enumerate(hosts):
            if i == victim:
                continue
            cycle = start + i % interval
            if cycle >= duration:
                continue
            events.append((cycle, src, hosts[victim], size_flits))
        round_index += 1
    return events


def _dp_allreduce(hosts, duration, rng, load, size_flits):
    # Ring all-reduce: reduce-scatter + all-gather is 2(n-1) steps; in
    # step s every host i sends one chunk to its ring successor.
    # `load` paces the steps (one per 1/load cycles, min 1), and
    # intra-step sends are staggered as in the collective patterns
    # above so a step is a wave, not a single-cycle wall.
    del rng
    events = []
    n = len(hosts)
    interval = max(1, int(round(1.0 / max(load, 1e-9))))
    for start in range(0, duration, interval):
        for i, src in enumerate(hosts):
            cycle = start + i % interval
            if cycle >= duration:
                continue
            events.append((cycle, src, hosts[(i + 1) % n], size_flits))
    return events


def _pp_stages(hosts, duration, rng, load, size_flits):
    # Pipeline stages: contiguous host blocks, rank r of stage k
    # streams activations to rank r of stage k+1.  Microbatch m leaves
    # stage k at cycle (m + k) * interval — the steady-state skew of a
    # 1F1B schedule.  Activations are heavier than gradient chunks.
    del rng
    events = []
    n = len(hosts)
    n_stages = min(8, n)
    ranks = n // n_stages
    activation = size_flits * 2
    interval = max(1, int(round(1.0 / max(load, 1e-9))))
    microbatches = max(1, duration // interval)
    for m in range(microbatches):
        for k in range(n_stages - 1):
            base = (m + k) * interval
            if base >= duration:
                break
            for r in range(ranks):
                cycle = base + r % interval
                if cycle >= duration:
                    continue
                events.append(
                    (
                        cycle,
                        hosts[k * ranks + r],
                        hosts[(k + 1) * ranks + r],
                        activation,
                    )
                )
    return events


def _tp_burst(hosts, duration, rng, load, size_flits):
    # Tensor-parallel bursts: consecutive hosts form TP groups of
    # TP_DEGREE; every interval each member sends to every other
    # member (dense intra-group all-to-all, staggered inside the
    # interval).  Interval scales with the per-burst volume so the
    # offered load tracks `load`.
    del rng
    events = []
    n = len(hosts)
    group_size = min(TP_DEGREE, n)
    interval = max(1, int(round((group_size - 1) / max(load, 1e-9))))
    for start in range(0, duration, interval):
        for g in range(0, n - group_size + 1, group_size):
            members = hosts[g:g + group_size]
            for i, src in enumerate(members):
                for j, dst in enumerate(members):
                    if i == j:
                        continue
                    cycle = start + (i + j) % interval
                    if cycle >= duration:
                        continue
                    events.append((cycle, src, dst, size_flits))
    return events


def _elephant_mouse(hosts, duration, rng, load, size_flits):
    events = []
    n = len(hosts)
    # ~10% of hosts source an elephant: a persistent pinned-pair flow
    # sending a max-size packet every few cycles for the whole run.
    n_elephants = max(1, n // 10)
    elephant_size = size_flits * 4
    sources = rng.sample(range(n), n_elephants)
    for i in sources:
        j = rng.randrange(n - 1)
        if j >= i:
            j += 1
        period = rng.randrange(4, 9)
        for cycle in range(rng.randrange(period), duration, period):
            events.append((cycle, hosts[i], hosts[j], elephant_size))
    # Everyone else contributes mice at the configured load.
    mouse_hosts = [h for k, h in enumerate(hosts) if k not in set(sources)]
    for cycle in range(duration):
        for src in mouse_hosts:
            if rng.random() < load:
                dst = src
                while dst == src:
                    dst = hosts[rng.randrange(n)]
                events.append((cycle, src, dst, size_flits))
    return events
