"""DCN-level traffic generators.

Each generator returns a list of ``(cycle, src_host, dst_host,
size_flits)`` tuples over *global* host ids, sorted, deterministic in
``(pattern args, seed)``, with ``src != dst`` and both endpoints drawn
only from the ``hosts`` survivor list the caller passes (so failed
ports neither send nor sink).  The coordinator routes and tags them;
generators know nothing about wafers.

Patterns are the heavy-traffic scenarios the roadmap names:

* ``uniform`` — independent Bernoulli arrivals per host per cycle,
  uniform destinations (the classic baseline).
* ``alltoall`` — synchronized collective rounds: in round ``r`` every
  host ``i`` sends one packet to the host ``r + 1`` positions ahead,
  the ring-shifted exchange an HBM-fed NPU pod performs (the fm16
  scenario); rounds start every ``interval`` cycles.
* ``incast`` — many-to-one fan-in: every ``interval`` cycles all other
  hosts send to one victim (rotating per round), the straggler-making
  pattern that stresses egress buffering.
* ``elephant_mouse`` — a few long-lived heavy flows (elephants) under
  a background of one-packet mice, the canonical DCN mix.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

Event = Tuple[int, int, int, int]

PATTERNS = ("uniform", "alltoall", "incast", "elephant_mouse")


def generate(
    pattern: str,
    hosts: Sequence[int],
    duration: int,
    seed: int,
    load: float = 0.1,
    size_flits: int = 4,
) -> List[Event]:
    """Dispatch to a named pattern; see module docstring for the menu."""
    if pattern not in PATTERNS:
        raise ValueError(
            f"unknown DCN traffic pattern {pattern!r}; choose from {PATTERNS}"
        )
    if len(hosts) < 2:
        raise ValueError("need at least two alive hosts to generate traffic")
    if duration < 1:
        raise ValueError("duration must be >= 1")
    events = globals()[f"_{pattern}"](
        list(hosts), duration, random.Random(seed), load, size_flits
    )
    events.sort()
    return events


def _uniform(hosts, duration, rng, load, size_flits):
    events = []
    n = len(hosts)
    for cycle in range(duration):
        for i, src in enumerate(hosts):
            if rng.random() < load:
                j = rng.randrange(n - 1)
                if j >= i:
                    j += 1
                events.append((cycle, src, hosts[j], size_flits))
    return events


def _alltoall(hosts, duration, rng, load, size_flits):
    # One full exchange is n-1 rounds; `load` sets the duty cycle via
    # the inter-round interval (a round per 1/load cycles, min 1).
    events = []
    n = len(hosts)
    interval = max(1, int(round(1.0 / max(load, 1e-9))))
    round_index = 0
    for start in range(0, duration, interval):
        shift = 1 + round_index % (n - 1)
        for i, src in enumerate(hosts):
            # Stagger intra-round starts to avoid a single-cycle burst
            # wall, as the fm16 system scenario does.
            cycle = start + i % interval
            if cycle >= duration:
                continue
            events.append((cycle, src, hosts[(i + shift) % n], size_flits))
        round_index += 1
    return events


def _incast(hosts, duration, rng, load, size_flits):
    events = []
    n = len(hosts)
    interval = max(1, int(round(n / max(load * n, 1e-9))))
    round_index = 0
    for start in range(0, duration, interval):
        victim = round_index % n
        for i, src in enumerate(hosts):
            if i == victim:
                continue
            cycle = start + i % interval
            if cycle >= duration:
                continue
            events.append((cycle, src, hosts[victim], size_flits))
        round_index += 1
    return events


def _elephant_mouse(hosts, duration, rng, load, size_flits):
    events = []
    n = len(hosts)
    # ~10% of hosts source an elephant: a persistent pinned-pair flow
    # sending a max-size packet every few cycles for the whole run.
    n_elephants = max(1, n // 10)
    elephant_size = size_flits * 4
    sources = rng.sample(range(n), n_elephants)
    for i in sources:
        j = rng.randrange(n - 1)
        if j >= i:
            j += 1
        period = rng.randrange(4, 9)
        for cycle in range(rng.randrange(period), duration, period):
            events.append((cycle, hosts[i], hosts[j], elephant_size))
    # Everyone else contributes mice at the configured load.
    mouse_hosts = [h for k, h in enumerate(hosts) if k not in set(sources)]
    for cycle in range(duration):
        for src in mouse_hosts:
            if rng.random() < load:
                dst = src
                while dst == src:
                    dst = hosts[rng.randrange(n)]
                events.append((cycle, src, dst, size_flits))
    return events
