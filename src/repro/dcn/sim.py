"""Hierarchical DCN simulation: N wafer partitions, one epoch barrier.

Every wafer in the fabric runs as its own cycle-accurate
:class:`~repro.netsim.partition.WaferPartition`.  The coordinator
synchronizes them with a **conservative epoch barrier**: with
``lookahead = inter_wafer_link_latency`` (the minimum cycles any flit
spends between wafers), a packet leaving wafer A during epoch ``k``
cannot reach wafer B before epoch ``k + 1`` — so all partitions can
simulate one full epoch independently, exchange their delivered
traffic as batched bundles, and never violate causality.  Epoch
results are therefore *identical* for any execution order of the
partitions, which is the whole parity story:

* the **serial** executor steps every partition in-process — this is
  the monolithic single-process reference;
* the **pool** executor dispatches each partition's epochs to the warm
  :class:`repro.parallel.WorkerPool`, one worker per partition (pinned
  with affinity keys so the live engine state stays resident), with
  event bundles and delivery reports crossing as
  :mod:`repro.wire`-encoded messages.

Both run the same coordinator loop on the same inputs; the pool run
must reproduce the serial run bit-for-bit (latency samples, flit
counts) — the CI ``dcn-smoke`` job and ``tests/dcn`` assert exactly
that.  If a pinned worker dies mid-run
(:class:`~repro.parallel.AffinityLostError`), its in-process partition
state is unrecoverable; ``executor="auto"`` restarts the whole run on
the serial path instead.

**Fidelity ladder** (``DCNConfig.fidelity``, see docs/dcn_scale.md):

* ``"cycle"`` — every wafer a cycle-accurate :class:`WaferPartition`
  (the default; everything above applies unchanged);
* ``"flow"`` — every wafer a calibrated
  :class:`~repro.dcn.flow.FlowWaferNode`, service curves fitted from
  short cycle-accurate probes and cached.  Hundreds of wafers finish
  in minutes;
* ``"hybrid"`` — ``cycle_wafers`` stay cycle-accurate (on the warm
  pool under ``executor="pool"``), the rest run flow-level, stitched
  at the same epoch barrier — the barrier argument never references
  *how* a wafer simulates its epoch, so mixing node types is exact
  with respect to causality.

Flow nodes always live in the coordinator process (they are cheap
bookkeeping, not simulations); only cycle-accurate partitions are ever
dispatched to pool workers.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from repro import wire
from repro.dcn import traffic as dcn_traffic
from repro.dcn.fabric import DCNFabric, DCNRouteError, DCNShape
from repro.dcn.failures import DCNFailures, FailureConfig, sample_failures
from repro.dcn.flow import FlowWaferNode, curves_for_shape
from repro.netsim.partition import WaferPartition
from repro.parallel import (
    AffinityLostError,
    effective_cpu_count,
    shared_pool,
)

EXECUTORS = ("auto", "serial", "pool")
FIDELITIES = ("cycle", "flow", "hybrid")


@dataclass(frozen=True)
class DCNConfig:
    """One DCN experiment: fabric shape, traffic, failures, engine."""

    shape: DCNShape
    pattern: str = "uniform"
    duration_cycles: int = 256
    load: float = 0.05
    size_flits: int = 4
    traffic_seed: int = 1
    #: Epoch length in cycles; 0 means the maximum safe value, the
    #: shape's ``inter_wafer_latency``.  Smaller epochs are still
    #: correct (more barriers, same results) — the parity tests sweep
    #: this to prove it.
    lookahead: int = 0
    #: Safety bound on simulated cycles; 0 derives a generous default.
    max_cycles: int = 0
    failures: Optional[FailureConfig] = None
    engine: str = "auto"
    #: ``cycle`` (all wafers cycle-accurate), ``flow`` (all wafers
    #: calibrated queueing nodes), or ``hybrid`` (``cycle_wafers``
    #: cycle-accurate, the rest flow-level).
    fidelity: str = "cycle"
    #: Wafer indices kept cycle-accurate under ``fidelity="hybrid"``;
    #: empty defaults to wafer 0.  Must be empty for other fidelities.
    cycle_wafers: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.lookahead < 0 or self.lookahead > self.shape.inter_wafer_latency:
            raise ValueError(
                "lookahead must be in [1, inter_wafer_latency] "
                f"(got {self.lookahead}, max {self.shape.inter_wafer_latency})"
            )
        if self.fidelity not in FIDELITIES:
            raise ValueError(
                f"fidelity must be one of {FIDELITIES} "
                f"(got {self.fidelity!r})"
            )
        wafers = tuple(sorted(set(int(w) for w in self.cycle_wafers)))
        if self.fidelity != "hybrid":
            if wafers:
                raise ValueError(
                    "cycle_wafers only applies to fidelity='hybrid'"
                )
        else:
            if not wafers:
                wafers = (0,)
            if wafers[0] < 0 or wafers[-1] >= self.shape.n_wafers:
                raise ValueError(
                    f"cycle_wafers {wafers} out of range "
                    f"[0, {self.shape.n_wafers})"
                )
        object.__setattr__(self, "cycle_wafers", wafers)

    def cycle_accurate_wafers(self) -> frozenset:
        """The wafer indices simulated cycle-accurately."""
        if self.fidelity == "cycle":
            return frozenset(range(self.shape.n_wafers))
        if self.fidelity == "flow":
            return frozenset()
        return frozenset(self.cycle_wafers)

    @property
    def epoch_cycles(self) -> int:
        return self.lookahead or self.shape.inter_wafer_latency

    @property
    def cycle_bound(self) -> int:
        return self.max_cycles or (
            self.duration_cycles + 200 * self.shape.inter_wafer_latency + 5000
        )


@dataclass
class DCNResult:
    """Outcome of one run; ``latencies`` is parity-comparable verbatim."""

    executor: str
    engine: str
    fidelity: str
    n_wafers: int
    cycle_accurate_wafers: int
    epochs: int
    epoch_cycles: int
    cycles: int
    #: Last delivery cycle across the whole fabric (0 if nothing
    #: delivered) — the denominator for end-to-end throughput, immune
    #: to epoch quantization of the drain tail.
    makespan: int
    packets_created: int
    packets_routed: int
    packets_dropped_unroutable: int
    packets_delivered: int
    flits_offered: int
    flits_delivered: int
    truncated: bool
    wall_seconds: float
    dead_sscs: int
    dead_links: int
    #: ``latencies[i]`` is the end-to-end cycle latency of DCN packet
    #: ``i`` (creation to final-hop delivery), ``-1`` if undelivered.
    latencies: List[int] = field(default_factory=list)
    per_wafer: List[Dict[str, int]] = field(default_factory=list)

    def latency_stats(self) -> Dict[str, float]:
        done = sorted(l for l in self.latencies if l >= 0)
        if not done:
            return {"count": 0}
        return {
            "count": len(done),
            "avg": round(sum(done) / len(done), 3),
            "p50": done[len(done) // 2],
            "p99": done[min(len(done) - 1, (len(done) * 99) // 100)],
            "max": done[-1],
        }

    def parity_signature(self) -> Dict[str, object]:
        """Everything two runs must agree on bit-for-bit."""
        return {
            "latencies": list(self.latencies),
            "flits_offered": self.flits_offered,
            "flits_delivered": self.flits_delivered,
            "packets_delivered": self.packets_delivered,
            "per_wafer": [dict(c) for c in self.per_wafer],
            "epochs": self.epochs,
        }

    def to_dict(self) -> Dict[str, object]:
        summary = {
            name: getattr(self, name)
            for name in (
                "executor", "engine", "fidelity", "n_wafers",
                "cycle_accurate_wafers", "epochs", "epoch_cycles",
                "cycles", "makespan", "packets_created", "packets_routed",
                "packets_dropped_unroutable", "packets_delivered",
                "flits_offered", "flits_delivered", "truncated",
                "wall_seconds", "dead_sscs", "dead_links",
            )
        }
        summary["latency"] = self.latency_stats()
        summary["latency_sum"] = sum(l for l in self.latencies if l >= 0)
        summary["delivered_throughput"] = (
            round(self.flits_delivered / self.makespan, 6)
            if self.makespan
            else 0.0
        )
        summary["per_wafer"] = self.per_wafer
        return summary


# ----------------------------------------------------------------------
# Route plan (shared by every executor)
# ----------------------------------------------------------------------

class _Plan:
    """Fabric + routed traffic (+ service curves), computed once per run."""

    def __init__(self, config: DCNConfig):
        self.config = config
        self.failures: Optional[DCNFailures] = (
            sample_failures(config.shape, config.failures)
            if config.failures is not None
            else None
        )
        self.fabric = DCNFabric(config.shape, self.failures)
        self.events = dcn_traffic.generate(
            config.pattern,
            self.fabric.alive_hosts,
            config.duration_cycles,
            config.traffic_seed,
            load=config.load,
            size_flits=config.size_flits,
        )
        self.routes = []
        self.dropped = 0
        for dcn_id, (cycle, src, dst, size) in enumerate(self.events):
            try:
                self.routes.append(self.fabric.route(dcn_id, src, dst))
            except DCNRouteError:
                self.routes.append(None)
                self.dropped += 1
        self.cycle_set = config.cycle_accurate_wafers()
        #: Calibrated service curves (leaf/spine), only when some
        #: wafer actually runs flow-level.
        self.curves = (
            curves_for_shape(config.shape, engine=config.engine)
            if len(self.cycle_set) < config.shape.n_wafers
            else None
        )

    def build_node(self, wafer: int):
        """The epoch driver for one wafer at this plan's fidelity."""
        if wafer in self.cycle_set:
            return WaferPartition(
                self.fabric.build_wafer(wafer), engine=self.config.engine
            )
        kind = "spine" if wafer >= self.config.shape.n_leaves else "leaf"
        return FlowWaferNode(
            self.curves[kind], self.config.shape.wafer_terminals
        )


# ----------------------------------------------------------------------
# Partition backends
# ----------------------------------------------------------------------

class _LocalBackend:
    """All partitions live in this process (the monolithic reference)."""

    name = "serial"

    def __init__(self, plan: _Plan):
        self.partitions = [
            plan.build_node(w) for w in range(plan.config.shape.n_wafers)
        ]
        cycle_nodes = [
            self.partitions[w] for w in sorted(plan.cycle_set)
        ]
        self.engine = (
            cycle_nodes[0].engine_name if cycle_nodes else "flow"
        )

    def run_epoch(self, end: int, batches: Dict[int, list]):
        results = {}
        for wafer, events in batches.items():
            partition = self.partitions[wafer]
            partition.enqueue(events)
            results[wafer] = partition.advance(end)
        return results

    def close(self) -> None:
        pass


# Worker-resident partition registry, keyed "run_id:wafer".  Lives in
# the pool worker process; affinity pinning guarantees every epoch task
# for a given key lands on the worker holding its entry.
_SESSIONS: Dict[str, WaferPartition] = {}
_RUN_IDS = itertools.count()


def _worker_open(run_id, wafer, shape, failures, engine):
    fabric = DCNFabric(shape, failures)
    partition = WaferPartition(fabric.build_wafer(wafer), engine=engine)
    _SESSIONS[f"{run_id}:{wafer}"] = partition
    return partition.engine_name


def _worker_epoch(run_id, wafer, end, blob):
    partition = _SESSIONS[f"{run_id}:{wafer}"]
    cycles, srcs, dsts, sizes, tags = wire.decode(blob)
    partition.enqueue(
        list(zip(cycles.tolist(), srcs.tolist(), dsts.tolist(),
                 sizes.tolist(), tags.tolist()))
        if len(cycles)
        else []
    )
    return partition.advance(end)


def _worker_close(run_id, wafer):
    _SESSIONS.pop(f"{run_id}:{wafer}", None)
    return True


def _encode_batch(events: list) -> bytes:
    import numpy as np

    columns = (
        tuple(
            np.asarray(column, dtype=np.int64) for column in zip(*events)
        )
        if events
        else tuple(np.zeros(0, dtype=np.int64) for _ in range(5))
    )
    return wire.encode(columns)


class _PoolBackend:
    """Cycle-accurate partitions pinned to warm pool workers.

    Flow-level nodes (flow/hybrid fidelity) always stay in the
    coordinator process — they are cheap arithmetic over a few dicts,
    and shipping them across the wire would cost more than running
    them.  Only cycle-accurate wafers get worker sessions.
    """

    name = "pool"

    def __init__(self, plan: _Plan, jobs: Optional[int] = None):
        config = plan.config
        self.run_id = f"dcn{os.getpid()}.{next(_RUN_IDS)}"
        self.cycle_wafers = sorted(plan.cycle_set)
        self.local_nodes = {
            w: plan.build_node(w)
            for w in range(config.shape.n_wafers)
            if w not in plan.cycle_set
        }
        self.pool = shared_pool(jobs)
        try:
            opens = [
                self.pool.submit_task(
                    _worker_open,
                    (
                        self.run_id, w, config.shape, plan.failures,
                        config.engine,
                    ),
                    cost=1.0,
                    label=f"dcn-open:{w}",
                    affinity=f"{self.run_id}:{w}",
                )
                for w in self.cycle_wafers
            ]
            self.engine = opens[0].result()[0] if opens else "flow"
            for future in opens[1:]:
                future.result()
        except BaseException:
            self.pool.release_affinity(self.run_id)
            raise

    def run_epoch(self, end: int, batches: Dict[int, list]):
        futures = {
            wafer: self.pool.submit_task(
                _worker_epoch,
                (self.run_id, wafer, end, _encode_batch(events)),
                cost=float(len(events) + 1),
                label=f"dcn-epoch:{wafer}@{end}",
                affinity=f"{self.run_id}:{wafer}",
            )
            for wafer, events in batches.items()
            if wafer not in self.local_nodes
        }
        results = {}
        for wafer, events in batches.items():
            node = self.local_nodes.get(wafer)
            if node is not None:
                node.enqueue(events)
                results[wafer] = node.advance(end)
        for wafer, future in futures.items():
            results[wafer] = future.result()[0]
        return results

    def close(self) -> None:
        try:
            closes = [
                self.pool.submit_task(
                    _worker_close,
                    (self.run_id, w),
                    label=f"dcn-close:{w}",
                    affinity=f"{self.run_id}:{w}",
                )
                for w in self.cycle_wafers
            ]
            for future in closes:
                future.result()
        except Exception:
            pass  # best effort; released bindings free the workers anyway
        finally:
            self.pool.release_affinity(self.run_id)


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------

def _run_epochs(plan: _Plan, backend) -> DCNResult:
    config = plan.config
    shape = config.shape
    epoch_cycles = config.epoch_cycles
    latency = shape.inter_wafer_latency
    n_wafers = shape.n_wafers

    #: per-wafer min-heap of pending injections (partition Event tuples)
    pending: List[list] = [[] for _ in range(n_wafers)]
    hop: Dict[int, int] = {}
    latencies = [-1] * len(plan.events)
    for dcn_id, route in enumerate(plan.routes):
        if route is None:
            continue
        create = plan.events[dcn_id][0]
        size = plan.events[dcn_id][3]
        first = route[0]
        hop[dcn_id] = 0
        heappush(
            pending[first.wafer],
            (create, first.entry, first.exit, size, dcn_id),
        )

    inflight = [0] * n_wafers
    counters: List[Dict[str, int]] = [
        {
            "inflight": 0, "offered_flits": 0, "offered_packets": 0,
            "delivered_flits": 0, "delivered_packets": 0,
        }
        for _ in range(n_wafers)
    ]
    epoch = 0
    makespan = 0
    truncated = False
    while any(pending) or any(inflight):
        start = epoch * epoch_cycles
        end = start + epoch_cycles
        if end > config.cycle_bound:
            truncated = True
            break
        batches: Dict[int, list] = {}
        for wafer in range(n_wafers):
            heap = pending[wafer]
            events = []
            while heap and heap[0][0] < end:
                event = heappop(heap)
                if event[0] < start:
                    raise AssertionError(
                        f"epoch barrier violated: event {event} in "
                        f"epoch [{start}, {end})"
                    )
                events.append(event)
            # Idle partitions (nothing queued, nothing in flight) are
            # skipped entirely — identically under every backend, so
            # skipping cannot perturb parity.
            if events or inflight[wafer]:
                batches[wafer] = events
        results = backend.run_epoch(end, batches)
        for wafer, (terms, tags, arrives, wafer_counters) in results.items():
            inflight[wafer] = wafer_counters["inflight"]
            counters[wafer] = wafer_counters
            for term, dcn_id, arrive in zip(
                terms.tolist(), tags.tolist(), arrives.tolist()
            ):
                route = plan.routes[dcn_id]
                index = hop[dcn_id]
                segment = route[index]
                if term != segment.exit:
                    raise AssertionError(
                        f"packet {dcn_id} delivered at {term}, "
                        f"expected {segment.exit}"
                    )
                if index == len(route) - 1:
                    latencies[dcn_id] = arrive - plan.events[dcn_id][0]
                    if arrive > makespan:
                        makespan = arrive
                    continue
                hop[dcn_id] = index + 1
                nxt = route[index + 1]
                size = plan.events[dcn_id][3]
                heappush(
                    pending[nxt.wafer],
                    (arrive + latency, nxt.entry, nxt.exit, size, dcn_id),
                )
        epoch += 1

    delivered = sum(1 for l in latencies if l >= 0)
    failures = plan.failures
    return DCNResult(
        executor=backend.name,
        engine=backend.engine,
        fidelity=config.fidelity,
        n_wafers=n_wafers,
        cycle_accurate_wafers=len(plan.cycle_set),
        makespan=makespan,
        epochs=epoch,
        epoch_cycles=epoch_cycles,
        cycles=epoch * epoch_cycles,
        packets_created=len(plan.events),
        packets_routed=len(plan.events) - plan.dropped,
        packets_dropped_unroutable=plan.dropped,
        packets_delivered=delivered,
        flits_offered=sum(c["offered_flits"] for c in counters),
        flits_delivered=sum(c["delivered_flits"] for c in counters),
        truncated=truncated,
        wall_seconds=0.0,
        dead_sscs=len(failures.dead_sscs) if failures else 0,
        dead_links=len(failures.dead_links) if failures else 0,
        latencies=latencies,
        per_wafer=counters,
    )


def run_dcn(
    config: DCNConfig,
    executor: str = "auto",
    jobs: Optional[int] = None,
) -> DCNResult:
    """Simulate one DCN configuration end to end.

    ``executor="serial"`` is the monolithic in-process reference;
    ``"pool"`` partitions across the warm worker pool; ``"auto"``
    picks the pool when more than one effective core is available and
    falls back to a fresh serial run if a pinned worker is ever lost.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"executor must be one of {EXECUTORS}")
    plan = _Plan(config)
    # Only cycle-accurate partitions benefit from the pool; a pure
    # flow-level run is coordinator arithmetic and stays in-process.
    use_pool = executor == "pool" or (
        executor == "auto"
        and effective_cpu_count() > 1
        and bool(plan.cycle_set)
    )
    started = time.perf_counter()
    result = None
    if use_pool:
        backend = None
        try:
            backend = _PoolBackend(plan, jobs)
            result = _run_epochs(plan, backend)
        except AffinityLostError:
            if executor == "pool":
                raise
            result = None  # pinned worker lost: redo serially from scratch
        finally:
            if backend is not None:
                backend.close()
    if result is None:
        started = time.perf_counter()
        result = _run_epochs(plan, _LocalBackend(plan))
    result.wall_seconds = round(time.perf_counter() - started, 6)
    return result
