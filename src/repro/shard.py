"""Queue-backed shard runner: one coordinator, N host-local runners.

This is the bridge from the single-host warm pool
(:mod:`repro.parallel`) to multi-host sharding. The coordinator serves
two queues over TCP (``multiprocessing.managers.BaseManager`` with an
authkey); runners — today sibling processes on the same host, tomorrow
processes on other hosts pointed at ``host:port`` — pull work-unit
descriptors from the task queue, execute them through the exact same
work-unit protocol the scheduler uses
(:func:`repro.experiments.scheduler._execute_unit`), and push
wire-encoded results back.

The unit of work is deliberately tiny on the wire: a descriptor is
``(seq, module_name, experiment_id, unit_index, fast)`` — five scalars
— because every runner re-derives the unit list from the module's
deterministic ``units()``. Results come back through
:mod:`repro.wire`. Everything heavy travels through the
content-addressed caches instead: runners sharing a cache root
(``REPRO_CACHE_DIR`` on a shared filesystem) share mapping-store
placements and memoized results, so a unit computed by one runner
warms every other.

Failure semantics mirror the pool: the coordinator hands out units
cost-ordered (big netsim units first), waits for results with a
watchdog, and any unit that never comes back — runner crash, network
partition, stall — is executed locally by the coordinator itself, so a
sharded run always completes with exactly the rows a serial run would
produce. A unit whose runner *reported* an error is retried locally
too; an error that reproduces locally propagates.

This module is a skeleton by intent: no runner discovery, no
work-stealing, no result streaming. It exists to pin the protocol —
queue semantics, descriptor shape, wire encoding, cache-as-substrate —
that multi-host sharding will grow on.
"""

from __future__ import annotations

import queue
import time
from multiprocessing.managers import BaseManager
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import wire
from repro.experiments.base import ExperimentResult, ExperimentSpec, get_spec
from repro.experiments.scheduler import _execute_unit
from repro.experiments.unit_costs import CostBook

#: Default TCP endpoint: loopback, ephemeral port.
DEFAULT_ADDRESS = ("127.0.0.1", 0)

#: Sentinel telling a runner to exit its pull loop.
STOP = None

# The coordinator-side queues. ``BaseManager.start`` forks a server
# process, so these module globals (and the lambdas registered below)
# are inherited by the server; runners only ever see the proxies.
_TASKS: "queue.Queue[Any]" = queue.Queue()
_RESULTS: "queue.Queue[bytes]" = queue.Queue()


class _CoordinatorManager(BaseManager):
    """Serves the task/result queues (coordinator side)."""


class _RunnerManager(BaseManager):
    """Connects to a coordinator's queues (runner side)."""


_CoordinatorManager.register("tasks", callable=lambda: _TASKS)
_CoordinatorManager.register("results", callable=lambda: _RESULTS)
_RunnerManager.register("tasks")
_RunnerManager.register("results")


def run_runner(
    address: Tuple[str, int],
    authkey: bytes,
    max_units: Optional[int] = None,
) -> int:
    """Pull-and-execute loop for one runner process.

    Connects to the coordinator at ``address``, executes unit
    descriptors until it receives :data:`STOP` (or has run
    ``max_units``), and returns the number of units executed. Safe to
    run on any host that can import this source tree and reach the
    coordinator; point ``REPRO_CACHE_DIR`` at a shared filesystem to
    share the content-addressed caches with the other runners.
    """
    manager = _RunnerManager(address=tuple(address), authkey=authkey)
    manager.connect()
    tasks = manager.tasks()
    results = manager.results()
    executed = 0
    while max_units is None or executed < max_units:
        descriptor = tasks.get()
        if descriptor is STOP:
            break
        seq, module_name, experiment_id, unit_index, fast = descriptor
        started = time.perf_counter()
        try:
            result, stats = _execute_unit(
                module_name, experiment_id, unit_index, fast
            )
        except Exception as exc:  # noqa: BLE001 — reported, retried locally
            results.put(wire.encode(("err", seq, repr(exc))))
        else:
            stats["runner_seconds"] = time.perf_counter() - started
            results.put(wire.encode(("ok", seq, stats, result)))
        executed += 1
    return executed


def _spawn_local_runners(
    count: int, address: Tuple[str, int], authkey: bytes
) -> List[Any]:
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    procs = []
    for _ in range(count):
        proc = ctx.Process(
            target=run_runner, args=(address, authkey), name="repro-shard-runner"
        )
        proc.start()
        procs.append(proc)
    return procs


def coordinate(
    experiment_ids: Sequence[str],
    fast: bool = True,
    address: Tuple[str, int] = DEFAULT_ADDRESS,
    authkey: Optional[bytes] = None,
    local_runners: int = 0,
    result_timeout: float = 300.0,
    stats_out: Optional[Dict[str, Any]] = None,
) -> List[ExperimentResult]:
    """Run experiments by sharding their units over queue-fed runners.

    Serves the task/result queues at ``address`` (``port 0`` =
    ephemeral), enqueues every unit cost-ordered, optionally spawns
    ``local_runners`` runner processes on this host, and collects
    results. Units that error on a runner or fail to arrive within
    ``result_timeout`` seconds of the last completion are executed
    locally, so the merged results always match a serial run.

    ``stats_out``, if given, receives ``{"units", "sharded",
    "local", "runner_pids"?, "address"}`` for callers that want to
    report shard effectiveness.
    """
    import os

    specs = [get_spec(eid) for eid in experiment_ids]
    unit_lists = [spec.units(fast=fast) for spec in specs]
    book = CostBook()
    descriptors = []  # (cost, seq, spec_index, unit_index, descriptor)
    seq = 0
    for spec_index, (spec, units) in enumerate(zip(specs, unit_lists)):
        for unit_index in range(len(units)):
            label = f"{spec.experiment_id}[{unit_index}]"
            descriptors.append((
                book.get(label), seq, spec_index, unit_index,
                (seq, spec.module_name, spec.experiment_id, unit_index, fast),
            ))
            seq += 1

    if authkey is None:
        authkey = os.urandom(16)
    # The queues are module globals inherited by the forked manager
    # server; drain any residue from a previous coordinate() in this
    # process before the fork snapshots them.
    for leftover in (_TASKS, _RESULTS):
        while True:
            try:
                leftover.get_nowait()
            except queue.Empty:
                break
    manager = _CoordinatorManager(address=tuple(address), authkey=authkey)
    manager.start()
    owners = {}  # seq -> (spec_index, unit_index)
    outcomes: Dict[int, Any] = {}
    local = 0
    try:
        bound_address = manager.address
        tasks = manager.tasks()
        results = manager.results()
        for cost, seq_id, spec_index, unit_index, descriptor in sorted(
            descriptors, key=lambda entry: -entry[0]
        ):
            owners[seq_id] = (spec_index, unit_index)
            tasks.put(descriptor)

        procs = _spawn_local_runners(local_runners, bound_address, authkey)
        try:
            pending = set(owners)
            while pending:
                try:
                    payload = results.get(timeout=result_timeout)
                except queue.Empty:
                    break  # watchdog: finish the stragglers locally
                message = wire.decode(payload)
                if message[0] == "ok":
                    _, seq_id, stats, result = message
                    outcomes[seq_id] = result
                    pending.discard(seq_id)
                else:
                    _, seq_id, _error = message
                    pending.discard(seq_id)  # retried locally below
        finally:
            for _ in range(max(len(procs), 1)):
                tasks.put(STOP)
            for proc in procs:
                proc.join(timeout=10.0)
                if proc.is_alive():
                    proc.terminate()
    finally:
        manager.shutdown()

    # Local completion: whatever the runners did not deliver.
    for _, seq_id, spec_index, unit_index, descriptor in descriptors:
        if seq_id not in outcomes:
            _, module_name, experiment_id, unit_index, fast_flag = descriptor
            result, _stats = _execute_unit(
                module_name, experiment_id, unit_index, fast_flag
            )
            outcomes[seq_id] = result
            local += 1

    if stats_out is not None:
        stats_out.update({
            "units": len(descriptors),
            "sharded": len(descriptors) - local,
            "local": local,
            "address": list(bound_address),
        })

    unit_results: List[List[Any]] = [
        [None] * len(units) for units in unit_lists
    ]
    for _, seq_id, spec_index, unit_index, _descriptor in descriptors:
        unit_results[spec_index][unit_index] = outcomes[seq_id]
    return [
        spec.merge(rows, fast=fast)
        for spec, rows in zip(specs, unit_results)
    ]
