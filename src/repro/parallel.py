"""Generic process-pool map with retry-once and serial fallback.

Factored out of the experiment scheduler so lower layers — the mapping
optimizer's parallel restarts — can reuse the same failure policy
without importing the experiments package. :func:`pool_map` runs
``fn(*task)`` for every task and returns results in task order. Policy,
in order:

1. a task that raises in a worker is **retried once** in the pool;
2. a task that fails twice, and every task stranded by a broken pool or
   a stall (no completion within ``timeout`` seconds), **falls back to
   serial execution** in the parent process;
3. an error that also reproduces serially propagates — the work is
   genuinely broken, not a scheduling casualty.

``fn`` must be a module-level callable and every task tuple picklable.
With ``jobs <= 1`` (or a single task) no pool is created at all and
everything runs serially in-process.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from concurrent.futures.process import BrokenProcessPool

from repro import engines

#: Placeholder for a result not yet produced.
_UNSET = object()

#: Total attempts per task in the pool before serial fallback.
MAX_POOL_ATTEMPTS = 2

#: Engine-selection switches forwarded to pool workers. A run forced
#: onto the scalar netsim oracle (or the numpy loop, or the scalar
#: mapping kernels) must not silently come back vectorized from a
#: worker whose start method snapshotted the environment before the
#: flag was set.
ENGINE_ENV_VARS = (
    "REPRO_SCALAR_NETSIM",
    "REPRO_NETSIM_NO_CC",
    "REPRO_SCALAR_MAPPING",
)


def _engine_env() -> Dict[str, str]:
    return {
        name: os.environ[name]
        for name in ENGINE_ENV_VARS
        if name in os.environ
    }


def _init_worker(
    engine_env: Dict[str, str],
    engine_defaults: Optional[Dict[str, str]] = None,
) -> None:
    """Pool initializer: mirror the parent's engine switches exactly.

    Both layers of engine selection cross the process boundary — the
    env-var escape hatches *and* the explicit process defaults set via
    :func:`repro.engines.set_default_engines` — so a ``--jobs`` run
    honors a top-level ``engine=`` choice in every worker.
    """
    for name in ENGINE_ENV_VARS:
        os.environ.pop(name, None)
    os.environ.update(engine_env)
    if engine_defaults is not None:
        engines.set_default_engines(**engine_defaults)


def _warn(message: str) -> None:
    print(f"[scheduler] {message}", file=sys.stderr)


#: The process-wide long-lived pool behind :func:`shared_executor`.
_SHARED_POOL: Optional[ProcessPoolExecutor] = None


def shared_executor(max_workers: Optional[int] = None) -> ProcessPoolExecutor:
    """The process-wide long-lived pool (created on first use).

    Long-running callers — the :mod:`repro.serve` server dispatches
    every cold query here — share one warm pool instead of paying
    worker start-up per request. Workers get the same engine-mirroring
    initializer as :func:`pool_map` pools. ``max_workers`` only applies
    to the first call (the pool is created once); it defaults to the
    CPU count.

    Unlike the short-lived :func:`pool_map` pools, workers here must
    NOT be plain forks of the parent: the serve layer spawns them
    lazily while client sockets are open, and a forked worker would
    inherit those socket FDs and hold connections half-open long after
    the server closes them. ``forkserver`` starts workers from a clean
    exec'd process, so no parent FDs leak (and non-inheritable FDs
    stay that way).
    """
    global _SHARED_POOL
    if _SHARED_POOL is None:
        import multiprocessing

        _SHARED_POOL = ProcessPoolExecutor(
            max_workers=max_workers or os.cpu_count() or 1,
            mp_context=multiprocessing.get_context("forkserver"),
            initializer=_init_worker,
            initargs=(_engine_env(), engines.default_engines()),
        )
    return _SHARED_POOL


def shutdown_shared_executor() -> None:
    """Tear down the shared pool (the next use recreates it)."""
    global _SHARED_POOL
    if _SHARED_POOL is not None:
        _SHARED_POOL.shutdown(wait=False, cancel_futures=True)
        _SHARED_POOL = None


@dataclass
class _Task:
    index: int
    attempts: int = 0


def pool_map(
    fn: Callable[..., Any],
    tasks: Sequence[Tuple],
    jobs: int = 1,
    timeout: Optional[float] = None,
    labels: Optional[Sequence[str]] = None,
) -> List[Any]:
    """Ordered ``[fn(*task) for task in tasks]`` fanned over ``jobs`` processes.

    ``timeout`` is a stall watchdog: if no task completes for that many
    seconds, outstanding tasks are abandoned to serial fallback (their
    worker processes are left to die with the pool). ``labels`` names
    tasks in warnings.
    """
    tasks = list(tasks)
    results: List[Any] = [_UNSET] * len(tasks)
    if jobs > 1 and tasks:
        _run_pool(fn, tasks, results, jobs, timeout, labels)
    # Serial completion: everything the pool did not produce (all of it
    # when jobs <= 1) runs in the parent, where errors propagate.
    for index, task in enumerate(tasks):
        if results[index] is _UNSET:
            results[index] = fn(*task)
    return results


def _label(labels: Optional[Sequence[str]], index: int) -> str:
    if labels is not None and index < len(labels):
        return labels[index]
    return f"task[{index}]"


def _run_pool(fn, tasks, results, jobs, timeout, labels) -> None:
    """Best-effort parallel pass; leaves failed cells as ``_UNSET``."""
    pool = ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_init_worker,
        initargs=(_engine_env(), engines.default_engines()),
    )
    futures = {}
    broken = False

    def submit(task: _Task) -> None:
        task.attempts += 1
        future = pool.submit(fn, *tasks[task.index])
        futures[future] = task

    try:
        for index in range(len(tasks)):
            submit(_Task(index))
        while futures and not broken:
            done, _ = wait(
                set(futures), timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                _warn(
                    f"no work unit completed within {timeout}s; "
                    f"abandoning {len(futures)} outstanding unit(s) to "
                    "serial execution"
                )
                break
            for future in done:
                task = futures.pop(future)
                label = _label(labels, task.index)
                try:
                    results[task.index] = future.result()
                except BrokenProcessPool:
                    broken = True
                except Exception as exc:  # noqa: BLE001 — worker errors are policy here
                    if task.attempts < MAX_POOL_ATTEMPTS:
                        _warn(f"{label} failed in worker ({exc!r}); retrying")
                        try:
                            submit(task)
                        except BrokenProcessPool:
                            broken = True
                    else:
                        _warn(
                            f"{label} failed {task.attempts}x in workers "
                            f"({exc!r}); falling back to serial"
                        )
        if broken:
            remaining = sum(1 for cell in results if cell is _UNSET)
            _warn(
                f"process pool broke; running {remaining} unfinished "
                "unit(s) serially"
            )
    except BrokenProcessPool:
        _warn("process pool broke during submission; degrading to serial")
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
