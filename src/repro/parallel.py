"""Warm-worker dispatch: one persistent pool behind every parallel path.

This module used to build a throwaway ``ProcessPoolExecutor`` per
:func:`pool_map` call; each work unit paid task pickling, and on small
machines the fan-out *lost* to serial (``BENCH_runner.json`` recorded a
0.55x "speedup" on one core). It is now organized around a single
long-lived :class:`WorkerPool`:

* **Warm workers.** Worker processes are spawned once (``forkserver``
  start method, no inherited parent FDs), preload the heavy modules —
  numpy, the compiled netsim step kernel, the vectorized mapping
  kernel, the experiments layer — and then pull task after task until
  recycled or shut down. The second unit a worker runs imports nothing.
* **One pool lifecycle.** The experiment scheduler
  (:mod:`repro.experiments.scheduler`), the mapping optimizer's
  parallel restarts (:mod:`repro.mapping.exchange`) and the serve
  dispatcher (:mod:`repro.serve.dispatch`) all share the pool returned
  by :func:`shared_pool` / :func:`shared_executor`.
* **Compact results.** Workers ship results back through the
  :mod:`repro.wire` encoding (raw buffers for numpy arrays, pickle
  only as an explicit fallback) rather than pickling whole rows.
* **Cost-aware dispatch.** Tasks carry an optional cost estimate;
  the pool dispatches expensive tasks first so a big netsim unit never
  starts last and strands the pool behind it.
* **Serial fast path.** :func:`effective_jobs` degrades a parallel
  request to plain in-process serial execution when the *effective*
  core count (CPU affinity and cgroup quota respected, see
  :func:`effective_cpu_count`) or the task count is too small to
  amortize dispatch. ``REPRO_PARALLEL=force`` disables the heuristic
  (tests and benchmarks use it); ``REPRO_PARALLEL=serial`` forces the
  serial path outright.

Failure policy (unchanged from the old layer, enforced per task):

1. a task that raises in a worker is **retried once** on the pool;
2. a task that fails twice is **quarantined** — a structured report is
   emitted (see ``quarantine`` on :func:`pool_map`) and the task falls
   back to serial execution in the parent;
3. a worker that *dies* (hard crash) is respawned and its task retried
   under the same accounting; one crash no longer abandons the run;
4. a stall (no completion within ``timeout`` seconds) abandons all
   outstanding tasks to serial and recycles their workers;
5. an error that also reproduces serially propagates — the work is
   genuinely broken, not a scheduling casualty.

Engine selection (``REPRO_SCALAR_NETSIM`` & co and the process defaults
from :func:`repro.engines.set_default_engines`) plus the cache-root
switches travel **per task**, so a long-lived worker always sees the
submitting process's current configuration, not a snapshot from spawn
time. ``fn`` must be a module-level callable (or otherwise picklable)
and every task tuple picklable. Full reference: ``docs/parallel.md``.
"""

from __future__ import annotations

import heapq
import importlib
import itertools
import math
import os
import pickle
import sys
import threading
import time
from concurrent.futures import CancelledError, FIRST_COMPLETED, Future
from concurrent.futures import wait as futures_wait
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import engines

#: Placeholder for a result not yet produced.
_UNSET = object()

#: Total attempts per task on the pool before quarantine + serial fallback.
MAX_POOL_ATTEMPTS = 2

#: ``REPRO_PARALLEL``: ``auto`` (default heuristic), ``force`` (always
#: use the pool when ``jobs > 1``), ``serial`` (never use the pool).
PARALLEL_MODE_ENV = "REPRO_PARALLEL"

#: Engine-selection switches forwarded to pool workers. A run forced
#: onto the scalar netsim oracle (or the numpy loop, or the scalar
#: mapping kernels) must not silently come back vectorized from a
#: long-lived worker configured before the flag was set.
ENGINE_ENV_VARS = (
    "REPRO_SCALAR_NETSIM",
    "REPRO_NETSIM_NO_CC",
    "REPRO_SCALAR_MAPPING",
)

#: Everything mirrored into workers per task: the engine switches plus
#: the cache/telemetry roots, which per-test/per-run isolation moves
#: around long after the warm workers were spawned.
PROPAGATED_ENV_VARS = ENGINE_ENV_VARS + (
    "REPRO_CACHE_DIR",
    "REPRO_MAPPING_STORE",
    "REPRO_TELEMETRY_DIR",
)

#: Modules imported once per worker at spawn, before any task runs.
#: Importing the experiments layer pulls in numpy, the cffi step-kernel
#: loader, and the vectorized mapping kernel — the bulk of cold-import
#: cost for every real workload this pool serves.
PRELOAD_MODULES = (
    "numpy",
    "repro.engines",
    "repro.netsim.fast_core",
    "repro.netsim._fast_step",
    "repro.mapping.fast_exchange",
    "repro.experiments.base",
)

#: cgroup mount probed by :func:`effective_cpu_count` (tests repoint it).
_CGROUP_ROOT = "/sys/fs/cgroup"


def _propagated_env() -> Dict[str, str]:
    return {
        name: os.environ[name]
        for name in PROPAGATED_ENV_VARS
        if name in os.environ
    }


def _warn(message: str) -> None:
    print(f"[scheduler] {message}", file=sys.stderr)


# ----------------------------------------------------------------------
# Effective parallelism
# ----------------------------------------------------------------------


def _cgroup_cpu_limit(root: Optional[str] = None) -> Optional[int]:
    """CPU quota from the cgroup (v2 then v1), as a whole core count."""
    base = Path(root if root is not None else _CGROUP_ROOT)
    try:  # cgroup v2: "quota period" or "max period"
        fields = (base / "cpu.max").read_text().split()
        if fields and fields[0] != "max":
            quota = int(fields[0])
            period = int(fields[1]) if len(fields) > 1 else 100_000
            if quota > 0 and period > 0:
                return max(1, math.ceil(quota / period))
    except (OSError, ValueError):
        pass
    try:  # cgroup v1
        quota = int((base / "cpu" / "cpu.cfs_quota_us").read_text())
        period = int((base / "cpu" / "cpu.cfs_period_us").read_text())
        if quota > 0 and period > 0:
            return max(1, math.ceil(quota / period))
    except (OSError, ValueError):
        pass
    return None


def effective_cpu_count() -> int:
    """Cores this process may actually use (not just ``os.cpu_count``).

    Respects the scheduler affinity mask (``taskset``, container CPU
    pinning) and any cgroup CPU quota, so ``--jobs auto`` inside a
    2-core-quota container resolves to 2 even on a 64-core host.
    """
    try:
        count = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        count = os.cpu_count() or 1
    quota = _cgroup_cpu_limit()
    if quota is not None:
        count = min(count, quota)
    return max(1, count)


def effective_jobs(jobs: Optional[int], n_tasks: int) -> int:
    """Workers actually worth using for ``n_tasks`` (1 = run serial).

    The degraded-to-serial fast path: parallel dispatch only pays when
    there are at least 2 effective cores *and* at least 2 tasks, so
    anything smaller resolves to 1 and :func:`pool_map` never touches
    the pool. ``jobs=None`` means auto-detect (all effective cores).
    ``REPRO_PARALLEL=force`` trusts the requested ``jobs`` outright —
    no core-count or task-count clamp — so tests and benchmarks can
    exercise the real pool on any machine; ``REPRO_PARALLEL=serial``
    always returns 1.
    """
    mode = os.environ.get(PARALLEL_MODE_ENV, "auto")
    if mode == "serial" or n_tasks < 1:
        return 1
    if jobs is None:
        jobs = effective_cpu_count()
    if mode == "force":
        return max(1, jobs)
    if n_tasks <= 1 or jobs <= 1:
        return 1
    return max(1, min(jobs, n_tasks, effective_cpu_count()))


# ----------------------------------------------------------------------
# Worker process side
# ----------------------------------------------------------------------


def _apply_env(env: Dict[str, str], engine_defaults: Dict[str, str]) -> None:
    """Mirror the submitting process's switches exactly (both layers:
    the env escape hatches and the explicit process engine defaults)."""
    for name in PROPAGATED_ENV_VARS:
        os.environ.pop(name, None)
    os.environ.update(env)
    engines.set_default_engines(**engine_defaults)


def _worker_main(
    conn,
    preload_modules: Sequence[str],
    env: Dict[str, str],
    engine_defaults: Dict[str, str],
) -> None:
    """Persistent worker loop: preload once, then task after task."""
    from repro import wire

    _apply_env(env, engine_defaults)
    preload_start = time.monotonic()
    for name in preload_modules:
        try:
            importlib.import_module(name)
        except Exception:  # noqa: BLE001 — preload is best-effort warmth
            pass
    preload_seconds = time.monotonic() - preload_start

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message[0] == "stop":
            break
        _, seq, t_send, task_env, task_defaults, fn, args = message
        _apply_env(task_env, task_defaults)
        modules_before = len(sys.modules)
        t_start = time.monotonic()
        try:
            value = fn(*args)
        except Exception as exc:  # noqa: BLE001 — worker errors are policy
            t_end = time.monotonic()
            try:
                blob = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:  # noqa: BLE001 — unpicklable exception
                blob = None
            stats = {
                "t_start": t_start,
                "t_end": t_end,
                "worker_pid": os.getpid(),
                "error": repr(exc),
            }
            payload = wire.encode(("err", seq, stats, blob))
        else:
            t_end = time.monotonic()
            stats = {
                "t_start": t_start,
                "t_end": t_end,
                "seconds_in_worker": t_end - t_start,
                "worker_pid": os.getpid(),
                "new_modules": len(sys.modules) - modules_before,
                "preload_seconds": preload_seconds,
            }
            payload = wire.encode(("ok", seq, stats, value))
        try:
            conn.send_bytes(payload)
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------


def _settle(future: "Future", value=None, error: Optional[BaseException] = None):
    """Resolve a future, tolerating a concurrent :meth:`WorkerPool.abandon`."""
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(value)
    except Exception:  # noqa: BLE001 — InvalidStateError from a cancel race
        pass


class AffinityLostError(RuntimeError):
    """An affinity-pinned task lost the worker holding its state.

    Pinned tasks are never retried on another worker — the whole point
    of the pin is process-local state (e.g. a live simulation partition)
    that a fresh worker does not have. Callers catch this and restart
    the stateful computation from scratch (typically serially).
    """


class _Item:
    """One submitted task and its bookkeeping."""

    __slots__ = (
        "seq", "fn", "args", "future", "cost", "label",
        "env", "defaults", "attempts", "worker_pids", "t_send",
        "affinity",
    )

    def __init__(self, seq, fn, args, cost, label, env, defaults,
                 affinity=None):
        self.seq = seq
        self.fn = fn
        self.args = args
        self.future: "Future[Tuple[Any, Dict[str, Any]]]" = Future()
        self.cost = cost
        self.label = label
        self.env = env
        self.defaults = defaults
        self.attempts = 0
        self.worker_pids: List[int] = []
        self.t_send = 0.0
        self.affinity = affinity

    def report(self, error: str) -> Dict[str, Any]:
        """Structured quarantine report for a task the pool gave up on."""
        return {
            "label": self.label,
            "attempts": self.attempts,
            "error": error,
            "worker_pids": list(self.worker_pids),
            "quarantined": True,
        }


class _Worker:
    __slots__ = ("proc", "conn", "item", "done_count")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.item: Optional[_Item] = None
        self.done_count = 0


class WorkerPool:
    """A persistent pool of warm worker processes.

    One dispatcher thread owns every worker (spawn, feed, reap,
    respawn); callers interact only through :meth:`submit` /
    :meth:`submit_task`, which return ``concurrent.futures.Future``
    objects resolving to ``(value, stats)`` pairs (:meth:`submit`
    unwraps to just the value for drop-in executor compatibility).
    Pending tasks are dispatched most-expensive-first by their ``cost``
    estimate. ``recycle_after`` bounds tasks per worker (a fresh worker
    replaces a recycled one lazily).
    """

    def __init__(
        self,
        preload: Sequence[str] = PRELOAD_MODULES,
        recycle_after: Optional[int] = None,
    ):
        import multiprocessing

        try:
            self._ctx = multiprocessing.get_context("forkserver")
            self._ctx.set_forkserver_preload(["repro.parallel"])
        except ValueError:  # platform without forkserver
            self._ctx = multiprocessing.get_context("spawn")
        self._preload = tuple(preload)
        self._recycle_after = recycle_after
        self._lock = threading.Lock()
        self._pending: List[Tuple[float, int, _Item]] = []
        self._items: Dict[int, _Item] = {}
        self._affinity: Dict[str, _Worker] = {}
        self._workers: List[_Worker] = []
        self._kill: List[_Worker] = []
        self._target = 0
        self._seq = itertools.count()
        self._wake_r, self._wake_w = os.pipe()
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # -- caller side ---------------------------------------------------

    def ensure_workers(self, count: int) -> None:
        """Raise the worker target to ``count`` (never shrinks)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is shut down")
            self._target = max(self._target, max(1, count))
        self._start_thread()
        self._wake()

    @property
    def worker_count(self) -> int:
        with self._lock:
            return len(self._workers)

    def submit_task(
        self,
        fn: Callable[..., Any],
        args: Tuple = (),
        cost: float = 0.0,
        label: Optional[str] = None,
        affinity: Optional[str] = None,
    ) -> "Future[Tuple[Any, Dict[str, Any]]]":
        """Queue one task; the future resolves to ``(value, stats)``.

        ``affinity`` pins every task sharing the key to one worker: the
        key binds to a worker on first dispatch (idle worker with the
        fewest existing bindings) and later tasks with the same key wait
        for that specific worker. Pinned tasks are never retried
        elsewhere — if the bound worker dies or the task raises, the
        future fails (``AffinityLostError`` on death) because whatever
        process-local state the pin protected is gone. Callers release
        pins with :meth:`release_affinity` when the stateful run ends.
        """
        item = _Item(
            next(self._seq), fn, tuple(args), cost,
            label or getattr(fn, "__name__", "task"),
            _propagated_env(), engines.default_engines(),
            affinity=affinity,
        )
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is shut down")
            self._target = max(self._target, 1)
            self._items[item.seq] = item
            heapq.heappush(self._pending, (-item.cost, item.seq, item))
        self._start_thread()
        self._wake()
        return item.future

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        """Executor-style submit: the future resolves to the bare value.

        This is the drop-in surface the serve dispatcher uses in place
        of ``ProcessPoolExecutor.submit``; pool-level stats are
        dropped, retry-once and crash-respawn still apply.
        """
        inner = self.submit_task(fn, args)
        outer: "Future[Any]" = Future()

        def _chain(done: "Future[Tuple[Any, Dict[str, Any]]]") -> None:
            if done.cancelled():
                outer.cancel()
                return
            error = done.exception()
            if error is not None:
                outer.set_exception(error)
            else:
                outer.set_result(done.result()[0])

        inner.add_done_callback(_chain)
        return outer

    def abandon(self, futures: Sequence["Future"]) -> None:
        """Cancel the given task futures; kill + respawn their workers.

        Used by the stall watchdog: queued tasks are dropped, in-flight
        ones get their worker terminated so a wedged unit cannot hold a
        pool slot forever. Safe to call with already-finished futures.
        """
        targets = {id(f) for f in futures}
        with self._lock:
            for item in list(self._items.values()):
                if id(item.future) not in targets:
                    continue
                item.future.cancel()
                for worker in self._workers:
                    if worker.item is item and worker not in self._kill:
                        self._kill.append(worker)
        self._wake()

    def shutdown(self, wait: bool = True) -> None:
        """Terminate workers and fail any unfinished futures."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._wake()
        if self._thread is not None and wait:
            self._thread.join(timeout=10.0)

    # -- dispatcher thread ---------------------------------------------

    def _start_thread(self) -> None:
        with self._lock:
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._loop, name="repro-pool-dispatch", daemon=True
                )
                self._thread.start()

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass

    def _spawn_worker(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn, self._preload,
                _propagated_env(), engines.default_engines(),
            ),
            name="repro-pool-worker",
        )
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn)

    def _loop(self) -> None:
        try:
            self._loop_inner()
        except BaseException as exc:  # noqa: BLE001 — never strand futures
            with self._lock:
                self._closed = True
                items = list(self._items.values())
                self._items = {}
                self._pending = []
            for item in items:
                _settle(item.future, error=RuntimeError(
                    f"pool dispatcher failed: {exc!r}"
                ))
            self._teardown()
            raise

    def _loop_inner(self) -> None:
        from multiprocessing.connection import wait as conn_wait

        while True:
            with self._lock:
                closed = self._closed
                kill, self._kill = self._kill, []
            for worker in kill:
                self._terminate_worker(worker, requeue=False)
            if closed:
                self._teardown()
                return
            self._spawn_to_target()
            self._assign_pending()
            waitables: List[Any] = [self._wake_r]
            with self._lock:
                for worker in self._workers:
                    waitables.append(worker.conn)
                    waitables.append(worker.proc.sentinel)
            ready = conn_wait(waitables, timeout=1.0)
            if self._wake_r in ready:
                try:
                    os.read(self._wake_r, 4096)
                except OSError:
                    pass
            with self._lock:
                by_conn = {w.conn: w for w in self._workers}
                by_sentinel = {w.proc.sentinel: w for w in self._workers}
            for obj in ready:
                worker = by_conn.get(obj)
                if worker is not None:
                    self._on_readable(worker)
                    continue
                worker = by_sentinel.get(obj)
                if worker is not None and not worker.proc.is_alive():
                    self._on_death(worker)

    def _spawn_to_target(self) -> None:
        # Eager spawn-to-target is the warm-pool point: workers import
        # the preload set while the first tasks are still being queued.
        while True:
            with self._lock:
                if len(self._workers) >= self._target:
                    return
            worker = self._spawn_worker()
            with self._lock:
                self._workers.append(worker)

    def _bind_affinity(self, key: str) -> Optional[_Worker]:
        """Bind ``key`` to the idle worker with the fewest pins (locked)."""
        idle = [w for w in self._workers if w.item is None]
        if not idle:
            return None
        loads: Dict[int, int] = {}
        for bound in self._affinity.values():
            loads[id(bound)] = loads.get(id(bound), 0) + 1
        worker = min(idle, key=lambda w: loads.get(id(w), 0))
        self._affinity[key] = worker
        return worker

    def release_affinity(self, prefix: str) -> None:
        """Drop every affinity binding whose key starts with ``prefix``."""
        with self._lock:
            for key in [k for k in self._affinity if k.startswith(prefix)]:
                del self._affinity[key]

    def _assign_pending(self) -> None:
        deferred: List[_Item] = []
        try:
            while True:
                with self._lock:
                    item = None
                    while self._pending:
                        _, _, candidate = heapq.heappop(self._pending)
                        if not candidate.future.cancelled():
                            item = candidate
                            break
                        self._items.pop(candidate.seq, None)
                    if item is None:
                        return
                    if item.affinity is not None:
                        idle = self._affinity.get(item.affinity)
                        if idle is None or idle not in self._workers:
                            idle = self._bind_affinity(item.affinity)
                        if idle is None or idle.item is not None:
                            # Bound worker busy (or none idle to bind):
                            # park this task without blocking the rest.
                            deferred.append(item)
                            continue
                    else:
                        idle = next(
                            (w for w in self._workers if w.item is None),
                            None,
                        )
                        if idle is None:
                            deferred.append(item)
                            return
                    idle.item = item
                item.attempts += 1
                item.t_send = time.monotonic()
                try:
                    idle.conn.send((
                        "task", item.seq, item.t_send,
                        item.env, item.defaults, item.fn, item.args,
                    ))
                except (BrokenPipeError, OSError):
                    self._on_death(idle)
        finally:
            if deferred:
                with self._lock:
                    for item in deferred:
                        heapq.heappush(
                            self._pending, (-item.cost, item.seq, item)
                        )

    def _on_readable(self, worker: _Worker) -> None:
        from repro import wire

        try:
            payload = worker.conn.recv_bytes()
        except (EOFError, OSError):
            self._on_death(worker)
            return
        status, seq, stats, value = wire.decode(payload)
        t_recv = time.monotonic()
        with self._lock:
            item = self._items.get(seq)
            if worker.item is item:
                worker.item = None
            worker.done_count += 1
        if item is None or item.future.cancelled():
            self._maybe_recycle(worker)
            return
        item.worker_pids.append(stats.get("worker_pid", -1))
        if status == "ok":
            stats["dispatch_s"] = round(
                max(0.0, stats.pop("t_start") - item.t_send)
                + max(0.0, t_recv - stats.pop("t_end")),
                6,
            )
            stats["attempts"] = item.attempts
            with self._lock:
                self._items.pop(seq, None)
            _settle(item.future, (value, stats))
        else:
            error_repr = stats.get("error", "unknown worker error")
            if item.attempts < MAX_POOL_ATTEMPTS and item.affinity is None:
                _warn(
                    f"{item.label} failed in worker ({error_repr}); retrying"
                )
                with self._lock:
                    heapq.heappush(
                        self._pending, (-item.cost, item.seq, item)
                    )
            else:
                try:
                    exc = pickle.loads(value) if value is not None else None
                except Exception:  # noqa: BLE001
                    exc = None
                if not isinstance(exc, BaseException):
                    exc = RuntimeError(error_repr)
                exc.worker_report = item.report(error_repr)
                with self._lock:
                    self._items.pop(seq, None)
                _settle(item.future, error=exc)
        self._maybe_recycle(worker)

    def _drop_affinity_for(self, worker: _Worker) -> None:
        """Unbind every pin held by a departing worker (locked)."""
        for key in [k for k, w in self._affinity.items() if w is worker]:
            del self._affinity[key]

    def _on_death(self, worker: _Worker) -> None:
        with self._lock:
            if worker not in self._workers:
                return
            self._workers.remove(worker)
            self._drop_affinity_for(worker)
            item, worker.item = worker.item, None
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.proc.join(timeout=0.1)
        if item is None or item.future.cancelled():
            return
        pid = worker.proc.pid or -1
        item.worker_pids.append(pid)
        error = f"worker process {pid} died while running {item.label}"
        if item.affinity is not None:
            exc = AffinityLostError(error)
            exc.worker_report = item.report(error)
            with self._lock:
                self._items.pop(item.seq, None)
            _settle(item.future, error=exc)
        elif item.attempts < MAX_POOL_ATTEMPTS:
            _warn(f"{error}; retrying")
            with self._lock:
                heapq.heappush(self._pending, (-item.cost, item.seq, item))
        else:
            exc = RuntimeError(error)
            exc.worker_report = item.report(error)
            with self._lock:
                self._items.pop(item.seq, None)
            _settle(item.future, error=exc)

    def _maybe_recycle(self, worker: _Worker) -> None:
        with self._lock:
            pinned = any(w is worker for w in self._affinity.values())
        if (
            self._recycle_after is not None
            and worker.done_count >= self._recycle_after
            and worker.item is None
            and not pinned
        ):
            self._terminate_worker(worker, requeue=False, graceful=True)

    def _terminate_worker(
        self, worker: _Worker, requeue: bool, graceful: bool = False
    ) -> None:
        with self._lock:
            if worker in self._workers:
                self._workers.remove(worker)
            self._drop_affinity_for(worker)
            item, worker.item = worker.item, None
            if requeue and item is not None and not item.future.cancelled():
                if item.affinity is not None:
                    self._items.pop(item.seq, None)
                    _settle(item.future, error=AffinityLostError(
                        f"worker terminated while running {item.label}"
                    ))
                    item = None
                else:
                    heapq.heappush(
                        self._pending, (-item.cost, item.seq, item)
                    )
        try:
            if graceful:
                worker.conn.send(("stop",))
            else:
                worker.proc.terminate()
        except (BrokenPipeError, OSError):
            pass
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.proc.join(timeout=1.0 if graceful else 0.5)
        if worker.proc.is_alive():
            worker.proc.kill()

    def _teardown(self) -> None:
        with self._lock:
            workers, self._workers = self._workers, []
            items, self._items = list(self._items.values()), {}
            self._pending = []
            self._affinity = {}
        for worker in workers:
            self._terminate_worker(worker, requeue=False)
        for item in items:
            if not item.future.done():
                item.future.cancel()


# ----------------------------------------------------------------------
# The shared pool + executor facade
# ----------------------------------------------------------------------

_SHARED_POOL: Optional[WorkerPool] = None
_SHARED_LOCK = threading.Lock()


def shared_pool(max_workers: Optional[int] = None) -> WorkerPool:
    """The process-wide warm pool (created on first use).

    All three parallel consumers — the experiment scheduler, the
    mapping optimizer's restarts, and the serve dispatcher — draw from
    this one pool, so workers warmed by any of them serve the others.
    ``max_workers`` raises the worker target (it never shrinks); it
    defaults to :func:`effective_cpu_count`.

    Workers are started via ``forkserver``, so they never inherit
    parent file descriptors — the serve layer spawns workers lazily
    while client sockets are open, and a plain fork would hold those
    connections half-open long after the server closes them.
    """
    global _SHARED_POOL
    with _SHARED_LOCK:
        if _SHARED_POOL is None or _SHARED_POOL._closed:
            _SHARED_POOL = WorkerPool()
            import atexit

            atexit.register(shutdown_shared_executor)
        pool = _SHARED_POOL
    pool.ensure_workers(max_workers or effective_cpu_count())
    return pool


def shared_executor(max_workers: Optional[int] = None) -> WorkerPool:
    """Executor-compatible alias for :func:`shared_pool`.

    Kept for callers that only need ``.submit(fn) -> Future`` (the
    serve dispatcher, tests injecting fakes).
    """
    return shared_pool(max_workers)


def shutdown_shared_executor() -> None:
    """Tear down the shared pool (the next use recreates it)."""
    global _SHARED_POOL
    with _SHARED_LOCK:
        pool, _SHARED_POOL = _SHARED_POOL, None
    if pool is not None:
        pool.shutdown(wait=True)


#: Back-compat alias; the shared pool replaced the shared executor.
shutdown_shared_pool = shutdown_shared_executor


# ----------------------------------------------------------------------
# pool_map
# ----------------------------------------------------------------------


def pool_map(
    fn: Callable[..., Any],
    tasks: Sequence[Tuple],
    jobs: Optional[int] = 1,
    timeout: Optional[float] = None,
    labels: Optional[Sequence[str]] = None,
    costs: Optional[Sequence[float]] = None,
    dispatch_stats: Optional[List[Optional[Dict[str, Any]]]] = None,
    quarantine: Optional[List[Dict[str, Any]]] = None,
) -> List[Any]:
    """Ordered ``[fn(*task) for task in tasks]`` fanned over warm workers.

    ``jobs`` is the requested fan-out (``None`` = auto-detect);
    :func:`effective_jobs` may degrade it to the serial fast path.
    ``timeout`` is a stall watchdog: if no task completes for that many
    seconds, outstanding tasks are abandoned to serial execution and
    their workers recycled. ``costs`` (same length as ``tasks``) makes
    dispatch cost-aware — expensive tasks first; results keep task
    order regardless. ``labels`` names tasks in warnings and reports.

    ``dispatch_stats``, if given, is filled with one dict per task
    (``dispatch_s``, ``worker_pid``, ``attempts``, ``new_modules``, …
    for pool-executed tasks; ``{"mode": "serial"}`` for tasks the fast
    path or a fallback ran in the parent). ``quarantine`` receives one
    structured report per task that failed :data:`MAX_POOL_ATTEMPTS`
    times on the pool; those tasks still run serially afterwards, so an
    error that reproduces serially propagates to the caller.
    """
    tasks = list(tasks)
    results: List[Any] = [_UNSET] * len(tasks)
    stats_rows: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
    eff = effective_jobs(jobs, len(tasks))
    forced = os.environ.get(PARALLEL_MODE_ENV) == "force" and tasks
    if eff > 1 or forced:
        _run_pool(
            fn, tasks, results, stats_rows, eff, timeout, labels, costs,
            quarantine,
        )
    # Serial completion: everything the pool did not produce (all of it
    # on the fast path) runs in the parent, where errors propagate.
    for index, task in enumerate(tasks):
        if results[index] is _UNSET:
            results[index] = fn(*task)
            if stats_rows[index] is None:
                stats_rows[index] = {"mode": "serial", "dispatch_s": 0.0}
    if dispatch_stats is not None:
        dispatch_stats[:] = stats_rows
    return results


def _label(labels: Optional[Sequence[str]], index: int) -> str:
    if labels is not None and index < len(labels):
        return labels[index]
    return f"task[{index}]"


def _run_pool(
    fn, tasks, results, stats_rows, eff, timeout, labels, costs, quarantine
) -> None:
    """Best-effort parallel pass; leaves failed cells as ``_UNSET``."""
    pool = shared_pool(eff)
    futures: Dict["Future", int] = {}
    order = range(len(tasks))
    if costs is not None:
        order = sorted(order, key=lambda i: -costs[i])
    for index in order:
        future = pool.submit_task(
            fn,
            tasks[index],
            cost=(costs[index] if costs is not None else 0.0),
            label=_label(labels, index),
        )
        futures[future] = index
    remaining = set(futures)
    while remaining:
        done, _ = futures_wait(
            remaining, timeout=timeout, return_when=FIRST_COMPLETED
        )
        if not done:
            _warn(
                f"no work unit completed within {timeout}s; "
                f"abandoning {len(remaining)} outstanding unit(s) to "
                "serial execution"
            )
            pool.abandon(list(remaining))
            break
        for future in done:
            remaining.discard(future)
            index = futures[future]
            label = _label(labels, index)
            try:
                value, stats = future.result()
            except CancelledError:
                continue
            except Exception as exc:  # noqa: BLE001 — worker errors are policy
                report = getattr(exc, "worker_report", None) or {
                    "label": label,
                    "attempts": MAX_POOL_ATTEMPTS,
                    "error": repr(exc),
                    "worker_pids": [],
                    "quarantined": True,
                }
                report["task_index"] = index
                _warn(
                    f"{label} failed {report['attempts']}x in workers "
                    f"({report['error']}); falling back to serial"
                )
                if quarantine is not None:
                    quarantine.append(report)
                continue
            results[index] = value
            stats_rows[index] = stats
