"""Compact binary encoding for results crossing process boundaries.

The warm worker pool (:mod:`repro.parallel`) and the shard runner
(:mod:`repro.shard`) both move work-unit results between processes.
Pickling every result row is what the old dispatch layer did, and on
small units the pickle traffic dominated the dispatch cost. This module
is the replacement: a small msgpack-style tagged binary format for the
payload shapes results actually take — ``None``/bool/int/float/str/
bytes, tuples/lists/dicts of those, and numpy arrays (shipped as raw
dtype+shape+buffer, no pickle machinery) — with an explicit pickle
fallback tag for anything else, so arbitrary objects still round-trip.

The encoding is **not** a persistence format (no version negotiation,
no cross-version guarantees); both ends of a connection always run the
same source tree. It exists to make the hot path cheap and the fallback
explicit.

>>> decode(encode((1, 2.5, "three", None)))
(1, 2.5, 'three', None)
>>> decode(encode({"rows": [(0, 0), (1, 1)]}))
{'rows': [(0, 0), (1, 1)]}
"""

from __future__ import annotations

import io
import pickle
import struct
from typing import Any

#: Single-byte type tags.
_NONE = b"N"
_TRUE = b"T"
_FALSE = b"F"
_INT = b"i"      # fits in a signed 64-bit struct
_BIGINT = b"I"   # arbitrary precision, decimal text
_FLOAT = b"f"
_STR = b"s"
_BYTES = b"b"
_LIST = b"l"
_TUPLE = b"t"
_DICT = b"d"
_ARRAY = b"a"    # numpy ndarray: dtype str, shape, raw buffer
_PICKLE = b"P"   # anything else

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1


def _encode_into(obj: Any, out: io.BytesIO) -> None:
    if obj is None:
        out.write(_NONE)
    elif obj is True:
        out.write(_TRUE)
    elif obj is False:
        out.write(_FALSE)
    elif type(obj) is int:
        if _I64_MIN <= obj <= _I64_MAX:
            out.write(_INT)
            out.write(struct.pack("<q", obj))
        else:
            text = str(obj).encode()
            out.write(_BIGINT)
            out.write(struct.pack("<I", len(text)))
            out.write(text)
    elif type(obj) is float:
        out.write(_FLOAT)
        out.write(struct.pack("<d", obj))
    elif type(obj) is str:
        data = obj.encode()
        out.write(_STR)
        out.write(struct.pack("<I", len(data)))
        out.write(data)
    elif type(obj) is bytes:
        out.write(_BYTES)
        out.write(struct.pack("<I", len(obj)))
        out.write(obj)
    elif type(obj) is list or type(obj) is tuple:
        out.write(_LIST if type(obj) is list else _TUPLE)
        out.write(struct.pack("<I", len(obj)))
        for item in obj:
            _encode_into(item, out)
    elif type(obj) is dict:
        out.write(_DICT)
        out.write(struct.pack("<I", len(obj)))
        for key, value in obj.items():
            _encode_into(key, out)
            _encode_into(value, out)
    elif _is_plain_ndarray(obj):
        data = obj.tobytes()
        dtype = obj.dtype.str.encode()
        out.write(_ARRAY)
        out.write(struct.pack("<I", len(dtype)))
        out.write(dtype)
        out.write(struct.pack("<I", len(obj.shape)))
        for dim in obj.shape:
            out.write(struct.pack("<q", dim))
        out.write(struct.pack("<Q", len(data)))
        out.write(data)
    else:
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        out.write(_PICKLE)
        out.write(struct.pack("<Q", len(data)))
        out.write(data)


def _is_plain_ndarray(obj: Any) -> bool:
    import sys

    np = sys.modules.get("numpy")
    if np is None:
        return False
    return type(obj) is np.ndarray and obj.dtype.hasobject is False


def encode(obj: Any) -> bytes:
    """Encode ``obj`` to the compact wire format.

    >>> encode(None)
    b'N'
    >>> len(encode(7)) == 9  # tag + 8-byte little-endian int
    True
    """
    out = io.BytesIO()
    _encode_into(obj, out)
    return out.getvalue()


def _decode_from(buf: memoryview, pos: int):
    tag = bytes(buf[pos:pos + 1])
    pos += 1
    if tag == _NONE:
        return None, pos
    if tag == _TRUE:
        return True, pos
    if tag == _FALSE:
        return False, pos
    if tag == _INT:
        return struct.unpack_from("<q", buf, pos)[0], pos + 8
    if tag == _BIGINT:
        (size,) = struct.unpack_from("<I", buf, pos)
        pos += 4
        return int(bytes(buf[pos:pos + size])), pos + size
    if tag == _FLOAT:
        return struct.unpack_from("<d", buf, pos)[0], pos + 8
    if tag == _STR:
        (size,) = struct.unpack_from("<I", buf, pos)
        pos += 4
        return str(buf[pos:pos + size], "utf-8"), pos + size
    if tag == _BYTES:
        (size,) = struct.unpack_from("<I", buf, pos)
        pos += 4
        return bytes(buf[pos:pos + size]), pos + size
    if tag in (_LIST, _TUPLE):
        (count,) = struct.unpack_from("<I", buf, pos)
        pos += 4
        items = []
        for _ in range(count):
            item, pos = _decode_from(buf, pos)
            items.append(item)
        return (items if tag == _LIST else tuple(items)), pos
    if tag == _DICT:
        (count,) = struct.unpack_from("<I", buf, pos)
        pos += 4
        result = {}
        for _ in range(count):
            key, pos = _decode_from(buf, pos)
            value, pos = _decode_from(buf, pos)
            result[key] = value
        return result, pos
    if tag == _ARRAY:
        import numpy as np

        (dtype_len,) = struct.unpack_from("<I", buf, pos)
        pos += 4
        dtype = str(buf[pos:pos + dtype_len], "ascii")
        pos += dtype_len
        (ndim,) = struct.unpack_from("<I", buf, pos)
        pos += 4
        shape = []
        for _ in range(ndim):
            (dim,) = struct.unpack_from("<q", buf, pos)
            shape.append(dim)
            pos += 8
        (size,) = struct.unpack_from("<Q", buf, pos)
        pos += 8
        array = np.frombuffer(
            bytes(buf[pos:pos + size]), dtype=np.dtype(dtype)
        ).reshape(shape)
        return array.copy(), pos + size
    if tag == _PICKLE:
        (size,) = struct.unpack_from("<Q", buf, pos)
        pos += 8
        return pickle.loads(bytes(buf[pos:pos + size])), pos + size
    raise ValueError(f"corrupt wire payload: unknown tag {tag!r}")


def decode(payload: bytes) -> Any:
    """Decode a payload produced by :func:`encode`.

    >>> decode(encode([1, [2, (3,)], {"k": b"v"}]))
    [1, [2, (3,)], {'k': b'v'}]
    """
    value, pos = _decode_from(memoryview(payload), 0)
    if pos != len(payload):
        raise ValueError(
            f"corrupt wire payload: {len(payload) - pos} trailing byte(s)"
        )
    return value
