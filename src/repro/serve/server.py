"""HTTP/1.1 binding for the serve dispatcher (stdlib asyncio only).

A deliberately small server: request line + headers + Content-Length
body in, JSON out, keep-alive by default, chunked NDJSON for telemetry
streams. It exists so the reproduction can be queried as a service
without adding any web framework to the image.

Endpoints (see ``docs/serve.md`` for the full schema reference):

* ``GET  /healthz``      — liveness probe, ``{"ok": true}``;
* ``GET  /v1/stats``     — dispatcher counters and derived ratios;
* ``POST /v1/query``     — any query payload (``kind`` field picks);
* ``POST /v1/design``    — :class:`repro.api.DesignQuery` fields;
* ``POST /v1/sweep``     — :class:`repro.api.SweepQuery` fields;
* ``POST /v1/simulate``  — :class:`repro.api.SimQuery` fields; with
  ``telemetry: true`` and ``?stream=1`` the response is chunked
  ``application/x-ndjson``, one telemetry event per finished load
  point and a terminal ``result`` event;
* ``POST /v1/dcn``       — :class:`repro.api.DCNQuery` fields (a
  partitioned multi-wafer DCN run, see docs/dcn.md).
"""

from __future__ import annotations

import argparse
import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.serve.dispatch import Dispatcher, ResponseCache, error_body

#: Largest accepted request body; queries are tiny, so anything bigger
#: is a mistake (or abuse) and is rejected before buffering it.
MAX_BODY_BYTES = 1 << 20

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found", 500: "Internal Server Error"}


def _head(
    status: int, content_type: str, extra: str = "", length: Optional[int] = None
) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
        f"Content-Type: {content_type}",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    if extra:
        lines.append(extra)
    return ("\r\n".join(lines) + "\r\n\r\n").encode()


class ServeServer:
    """One listening socket in front of one :class:`Dispatcher`."""

    def __init__(
        self,
        dispatcher: Optional[Dispatcher] = None,
        host: str = "127.0.0.1",
        port: int = 8177,
    ):
        self.dispatcher = dispatcher if dispatcher is not None else Dispatcher(
            cache=ResponseCache()
        )
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        # Port 0 means "pick one"; reflect the kernel's choice back.
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                try:
                    await self._respond(writer, method, path, body)
                except ConnectionError:
                    break
                if not keep_alive:
                    break
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip().lower()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: bytes,
    ) -> None:
        path, _, query_string = path.partition("?")
        if method == "GET" and path == "/healthz":
            self._write_json(writer, 200, {"ok": True})
            return
        if method == "GET" and path == "/v1/stats":
            self._write_json(writer, 200, self.dispatcher.stats())
            return
        if method != "POST":
            self._write_json(
                writer, 404, error_body(404, "NotFound", f"no route {method} {path}")
            )
            return

        payload, parse_error = self._parse_body(path, body)
        if parse_error is not None:
            self._write_json(writer, parse_error["error"]["status"], parse_error)
            return

        if (
            path in ("/v1/simulate", "/v1/query")
            and "stream=1" in query_string.split("&")
            and isinstance(payload, dict)
            and payload.get("telemetry")
        ):
            await self._write_stream(writer, payload)
            return

        status, response = await self.dispatcher.submit(payload)
        self._write_json(writer, status, response)

    def _parse_body(
        self, path: str, body: bytes
    ) -> Tuple[Any, Optional[Dict[str, Any]]]:
        """JSON-decode the body and imply ``kind`` from the route."""
        kinds = {
            "/v1/design": "design",
            "/v1/sweep": "sweep",
            "/v1/simulate": "simulate",
            "/v1/dcn": "dcn",
        }
        if path not in kinds and path != "/v1/query":
            return None, error_body(404, "NotFound", f"no route POST {path}")
        try:
            payload = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return None, error_body(400, "BadJSON", str(exc))
        if isinstance(payload, dict) and path in kinds:
            implied = kinds[path]
            if payload.setdefault("kind", implied) != implied:
                return None, error_body(
                    400,
                    "QueryError",
                    f"kind {payload['kind']!r} does not match route {path}",
                )
        return payload, None

    def _write_json(
        self, writer: asyncio.StreamWriter, status: int, body: Dict[str, Any]
    ) -> None:
        data = json.dumps(body).encode()
        writer.write(_head(status, "application/json", length=len(data)) + data)

    async def _write_stream(
        self, writer: asyncio.StreamWriter, payload: Dict[str, Any]
    ) -> None:
        """Chunked NDJSON: one line per event, flushed as produced."""
        writer.write(
            _head(
                200,
                "application/x-ndjson",
                extra="Transfer-Encoding: chunked",
            )
        )
        async for event in self.dispatcher.stream(payload):
            line = json.dumps(event).encode() + b"\n"
            writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()


async def _amain(args: argparse.Namespace) -> None:
    dispatcher = Dispatcher(
        cache=None if args.no_cache else ResponseCache(),
        engine=args.engine,
        mapping_engine=args.mapping_engine,
    )
    server = ServeServer(dispatcher, host=args.host, port=args.port)
    await server.start()
    print(f"repro serve listening on http://{server.host}:{server.port}", flush=True)
    assert server._server is not None
    async with server._server:
        await server._server.serve_forever()


def main(argv: Optional[list] = None) -> int:
    """Entry point for ``python -m repro serve``."""
    from repro.engines import MAPPING_ENGINES, NETSIM_ENGINES

    parser = argparse.ArgumentParser(
        prog="repro serve", description="query the reproduction as a service"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8177, help="0 picks a free port")
    parser.add_argument("--engine", choices=NETSIM_ENGINES, default="auto")
    parser.add_argument(
        "--mapping-engine", choices=MAPPING_ENGINES, default="auto"
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk response cache (coalescing still applies)",
    )
    args = parser.parse_args(argv)
    try:
        asyncio.run(_amain(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
