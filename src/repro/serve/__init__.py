"""Design-space exploration as a service.

An asyncio server exposing the :mod:`repro.api` facade over HTTP:
``design``, ``sweep`` and ``simulate`` queries arrive as JSON, warm
queries are answered from the on-disk response cache in well under a
millisecond, identical in-flight cold queries are coalesced into one
computation on the shared process pool, and ``simulate`` queries can
stream their telemetry reports per load point as NDJSON chunks.

Layers:

* :mod:`repro.serve.dispatch` — transport-agnostic request broker
  (coalescing, response cache, pool dispatch, counters);
* :mod:`repro.serve.server` — a thin HTTP/1.1 binding on
  ``asyncio.start_server`` (stdlib only).

Start it with ``python -m repro serve`` and see ``docs/serve.md`` for
the endpoint and query schema reference.
"""

from repro.serve.dispatch import Dispatcher, ResponseCache
from repro.serve.server import ServeServer, main

__all__ = ["Dispatcher", "ResponseCache", "ServeServer", "main"]
