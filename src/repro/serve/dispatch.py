"""Transport-agnostic request broker for the serve layer.

The :class:`Dispatcher` sits between any front end (the HTTP server in
:mod:`repro.serve.server`, or a test driving it directly) and the
:mod:`repro.api` facade. It answers each query payload through a
three-level ladder:

1. **Response cache** — completed responses persist as JSON under
   ``.repro_cache/serve/`` keyed by :func:`repro.api.query_key`
   (query fields + resolved engines + source fingerprint), so a warm
   query is a single small file read;
2. **In-flight coalescing** — identical cold queries that arrive while
   the first one is still computing attach to its future instead of
   resubmitting; one pool submission serves all of them, and a crash
   delivers the same structured error to every waiter **without**
   poisoning the cache (errors are never cached);
3. **Pool dispatch** — genuinely cold work runs
   :func:`repro.api.execute_payload` on the shared warm worker pool
   from :mod:`repro.parallel` (or any injected executor). The pool is
   the same one the experiment scheduler and the mapping optimizer
   use: its workers are persistent and preloaded, so a cold query
   pays sub-millisecond dispatch, not a process spawn plus imports
   (see docs/parallel.md).

``simulate`` queries with ``telemetry: true`` can instead be streamed:
:meth:`Dispatcher.stream` runs them on a thread (telemetry callbacks
cannot cross a process boundary) and yields each load point's report
the moment it is finished, followed by the final response.

Every decision increments a counter (``requests``, ``cache_hits``,
``coalesced``, ``pool_submissions``, ``errors``, ``streamed``)
surfaced by the server's ``/v1/stats`` endpoint and consumed by
``benchmarks/bench_serve.py`` to measure dedup and hit ratios.
"""

from __future__ import annotations

import asyncio
import json
import os
from concurrent.futures import Executor
from functools import partial
from pathlib import Path
from typing import Any, AsyncIterator, Dict, Optional, Tuple

from repro import api, paths

#: A dispatch outcome: (HTTP-ish status code, JSON-serializable body).
Outcome = Tuple[int, Dict[str, Any]]


def error_body(status: int, kind: str, message: str) -> Dict[str, Any]:
    """Structured error envelope (mirrors the response envelope tags)."""
    return {
        "schema": api.RESPONSE_SCHEMA,
        "version": api.RESPONSE_SCHEMA_VERSION,
        "error": {"status": status, "type": kind, "message": message},
    }


class ResponseCache:
    """Persists completed serve responses as JSON files.

    Same discipline as the experiment and mapping caches: file names
    embed the content key (so source edits strand old entries instead
    of serving stale ones), ``load`` returns ``None`` on any miss or
    unreadable file, and writes are atomic (write-then-rename). Only
    successful responses are ever stored — see :class:`Dispatcher`.
    """

    def __init__(self, directory: Optional[Path] = None):
        self.directory = (
            Path(directory) if directory is not None else paths.serve_cache_dir()
        )

    def entry_path(self, key: str) -> Path:
        return self.directory / f"response-{key}.json"

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(self.entry_path(key).read_text())
        except (OSError, ValueError):
            return None

    def store(self, key: str, response: Dict[str, Any]) -> Path:
        path = self.entry_path(key)
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(response) + "\n")
        tmp.replace(path)
        return path

    def clear(self) -> int:
        removed = 0
        if self.directory.is_dir():
            for entry in self.directory.glob("response-*.json"):
                entry.unlink()
                removed += 1
        return removed


class Dispatcher:
    """Coalescing broker from query payloads to response bodies.

    Args:
        executor: Anything with ``submit(fn) -> concurrent.futures.
            Future``; defaults (lazily) to the shared warm worker pool
            of :mod:`repro.parallel`. Tests inject a fake to count and
            control submissions.
        cache: A :class:`ResponseCache`, or ``None`` to disable warm
            responses (every request then coalesces or recomputes).
        engine / mapping_engine: Kernel selection applied to every
            query this dispatcher executes (:mod:`repro.engines`
            names); environment overrides still win inside workers.
        sweep_cache: Forwarded to :func:`repro.api.execute` as its
            ``cache`` argument for sweep queries.
    """

    def __init__(
        self,
        executor: Optional[Executor] = None,
        cache: Optional[ResponseCache] = None,
        engine: str = "auto",
        mapping_engine: str = "auto",
        sweep_cache: Any = "default",
    ):
        self._executor = executor
        self.cache = cache
        self.engine = engine
        self.mapping_engine = mapping_engine
        self.sweep_cache = sweep_cache
        self._inflight: Dict[str, "asyncio.Future[Outcome]"] = {}
        self.counters: Dict[str, int] = {
            "requests": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "pool_submissions": 0,
            "errors": 0,
            "streamed": 0,
        }

    # ------------------------------------------------------------------
    # Execution plumbing
    # ------------------------------------------------------------------

    def executor(self) -> Executor:
        """The target for cold work (created on first use)."""
        if self._executor is None:
            from repro.parallel import shared_executor

            self._executor = shared_executor()
        return self._executor

    def _parse(self, payload: Any) -> api.Query:
        if not isinstance(payload, dict):
            raise api.QueryError("query payload must be a JSON object")
        return api.query_from_dict(payload)

    def _execute_call(self, query: api.Query):
        """Module-level-picklable call for the process pool."""
        return partial(
            api.execute_payload,
            query.to_dict(),
            engine=self.engine,
            mapping_engine=self.mapping_engine,
            cache=self.sweep_cache,
        )

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    async def submit(self, payload: Any) -> Outcome:
        """Answer one query payload; never raises for request faults.

        Returns ``(status, body)`` where status is 200 on success, 400
        for malformed queries and 500 for execution failures. Faulted
        outcomes are shared verbatim with every coalesced waiter but
        are never written to the response cache, so one crash cannot
        poison later identical requests.
        """
        self.counters["requests"] += 1
        try:
            query = self._parse(payload)
        except api.QueryError as exc:
            self.counters["errors"] += 1
            return 400, error_body(400, "QueryError", str(exc))

        key = api.query_key(query, self.engine, self.mapping_engine)
        if self.cache is not None:
            cached = self.cache.load(key)
            if cached is not None:
                self.counters["cache_hits"] += 1
                return 200, cached

        pending = self._inflight.get(key)
        if pending is not None:
            self.counters["coalesced"] += 1
            return await asyncio.shield(pending)

        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Outcome]" = loop.create_future()
        self._inflight[key] = future
        try:
            outcome = await self._run_cold(query, key)
        except BaseException:
            # Cancellation or a bug in our own plumbing: wake waiters
            # with a structured error rather than hanging them.
            outcome = (500, error_body(500, "DispatchError", "dispatch failed"))
            raise
        finally:
            self._inflight.pop(key, None)
            future.set_result(outcome)
        return outcome

    async def _run_cold(self, query: api.Query, key: str) -> Outcome:
        self.counters["pool_submissions"] += 1
        loop = asyncio.get_running_loop()
        try:
            response = await asyncio.wrap_future(
                self.executor().submit(self._execute_call(query)),
                loop=loop,
            )
        except api.QueryError as exc:
            self.counters["errors"] += 1
            return 400, error_body(400, "QueryError", str(exc))
        except Exception as exc:
            self.counters["errors"] += 1
            return 500, error_body(500, type(exc).__name__, str(exc))
        if self.cache is not None:
            self.cache.store(key, response)
        return 200, response

    # ------------------------------------------------------------------
    # Streaming path (simulate + telemetry)
    # ------------------------------------------------------------------

    async def stream(self, payload: Any) -> AsyncIterator[Dict[str, Any]]:
        """Stream a simulate query as NDJSON-ready event dicts.

        Yields ``{"event": "telemetry", "load": ..., "report": ...}``
        per finished load point, then exactly one terminal event:
        ``{"event": "result", "status": ..., "body": ...}``. Runs on a
        worker thread (not the process pool) so telemetry callbacks can
        cross back into the event loop as each point completes; the
        final successful response still lands in the response cache.
        """
        self.counters["requests"] += 1
        self.counters["streamed"] += 1
        try:
            query = self._parse(payload)
            if not isinstance(query, api.SimQuery):
                raise api.QueryError("only simulate queries can stream")
        except api.QueryError as exc:
            self.counters["errors"] += 1
            yield {
                "event": "result",
                "status": 400,
                "body": error_body(400, "QueryError", str(exc)),
            }
            return

        key = api.query_key(query, self.engine, self.mapping_engine)
        if self.cache is not None:
            cached = self.cache.load(key)
            if cached is not None:
                self.counters["cache_hits"] += 1
                for point in cached["result"].get("telemetry", []):
                    yield {"event": "telemetry", **point}
                yield {"event": "result", "status": 200, "body": cached}
                return

        loop = asyncio.get_running_loop()
        queue: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()

        def on_telemetry(load: float, report: Dict[str, Any]) -> None:
            loop.call_soon_threadsafe(
                queue.put_nowait,
                {"event": "telemetry", "load": load, "report": report},
            )

        def run() -> None:
            try:
                response = api.execute(
                    query,
                    engine=self.engine,
                    mapping_engine=self.mapping_engine,
                    cache=self.sweep_cache,
                    on_telemetry=on_telemetry,
                )
                event = {"event": "result", "status": 200, "body": response}
            except api.QueryError as exc:
                event = {
                    "event": "result",
                    "status": 400,
                    "body": error_body(400, "QueryError", str(exc)),
                }
            except Exception as exc:  # crash -> structured terminal event
                event = {
                    "event": "result",
                    "status": 500,
                    "body": error_body(500, type(exc).__name__, str(exc)),
                }
            loop.call_soon_threadsafe(queue.put_nowait, event)

        runner = loop.run_in_executor(None, run)
        try:
            while True:
                event = await queue.get()
                if event["event"] == "result":
                    if event["status"] == 200:
                        if self.cache is not None:
                            self.cache.store(key, event["body"])
                    else:
                        self.counters["errors"] += 1
                    yield event
                    return
                yield event
        finally:
            await runner

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot plus derived ratios for ``/v1/stats``."""
        counters = dict(self.counters)
        requests = counters["requests"]
        deduped = counters["cache_hits"] + counters["coalesced"]
        return {
            "counters": counters,
            "inflight": len(self._inflight),
            "dedup_ratio": (deduped / requests) if requests else 0.0,
            "cache_hit_rate": (
                counters["cache_hits"] / requests if requests else 0.0
            ),
        }
