"""Opt-in simulator instrumentation: per-router / per-VC / per-channel
counters, stall attribution, and windowed latency histograms.

The paper's performance study (Figs 21-24) hinges on *why* latency
diverges near saturation — buffer pressure, VC allocation failures,
credit starvation on the leaf-spine channels — yet averaged end-of-run
numbers cannot distinguish those causes. A :class:`Telemetry` object
attached to a network collects the missing detail:

* **per-router** — SA grant/request rates, VA grants and stalls, RC
  wait cycles, sampled buffer occupancy, and a stall-attribution
  summary (``credit`` / ``va`` / ``rc`` / ``sa_conflict``);
* **per-channel** — flits forwarded on every output port (channel
  load) and cycles the port spent credit-starved;
* **per-VC** — SA grants and sampled queue occupancy per virtual
  channel;
* **per-terminal** — injection credit stalls, plus sampled source
  backlog across the machine;
* **latency histograms** — log2-bucketed creation-to-arrival packet
  latency, attributed to the window the packet was *created* in
  (optionally per source->destination flow).

Measurement is split into explicit **windows** (warmup / measurement /
drain for :meth:`~repro.netsim.sim.Simulator.run`, a single ``replay``
window for trace replay). Cycle-attributed counters (stalls, grants,
loads) land in the window whose cycles produced them; histograms are
attributed by packet creation time, so a packet created during
measurement but delivered during drain still counts as a measurement
sample — exactly the windowing the run-level average uses.

Cost model: telemetry is **opt-in and near-zero when off**. Routers,
terminals, and the network driver each hold a ``telemetry`` attribute
that defaults to ``None``; every instrumentation point is guarded by a
single ``is not None`` check on an already-loaded local, and the
disabled path makes *no* calls into this module (asserted by
``tests/netsim/test_telemetry.py``). Golden-parity fixtures hold the
instrumented simulator to bit-identical behaviour, telemetry on or
off — the sink only observes, it never arbitrates.

Example — collect and validate a telemetry report:

>>> from repro.netsim.config import SimConfig
>>> from repro.netsim.network import single_router_network
>>> from repro.netsim.sim import run_sim
>>> telemetry = Telemetry(sample_interval=4)
>>> stats = run_sim(
...     single_router_network(4), "uniform", load=0.3,
...     config=SimConfig(warmup_cycles=20, measure_cycles=100,
...                      drain_cycles=50, seed=3),
...     telemetry=telemetry,
... )
>>> report = telemetry.to_dict()
>>> [window["name"] for window in report["windows"]]
['warmup', 'measurement', 'drain']
>>> validate_telemetry(report)  # raises ValueError on a malformed report
>>> report["windows"][1]["latency"]["total"] == stats.packets_delivered
True
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

#: Identifies the JSON layout; bump on breaking schema changes.
TELEMETRY_SCHEMA = "repro-netsim-telemetry"
TELEMETRY_SCHEMA_VERSION = 1


class LatencyHistogram:
    """Log2-bucketed latency histogram (bucket ``i`` holds ``[2^i, 2^(i+1))``).

    Power-of-two buckets keep the histogram O(log max-latency) regardless
    of run length while still separating the regimes that matter: the
    zero-load plateau, the queueing knee, and the saturated tail.
    """

    __slots__ = ("counts", "total", "min", "max", "sum")

    def __init__(self):
        self.counts: Dict[int, int] = {}
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.sum = 0

    @staticmethod
    def bucket_of(latency: int) -> int:
        """Bucket index for a latency (clamped at 0 for latency < 1)."""
        return latency.bit_length() - 1 if latency > 1 else 0

    def add(self, latency: int) -> None:
        index = self.bucket_of(latency)
        self.counts[index] = self.counts.get(index, 0) + 1
        self.total += 1
        self.sum += latency
        if self.min is None or latency < self.min:
            self.min = latency
        if self.max is None or latency > self.max:
            self.max = latency

    def add_many(self, latencies) -> None:
        """Bulk :meth:`add` over an integer array (numpy batch path).

        Bucketing via ``frexp`` exponents: for ``x >= 2`` the exponent
        is ``bit_length``, so ``exponent - 1 == bucket_of(x)``; values
        below 2 are clamped into bucket 0, matching the scalar clamp.
        """
        import numpy as np

        latencies = np.asarray(latencies, dtype=np.int64)
        if latencies.size == 0:
            return
        buckets = np.frexp(np.maximum(latencies, 1).astype(np.float64))[1] - 1
        for index, count in enumerate(np.bincount(buckets).tolist()):
            if count:
                self.counts[index] = self.counts.get(index, 0) + count
        self.total += int(latencies.size)
        self.sum += int(latencies.sum())
        lo, hi = int(latencies.min()), int(latencies.max())
        if self.min is None or lo < self.min:
            self.min = lo
        if self.max is None or hi > self.max:
            self.max = hi

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "avg": round(self.sum / self.total, 3) if self.total else None,
            "buckets": [
                [1 << index if index else 0, 1 << (index + 1), count]
                for index, count in sorted(self.counts.items())
            ],
        }


class RouterTelemetry:
    """Per-router counter sink; routers increment these fields directly.

    Split into *cumulative* counters (delta-ed per window via
    snapshots) and *sampled* accumulators (reset at each window start):

    * ``sa_requests`` / ``channel_load`` — switch-allocation requests
      and grants per output port (``channel_load`` doubles as flits
      forwarded per output channel);
    * ``credit_stall_cycles`` — cycles an output port had work queued
      but zero downstream credits;
    * ``va_grants`` / ``va_stalls`` — VC allocations granted vs cycles
      a routed head flit found no free output VC;
    * ``rc_wait_cycles`` — head-flit cycles spent inside route
      computation;
    * ``vc_grants`` — SA grants per *input* VC;
    * ``occ_sum`` / ``occ_peak`` / ``vc_occ_sum`` / ``samples`` —
      sampled shared-buffer occupancy per port and queue depth per VC.
    """

    __slots__ = (
        "sa_requests",
        "channel_load",
        "credit_stall_cycles",
        "vc_grants",
        "va_grants",
        "va_stalls",
        "rc_wait_cycles",
        "occ_sum",
        "occ_peak",
        "vc_occ_sum",
        "samples",
    )

    def __init__(self, n_ports: int, num_vcs: int):
        self.sa_requests = [0] * n_ports
        self.channel_load = [0] * n_ports
        self.credit_stall_cycles = [0] * n_ports
        self.vc_grants = [0] * num_vcs
        self.va_grants = 0
        self.va_stalls = 0
        self.rc_wait_cycles = 0
        self.occ_sum = [0] * n_ports
        self.occ_peak = [0] * n_ports
        self.vc_occ_sum = [0] * num_vcs
        self.samples = 0

    def counter_snapshot(self) -> dict:
        """Copy of the cumulative counters (window baselining)."""
        return {
            "sa_requests": list(self.sa_requests),
            "channel_load": list(self.channel_load),
            "credit_stall_cycles": list(self.credit_stall_cycles),
            "vc_grants": list(self.vc_grants),
            "va_grants": self.va_grants,
            "va_stalls": self.va_stalls,
            "rc_wait_cycles": self.rc_wait_cycles,
        }

    def sampled_snapshot(self) -> dict:
        return {
            "samples": self.samples,
            "occ_sum": list(self.occ_sum),
            "occ_peak": list(self.occ_peak),
            "vc_occ_sum": list(self.vc_occ_sum),
        }

    def reset_sampled(self) -> None:
        for values in (self.occ_sum, self.occ_peak, self.vc_occ_sum):
            for index in range(len(values)):
                values[index] = 0
        self.samples = 0


def _counter_delta(end: dict, base: dict) -> dict:
    delta = {}
    for key, value in end.items():
        baseline = base[key]
        if isinstance(value, list):
            delta[key] = [v - b for v, b in zip(value, baseline)]
        else:
            delta[key] = value - baseline
    return delta


class _Window:
    """One measurement window: baselines at start, deltas at close."""

    __slots__ = (
        "name",
        "start",
        "end",
        "router_base",
        "router_delta",
        "router_sampled",
        "terminal_base",
        "terminal_delta",
        "backlog",
        "histogram",
        "flows",
    )

    def __init__(self, name: str, start: int, telemetry: "Telemetry"):
        self.name = name
        self.start = start
        self.end: Optional[int] = None
        self.router_base = [
            view.counter_snapshot() for view in telemetry._routers
        ]
        self.router_delta: Optional[List[dict]] = None
        self.router_sampled: Optional[List[dict]] = None
        self.terminal_base = telemetry._terminal_snapshot()
        self.terminal_delta: Optional[dict] = None
        self.backlog: Optional[dict] = None
        self.histogram = LatencyHistogram()
        self.flows: Optional[Dict[str, LatencyHistogram]] = (
            {} if telemetry.collect_flows else None
        )


class Telemetry:
    """Structured-telemetry sink for one :class:`NetworkModel` run.

    Attach with :meth:`attach` (done automatically by the ``telemetry=``
    hooks on :func:`~repro.netsim.sim.run_sim`,
    :meth:`~repro.netsim.sim.Simulator.run`, the sweep helpers, and
    :func:`~repro.netsim.trace.replay_trace`), then read the report
    with :meth:`to_dict` / :meth:`to_json` / :meth:`write_json`.

    Args:
        sample_interval: Cycles between occupancy/backlog samples
            (sampling cost is paid only while attached).
        collect_flows: Also keep one latency histogram per
            source->destination pair (quadratic in terminals — meant
            for small debug networks).
    """

    def __init__(self, sample_interval: int = 16, collect_flows: bool = False):
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1 cycle")
        self.sample_interval = sample_interval
        self.collect_flows = collect_flows
        self._network = None
        self._routers: List[RouterTelemetry] = []
        self.terminal_credit_stalls: List[int] = []
        self._windows: List[_Window] = []
        self._backlog_sum = 0
        self._backlog_peak = 0
        self._backlog_samples = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, network) -> "Telemetry":
        """Wire this sink into a network's routers and terminals."""
        if self._network is network:
            return self
        if self._network is not None:
            raise ValueError("telemetry is already attached to a network")
        if network.telemetry is not None:
            raise ValueError("network already has a telemetry sink attached")
        self._network = network
        network.telemetry = self
        self._routers = [
            RouterTelemetry(router.n_ports, router.num_vcs)
            for router in network.routers
        ]
        for router, view in zip(network.routers, self._routers):
            router.telemetry = view
        self.terminal_credit_stalls = [0] * network.n_terminals
        for terminal in network.terminals:
            terminal.telemetry = self
        return self

    @property
    def attached(self) -> bool:
        return self._network is not None

    # ------------------------------------------------------------------
    # Windows
    # ------------------------------------------------------------------

    def begin_window(self, name: str, cycle: int) -> None:
        """Close any open window at ``cycle`` and start a new one."""
        if self._network is None:
            raise ValueError("attach() before beginning a window")
        self._close_open_window(cycle)
        self._windows.append(_Window(name, cycle, self))

    def finish(self, cycle: int) -> None:
        """Close the open window (end of the run)."""
        self._close_open_window(cycle)

    def _close_open_window(self, cycle: int) -> None:
        window = self._open_window()
        if window is None:
            return
        window.end = cycle
        window.router_delta = [
            _counter_delta(view.counter_snapshot(), base)
            for view, base in zip(self._routers, window.router_base)
        ]
        window.router_sampled = [
            view.sampled_snapshot() for view in self._routers
        ]
        window.terminal_delta = _counter_delta(
            self._terminal_snapshot(), window.terminal_base
        )
        window.backlog = self._backlog_record()
        for view in self._routers:
            view.reset_sampled()
        self._backlog_sum = 0
        self._backlog_peak = 0
        self._backlog_samples = 0

    def _open_window(self) -> Optional[_Window]:
        if self._windows and self._windows[-1].end is None:
            return self._windows[-1]
        return None

    # ------------------------------------------------------------------
    # Collection (called from the instrumented hot paths)
    # ------------------------------------------------------------------

    def sample(self, network, now: int) -> None:
        """Record buffer occupancy and source backlog (one sample)."""
        del now
        for view, router in zip(self._routers, network.routers):
            occ_sum = view.occ_sum
            occ_peak = view.occ_peak
            for port, occupancy in enumerate(router.occupancy):
                occ_sum[port] += occupancy
                if occupancy > occ_peak[port]:
                    occ_peak[port] = occupancy
            vc_occ = view.vc_occ_sum
            for port_queues in router.queues:
                for vc, queue in enumerate(port_queues):
                    if queue:
                        vc_occ[vc] += len(queue)
            view.samples += 1
        backlog = sum(len(t.source_queue) for t in network.terminals)
        self._backlog_sum += backlog
        if backlog > self._backlog_peak:
            self._backlog_peak = backlog
        self._backlog_samples += 1

    def record_latency(self, packet) -> None:
        """Record one delivered packet (tail arrival at a terminal)."""
        window = self._window_for_creation(packet.create_cycle)
        if window is None:
            return
        latency = packet.arrive_cycle - packet.create_cycle
        window.histogram.add(latency)
        if window.flows is not None:
            key = f"{packet.src}->{packet.dst}"
            histogram = window.flows.get(key)
            if histogram is None:
                histogram = window.flows[key] = LatencyHistogram()
            histogram.add(latency)

    def _window_for_creation(self, create_cycle: int) -> Optional[_Window]:
        # Newest window first: in-order runs resolve on the first probe.
        for window in reversed(self._windows):
            if create_cycle >= window.start:
                return window
        return self._windows[0] if self._windows else None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _terminal_snapshot(self) -> dict:
        terminals = self._network.terminals
        return {
            "credit_stall_cycles": list(self.terminal_credit_stalls),
            "flits_sent": sum(t.flits_sent for t in terminals),
            "flits_received": sum(t.flits_received for t in terminals),
            "packets_sent": sum(t.packets_sent for t in terminals),
            "packets_received": sum(len(t.packets_received) for t in terminals),
        }

    def _backlog_record(self) -> dict:
        samples = self._backlog_samples
        return {
            "samples": samples,
            "avg_total": round(self._backlog_sum / samples, 3) if samples else 0.0,
            "peak_total": self._backlog_peak,
        }

    @staticmethod
    def _router_record(
        router_id: int, delta: dict, sampled: dict, cycles: int
    ) -> dict:
        sa_requests = sum(delta["sa_requests"])
        sa_grants = sum(delta["channel_load"])
        va_grants = delta["va_grants"]
        va_stalls = delta["va_stalls"]
        samples = sampled["samples"]
        return {
            "router_id": router_id,
            "flits_forwarded": sa_grants,
            "channel_load_per_port": delta["channel_load"],
            "channel_utilization_per_port": [
                round(load / cycles, 4) if cycles else 0.0
                for load in delta["channel_load"]
            ],
            "sa": {
                "requests_per_port": delta["sa_requests"],
                "grants": sa_grants,
                "grant_rate": round(sa_grants / sa_requests, 4)
                if sa_requests
                else None,
            },
            "va": {
                "grants": va_grants,
                "stalls": va_stalls,
                "grant_rate": round(va_grants / (va_grants + va_stalls), 4)
                if va_grants + va_stalls
                else None,
            },
            "credit_stall_cycles_per_port": delta["credit_stall_cycles"],
            "vc": {
                "grants_per_vc": delta["vc_grants"],
                "occupancy_avg_per_vc": [
                    round(total / samples, 3) if samples else 0.0
                    for total in sampled["vc_occ_sum"]
                ],
            },
            "buffers": {
                "samples": samples,
                "occupancy_avg_per_port": [
                    round(total / samples, 3) if samples else 0.0
                    for total in sampled["occ_sum"]
                ],
                "occupancy_peak_per_port": sampled["occ_peak"],
            },
            "stall_attribution": {
                "credit": sum(delta["credit_stall_cycles"]),
                "va": va_stalls,
                "rc": delta["rc_wait_cycles"],
                "sa_conflict": sa_requests - sa_grants,
            },
        }

    def _window_record(self, window: _Window) -> dict:
        now = self._network.cycle
        closed = window.end is not None
        end = window.end if closed else now
        cycles = max(end - window.start, 0)
        if closed:
            router_deltas = window.router_delta
            router_sampled = window.router_sampled
            terminal_delta = window.terminal_delta
            backlog = window.backlog
        else:
            router_deltas = [
                _counter_delta(view.counter_snapshot(), base)
                for view, base in zip(self._routers, window.router_base)
            ]
            router_sampled = [view.sampled_snapshot() for view in self._routers]
            terminal_delta = _counter_delta(
                self._terminal_snapshot(), window.terminal_base
            )
            backlog = self._backlog_record()
        record = {
            "name": window.name,
            "start_cycle": window.start,
            "end_cycle": end,
            "cycles": cycles,
            "routers": [
                self._router_record(router_id, delta, sampled, cycles)
                for router_id, (delta, sampled) in enumerate(
                    zip(router_deltas, router_sampled)
                )
            ],
            "terminals": dict(terminal_delta, backlog=backlog),
            "latency": window.histogram.to_dict(),
        }
        if window.flows is not None:
            record["flows"] = {
                key: histogram.to_dict()
                for key, histogram in sorted(window.flows.items())
            }
        return record

    def to_dict(self) -> dict:
        """The full JSON-able report (open windows reported as of now)."""
        if self._network is None:
            raise ValueError("attach() and run a simulation first")
        network = self._network
        return {
            "schema": TELEMETRY_SCHEMA,
            "version": TELEMETRY_SCHEMA_VERSION,
            "sample_interval": self.sample_interval,
            "network": {
                "name": network.name,
                "n_routers": len(network.routers),
                "n_terminals": network.n_terminals,
                "num_vcs": network.routers[0].num_vcs if network.routers else 0,
                "ports_per_router": [r.n_ports for r in network.routers],
            },
            "final_cycle": network.cycle,
            "windows": [self._window_record(w) for w in self._windows],
        }

    def to_json(self, indent: Optional[int] = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write_json(self, path) -> None:
        """Write the report to ``path`` (parent directories created)."""
        import pathlib

        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n")


# ----------------------------------------------------------------------
# Schema validation (dependency-free; the docs carry the full schema)
# ----------------------------------------------------------------------

_HISTOGRAM_KEYS = {"total", "min", "max", "avg", "buckets"}
_WINDOW_KEYS = {
    "name",
    "start_cycle",
    "end_cycle",
    "cycles",
    "routers",
    "terminals",
    "latency",
}
_ROUTER_KEYS = {
    "router_id",
    "flits_forwarded",
    "channel_load_per_port",
    "channel_utilization_per_port",
    "sa",
    "va",
    "credit_stall_cycles_per_port",
    "vc",
    "buffers",
    "stall_attribution",
}
_STALL_KEYS = {"credit", "va", "rc", "sa_conflict"}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"invalid telemetry report: {message}")


def _validate_histogram(histogram, where: str) -> None:
    _require(isinstance(histogram, dict), f"{where} must be an object")
    _require(
        set(histogram) == _HISTOGRAM_KEYS,
        f"{where} keys {sorted(histogram)} != {sorted(_HISTOGRAM_KEYS)}",
    )
    _require(
        isinstance(histogram["total"], int) and histogram["total"] >= 0,
        f"{where}.total must be a non-negative int",
    )
    counted = 0
    for bucket in histogram["buckets"]:
        _require(
            isinstance(bucket, list) and len(bucket) == 3,
            f"{where}.buckets entries must be [lo, hi, count]",
        )
        lo, hi, count = bucket
        _require(0 <= lo < hi, f"{where} bucket bounds [{lo}, {hi}) malformed")
        _require(count > 0, f"{where} buckets must omit empty entries")
        counted += count
    _require(
        counted == histogram["total"],
        f"{where} bucket counts {counted} != total {histogram['total']}",
    )


def _validate_router(router, n_vcs: int, where: str) -> None:
    _require(isinstance(router, dict), f"{where} must be an object")
    _require(
        set(router) == _ROUTER_KEYS,
        f"{where} keys {sorted(router)} != {sorted(_ROUTER_KEYS)}",
    )
    n_ports = len(router["channel_load_per_port"])
    for key in (
        "channel_load_per_port",
        "channel_utilization_per_port",
        "credit_stall_cycles_per_port",
    ):
        _require(
            isinstance(router[key], list) and len(router[key]) == n_ports,
            f"{where}.{key} must list all {n_ports} ports",
        )
    _require(
        len(router["sa"]["requests_per_port"]) == n_ports,
        f"{where}.sa.requests_per_port must list all ports",
    )
    _require(
        len(router["vc"]["grants_per_vc"]) == n_vcs,
        f"{where}.vc.grants_per_vc must list all {n_vcs} VCs",
    )
    attribution = router["stall_attribution"]
    _require(
        set(attribution) == _STALL_KEYS,
        f"{where}.stall_attribution keys {sorted(attribution)}",
    )
    for key, value in attribution.items():
        _require(
            isinstance(value, int) and value >= 0,
            f"{where}.stall_attribution.{key} must be a non-negative int",
        )
    _require(
        sum(router["channel_load_per_port"]) == router["flits_forwarded"],
        f"{where}: channel loads must sum to flits_forwarded",
    )


def validate_telemetry(report) -> None:
    """Validate a telemetry report against the v1 schema.

    Raises :class:`ValueError` with a pointed message on the first
    violation; returns ``None`` on success. Checked structurally (no
    jsonschema dependency): top-level identity and network shape, every
    window's router/terminal/latency records, per-port and per-VC list
    lengths, histogram/bucket consistency, and non-negative stall
    attribution.
    """
    _require(isinstance(report, dict), "report must be an object")
    _require(
        report.get("schema") == TELEMETRY_SCHEMA,
        f"schema must be {TELEMETRY_SCHEMA!r}",
    )
    _require(
        report.get("version") == TELEMETRY_SCHEMA_VERSION,
        f"version must be {TELEMETRY_SCHEMA_VERSION}",
    )
    network = report.get("network")
    _require(isinstance(network, dict), "network must be an object")
    for key in ("name", "n_routers", "n_terminals", "num_vcs", "ports_per_router"):
        _require(key in network, f"network.{key} missing")
    _require(
        len(network["ports_per_router"]) == network["n_routers"],
        "network.ports_per_router must list every router",
    )
    windows = report.get("windows")
    _require(isinstance(windows, list), "windows must be a list")
    for index, window in enumerate(windows):
        where = f"windows[{index}]"
        _require(isinstance(window, dict), f"{where} must be an object")
        _require(
            _WINDOW_KEYS.issubset(window),
            f"{where} keys {sorted(window)} missing some of {sorted(_WINDOW_KEYS)}",
        )
        _require(
            window["start_cycle"] <= window["end_cycle"],
            f"{where} start/end cycles out of order",
        )
        _require(
            window["cycles"] == window["end_cycle"] - window["start_cycle"],
            f"{where}.cycles inconsistent with its bounds",
        )
        _require(
            len(window["routers"]) == network["n_routers"],
            f"{where}.routers must cover every router",
        )
        for router_index, router in enumerate(window["routers"]):
            _validate_router(
                router, network["num_vcs"], f"{where}.routers[{router_index}]"
            )
        terminals = window["terminals"]
        _require(
            len(terminals["credit_stall_cycles"]) == network["n_terminals"],
            f"{where}.terminals.credit_stall_cycles must cover every terminal",
        )
        _validate_histogram(window["latency"], f"{where}.latency")
        for key, histogram in window.get("flows", {}).items():
            _validate_histogram(histogram, f"{where}.flows[{key}]")
