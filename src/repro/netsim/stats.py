"""Measurement bookkeeping for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.netsim.config import CYCLE_TIME_NS


@dataclass
class RunStats:
    """Latency/throughput statistics over a measurement window."""

    measure_start: int
    measure_end: int
    latencies_cycles: List[int] = field(default_factory=list)
    flits_delivered: int = 0
    flits_offered: int = 0
    n_terminals: int = 0

    @property
    def packets_delivered(self) -> int:
        return len(self.latencies_cycles)

    @property
    def avg_latency_cycles(self) -> float:
        if not self.latencies_cycles:
            return float("nan")
        return sum(self.latencies_cycles) / len(self.latencies_cycles)

    @property
    def avg_latency_ns(self) -> float:
        return self.avg_latency_cycles * CYCLE_TIME_NS

    @property
    def p99_latency_cycles(self) -> float:
        if not self.latencies_cycles:
            return float("nan")
        ordered = sorted(self.latencies_cycles)
        index = min(len(ordered) - 1, int(0.99 * len(ordered)))
        return float(ordered[index])

    @property
    def measured_cycles(self) -> int:
        return self.measure_end - self.measure_start

    @property
    def accepted_load(self) -> float:
        """Delivered flits per cycle per terminal."""
        cycles = self.measured_cycles
        if cycles <= 0 or self.n_terminals == 0:
            return 0.0
        return self.flits_delivered / cycles / self.n_terminals

    @property
    def offered_load(self) -> float:
        cycles = self.measured_cycles
        if cycles <= 0 or self.n_terminals == 0:
            return 0.0
        return self.flits_offered / cycles / self.n_terminals
