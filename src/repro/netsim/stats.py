"""Measurement bookkeeping for simulation runs.

Windowing contract (Booksim's methodology, made explicit):

* ``measure_start``/``measure_end`` bound the **measurement window**
  in absolute network cycles; warmup is everything before
  ``measure_start`` and drain everything after ``measure_end``.
* ``flits_offered`` / ``flits_delivered`` are **cycle-attributed**:
  they count injection and delivery events that happened *during* the
  window, whichever packet they belong to. That makes
  :attr:`RunStats.accepted_load` the steady-state delivery rate over
  the window.
* ``latencies_cycles`` (and everything derived from it) is
  **creation-attributed**: it covers exactly the packets *created*
  during the window, whenever they arrive — including during drain.
  Warmup-created packets never enter the latency statistics even when
  they are delivered inside (or after) the measurement window; the
  :meth:`RunStats.record_arrival` filter is the single place that
  invariant lives.
* A bounded drain can cut off the slowest measurement-window packets
  (right-censoring the latency distribution);
  :attr:`RunStats.packets_outstanding` says how many.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.netsim.config import CYCLE_TIME_NS

#: Schema tag/version for :meth:`RunStats.to_dict` payloads. Bump the
#: version on any incompatible field change; ``from_dict`` refuses
#: payloads from a different major version.
RUN_STATS_SCHEMA = "repro-run-stats"
RUN_STATS_SCHEMA_VERSION = 1


@dataclass
class RunStats:
    """Latency/throughput statistics over a measurement window."""

    measure_start: int
    measure_end: int
    latencies_cycles: List[int] = field(default_factory=list)
    flits_delivered: int = 0
    flits_offered: int = 0
    n_terminals: int = 0
    #: Packets created during the measurement window (delivered or not).
    packets_created: int = 0

    def record_arrival(self, packet) -> bool:
        """Count a delivered packet iff it was created in the window.

        Returns whether the packet was counted. This is the windowing
        filter: packets created during warmup (or drain) are excluded
        from the latency statistics no matter when they arrive.
        """
        if self.measure_start <= packet.create_cycle < self.measure_end:
            self.latencies_cycles.append(
                packet.arrive_cycle - packet.create_cycle
            )
            return True
        return False

    def to_dict(self) -> Dict[str, Any]:
        """Versioned JSON-serializable form (see :meth:`from_dict`).

        This is the one serialization path for run statistics — server
        responses (:mod:`repro.api`) and telemetry bundles both emit
        it. Derived properties (latency averages, loads) are included
        read-only for human consumers but ignored on the way back in.
        """
        return {
            "schema": RUN_STATS_SCHEMA,
            "version": RUN_STATS_SCHEMA_VERSION,
            "measure_start": int(self.measure_start),
            "measure_end": int(self.measure_end),
            # int() per element: the vectorized engine fills this list
            # with numpy integers, which json.dumps rejects.
            "latencies_cycles": [int(x) for x in self.latencies_cycles],
            "flits_delivered": int(self.flits_delivered),
            "flits_offered": int(self.flits_offered),
            "n_terminals": int(self.n_terminals),
            "packets_created": int(self.packets_created),
            "derived": {
                "packets_delivered": self.packets_delivered,
                "packets_outstanding": self.packets_outstanding,
                "avg_latency_cycles": self.avg_latency_cycles,
                "avg_latency_ns": self.avg_latency_ns,
                "p99_latency_cycles": self.p99_latency_cycles,
                "accepted_load": self.accepted_load,
                "offered_load": self.offered_load,
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunStats":
        """Inverse of :meth:`to_dict`; round-trips every stored field."""
        if payload.get("schema") != RUN_STATS_SCHEMA:
            raise ValueError(f"not a {RUN_STATS_SCHEMA} payload")
        if payload.get("version") != RUN_STATS_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported {RUN_STATS_SCHEMA} version "
                f"{payload.get('version')!r}"
            )
        return cls(
            measure_start=int(payload["measure_start"]),
            measure_end=int(payload["measure_end"]),
            latencies_cycles=[int(x) for x in payload["latencies_cycles"]],
            flits_delivered=int(payload["flits_delivered"]),
            flits_offered=int(payload["flits_offered"]),
            n_terminals=int(payload["n_terminals"]),
            packets_created=int(payload["packets_created"]),
        )

    @property
    def packets_delivered(self) -> int:
        return len(self.latencies_cycles)

    @property
    def packets_outstanding(self) -> int:
        """Measurement-window packets not delivered by the end of drain.

        Non-zero means the latency distribution is right-censored: the
        slowest packets of the window never arrived before the run
        stopped (bounded ``drain_cycles``, or a saturated network that
        cannot drain). 0 when ``packets_created`` was never counted.
        """
        return max(self.packets_created - self.packets_delivered, 0)

    @property
    def avg_latency_cycles(self) -> float:
        if not self.latencies_cycles:
            return float("nan")
        return sum(self.latencies_cycles) / len(self.latencies_cycles)

    @property
    def avg_latency_ns(self) -> float:
        return self.avg_latency_cycles * CYCLE_TIME_NS

    @property
    def p99_latency_cycles(self) -> float:
        if not self.latencies_cycles:
            return float("nan")
        ordered = sorted(self.latencies_cycles)
        index = min(len(ordered) - 1, int(0.99 * len(ordered)))
        return float(ordered[index])

    @property
    def measured_cycles(self) -> int:
        return self.measure_end - self.measure_start

    @property
    def accepted_load(self) -> float:
        """Delivered flits per cycle per terminal."""
        cycles = self.measured_cycles
        if cycles <= 0 or self.n_terminals == 0:
            return 0.0
        return self.flits_delivered / cycles / self.n_terminals

    @property
    def offered_load(self) -> float:
        cycles = self.measured_cycles
        if cycles <= 0 or self.n_terminals == 0:
            return 0.0
        return self.flits_offered / cycles / self.n_terminals
