"""Packets and flits."""

from __future__ import annotations

import itertools

_packet_ids = itertools.count()


def reset_packet_ids() -> None:
    """Restart packet numbering (test isolation)."""
    global _packet_ids
    _packet_ids = itertools.count()


class Packet:
    """A multi-flit packet travelling terminal to terminal."""

    __slots__ = (
        "packet_id",
        "src",
        "dst",
        "size_flits",
        "create_cycle",
        "inject_cycle",
        "arrive_cycle",
    )

    def __init__(self, src: int, dst: int, size_flits: int, create_cycle: int):
        if size_flits < 1:
            raise ValueError("packet must contain at least one flit")
        if src == dst:
            raise ValueError("source and destination terminals must differ")
        self.packet_id = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.size_flits = size_flits
        self.create_cycle = create_cycle
        self.inject_cycle = -1
        self.arrive_cycle = -1

    @property
    def latency_cycles(self) -> int:
        """Creation-to-arrival latency (includes source queueing)."""
        if self.arrive_cycle < 0:
            raise ValueError("packet has not arrived")
        return self.arrive_cycle - self.create_cycle

    def __repr__(self) -> str:
        return (
            f"Packet({self.packet_id}, {self.src}->{self.dst}, "
            f"{self.size_flits} flits)"
        )


class Flit:
    """One flow-control unit of a packet."""

    __slots__ = ("packet", "index", "is_head", "is_tail", "vc")

    def __init__(self, packet: Packet, index: int):
        self.packet = packet
        self.index = index
        self.is_head = index == 0
        self.is_tail = index == packet.size_flits - 1
        self.vc = -1  # assigned by VC allocation at each hop

    @property
    def dst(self) -> int:
        return self.packet.dst

    @property
    def src(self) -> int:
        return self.packet.src

    def __repr__(self) -> str:
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"Flit({self.packet.packet_id}.{self.index}{kind})"


def flits_of(packet: Packet):
    """All flits of a packet, head first."""
    return [Flit(packet, i) for i in range(packet.size_flits)]
