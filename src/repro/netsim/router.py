"""Input-queued virtual-channel router with the paper's 4-stage pipeline.

Stages (Fig 20):

* **RC** — route computation: a head flit reaching the front of its
  input VC spends ``routing_delay`` cycles computing its output port
  (ingress SSCs and transit SSCs may have different delays — the
  proprietary-routing optimization of Section VI).
* **VA** — virtual-channel allocation: the packet claims a free VC at
  its output port (round-robin among free VCs).
* **SA** — switch allocation: each output port grants one flit per
  cycle among the ACTIVE input VCs requesting it (round-robin), subject
  to downstream credit availability and one grant per input port per
  cycle.
* **ST** — switch traversal: the winning flit crosses the router in
  ``pipeline_delay`` cycles and enters the output link.

Flow control is credit-based over a per-port shared buffer pool (the
paper's shared buffer policy): the upstream node may only send while
the downstream port's pool has free slots; a credit returns (with link
latency) whenever a flit leaves the pool.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, Set, Tuple

from repro.netsim.arbiter import RoundRobinArbiter
from repro.netsim.config import RouterConfig
from repro.netsim.link import CreditChannel, Link
from repro.netsim.packet import Flit

# Input VC states.
IDLE = 0
ROUTE = 1
ACTIVE = 2

RouteFn = Callable[["Router", int, Flit], int]


class Router:
    """One sub-switch chiplet (or switch box) in the simulated network."""

    def __init__(
        self,
        router_id: int,
        n_ports: int,
        config: RouterConfig,
        route_fn: RouteFn,
        ingress_routing_delay: Optional[int] = None,
    ):
        if n_ports < 1:
            raise ValueError("router needs at least one port")
        self.router_id = router_id
        self.n_ports = n_ports
        self.config = config
        self.route_fn = route_fn
        #: RC delay for packets entering from a terminal (ingress); falls
        #: back to the transit routing delay when not set.
        self.ingress_routing_delay = (
            config.routing_delay
            if ingress_routing_delay is None
            else ingress_routing_delay
        )

        vcs = config.num_vcs
        # Input side.
        self.queues: List[List[deque]] = [
            [deque() for _ in range(vcs)] for _ in range(n_ports)
        ]
        self.occupancy = [0] * n_ports
        self.ivc_state = [[IDLE] * vcs for _ in range(n_ports)]
        self.rc_ready = [[0] * vcs for _ in range(n_ports)]
        self.ivc_out_port = [[-1] * vcs for _ in range(n_ports)]
        self.ivc_out_vc = [[-1] * vcs for _ in range(n_ports)]
        self.rc_pending: Set[Tuple[int, int]] = set()
        self.in_credit_channel: List[Optional[CreditChannel]] = [None] * n_ports
        self.terminal_in_ports: Set[int] = set()

        # Output side.
        self.out_link: List[Optional[Link]] = [None] * n_ports
        self.out_is_terminal = [False] * n_ports
        self.ovc_owner: List[List[Optional[Tuple[int, int]]]] = [
            [None] * vcs for _ in range(n_ports)
        ]
        self.out_credits = [0] * n_ports
        self.out_credit_channel: List[Optional[CreditChannel]] = [None] * n_ports
        self.sa_candidates: List[Set[Tuple[int, int]]] = [
            set() for _ in range(n_ports)
        ]
        self._sa_arbiters = [
            RoundRobinArbiter(n_ports * vcs) for _ in range(n_ports)
        ]
        self._vc_arbiters = [RoundRobinArbiter(vcs) for _ in range(n_ports)]

        # Statistics.
        self.flits_forwarded = 0

    # ------------------------------------------------------------------
    # Wiring (used by the network builders)
    # ------------------------------------------------------------------

    def attach_output(
        self,
        port: int,
        link: Link,
        credit_channel: Optional[CreditChannel],
        downstream_capacity: int,
        is_terminal: bool,
    ) -> None:
        self.out_link[port] = link
        self.out_credit_channel[port] = credit_channel
        self.out_credits[port] = downstream_capacity
        self.out_is_terminal[port] = is_terminal

    def attach_input(
        self, port: int, credit_channel: CreditChannel, from_terminal: bool
    ) -> None:
        self.in_credit_channel[port] = credit_channel
        if from_terminal:
            self.terminal_in_ports.add(port)

    # ------------------------------------------------------------------
    # Per-cycle operation
    # ------------------------------------------------------------------

    def receive_flit(self, port: int, flit: Flit, now: int) -> None:
        """Accept a flit from the input link into the shared buffer."""
        self.occupancy[port] += 1
        if self.occupancy[port] > self.config.buffer_flits_per_port:
            raise AssertionError(
                f"router {self.router_id} port {port}: buffer overflow "
                "(credit protocol violated)"
            )
        vc = flit.vc
        queue = self.queues[port][vc]
        queue.append(flit)
        state = self.ivc_state[port][vc]
        if state == IDLE and len(queue) == 1:
            if not flit.is_head:
                raise AssertionError("body flit reached an idle VC front")
            self._start_route(port, vc, now)
        elif state == ACTIVE and len(queue) == 1:
            self.sa_candidates[self.ivc_out_port[port][vc]].add((port, vc))

    def _start_route(self, port: int, vc: int, now: int) -> None:
        delay = (
            self.ingress_routing_delay
            if port in self.terminal_in_ports
            else self.config.routing_delay
        )
        self.ivc_state[port][vc] = ROUTE
        self.rc_ready[port][vc] = now + delay
        self.rc_pending.add((port, vc))

    def collect_credits(self, now: int) -> None:
        """Absorb credits returned by downstream ports."""
        for port in range(self.n_ports):
            channel = self.out_credit_channel[port]
            if channel is not None:
                self.out_credits[port] += channel.deliver(now)

    def vc_allocate(self, now: int) -> None:
        """RC completion + VC allocation for waiting head flits."""
        if not self.rc_pending:
            return
        granted = []
        for port, vc in sorted(self.rc_pending):
            if now < self.rc_ready[port][vc]:
                continue
            out_port = self.ivc_out_port[port][vc]
            if out_port < 0:
                head = self.queues[port][vc][0]
                out_port = self.route_fn(self, port, head)
                if not 0 <= out_port < self.n_ports:
                    raise AssertionError(
                        f"route function returned invalid port {out_port}"
                    )
                self.ivc_out_port[port][vc] = out_port
            if self.out_is_terminal[out_port]:
                out_vc = 0
            else:
                owners = self.ovc_owner[out_port]
                free = [v for v in range(self.config.num_vcs) if owners[v] is None]
                out_vc = self._vc_arbiters[out_port].pick(free)
                if out_vc is None:
                    continue  # try again next cycle
                owners[out_vc] = (port, vc)
            self.ivc_out_vc[port][vc] = out_vc
            self.ivc_state[port][vc] = ACTIVE
            if self.queues[port][vc]:
                self.sa_candidates[out_port].add((port, vc))
            granted.append((port, vc))
        for key in granted:
            self.rc_pending.discard(key)

    def switch_allocate(self, now: int) -> None:
        """SA + ST: move at most one flit per output (and input) port."""
        vcs = self.config.num_vcs
        used_inputs: Set[int] = set()
        for out_port in range(self.n_ports):
            candidates = self.sa_candidates[out_port]
            if not candidates:
                continue
            if not self.out_is_terminal[out_port] and self.out_credits[out_port] <= 0:
                continue
            requests = [
                port * vcs + vc
                for (port, vc) in candidates
                if port not in used_inputs and self.queues[port][vc]
            ]
            winner = self._sa_arbiters[out_port].pick(requests)
            if winner is None:
                continue
            port, vc = divmod(winner, vcs)
            used_inputs.add(port)
            self._forward(port, vc, out_port, now)

    def _forward(self, port: int, vc: int, out_port: int, now: int) -> None:
        flit = self.queues[port][vc].popleft()
        self.occupancy[port] -= 1
        self.flits_forwarded += 1
        upstream = self.in_credit_channel[port]
        if upstream is not None:
            upstream.send(1, now)
        flit.vc = self.ivc_out_vc[port][vc]
        if not self.out_is_terminal[out_port]:
            self.out_credits[out_port] -= 1
        link = self.out_link[out_port]
        if link is None:
            raise AssertionError(f"output port {out_port} is not wired")
        link.send(flit, now, extra_delay=self.config.pipeline_delay)

        if flit.is_tail:
            if not self.out_is_terminal[out_port]:
                self.ovc_owner[out_port][flit.vc] = None
            self.ivc_state[port][vc] = IDLE
            self.ivc_out_port[port][vc] = -1
            self.ivc_out_vc[port][vc] = -1
            self.sa_candidates[out_port].discard((port, vc))
            if self.queues[port][vc]:
                # The next packet's head is now at the queue front.
                self._start_route(port, vc, now)
        elif not self.queues[port][vc]:
            # Body flits still in flight upstream; pause SA requests.
            self.sa_candidates[out_port].discard((port, vc))

    def buffered_flits(self) -> int:
        """Total flits currently buffered (drain detection)."""
        return sum(self.occupancy)
