"""Input-queued virtual-channel router with the paper's 4-stage pipeline.

Stages (Fig 20):

* **RC** — route computation: a head flit reaching the front of its
  input VC spends ``routing_delay`` cycles computing its output port
  (ingress SSCs and transit SSCs may have different delays — the
  proprietary-routing optimization of Section VI).
* **VA** — virtual-channel allocation: the packet claims a free VC at
  its output port (round-robin among free VCs).
* **SA** — switch allocation: each output port grants one flit per
  cycle among the ACTIVE input VCs requesting it (round-robin), subject
  to downstream credit availability and one grant per input port per
  cycle.
* **ST** — switch traversal: the winning flit crosses the router in
  ``pipeline_delay`` cycles and enters the output link.

Flow control is credit-based over a per-port shared buffer pool (the
paper's shared buffer policy): the upstream node may only send while
the downstream port's pool has free slots; a credit returns (with link
latency) whenever a flit leaves the pool.

Hot-path notes: the per-cycle driver only calls ``vc_allocate`` /
``switch_allocate`` when the router has work (``rc_pending`` /
``active_out_ports`` non-empty — the active-set scheduler), both
arbitration loops are inlined over the actual candidates instead of
scanning the full index space, and the router caches its config
scalars to avoid dataclass attribute lookups per cycle.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, Set, Tuple

from repro.netsim.arbiter import RoundRobinArbiter
from repro.netsim.config import RouterConfig
from repro.netsim.link import CreditChannel, Link
from repro.netsim.packet import Flit

# Input VC states.
IDLE = 0
ROUTE = 1
ACTIVE = 2

RouteFn = Callable[["Router", int, Flit], int]


class Router:
    """One sub-switch chiplet (or switch box) in the simulated network."""

    __slots__ = (
        "router_id",
        "n_ports",
        "config",
        "route_fn",
        "ingress_routing_delay",
        "num_vcs",
        "buffer_cap",
        "routing_delay",
        "pipeline_delay",
        "queues",
        "occupancy",
        "ivc_state",
        "rc_ready",
        "ivc_out_port",
        "ivc_out_vc",
        "rc_pending",
        "in_credit_channel",
        "terminal_in_ports",
        "out_link",
        "out_is_terminal",
        "ovc_owner",
        "out_credits",
        "out_credit_channel",
        "sa_candidates",
        "active_out_ports",
        "_sa_arbiters",
        "_vc_arbiters",
        "_used_stamp",
        "_used_generation",
        "_buffered_total",
        "flits_forwarded",
        "telemetry",
    )

    def __init__(
        self,
        router_id: int,
        n_ports: int,
        config: RouterConfig,
        route_fn: RouteFn,
        ingress_routing_delay: Optional[int] = None,
    ):
        if n_ports < 1:
            raise ValueError("router needs at least one port")
        self.router_id = router_id
        self.n_ports = n_ports
        self.config = config
        self.route_fn = route_fn
        #: RC delay for packets entering from a terminal (ingress); falls
        #: back to the transit routing delay when not set.
        self.ingress_routing_delay = (
            config.routing_delay
            if ingress_routing_delay is None
            else ingress_routing_delay
        )
        # Cached config scalars (dataclass attribute access is slow).
        self.num_vcs = config.num_vcs
        self.buffer_cap = config.buffer_flits_per_port
        self.routing_delay = config.routing_delay
        self.pipeline_delay = config.pipeline_delay

        vcs = config.num_vcs
        # Input side.
        self.queues: List[List[deque]] = [
            [deque() for _ in range(vcs)] for _ in range(n_ports)
        ]
        self.occupancy = [0] * n_ports
        self.ivc_state = [[IDLE] * vcs for _ in range(n_ports)]
        self.rc_ready = [[0] * vcs for _ in range(n_ports)]
        self.ivc_out_port = [[-1] * vcs for _ in range(n_ports)]
        self.ivc_out_vc = [[-1] * vcs for _ in range(n_ports)]
        self.rc_pending: Set[Tuple[int, int]] = set()
        self.in_credit_channel: List[Optional[CreditChannel]] = [None] * n_ports
        self.terminal_in_ports: Set[int] = set()

        # Output side.
        self.out_link: List[Optional[Link]] = [None] * n_ports
        self.out_is_terminal = [False] * n_ports
        self.ovc_owner: List[List[Optional[Tuple[int, int]]]] = [
            [None] * vcs for _ in range(n_ports)
        ]
        self.out_credits = [0] * n_ports
        self.out_credit_channel: List[Optional[CreditChannel]] = [None] * n_ports
        self.sa_candidates: List[Set[Tuple[int, int]]] = [
            set() for _ in range(n_ports)
        ]
        #: Output ports with at least one SA candidate (active set).
        self.active_out_ports: Set[int] = set()
        self._sa_arbiters = [
            RoundRobinArbiter(n_ports * vcs) for _ in range(n_ports)
        ]
        self._vc_arbiters = [RoundRobinArbiter(vcs) for _ in range(n_ports)]
        # One-grant-per-input-port lock, generation-stamped so no set
        # is allocated per switch_allocate call.
        self._used_stamp = [0] * n_ports
        self._used_generation = 0

        # Statistics.
        self._buffered_total = 0
        self.flits_forwarded = 0
        #: Optional per-router telemetry view
        #: (:class:`~repro.netsim.telemetry.RouterTelemetry`). ``None``
        #: keeps every instrumentation point to a single local
        #: ``is not None`` check — near-zero cost when telemetry is off.
        self.telemetry = None

    # ------------------------------------------------------------------
    # Wiring (used by the network builders)
    # ------------------------------------------------------------------

    def attach_output(
        self,
        port: int,
        link: Link,
        credit_channel: Optional[CreditChannel],
        downstream_capacity: int,
        is_terminal: bool,
    ) -> None:
        self.out_link[port] = link
        self.out_credit_channel[port] = credit_channel
        self.out_credits[port] = downstream_capacity
        self.out_is_terminal[port] = is_terminal

    def attach_input(
        self, port: int, credit_channel: CreditChannel, from_terminal: bool
    ) -> None:
        self.in_credit_channel[port] = credit_channel
        if from_terminal:
            self.terminal_in_ports.add(port)

    # ------------------------------------------------------------------
    # Per-cycle operation
    # ------------------------------------------------------------------

    def receive_flit(self, port: int, flit: Flit, now: int) -> None:
        """Accept a flit from the input link into the shared buffer."""
        occupancy = self.occupancy
        occupancy[port] += 1
        self._buffered_total += 1
        if occupancy[port] > self.buffer_cap:
            raise AssertionError(
                f"router {self.router_id} port {port}: buffer overflow "
                "(credit protocol violated)"
            )
        vc = flit.vc
        queue = self.queues[port][vc]
        queue.append(flit)
        if len(queue) == 1:
            state = self.ivc_state[port][vc]
            if state == IDLE:
                if not flit.is_head:
                    raise AssertionError("body flit reached an idle VC front")
                self._start_route(port, vc, now)
            elif state == ACTIVE:
                out_port = self.ivc_out_port[port][vc]
                self.sa_candidates[out_port].add((port, vc))
                self.active_out_ports.add(out_port)

    def _start_route(self, port: int, vc: int, now: int) -> None:
        delay = (
            self.ingress_routing_delay
            if port in self.terminal_in_ports
            else self.routing_delay
        )
        self.ivc_state[port][vc] = ROUTE
        self.rc_ready[port][vc] = now + delay
        self.rc_pending.add((port, vc))

    def collect_credits(self, now: int) -> None:
        """Absorb credits returned by downstream ports.

        Only used when the router is driven standalone (unit tests);
        inside a :class:`~repro.netsim.network.NetworkModel` the
        network's credit event heap delivers credits directly.
        """
        out_credits = self.out_credits
        for port in range(self.n_ports):
            channel = self.out_credit_channel[port]
            if channel is not None:
                pending = channel._in_flight
                if pending and pending[0][0] <= now:
                    out_credits[port] += channel.deliver(now)

    def vc_allocate(self, now: int) -> None:
        """RC completion + VC allocation for waiting head flits.

        :meth:`vc_allocate_telemetry` is the instrumented twin; the two
        must stay decision-for-decision identical (the telemetry on/off
        parity test enforces it).
        """
        pending = self.rc_pending
        if not pending:
            return
        queues = self.queues
        rc_ready = self.rc_ready
        ivc_out_port = self.ivc_out_port
        granted = []
        for key in sorted(pending) if len(pending) > 1 else tuple(pending):
            port, vc = key
            if now < rc_ready[port][vc]:
                continue
            out_port = ivc_out_port[port][vc]
            if out_port < 0:
                head = queues[port][vc][0]
                out_port = self.route_fn(self, port, head)
                if not 0 <= out_port < self.n_ports:
                    raise AssertionError(
                        f"route function returned invalid port {out_port}"
                    )
                ivc_out_port[port][vc] = out_port
            if self.out_is_terminal[out_port]:
                out_vc = 0
            else:
                owners = self.ovc_owner[out_port]
                arbiter = self._vc_arbiters[out_port]
                vcs = arbiter.size
                pointer = arbiter._pointer
                out_vc = -1
                for offset in range(vcs):
                    candidate = pointer + offset
                    if candidate >= vcs:
                        candidate -= vcs
                    if owners[candidate] is None:
                        out_vc = candidate
                        break
                if out_vc < 0:
                    continue  # try again next cycle
                arbiter._pointer = out_vc + 1 if out_vc + 1 < vcs else 0
                owners[out_vc] = key
            self.ivc_out_vc[port][vc] = out_vc
            self.ivc_state[port][vc] = ACTIVE
            if queues[port][vc]:
                self.sa_candidates[out_port].add(key)
                self.active_out_ports.add(out_port)
            granted.append(key)
        for key in granted:
            pending.discard(key)

    def vc_allocate_telemetry(self, now: int) -> None:
        """Counter-instrumented copy of :meth:`vc_allocate`.

        The network driver calls this variant instead of the plain one
        when a telemetry sink is attached, so the disabled hot path
        carries zero per-flit checks. Apart from the ``tele`` counter
        updates this must stay line-for-line identical to
        :meth:`vc_allocate`.
        """
        pending = self.rc_pending
        if not pending:
            return
        queues = self.queues
        rc_ready = self.rc_ready
        ivc_out_port = self.ivc_out_port
        tele = self.telemetry
        granted = []
        for key in sorted(pending) if len(pending) > 1 else tuple(pending):
            port, vc = key
            if now < rc_ready[port][vc]:
                tele.rc_wait_cycles += 1
                continue
            out_port = ivc_out_port[port][vc]
            if out_port < 0:
                head = queues[port][vc][0]
                out_port = self.route_fn(self, port, head)
                if not 0 <= out_port < self.n_ports:
                    raise AssertionError(
                        f"route function returned invalid port {out_port}"
                    )
                ivc_out_port[port][vc] = out_port
            if self.out_is_terminal[out_port]:
                out_vc = 0
            else:
                owners = self.ovc_owner[out_port]
                arbiter = self._vc_arbiters[out_port]
                vcs = arbiter.size
                pointer = arbiter._pointer
                out_vc = -1
                for offset in range(vcs):
                    candidate = pointer + offset
                    if candidate >= vcs:
                        candidate -= vcs
                    if owners[candidate] is None:
                        out_vc = candidate
                        break
                if out_vc < 0:
                    tele.va_stalls += 1
                    continue  # try again next cycle
                arbiter._pointer = out_vc + 1 if out_vc + 1 < vcs else 0
                owners[out_vc] = key
            self.ivc_out_vc[port][vc] = out_vc
            self.ivc_state[port][vc] = ACTIVE
            if queues[port][vc]:
                self.sa_candidates[out_port].add(key)
                self.active_out_ports.add(out_port)
            tele.va_grants += 1
            granted.append(key)
        for key in granted:
            pending.discard(key)

    def switch_allocate(self, now: int) -> None:
        """SA + ST: move at most one flit per output (and input) port.

        Switch traversal (the old ``_forward``) is inlined in the grant
        branch, including the winning flit's link send and the credit
        return — this is the single hottest loop in the simulator.

        :meth:`switch_allocate_telemetry` is the instrumented twin; the
        two must stay decision-for-decision identical (the telemetry
        on/off parity test enforces it).
        """
        active = self.active_out_ports
        if not active:
            return
        vcs = self.num_vcs
        queues = self.queues
        occupancy = self.occupancy
        out_credits = self.out_credits
        out_is_terminal = self.out_is_terminal
        sa_candidates = self.sa_candidates
        pipeline_delay = self.pipeline_delay
        used_stamp = self._used_stamp
        generation = self._used_generation + 1
        self._used_generation = generation
        # sorted() both preserves the original ascending port order and
        # snapshots the set (the grant branch prunes it mid-loop).
        ordered = sorted(active) if len(active) > 1 else tuple(active)
        for out_port in ordered:
            candidates = sa_candidates[out_port]
            if not candidates:
                continue
            is_terminal = out_is_terminal[out_port]
            if not is_terminal and out_credits[out_port] <= 0:
                continue
            arbiter = self._sa_arbiters[out_port]
            size = arbiter.size
            pointer = arbiter._pointer
            best = -1
            best_distance = size
            for port, vc in candidates:
                if used_stamp[port] == generation or not queues[port][vc]:
                    continue
                request = port * vcs + vc
                distance = request - pointer
                if distance < 0:
                    distance += size
                if distance < best_distance:
                    best_distance = distance
                    best = request
            if best < 0:
                continue
            arbiter._pointer = best + 1 if best + 1 < size else 0
            port = best // vcs
            vc = best - port * vcs
            used_stamp[port] = generation

            # --- switch traversal (inlined flit forward) ---
            queue = queues[port][vc]
            flit = queue.popleft()
            occupancy[port] -= 1
            self._buffered_total -= 1
            self.flits_forwarded += 1
            upstream = self.in_credit_channel[port]
            if upstream is not None:
                # Inlined CreditChannel.send(1, now).
                pending = upstream._in_flight
                credit_arrival = now + upstream.latency
                events = upstream._events
                if not pending and events is not None:
                    bucket = events.get(credit_arrival)
                    if bucket is None:
                        events[credit_arrival] = [upstream._event_key]
                    else:
                        bucket.append(upstream._event_key)
                pending.append((credit_arrival, 1))
            out_vc = self.ivc_out_vc[port][vc]
            flit.vc = out_vc
            if not is_terminal:
                out_credits[out_port] -= 1
            link = self.out_link[out_port]
            if link is None:
                raise AssertionError(f"output port {out_port} is not wired")
            # Inlined Link.send(flit, now, extra_delay=pipeline_delay).
            arrival = now + link.latency + pipeline_delay
            in_flight = link._in_flight
            if not in_flight:
                events = link._events
                if events is not None:
                    bucket = events.get(arrival)
                    if bucket is None:
                        events[arrival] = [link._event_key]
                    else:
                        bucket.append(link._event_key)
            in_flight.append((arrival, flit))

            if flit.is_tail:
                if not is_terminal:
                    self.ovc_owner[out_port][out_vc] = None
                self.ivc_state[port][vc] = IDLE
                self.ivc_out_port[port][vc] = -1
                self.ivc_out_vc[port][vc] = -1
                candidates.discard((port, vc))
                if not candidates:
                    active.discard(out_port)
                if queue:
                    # The next packet's head is now at the queue front.
                    self._start_route(port, vc, now)
            elif not queue:
                # Body flits still in flight upstream; pause SA requests.
                candidates.discard((port, vc))
                if not candidates:
                    active.discard(out_port)

    def switch_allocate_telemetry(self, now: int) -> None:
        """Counter-instrumented copy of :meth:`switch_allocate`.

        The network driver calls this variant instead of the plain one
        when a telemetry sink is attached, so the disabled hot path
        carries zero per-flit checks. Apart from the ``tele`` counter
        updates (credit stalls, SA requests, channel load, VC grants)
        this must stay line-for-line identical to
        :meth:`switch_allocate`.
        """
        active = self.active_out_ports
        if not active:
            return
        vcs = self.num_vcs
        queues = self.queues
        occupancy = self.occupancy
        out_credits = self.out_credits
        out_is_terminal = self.out_is_terminal
        sa_candidates = self.sa_candidates
        pipeline_delay = self.pipeline_delay
        used_stamp = self._used_stamp
        generation = self._used_generation + 1
        self._used_generation = generation
        tele = self.telemetry
        # sorted() both preserves the original ascending port order and
        # snapshots the set (the grant branch prunes it mid-loop).
        ordered = sorted(active) if len(active) > 1 else tuple(active)
        for out_port in ordered:
            candidates = sa_candidates[out_port]
            if not candidates:
                continue
            is_terminal = out_is_terminal[out_port]
            if not is_terminal and out_credits[out_port] <= 0:
                tele.credit_stall_cycles[out_port] += 1
                continue
            # Requests seen by this port's arbiter this cycle;
            # credit-starved cycles are attributed above instead.
            requests = 0
            for port, vc in candidates:
                if used_stamp[port] != generation and queues[port][vc]:
                    requests += 1
            tele.sa_requests[out_port] += requests
            arbiter = self._sa_arbiters[out_port]
            size = arbiter.size
            pointer = arbiter._pointer
            best = -1
            best_distance = size
            for port, vc in candidates:
                if used_stamp[port] == generation or not queues[port][vc]:
                    continue
                request = port * vcs + vc
                distance = request - pointer
                if distance < 0:
                    distance += size
                if distance < best_distance:
                    best_distance = distance
                    best = request
            if best < 0:
                continue
            arbiter._pointer = best + 1 if best + 1 < size else 0
            port = best // vcs
            vc = best - port * vcs
            used_stamp[port] = generation

            # --- switch traversal (inlined flit forward) ---
            queue = queues[port][vc]
            flit = queue.popleft()
            occupancy[port] -= 1
            self._buffered_total -= 1
            self.flits_forwarded += 1
            tele.channel_load[out_port] += 1
            tele.vc_grants[vc] += 1
            upstream = self.in_credit_channel[port]
            if upstream is not None:
                # Inlined CreditChannel.send(1, now).
                pending = upstream._in_flight
                credit_arrival = now + upstream.latency
                events = upstream._events
                if not pending and events is not None:
                    bucket = events.get(credit_arrival)
                    if bucket is None:
                        events[credit_arrival] = [upstream._event_key]
                    else:
                        bucket.append(upstream._event_key)
                pending.append((credit_arrival, 1))
            out_vc = self.ivc_out_vc[port][vc]
            flit.vc = out_vc
            if not is_terminal:
                out_credits[out_port] -= 1
            link = self.out_link[out_port]
            if link is None:
                raise AssertionError(f"output port {out_port} is not wired")
            # Inlined Link.send(flit, now, extra_delay=pipeline_delay).
            arrival = now + link.latency + pipeline_delay
            in_flight = link._in_flight
            if not in_flight:
                events = link._events
                if events is not None:
                    bucket = events.get(arrival)
                    if bucket is None:
                        events[arrival] = [link._event_key]
                    else:
                        bucket.append(link._event_key)
            in_flight.append((arrival, flit))

            if flit.is_tail:
                if not is_terminal:
                    self.ovc_owner[out_port][out_vc] = None
                self.ivc_state[port][vc] = IDLE
                self.ivc_out_port[port][vc] = -1
                self.ivc_out_vc[port][vc] = -1
                candidates.discard((port, vc))
                if not candidates:
                    active.discard(out_port)
                if queue:
                    # The next packet's head is now at the queue front.
                    self._start_route(port, vc, now)
            elif not queue:
                # Body flits still in flight upstream; pause SA requests.
                candidates.discard((port, vc))
                if not candidates:
                    active.discard(out_port)

    def buffered_flits(self) -> int:
        """Total flits currently buffered (drain detection)."""
        return self._buffered_total
